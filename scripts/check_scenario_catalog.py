#!/usr/bin/env python3
"""Fail if any registered scenario is missing from docs/workloads.md.

The workload catalog is normative documentation: every name returned by
``repro.scenarios.available_scenarios()`` must appear as a backticked
table entry in ``docs/workloads.md``. CI's docs job runs this script;
``tests/test_docs.py::TestWorkloadCatalog`` runs the same check in the
tier-1 suite.

Exit status: 0 when the catalog is complete, 1 otherwise (missing names
are printed).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def missing_scenarios(catalog_path: Path | None = None) -> list[str]:
    """Registered scenario names absent from the workload catalog."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.scenarios import available_scenarios

    if catalog_path is None:
        catalog_path = REPO_ROOT / "docs" / "workloads.md"
    text = catalog_path.read_text()
    return [
        name for name in available_scenarios() if f"`{name}`" not in text
    ]


def main() -> int:
    missing = missing_scenarios()
    if missing:
        print(
            "docs/workloads.md is missing registered scenarios: "
            + ", ".join(missing),
            file=sys.stderr,
        )
        print(
            "add a catalog row for each (see the table template in the "
            "page) and re-run.",
            file=sys.stderr,
        )
        return 1
    print("scenario catalog is in sync with the registry")
    return 0


if __name__ == "__main__":
    sys.exit(main())
