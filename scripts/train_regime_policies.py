#!/usr/bin/env python3
"""Run the per-regime training campaign and package the checkpoints.

Trains one policy per regime (delayed Δt grid, ring / random-regular
graph, diurnal — see ``repro.experiments.campaign.default_regimes``),
warm-starting each from the packaged paper checkpoint for its Δt and
fine-tuning on the regime's true dynamics with age/occupancy context
features — at the regime's training fidelity: the delayed regimes
fine-tune on the *finite* deployment system
(``repro.queueing.finite_mdp.FiniteRegimeEnv``), the graph/diurnal
regimes on the mean-field proxy. Finished regimes are persisted as
content-addressed training shards in an experiment store, so an
interrupted campaign resumes bit-identically and multiple hosts sharing
``--store`` partition the regime list with ``--claim``.

Usage:
    python scripts/train_regime_policies.py [--regimes dt5,dt7] \
        [--iterations 120] [--num-envs 4] [--store DIR] [--workers 2] \
        [--claim] [--out DIR] [--quick]
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
from pathlib import Path

from repro.experiments.campaign import (
    TrainingBudget,
    campaign_ppo_config,
    collect_cached,
    default_regimes,
    package_policies,
    run_campaign,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--regimes",
        default="",
        help="comma-separated regime names (default: all)",
    )
    parser.add_argument("--iterations", type=int, default=120)
    parser.add_argument(
        "--num-envs",
        type=int,
        default=4,
        help="independent-stream training envs per trainer",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="experiment store directory (enables resume)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="regime-level process pool"
    )
    parser.add_argument(
        "--claim",
        action="store_true",
        help="claim regimes in the store (multi-host partitioning)",
    )
    parser.add_argument(
        "--owner",
        default=None,
        help="claim owner id (default: host:pid)",
    )
    parser.add_argument(
        "--stale-after",
        type=float,
        default=None,
        help="steal claims idle for this many seconds",
    )
    parser.add_argument(
        "--merge-only",
        action="store_true",
        help="package finished shards from the store without training",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="checkpoint output directory (default: packaged assets)",
    )
    parser.add_argument(
        "--no-package",
        action="store_true",
        help="train (and store) only; skip writing checkpoints",
    )
    parser.add_argument(
        "--quick", action="store_true", help="tiny budget (CI smoke)"
    )
    args = parser.parse_args(argv)

    regimes = list(default_regimes())
    if args.regimes.strip():
        wanted = {name.strip() for name in args.regimes.split(",") if name.strip()}
        known = {r.name for r in regimes}
        unknown = wanted - known
        if unknown:
            parser.error(
                f"unknown regimes {sorted(unknown)}; have {sorted(known)}"
            )
        regimes = [r for r in regimes if r.name in wanted]

    iterations = 2 if args.quick else args.iterations
    budget = TrainingBudget(
        iterations=iterations,
        num_envs=args.num_envs,
        critic_warmup=1 if args.quick else 6,
        eval_episodes=4 if args.quick else 24,
    )
    ppo = campaign_ppo_config(args.seed, iterations=iterations)
    if args.quick:
        ppo = ppo.with_updates(
            train_batch_size=200, minibatch_size=100, num_epochs=2
        )
    if ppo.train_batch_size % args.num_envs != 0:
        parser.error(
            f"--num-envs must divide the PPO train batch size "
            f"{ppo.train_batch_size}, got {args.num_envs}"
        )

    store = None
    if args.store is not None:
        from repro.store.store import ExperimentStore

        store = ExperimentStore(args.store)
    if (args.claim or args.merge_only) and store is None:
        parser.error("--claim/--merge-only require --store")

    t0 = time.perf_counter()
    if args.merge_only:
        results = collect_cached(
            regimes, store, ppo=ppo, budget=budget, seed=args.seed
        )
    else:
        owner = args.owner or f"{socket.gethostname()}:{os.getpid()}"
        results = run_campaign(
            regimes,
            ppo=ppo,
            budget=budget,
            seed=args.seed,
            store=store,
            workers=args.workers,
            claim=args.claim,
            owner=owner,
            stale_after=args.stale_after,
            verbose=True,
        )
    elapsed = time.perf_counter() - t0

    for name in sorted(results):
        res = results[name]
        src = "store" if res.from_cache else "trained"
        print(
            f"[{name}] {src}: kept={res.meta.get('kept')} "
            f"return={res.meta.get('trained_return'):.2f}"
            if res.meta.get("trained_return") is not None
            else f"[{name}] {src}"
        )
    pending = [r.name for r in regimes if r.name not in results]
    if pending:
        print(f"pending (claimed elsewhere or unfinished): {pending}")

    if results and not args.no_package:
        paths = package_policies(results, args.out)
        for name in sorted(paths):
            print(f"packaged {paths[name]}")
    print(f"campaign finished in {elapsed:.1f}s ({len(results)} regimes)")
    return 0 if results or args.merge_only else 1


if __name__ == "__main__":
    sys.exit(main())
