#!/usr/bin/env python3
"""Pretrain the MF policies shipped in ``repro/assets/policies/``.

One policy per synchronization delay ``Δt``, following a three-stage
pipeline that reproduces the paper's result (a learned upper-level
policy that beats JSQ(2) at intermediate delays and RND everywhere) at
laptop-scale compute instead of the authors' 35 h × 20 cores:

1. **CEM** finds a strong *constant* decision rule on the mean-field MDP
   (seconds; already interpolates between JSQ and RND as Δt grows).
2. **Behavior cloning** distills that rule into the paper's 2×256-tanh
   Gaussian policy network.
3. **PPO fine-tuning** (critic warmup first, then full updates) adds
   state feedback on (ν_t, λ_t). Hyperparameters follow Table 2 except
   for the documented speed deviations (learning rate, epochs/minibatch,
   value clip) recorded in the checkpoint metadata.

Usage:
    python scripts/pretrain_policies.py [--delta-ts 1,3,5] [--iters 25]
                                        [--out DIR] [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path


from repro.config import PPOConfig, paper_system_config
from repro.experiments.pretrained import checkpoint_path
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.policies.learned import NeuralPolicy
from repro.policies.static import JoinShortestQueuePolicy, RandomPolicy
from repro.rl.cem import optimize_constant_rule
from repro.rl.evaluation import evaluate_policies_mfc, evaluate_policy_mfc
from repro.rl.imitation import clone_rule, collect_visited_observations
from repro.rl.ppo import PPOTrainer


def finetune_ppo_config(seed: int) -> PPOConfig:
    """Table 2 with the documented scaled-compute deviations."""
    return PPOConfig(
        gamma=0.99,
        gae_lambda=0.95,          # Table 2: 1.0 (variance reduction)
        kl_coeff=0.2,
        kl_target=0.01,
        clip_param=0.3,
        learning_rate=1e-4,       # Table 2: 5e-5 (fewer total steps)
        train_batch_size=4000,
        minibatch_size=512,       # Table 2: 128 (throughput)
        num_epochs=10,            # Table 2: 30 (throughput)
        value_clip_param=5000.0,  # RLlib default 10 freezes the critic here
        hidden_sizes=(256, 256),  # Figure 2 architecture
        initial_log_std=-1.5,     # exploration scale fits [0, 1] actions
        seed=seed,
    )


def pretrain_one(
    delta_t: float,
    out_dir: Path,
    cem_generations: int = 15,
    ppo_iterations: int = 25,
    critic_warmup: int = 3,
    horizon: int = 100,
    eval_episodes: int = 30,
    seed: int = 0,
    num_envs: int = 1,
    verbose: bool = True,
) -> dict:
    """Run the full pipeline for one delay; returns the metadata dict."""
    t_start = time.perf_counter()
    cfg = paper_system_config(delta_t=delta_t, num_queues=100)
    env = MeanFieldEnv(cfg, horizon=horizon, propagator="tabulated", seed=seed)
    eval_env = MeanFieldEnv(
        cfg, horizon=horizon, propagator="tabulated", seed=seed + 1
    )
    s, d = cfg.num_queue_states, cfg.d

    baselines = {
        "JSQ": JoinShortestQueuePolicy(s, d),
        "RND": RandomPolicy(s, d),
    }
    base = evaluate_policies_mfc(eval_env, baselines, episodes=eval_episodes, seed=7)
    if verbose:
        print(
            f"[Δt={delta_t:g}] baselines: JSQ={base['JSQ'].mean:.2f} "
            f"RND={base['RND'].mean:.2f}"
        )

    # Stage 1: CEM over constant rules.
    cem = optimize_constant_rule(
        env,
        generations=cem_generations,
        population=28,
        episodes_per_candidate=2,
        seed=seed,
    )
    cem_eval = evaluate_policy_mfc(
        eval_env, cem.policy, episodes=eval_episodes, seed=7
    )
    if verbose:
        print(f"[Δt={delta_t:g}] CEM constant rule: {cem_eval.mean:.2f}")

    # Stage 2: behavior cloning into the paper's network.
    ppo_cfg = finetune_ppo_config(seed)
    trainer = PPOTrainer(env, ppo_cfg, seed=seed, num_envs=num_envs)
    obs = collect_visited_observations(env, cem.rule, episodes=5, seed=seed)
    mse = clone_rule(trainer.policy, cem.rule, obs, epochs=300, seed=seed)
    if verbose:
        print(f"[Δt={delta_t:g}] cloning MSE: {mse:.3e}")

    # Stage 3: PPO fine-tuning (critic warmup first).
    curve: list[float] = []
    for i in range(ppo_iterations):
        stats = trainer.train_iteration(update_policy=i >= critic_warmup)
        curve.append(stats.mean_episode_return)
        if verbose and (i % 5 == 0 or i == ppo_iterations - 1):
            print(
                f"[Δt={delta_t:g}] iter {i:3d} return {stats.mean_episode_return:7.2f} "
                f"kl {stats.kl:.4f} ev {stats.explained_variance:.2f}"
            )

    policy = NeuralPolicy(
        trainer.policy, num_states=s, d=d, num_modes=env.num_modes
    )
    ppo_eval = evaluate_policy_mfc(
        eval_env, policy, episodes=eval_episodes, seed=7
    )
    # Keep whichever stage generalizes better (PPO can only help; guard
    # against a fine-tuning regression at tiny budgets).
    use_ppo = ppo_eval.mean >= cem_eval.mean
    if not use_ppo:
        # Re-clone the CEM rule so the shipped network reproduces it.
        clone_rule(trainer.policy, cem.rule, obs, epochs=300, seed=seed)
        policy = NeuralPolicy(
            trainer.policy, num_states=s, d=d, num_modes=env.num_modes
        )
        final_eval = evaluate_policy_mfc(
            eval_env, policy, episodes=eval_episodes, seed=7
        )
    else:
        final_eval = ppo_eval

    meta = {
        "delta_t": delta_t,
        "pipeline": "cem+clone+ppo" if use_ppo else "cem+clone",
        "horizon": horizon,
        "mean_return": final_eval.mean,
        "cem_return": cem_eval.mean,
        "ppo_return": ppo_eval.mean,
        "jsq_return": base["JSQ"].mean,
        "rnd_return": base["RND"].mean,
        "ppo_iterations": ppo_iterations,
        "env_steps": trainer.collector.total_env_steps,
        "seed": seed,
        "train_seconds": round(time.perf_counter() - t_start, 1),
    }
    path = checkpoint_path(delta_t, out_dir)
    policy.save(path, extra_meta=meta)
    if verbose:
        print(
            f"[Δt={delta_t:g}] saved {path.name}: final={final_eval.mean:.2f} "
            f"({meta['pipeline']}, {meta['train_seconds']}s)"
        )
    return meta


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--delta-ts",
        default="1,2,3,4,5,6,7,8,9,10",
        help="comma-separated synchronization delays",
    )
    parser.add_argument("--iters", type=int, default=25, help="PPO iterations")
    parser.add_argument("--cem-gens", type=int, default=15)
    parser.add_argument(
        "--num-envs",
        type=int,
        default=1,
        help="lock-step MFC envs for PPO collection (vectorized rollouts)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output directory (default: packaged assets)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="tiny budget (CI smoke)"
    )
    args = parser.parse_args(argv)

    batch_size = finetune_ppo_config(args.seed).train_batch_size
    if args.num_envs < 1 or batch_size % args.num_envs != 0:
        # Fail before the CEM stage: the PPO batch must split evenly
        # across the lock-step environments (PPOTrainer re-checks).
        parser.error(
            "--num-envs must divide the PPO train batch size "
            f"{batch_size}, got {args.num_envs}"
        )
    delta_ts = [float(x) for x in args.delta_ts.split(",") if x.strip()]
    out_dir = args.out
    if out_dir is None:
        from repro.assets import POLICY_DIR

        out_dir = POLICY_DIR
    iters = 2 if args.quick else args.iters
    cem_gens = 2 if args.quick else args.cem_gens

    for dt in delta_ts:
        pretrain_one(
            dt,
            out_dir,
            cem_generations=cem_gens,
            ppo_iterations=iters,
            seed=args.seed,
            num_envs=args.num_envs,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
