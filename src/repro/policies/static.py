"""Static baseline policies: JSQ(d), RND, threshold, constant rules.

These are the comparison policies of the paper's Section 4:

* :class:`JoinShortestQueuePolicy` — power-of-d JSQ: every agent routes
  to the shortest of its ``d`` sampled queues (MF-JSQ rule, Eq. 34).
  Optimal as ``Δt → 0`` but suffers from herd behaviour under delay.
* :class:`RandomPolicy` — uniform routing among the sampled queues
  (MF-RND rule, Eq. 35); optimal as ``Δt → ∞``.
* :class:`ThresholdPolicy` — a simple hand-crafted interpolation between
  the two (ablation material).
* :class:`ConstantRulePolicy` — wraps an arbitrary fixed rule, e.g. one
  found by the CEM optimizer.

All are stationary: the emitted rule does not depend on ``(ν, λ)``.
"""

from __future__ import annotations

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.policies.base import UpperLevelPolicy

__all__ = [
    "ConstantRulePolicy",
    "JoinShortestQueuePolicy",
    "RandomPolicy",
    "ThresholdPolicy",
]


class ConstantRulePolicy(UpperLevelPolicy):
    """Emit the same decision rule at every epoch."""

    def __init__(self, rule: DecisionRule, name: str | None = None) -> None:
        self._rule = rule
        self._name = name or "ConstantRule"

    @property
    def rule(self) -> DecisionRule:
        return self._rule

    def decision_rule(
        self,
        nu: np.ndarray,
        lam_mode: int,
        rng: np.random.Generator | None = None,
    ) -> DecisionRule:
        return self._rule

    @property
    def name(self) -> str:
        return self._name

    def is_stationary(self) -> bool:
        return True


class JoinShortestQueuePolicy(ConstantRulePolicy):
    """JSQ(d): route to the shortest sampled queue (ties split uniformly)."""

    def __init__(self, num_states: int, d: int) -> None:
        super().__init__(
            DecisionRule.join_shortest(num_states, d), name=f"JSQ({d})"
        )
        self.num_states = num_states
        self.d = d


class RandomPolicy(ConstantRulePolicy):
    """RND: route uniformly among the ``d`` sampled queues."""

    def __init__(self, num_states: int, d: int) -> None:
        super().__init__(DecisionRule.uniform(num_states, d), name="RND")
        self.num_states = num_states
        self.d = d


class ThresholdPolicy(ConstantRulePolicy):
    """JSQ below a fill threshold, uniform above it.

    ``threshold = num_states`` recovers JSQ(d); ``threshold = 0``
    recovers RND.
    """

    def __init__(self, num_states: int, d: int, threshold: int) -> None:
        if not 0 <= threshold <= num_states:
            raise ValueError(
                f"threshold must lie in [0, {num_states}], got {threshold}"
            )
        super().__init__(
            DecisionRule.threshold(num_states, d, threshold),
            name=f"THR({threshold})",
        )
        self.num_states = num_states
        self.d = d
        self.threshold = threshold
