"""Upper-level load-balancing policies ``π̃ : P(Z) × Λ → H``.

All policies — the static baselines JSQ(d)/RND/SED(d), constant rules
found by direct optimization, and the learned neural MFC policy — share
one interface (:class:`repro.policies.base.UpperLevelPolicy`): given the
(empirical or limiting) queue-state distribution and the current arrival
mode they emit a lower-level decision rule ``h``. The same object can
therefore drive both the mean-field MDP and the finite ``N, M`` system
(Algorithm 1 / Figure 2 of the paper).
"""

from repro.policies.base import UpperLevelPolicy
from repro.policies.static import (
    ConstantRulePolicy,
    JoinShortestQueuePolicy,
    RandomPolicy,
    ThresholdPolicy,
)
from repro.policies.learned import NeuralPolicy

__all__ = [
    "UpperLevelPolicy",
    "ConstantRulePolicy",
    "JoinShortestQueuePolicy",
    "RandomPolicy",
    "ThresholdPolicy",
    "NeuralPolicy",
]
