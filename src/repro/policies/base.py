"""Common interface for upper-level policies (paper Figure 2).

An upper-level policy maps the observed queue-state distribution (the
mean field ``ν_t`` in the limit model, or the empirical distribution
``H^M_t`` in the finite system) and the current arrival mode to a
lower-level decision rule ``h_t``. Stochastic upper-level policies (the
PPO policy explores over ``P(H)``) consume the supplied generator;
deterministic ones ignore it.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.meanfield.decision_rule import DecisionRule

__all__ = ["UpperLevelPolicy"]


class UpperLevelPolicy(abc.ABC):
    """Abstract upper-level policy ``π̃(ν, λ) = h``."""

    @abc.abstractmethod
    def decision_rule(
        self,
        nu: np.ndarray,
        lam_mode: int,
        rng: np.random.Generator | None = None,
    ) -> DecisionRule:
        """Return the decision rule for state distribution ``nu`` and
        arrival mode ``lam_mode``."""

    def decision_rules_batch(
        self,
        nus: np.ndarray,
        lam_modes: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> list[DecisionRule]:
        """Rules for a batch of replica states (``nus`` is ``(E, S)``,
        ``lam_modes`` is ``(E,)``).

        The default queries :meth:`decision_rule` per replica; policies
        with a batchable forward pass (e.g.
        :class:`repro.policies.learned.NeuralPolicy`) override this to
        answer all replicas at once — the fast path used by the batched
        environments and the vectorized rollout collector.
        """
        nus = np.asarray(nus)
        lam_modes = np.asarray(lam_modes)
        if nus.ndim != 2 or lam_modes.shape != (nus.shape[0],):
            raise ValueError(
                "nus must be (E, S) with one lam_mode per replica, got "
                f"{nus.shape} and {lam_modes.shape}"
            )
        return [
            self.decision_rule(nus[i], int(lam_modes[i]), rng)
            for i in range(nus.shape[0])
        ]

    @property
    def name(self) -> str:
        """Short identifier used in experiment tables."""
        return type(self).__name__

    def is_stationary(self) -> bool:
        """True if the emitted rule ignores ``(ν, λ)`` (open-loop rule)."""
        return False
