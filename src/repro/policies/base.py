"""Common interface for upper-level policies (paper Figure 2).

An upper-level policy maps the observed queue-state distribution (the
mean field ``ν_t`` in the limit model, or the empirical distribution
``H^M_t`` in the finite system) and the current arrival mode to a
lower-level decision rule ``h_t``. Stochastic upper-level policies (the
PPO policy explores over ``P(H)``) consume the supplied generator;
deterministic ones ignore it.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.meanfield.decision_rule import DecisionRule

__all__ = ["UpperLevelPolicy"]


class UpperLevelPolicy(abc.ABC):
    """Abstract upper-level policy ``π̃(ν, λ) = h``."""

    @abc.abstractmethod
    def decision_rule(
        self,
        nu: np.ndarray,
        lam_mode: int,
        rng: np.random.Generator | None = None,
    ) -> DecisionRule:
        """Return the decision rule for state distribution ``nu`` and
        arrival mode ``lam_mode``."""

    @property
    def name(self) -> str:
        """Short identifier used in experiment tables."""
        return type(self).__name__

    def is_stationary(self) -> bool:
        """True if the emitted rule ignores ``(ν, λ)`` (open-loop rule)."""
        return False
