"""Learned neural MFC policy (the paper's "MF" policy).

Wraps the trained Gaussian policy network: given the (empirical or
limiting) queue-state distribution and the arrival mode, the network's
*mean* action (evaluation is deterministic, matching RLlib's
``explore=False``) is mapped through the manual normalization of
:meth:`repro.meanfield.decision_rule.DecisionRule.from_raw` into the
epoch's decision rule. The same object drives the MFC MDP and the finite
``N, M`` system (Figure 2 / Algorithm 1).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.policies.base import UpperLevelPolicy
from repro.rl.nn import GaussianPolicyNetwork
from repro.utils.serialization import load_npz_checkpoint, save_npz_checkpoint

__all__ = ["NeuralPolicy"]


class NeuralPolicy(UpperLevelPolicy):
    """Upper-level policy backed by a trained Gaussian network.

    Parameters
    ----------
    network:
        Trained :class:`repro.rl.nn.GaussianPolicyNetwork` whose input is
        ``[ν, one_hot(λ mode)]`` and whose output parameterizes the raw
        decision-rule table.
    num_states, d, num_modes:
        Rule/observation geometry; must match the network dimensions.
    deterministic:
        Use the Gaussian mean (default) or sample the raw action.
    """

    def __init__(
        self,
        network: GaussianPolicyNetwork,
        num_states: int,
        d: int,
        num_modes: int = 2,
        deterministic: bool = True,
        label: str = "MF",
    ) -> None:
        expected_obs = num_states + num_modes
        expected_act = num_states**d * d
        if network.obs_dim != expected_obs:
            raise ValueError(
                f"network obs_dim {network.obs_dim} != S + modes = {expected_obs}"
            )
        if network.action_dim != expected_act:
            raise ValueError(
                f"network action_dim {network.action_dim} != S^d*d = {expected_act}"
            )
        self.network = network
        self.num_states = num_states
        self.d = d
        self.num_modes = num_modes
        self.deterministic = deterministic
        self._label = label

    @property
    def name(self) -> str:
        return self._label

    def observation(self, nu: np.ndarray, lam_mode: int) -> np.ndarray:
        nu = np.asarray(nu, dtype=np.float64)
        if nu.shape != (self.num_states,):
            raise ValueError(f"nu must have shape ({self.num_states},)")
        if not 0 <= lam_mode < self.num_modes:
            raise ValueError(f"lam_mode {lam_mode} out of range")
        one_hot = np.zeros(self.num_modes)
        one_hot[lam_mode] = 1.0
        return np.concatenate([nu, one_hot])

    def decision_rule(
        self,
        nu: np.ndarray,
        lam_mode: int,
        rng: np.random.Generator | None = None,
    ) -> DecisionRule:
        obs = self.observation(nu, lam_mode)
        mu, log_std, _ = self.network.forward(obs[None, :])
        if self.deterministic or rng is None:
            raw = mu[0]
        else:
            raw = mu[0] + np.exp(log_std[0]) * rng.standard_normal(mu.shape[1])
        return DecisionRule.from_raw(raw, self.num_states, self.d)

    def decision_rules_batch(
        self,
        nus: np.ndarray,
        lam_modes: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> list[DecisionRule]:
        """One network forward pass for all ``E`` replica states."""
        nus = np.asarray(nus, dtype=np.float64)
        lam_modes = np.asarray(lam_modes)
        if nus.ndim != 2 or nus.shape[1] != self.num_states:
            raise ValueError(f"nus must have shape (E, {self.num_states})")
        if lam_modes.shape != (nus.shape[0],):
            raise ValueError("need one lam_mode per replica")
        one_hot = np.zeros((nus.shape[0], self.num_modes))
        one_hot[np.arange(nus.shape[0]), lam_modes] = 1.0
        obs = np.concatenate([nus, one_hot], axis=1)
        mu, log_std, _ = self.network.forward(obs)
        if self.deterministic or rng is None:
            raw = mu
        else:
            raw = mu + np.exp(log_std) * rng.standard_normal(mu.shape)
        return [
            DecisionRule.from_raw(row, self.num_states, self.d) for row in raw
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path, extra_meta: dict | None = None) -> Path:
        arrays = {f"policy/{k}": v for k, v in self.network.state_dict().items()}
        meta = {
            "num_states": self.num_states,
            "d": self.d,
            "num_modes": self.num_modes,
            "hidden_sizes": list(self.network.trunk.hidden_sizes),
            "label": self._label,
        }
        if extra_meta:
            meta.update(extra_meta)
        return save_npz_checkpoint(path, arrays, meta)

    @classmethod
    def load(cls, path: str | Path, deterministic: bool = True) -> "NeuralPolicy":
        arrays, meta = load_npz_checkpoint(path)
        required = {"num_states", "d", "num_modes", "hidden_sizes"}
        missing = required - set(meta)
        if missing:
            raise ValueError(f"checkpoint missing metadata: {sorted(missing)}")
        num_states = int(meta["num_states"])
        d = int(meta["d"])
        num_modes = int(meta["num_modes"])
        network = GaussianPolicyNetwork(
            obs_dim=num_states + num_modes,
            action_dim=num_states**d * d,
            hidden_sizes=tuple(int(h) for h in meta["hidden_sizes"]),
        )
        state = {
            k[len("policy/") :]: v
            for k, v in arrays.items()
            if k.startswith("policy/")
        }
        network.load_state_dict(state)
        return cls(
            network,
            num_states=num_states,
            d=d,
            num_modes=num_modes,
            deterministic=deterministic,
            label=str(meta.get("label", "MF")),
        )
