"""Learned neural MFC policy (the paper's "MF" policy).

Wraps the trained Gaussian policy network: given the (empirical or
limiting) queue-state distribution and the arrival mode, the network's
*mean* action (evaluation is deterministic, matching RLlib's
``explore=False``) is mapped through the manual normalization of
:meth:`repro.meanfield.decision_rule.DecisionRule.from_raw` into the
epoch's decision rule. The same object drives the MFC MDP and the finite
``N, M`` system (Figure 2 / Algorithm 1).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.features import ObservationFeatures
from repro.policies.base import UpperLevelPolicy
from repro.rl.nn import GaussianPolicyNetwork
from repro.utils.serialization import load_npz_checkpoint, save_npz_checkpoint

__all__ = ["NeuralPolicy"]


class NeuralPolicy(UpperLevelPolicy):
    """Upper-level policy backed by a trained Gaussian network.

    Parameters
    ----------
    network:
        Trained :class:`repro.rl.nn.GaussianPolicyNetwork` whose input is
        ``[ν, one_hot(λ mode)]`` — plus the optional context features of
        :class:`repro.meanfield.features.ObservationFeatures` — and whose
        output parameterizes the raw decision-rule table.
    num_states, d, num_modes:
        Rule/observation geometry; must match the network dimensions.
    deterministic:
        Use the Gaussian mean (default) or sample the raw action.
    features:
        Context features the network was trained with (default: none,
        the paper's input). Occupancy is recomputed from the queried
        law; age features use the frozen ``age_context`` unless the
        caller supplies live per-replica contexts (``features.live_age``
        policies queried through delay-aware plumbing).
    age_context:
        Frozen ``(mean age / K, stale fraction)`` of the deployment
        delay regime (see :func:`repro.meanfield.features.age_context`).
        Required iff ``features.age`` is set; persisted in checkpoints.
    """

    def __init__(
        self,
        network: GaussianPolicyNetwork,
        num_states: int,
        d: int,
        num_modes: int = 2,
        deterministic: bool = True,
        label: str = "MF",
        features: ObservationFeatures | None = None,
        age_context: tuple[float, float] | None = None,
    ) -> None:
        self.features = features if features is not None else ObservationFeatures()
        if self.features.age:
            if age_context is None:
                raise ValueError(
                    "features.age requires an age_context (mean age, "
                    "stale fraction) for the deployment regime"
                )
            self.age_context: tuple[float, float] | None = (
                float(age_context[0]),
                float(age_context[1]),
            )
        else:
            self.age_context = None
        expected_obs = num_states + num_modes + self.features.extra_dims
        expected_act = num_states**d * d
        if network.obs_dim != expected_obs:
            raise ValueError(
                f"network obs_dim {network.obs_dim} != S + modes + features "
                f"= {expected_obs}"
            )
        if network.action_dim != expected_act:
            raise ValueError(
                f"network action_dim {network.action_dim} != S^d*d = {expected_act}"
            )
        self.network = network
        self.num_states = num_states
        self.d = d
        self.num_modes = num_modes
        self.deterministic = deterministic
        self._label = label

    @property
    def name(self) -> str:
        return self._label

    def observation(self, nu: np.ndarray, lam_mode: int) -> np.ndarray:
        nu = np.asarray(nu, dtype=np.float64)
        if nu.shape != (self.num_states,):
            raise ValueError(f"nu must have shape ({self.num_states},)")
        if not 0 <= lam_mode < self.num_modes:
            raise ValueError(f"lam_mode {lam_mode} out of range")
        one_hot = np.zeros(self.num_modes)
        one_hot[lam_mode] = 1.0
        base = np.concatenate([nu, one_hot])
        extra = self.features.vector(nu, age=self.age_context)
        if extra.size == 0:
            return base
        return np.concatenate([base, extra])

    def decision_rule(
        self,
        nu: np.ndarray,
        lam_mode: int,
        rng: np.random.Generator | None = None,
    ) -> DecisionRule:
        obs = self.observation(nu, lam_mode)
        mu, log_std, _ = self.network.forward(obs[None, :])
        if self.deterministic or rng is None:
            raw = mu[0]
        else:
            raw = mu[0] + np.exp(log_std[0]) * rng.standard_normal(mu.shape[1])
        return DecisionRule.from_raw(raw, self.num_states, self.d)

    def decision_rules_batch(
        self,
        nus: np.ndarray,
        lam_modes: np.ndarray,
        rng: np.random.Generator | None = None,
        age_contexts: np.ndarray | None = None,
    ) -> list[DecisionRule]:
        """One network forward pass for all ``E`` replica states.

        ``age_contexts`` (shape ``(E, 2)``) is the optional live-age
        channel: per-replica ``(mean age / K, stale fraction)`` of the
        delay regime each replica is in *right now*, supplied by
        delay-aware environments for ``features.live_age`` policies.
        Without it the frozen ``age_context`` is used for every row.
        """
        nus = np.asarray(nus, dtype=np.float64)
        lam_modes = np.asarray(lam_modes)
        if nus.ndim != 2 or nus.shape[1] != self.num_states:
            raise ValueError(f"nus must have shape (E, {self.num_states})")
        if lam_modes.shape != (nus.shape[0],):
            raise ValueError("need one lam_mode per replica")
        if age_contexts is not None:
            if not self.features.age:
                raise ValueError(
                    "age_contexts given but this policy has no age features"
                )
            age_contexts = np.asarray(age_contexts, dtype=np.float64)
            if age_contexts.shape != (nus.shape[0], 2):
                raise ValueError(
                    f"age_contexts must have shape ({nus.shape[0]}, 2)"
                )
        one_hot = np.zeros((nus.shape[0], self.num_modes))
        one_hot[np.arange(nus.shape[0]), lam_modes] = 1.0
        obs = np.concatenate([nus, one_hot], axis=1)
        if self.features.extra_dims:
            extra = np.stack(
                [
                    self.features.vector(
                        row,
                        age=(
                            tuple(age_contexts[i])
                            if age_contexts is not None
                            else self.age_context
                        ),
                    )
                    for i, row in enumerate(nus)
                ]
            )
            obs = np.concatenate([obs, extra], axis=1)
        mu, log_std, _ = self.network.forward(obs)
        if self.deterministic or rng is None:
            raw = mu
        else:
            raw = mu + np.exp(log_std) * rng.standard_normal(mu.shape)
        return [
            DecisionRule.from_raw(row, self.num_states, self.d) for row in raw
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path, extra_meta: dict | None = None) -> Path:
        arrays = {f"policy/{k}": v for k, v in self.network.state_dict().items()}
        meta = {
            "num_states": self.num_states,
            "d": self.d,
            "num_modes": self.num_modes,
            "hidden_sizes": list(self.network.trunk.hidden_sizes),
            "label": self._label,
            "features": self.features.to_dict(),
            "age_context": (
                list(self.age_context) if self.age_context is not None else None
            ),
        }
        if extra_meta:
            meta.update(extra_meta)
        return save_npz_checkpoint(path, arrays, meta)

    @classmethod
    def load(cls, path: str | Path, deterministic: bool = True) -> "NeuralPolicy":
        arrays, meta = load_npz_checkpoint(path)
        required = {"num_states", "d", "num_modes", "hidden_sizes"}
        missing = required - set(meta)
        if missing:
            raise ValueError(f"checkpoint missing metadata: {sorted(missing)}")
        num_states = int(meta["num_states"])
        d = int(meta["d"])
        num_modes = int(meta["num_modes"])
        # Pre-campaign checkpoints carry no feature metadata: default off.
        features = ObservationFeatures.from_dict(meta.get("features"))
        raw_context = meta.get("age_context")
        age_context = (
            (float(raw_context[0]), float(raw_context[1]))
            if raw_context is not None
            else None
        )
        network = GaussianPolicyNetwork(
            obs_dim=num_states + num_modes + features.extra_dims,
            action_dim=num_states**d * d,
            hidden_sizes=tuple(int(h) for h in meta["hidden_sizes"]),
        )
        state = {
            k[len("policy/") :]: v
            for k, v in arrays.items()
            if k.startswith("policy/")
        }
        network.load_state_dict(state)
        return cls(
            network,
            num_states=num_states,
            d=d,
            num_modes=num_modes,
            deterministic=deterministic,
            label=str(meta.get("label", "MF")),
            features=features,
            age_context=age_context,
        )
