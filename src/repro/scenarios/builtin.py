"""The built-in scenario catalogue.

Eighteen workloads, registered on import:

* ``paper-baseline`` — the paper's own Figure-5 setting: homogeneous
  servers, two-level Markov-modulated arrivals, MF vs JSQ(2) vs RND.
* ``heterogeneous-sed`` — servers in two speed classes (paper §5 /
  Goldsztajn et al., arXiv:2012.10142): SED(d) vs class-blind JSQ(d) vs
  RND on the ``Z × C`` observed states, simulated by the batched
  heterogeneous environment.
* ``bursty-mmpp`` — an aggressive three-level Markov-modulated arrival
  process whose burst mode transiently overloads the system.
* ``overload`` — sustained ``ρ > 1`` stress: drops are unavoidable and
  the question is how gracefully each policy degrades.
* ``ring-local`` / ``torus-local`` / ``random-regular`` — sparse
  dispatcher→server topologies (arXiv:2312.12973): clients only sample
  queues from their node's neighborhood, simulated by
  :class:`repro.queueing.graph_env.BatchedGraphFiniteEnv`.
* ``sparse-heterogeneous`` — locality *and* two server speed classes on
  a random regular graph (the heterogeneous-capacity variant of
  arXiv:2012.10142 on the sparse access structure).
* ``diurnal-stream`` / ``flash-crowd`` — non-stationary arrival
  profiles from :mod:`repro.queueing.workloads` (sinusoidal day/night
  cycle; baseline traffic with a transiently overloading spike), built
  for long streaming horizons (``cli stream``) but sweepable like any
  other scenario.
* ``adaptive-diurnal`` / ``adaptive-flash-crowd`` — closed-loop control
  workloads (:mod:`repro.serving.control`): arrival rates drift across
  the JSQ/RND regime boundary at a delay pinned near the crossover, and
  each scenario registers a controller suite (``rate`` — CI-hysteresis
  estimator per arXiv:2012.10142, ``oracle`` — knows the profile,
  ``static`` — never switches) for ``cli stream --controller`` and the
  regret evaluation (:mod:`repro.serving.regret`).
* ``leaderboard`` — the training-campaign leaderboard: the natively
  trained per-regime checkpoints (``MF-regime``, age-conditioned; see
  :mod:`repro.experiments.campaign`) against the transplanted paper
  checkpoints (``MF``) and the static baselines under matched seeds on
  the stochastic-delay environment. SED is omitted because the fleet is
  homogeneous (SED(d) coincides with JSQ(d) there);
  ``benchmarks/bench_regime_leaderboard.py`` asserts the ranking.
* ``stochastic-delay`` — per-dispatcher random observation delays: the
  monitoring plane switches between *synced* and *degraded* regimes
  (:class:`repro.queueing.delays.MarkovModulatedDelay`), generalizing
  the paper's fixed ``Δt``; simulated by
  :class:`repro.queueing.delayed_env.BatchedDelayedFiniteEnv`.
* ``outage-recovery`` / ``capacity-flap`` / ``link-failure-local`` —
  degradation events (:mod:`repro.queueing.chaos`): a slice of the
  fleet fails and later restarts (queue-loss semantics, dispatchers
  not told — stale-information herding), service rates flap through
  two half-capacity windows, and on the ring topology all links to a
  block of queues fail and are rerouted around (arXiv:2312.12973's
  local topologies under partial link loss). The paper's Fig-6
  assumption-violation experiment generalized from "synced ages" to
  "the world changed under you".
* ``theorem1-gap`` — the hybrid finite/mean-field fleet
  (:class:`repro.queueing.hybrid_env.BatchedHybridFleetEnv`): a tracked
  subsystem of ``M/10`` queues evolves exactly while the rest of the
  fleet is closed by the mean-field propagator, so the Theorem-1
  finite-vs-limit gap is measurable at fleet sizes (``--queues`` up to
  10^6) where the brute-force batched environment cannot go. Clients
  scale as ``N = 10 M`` (not ``M^2``) to keep million-queue sweeps in
  memory; ``benchmarks/bench_hybrid_fleet.py`` drives the gap curve.

Default grids are bench scale (a laptop regenerates any scenario in
minutes); pass ``--queues`` / ``--runs`` / ``--delta-ts`` for
paper-scale sweeps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.config import SystemConfig, paper_system_config
from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.delayed_env import BatchedDelayedFiniteEnv
from repro.queueing.delays import MarkovModulatedDelay
from repro.queueing.graph_env import BatchedGraphFiniteEnv
from repro.queueing.hybrid_env import BatchedHybridFleetEnv
from repro.queueing.heterogeneous import (
    BatchedHeterogeneousFiniteEnv,
    ServerClassSpec,
    sed_policy_suite,
)
from repro.queueing.topology import TopologySpec, near_square_factors
from repro.queueing.workloads import DiurnalRate, FlashCrowdRate
from repro.scenarios.registry import ScenarioSpec, register_scenario

if TYPE_CHECKING:
    from repro.policies.base import UpperLevelPolicy

__all__ = [
    "HETEROGENEOUS_SPEC",
    "RING_RADIUS",
    "TORUS_RADIUS",
    "RANDOM_REGULAR_DEGREE",
    "TOPOLOGY_SEED",
    "DIURNAL_PERIOD",
    "ADAPTIVE_DELTA_T",
    "ADAPTIVE_SWITCH_RATE",
    "ADAPTIVE_DIURNAL_PERIOD",
    "ADAPTIVE_DECISION_INTERVAL",
    "ADAPTIVE_ESTIMATION_WINDOWS",
    "ADAPTIVE_MIN_DWELL",
    "ADAPTIVE_CONFIDENCE",
    "adaptive_load_bands",
    "adaptive_diurnal_arrival_process",
    "adaptive_flash_crowd_arrival_process",
    "bursty_arrival_process",
    "diurnal_arrival_process",
    "flash_crowd_arrival_process",
    "stochastic_delay_model",
    "OUTAGE_FRACTION",
    "OUTAGE_START_TIME",
    "OUTAGE_RESTART_TIME",
    "FLAP_FACTOR",
    "FLAP_FRACTION",
    "FLAP_WINDOWS",
    "LINK_FAIL_FRACTION",
    "LINK_FAIL_START_TIME",
    "LINK_FAIL_RESTORE_TIME",
    "outage_recovery_schedule",
    "capacity_flap_schedule",
    "link_failure_schedule",
]

_DEFAULT_DELTA_TS = (1.0, 3.0, 5.0, 7.0, 10.0)

#: Two server speed classes, half the fleet each; mean service rate 1.25.
HETEROGENEOUS_SPEC = ServerClassSpec(
    service_rates=(0.5, 2.0), fractions=(0.5, 0.5)
)


def bursty_arrival_process() -> MarkovModulatedRate:
    """Three-level MMPP with a transiently overloading burst mode.

    Levels ``(1.3, 0.8, 0.3)`` with a birth-death modulating chain whose
    stationary distribution is ``(1/4, 1/2, 1/4)``: long-run mean rate
    0.8 (stable), but the burst mode pushes instantaneous ``ρ`` to 1.3.
    """
    return MarkovModulatedRate(
        levels=(1.3, 0.8, 0.3),
        transition_matrix=(
            (0.5, 0.5, 0.0),
            (0.25, 0.5, 0.25),
            (0.0, 0.5, 0.5),
        ),
    )


def _paper_policies(config: SystemConfig) -> "dict[str, UpperLevelPolicy]":
    from repro.experiments.pretrained import get_mf_policy
    from repro.experiments.runner import policy_suite

    mf_policy, _source = get_mf_policy(config.delta_t)
    return policy_suite(config, mf_policy=mf_policy)


def _static_policies(config: SystemConfig) -> "dict[str, UpperLevelPolicy]":
    """JSQ(d) / THR / RND — the suites for non-paper arrival processes.

    The packaged MF checkpoints were trained against the paper's
    two-level arrival chain (the policy network one-hot encodes two
    modes), so scenarios that change the arrival process compare the
    static baselines plus the hand-crafted threshold interpolation.
    """
    from repro.experiments.runner import policy_suite
    from repro.policies.static import ThresholdPolicy

    suite = policy_suite(config)
    threshold = max(1, config.num_queue_states // 2)
    thr = ThresholdPolicy(config.num_queue_states, config.d, threshold)
    return {**suite, thr.name: thr}


def _het_policies(config: SystemConfig) -> "dict[str, UpperLevelPolicy]":
    return sed_policy_suite(
        HETEROGENEOUS_SPEC, config.buffer_size, config.d
    )


def _het_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {
        "spec": HETEROGENEOUS_SPEC,
        "per_packet_randomization": True,
    }


def _bursty_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {
        "arrival_process": bursty_arrival_process(),
        "per_packet_randomization": True,
    }


def _paper_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {"per_packet_randomization": True}


#: Sparse-topology knobs shared by the graph scenarios. Fixed here so a
#: scenario name always denotes the same access graph at a given M.
RING_RADIUS = 2  # degree 5
TORUS_RADIUS = 1  # Moore neighborhood, degree 9
RANDOM_REGULAR_DEGREE = 4
TOPOLOGY_SEED = 0  # graph draw is part of the scenario identity


def _ring_env_kwargs(config: SystemConfig) -> dict[str, object]:
    # Clamp the radius so small --queues overrides stay valid (the
    # neighborhood must not wrap past the whole cycle).
    radius = min(RING_RADIUS, (config.num_queues - 1) // 2)
    return {
        "topology": TopologySpec.ring(config.num_queues, radius=radius),
        "per_packet_randomization": True,
    }


def _torus_env_kwargs(config: SystemConfig) -> dict[str, object]:
    # Most square rows x cols factorization of the (possibly overridden)
    # queue count, with per-axis radii clamped to each grid side so
    # --queues works for primes and narrow factorizations too (a 2 x 5
    # grid keeps its long-axis neighborhood instead of degenerating).
    rows, cols = near_square_factors(config.num_queues)
    radius = (
        min(TORUS_RADIUS, (rows - 1) // 2),
        min(TORUS_RADIUS, (cols - 1) // 2),
    )
    return {
        "topology": TopologySpec.torus(rows, cols, radius=radius),
        "per_packet_randomization": True,
    }


def _random_regular_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {
        "topology": TopologySpec.random_regular(
            config.num_queues,
            degree=min(RANDOM_REGULAR_DEGREE, config.num_queues),
            seed=TOPOLOGY_SEED,
        ),
        "per_packet_randomization": True,
    }


def _sparse_het_env_kwargs(config: SystemConfig) -> dict[str, object]:
    classes = HETEROGENEOUS_SPEC.assign_classes(config.num_queues)
    return {
        "topology": TopologySpec.random_regular(
            config.num_queues,
            degree=min(RANDOM_REGULAR_DEGREE, config.num_queues),
            seed=TOPOLOGY_SEED,
        ),
        "service_rates": np.asarray(HETEROGENEOUS_SPEC.service_rates)[classes],
        "per_packet_randomization": True,
    }


register_scenario(
    ScenarioSpec(
        name="paper-baseline",
        description="Figure-5 setting: MF vs JSQ(2) vs RND, two-level MMPP",
        base_config=paper_system_config(num_queues=100),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_paper_policies,
        build_env_kwargs=_paper_env_kwargs,
        tags=("paper",),
    )
)

register_scenario(
    ScenarioSpec(
        name="heterogeneous-sed",
        description="Two server speed classes: SED vs class-blind JSQ vs RND",
        # service_rate records the fleet mean (1.25) so the listed ρ is
        # truthful; the environment takes per-queue rates from the spec.
        base_config=paper_system_config(num_queues=100).with_updates(
            service_rate=HETEROGENEOUS_SPEC.mean_service_rate()
        ),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_het_policies,
        env_cls=BatchedHeterogeneousFiniteEnv,
        build_env_kwargs=_het_env_kwargs,
        tags=("heterogeneous", "related-work"),
    )
)

register_scenario(
    ScenarioSpec(
        name="bursty-mmpp",
        description="Aggressive 3-level MMPP bursts (transient overload)",
        base_config=paper_system_config(num_queues=100).with_updates(
            # Recorded for ρ bookkeeping only; the modulating chain is
            # replaced by bursty_arrival_process() at env construction.
            arrival_rate_high=1.3,
            arrival_rate_low=0.3,
            p_high_to_low=0.5,
            p_low_to_high=0.5,
        ),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_static_policies,
        build_env_kwargs=_bursty_env_kwargs,
        tags=("stress", "arrivals"),
    )
)

register_scenario(
    ScenarioSpec(
        name="overload",
        description="Sustained rho > 1 stress: graceful-degradation ranking",
        base_config=paper_system_config(num_queues=100).with_updates(
            arrival_rate_high=1.3,
            arrival_rate_low=1.05,
        ),
        delta_ts=(1.0, 3.0, 5.0, 10.0),
        num_runs=5,
        build_policies=_static_policies,
        build_env_kwargs=_paper_env_kwargs,
        tags=("stress",),
    )
)

register_scenario(
    ScenarioSpec(
        name="ring-local",
        description=f"Ring topology, radius {RING_RADIUS}: rack-local routing",
        base_config=paper_system_config(num_queues=100),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_static_policies,
        env_cls=BatchedGraphFiniteEnv,
        build_env_kwargs=_ring_env_kwargs,
        tags=("topology", "related-work"),
    )
)

register_scenario(
    ScenarioSpec(
        name="torus-local",
        description=(
            f"Torus grid, Moore radius {TORUS_RADIUS}: 2-D local routing"
        ),
        base_config=paper_system_config(num_queues=100),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_static_policies,
        env_cls=BatchedGraphFiniteEnv,
        build_env_kwargs=_torus_env_kwargs,
        tags=("topology", "related-work"),
    )
)

register_scenario(
    ScenarioSpec(
        name="random-regular",
        description=(
            f"Random {RANDOM_REGULAR_DEGREE}-regular access graph "
            "(seeded draw)"
        ),
        base_config=paper_system_config(num_queues=100),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_static_policies,
        env_cls=BatchedGraphFiniteEnv,
        build_env_kwargs=_random_regular_env_kwargs,
        tags=("topology", "related-work"),
    )
)

#: Streaming-workload knobs, fixed so the scenario names always denote
#: the same traffic shapes. Flash-crowd timing is in model *time*
#: units, not epochs: finite-sweep evaluation episodes cover ~500 time
#: units regardless of Δt (``resolved_eval_length``), so anchoring the
#: spike in time keeps it inside every sweep cell's horizon.
DIURNAL_PERIOD = 200  # epochs per simulated "day"
FLASH_SPIKE_TIME = 100.0  # ramp start, in time units
FLASH_RAMP_TIME = 10.0  # ramp duration, in time units
FLASH_PEAK_RATE = 1.5
FLASH_DECAY_PER_TIME = 0.9  # excess-over-baseline decay per time unit


def diurnal_arrival_process() -> DiurnalRate:
    """Sinusoidal day/night cycle: ρ swings 0.55–0.95 around 0.75."""
    return DiurnalRate(mean=0.75, amplitude=0.2, period=DIURNAL_PERIOD)


def flash_crowd_arrival_process(delta_t: float = 1.0) -> FlashCrowdRate:
    """Quiet baseline (ρ = 0.6) with one transiently overloading spike.

    The ramp starts at time ``FLASH_SPIKE_TIME``, reaches ρ = 1.5 over
    ``FLASH_RAMP_TIME`` time units and decays geometrically back to
    baseline — the drain dynamics after the crowd leaves are the
    interesting part. ``delta_t`` converts the time-anchored profile to
    epochs, so the same crowd hits at the same model time for every
    synchronization delay in a sweep.
    """
    if delta_t <= 0:
        raise ValueError(f"delta_t must be > 0, got {delta_t}")
    return FlashCrowdRate(
        base_rate=0.6,
        peak_rate=FLASH_PEAK_RATE,
        spike_epoch=max(1, round(FLASH_SPIKE_TIME / delta_t)),
        ramp_epochs=max(1, round(FLASH_RAMP_TIME / delta_t)),
        decay=FLASH_DECAY_PER_TIME**delta_t,
    )


def stochastic_delay_model() -> MarkovModulatedDelay:
    """Synced/degraded monitoring plane: age 0 normally, ages 0-3 while
    degraded (~1/6 of the time in the stationary regime)."""
    return MarkovModulatedDelay.synced_degraded(
        degraded_pmf=(0.2, 0.3, 0.3, 0.2), p_degrade=0.05, p_recover=0.25
    )


def _diurnal_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {
        "arrival_process": diurnal_arrival_process(),
        "per_packet_randomization": True,
    }


def _flash_crowd_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {
        "arrival_process": flash_crowd_arrival_process(config.delta_t),
        "per_packet_randomization": True,
    }


def _stochastic_delay_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {"delay_model": stochastic_delay_model()}


register_scenario(
    ScenarioSpec(
        name="diurnal-stream",
        description=(
            f"Sinusoidal diurnal arrivals (period {DIURNAL_PERIOD} epochs, "
            "rho 0.55-0.95)"
        ),
        # Rate fields record the sinusoid's envelope for ρ bookkeeping;
        # the chain is replaced by diurnal_arrival_process() at env
        # construction (as in bursty-mmpp).
        base_config=paper_system_config(num_queues=100).with_updates(
            arrival_rate_high=0.95,
            arrival_rate_low=0.55,
            p_high_to_low=0.5,
            p_low_to_high=0.5,
        ),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_static_policies,
        build_env_kwargs=_diurnal_env_kwargs,
        tags=("streaming", "arrivals"),
    )
)

register_scenario(
    ScenarioSpec(
        name="flash-crowd",
        description=(
            f"Flash crowd: rho 0.6 baseline, spike to {FLASH_PEAK_RATE:g} "
            f"at t={FLASH_SPIKE_TIME:g}"
        ),
        # Long-run load is the baseline; the spike profile is replayed
        # by flash_crowd_arrival_process() at env construction.
        base_config=paper_system_config(num_queues=100).with_updates(
            arrival_rate_high=0.6,
            arrival_rate_low=0.6,
        ),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_static_policies,
        build_env_kwargs=_flash_crowd_env_kwargs,
        tags=("streaming", "arrivals", "stress"),
    )
)

def _leaderboard_policies(config: SystemConfig) -> "dict[str, UpperLevelPolicy]":
    """Campaign checkpoints vs transplants vs static baselines.

    Both learned columns resolve through their registries (packaged
    checkpoint first, graceful fallback on a cold checkout — the bench
    reports the sources). SED is omitted: this fleet is homogeneous,
    where SED(d) coincides with JSQ(d).
    """
    from repro.experiments.campaign import get_regime_policy
    from repro.experiments.pretrained import get_mf_policy
    from repro.experiments.runner import policy_suite
    from repro.policies.static import ThresholdPolicy

    mf_policy, _source = get_mf_policy(config.delta_t)
    regime_policy, _source = get_regime_policy(config.delta_t)
    suite = policy_suite(config, mf_policy=mf_policy)
    threshold = max(1, config.num_queue_states // 2)
    thr = ThresholdPolicy(config.num_queue_states, config.d, threshold)
    return {"MF-regime": regime_policy, **suite, thr.name: thr}


register_scenario(
    ScenarioSpec(
        name="leaderboard",
        description=(
            "Campaign leaderboard: natively trained MF-regime checkpoints "
            "vs transplanted MF vs JSQ/RND/THR under stochastic delays"
        ),
        base_config=paper_system_config(num_queues=100),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_leaderboard_policies,
        env_cls=BatchedDelayedFiniteEnv,
        build_env_kwargs=_stochastic_delay_env_kwargs,
        tags=("paper", "delays", "learned"),
    )
)


register_scenario(
    ScenarioSpec(
        name="stochastic-delay",
        description=(
            "Markov-modulated observation delays: synced vs degraded "
            "monitoring (ages 0-3)"
        ),
        base_config=paper_system_config(num_queues=100),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_static_policies,
        env_cls=BatchedDelayedFiniteEnv,
        build_env_kwargs=_stochastic_delay_env_kwargs,
        tags=("streaming", "delays", "related-work"),
    )
)

# ---------------------------------------------------------------------------
# Closed-loop adaptive-control scenarios (repro.serving.control)
# ---------------------------------------------------------------------------
#: Knobs for the ``adaptive-*`` scenarios, fixed so the names always
#: denote the same control problem. The delay is pinned near the
#: JSQ/RND crossover (measured empirically at Δt = 6, M = 100 the
#: crossover load is λ* ≈ 1.2): below ``ADAPTIVE_SWITCH_RATE`` the
#: sampled-shortest-queue policy wins, above it herd behaviour under
#: stale observations makes uniform routing the better choice — so a
#: controller that tracks the drifting rate has something real to gain,
#: while misclassification *at* the boundary is second-order (the
#: policies are near-tied there).
ADAPTIVE_DELTA_T = 6.0  # the scenarios' single synchronization delay
ADAPTIVE_SWITCH_RATE = 1.15  # JSQ below, RND above (per-queue λ)
ADAPTIVE_DIURNAL_PERIOD = 120  # epochs per simulated "day"
#: The cycle is centered *on* the crossover (envelope 0.85 .. 1.45):
#: drops occur in both half-cycles, so each static policy pays a real
#: price in the half it is wrong about — regimes where the system is
#: nearly idle would make every policy trivially near-optimal.
ADAPTIVE_DIURNAL_MEAN = 1.15
ADAPTIVE_DIURNAL_AMPLITUDE = 0.30
ADAPTIVE_FLASH_BASE = 0.6
ADAPTIVE_FLASH_PEAK = 1.6
ADAPTIVE_FLASH_SPIKE_TIME = 120.0  # ramp start, in time units
ADAPTIVE_FLASH_RAMP_TIME = 12.0  # ramp duration, in time units
ADAPTIVE_FLASH_DECAY_PER_TIME = 0.995  # slow drain: ~20 epochs overloaded
#: Rate-estimator hysteresis (arXiv:2012.10142): decide every 2 epochs,
#: pool the last 3 decision windows, require 2 decisions of dwell and a
#: 95% CI fully inside the target band before switching.
ADAPTIVE_DECISION_INTERVAL = 2
ADAPTIVE_ESTIMATION_WINDOWS = 3
ADAPTIVE_MIN_DWELL = 2
ADAPTIVE_CONFIDENCE = 1.96


def adaptive_load_bands(config: SystemConfig):
    """The scenarios' band table: JSQ(d) under the crossover, RND above."""
    import math

    from repro.serving.control import LoadBand

    return (
        LoadBand(f"JSQ({config.d})", 0.0, ADAPTIVE_SWITCH_RATE),
        LoadBand("RND", ADAPTIVE_SWITCH_RATE, math.inf),
    )


def adaptive_diurnal_arrival_process() -> DiurnalRate:
    """Day/night cycle crossing the JSQ/RND boundary twice per period."""
    return DiurnalRate(
        mean=ADAPTIVE_DIURNAL_MEAN,
        amplitude=ADAPTIVE_DIURNAL_AMPLITUDE,
        period=ADAPTIVE_DIURNAL_PERIOD,
    )


def adaptive_flash_crowd_arrival_process(
    delta_t: float = ADAPTIVE_DELTA_T,
) -> FlashCrowdRate:
    """Quiet JSQ-regime baseline with one slow-draining RND-regime spike."""
    if delta_t <= 0:
        raise ValueError(f"delta_t must be > 0, got {delta_t}")
    return FlashCrowdRate(
        base_rate=ADAPTIVE_FLASH_BASE,
        peak_rate=ADAPTIVE_FLASH_PEAK,
        spike_epoch=max(1, round(ADAPTIVE_FLASH_SPIKE_TIME / delta_t)),
        ramp_epochs=max(1, round(ADAPTIVE_FLASH_RAMP_TIME / delta_t)),
        decay=ADAPTIVE_FLASH_DECAY_PER_TIME**delta_t,
    )


def _adaptive_policies(config: SystemConfig) -> "dict[str, UpperLevelPolicy]":
    """JSQ(d) and RND only — exactly the band table's selectable regime
    policies, so 'best static' in the regret evaluation means the best
    fixed choice a controller could have frozen."""
    from repro.experiments.runner import policy_suite

    return policy_suite(config)


def _adaptive_diurnal_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {
        "arrival_process": adaptive_diurnal_arrival_process(),
        "per_packet_randomization": True,
    }


def _adaptive_flash_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {
        "arrival_process": adaptive_flash_crowd_arrival_process(
            config.delta_t
        ),
        "per_packet_randomization": True,
    }


def _adaptive_controllers(config: SystemConfig, profile):
    """The shared {rate, oracle, static} controller suite."""
    from repro.serving.control import (
        OracleController,
        RateEstimatingController,
        StaticController,
    )

    bands = adaptive_load_bands(config)
    return {
        "rate": RateEstimatingController(
            bands,
            confidence=ADAPTIVE_CONFIDENCE,
            estimation_windows=ADAPTIVE_ESTIMATION_WINDOWS,
            min_dwell=ADAPTIVE_MIN_DWELL,
            decision_interval=ADAPTIVE_DECISION_INTERVAL,
        ),
        "oracle": OracleController(
            profile, bands, decision_interval=ADAPTIVE_DECISION_INTERVAL
        ),
        "static": StaticController(),
    }


def _adaptive_diurnal_controllers(config: SystemConfig, policies):
    return _adaptive_controllers(config, adaptive_diurnal_arrival_process())


def _adaptive_flash_controllers(config: SystemConfig, policies):
    return _adaptive_controllers(
        config, adaptive_flash_crowd_arrival_process(config.delta_t)
    )


register_scenario(
    ScenarioSpec(
        name="adaptive-diurnal",
        description=(
            "Closed-loop control under a diurnal cycle crossing the "
            "JSQ/RND regime boundary (rate/oracle/static controllers)"
        ),
        # Rate fields record the sinusoid's envelope for ρ bookkeeping;
        # the chain is replaced by adaptive_diurnal_arrival_process()
        # at env construction.
        base_config=paper_system_config(num_queues=100).with_updates(
            arrival_rate_high=(
                ADAPTIVE_DIURNAL_MEAN + ADAPTIVE_DIURNAL_AMPLITUDE
            ),
            arrival_rate_low=(
                ADAPTIVE_DIURNAL_MEAN - ADAPTIVE_DIURNAL_AMPLITUDE
            ),
            p_high_to_low=0.5,
            p_low_to_high=0.5,
            delta_t=ADAPTIVE_DELTA_T,
        ),
        delta_ts=(ADAPTIVE_DELTA_T,),
        num_runs=5,
        build_policies=_adaptive_policies,
        build_env_kwargs=_adaptive_diurnal_env_kwargs,
        build_controllers=_adaptive_diurnal_controllers,
        tags=("streaming", "adaptive", "control"),
    )
)

register_scenario(
    ScenarioSpec(
        name="adaptive-flash-crowd",
        description=(
            "Closed-loop control through a slow-draining flash crowd "
            f"(rho {ADAPTIVE_FLASH_BASE:g} -> {ADAPTIVE_FLASH_PEAK:g}; "
            "rate/oracle/static controllers)"
        ),
        base_config=paper_system_config(num_queues=100).with_updates(
            arrival_rate_high=ADAPTIVE_FLASH_BASE,
            arrival_rate_low=ADAPTIVE_FLASH_BASE,
            delta_t=ADAPTIVE_DELTA_T,
        ),
        delta_ts=(ADAPTIVE_DELTA_T,),
        num_runs=5,
        build_policies=_adaptive_policies,
        build_env_kwargs=_adaptive_flash_env_kwargs,
        build_controllers=_adaptive_flash_controllers,
        tags=("streaming", "adaptive", "control", "stress"),
    )
)

# ---------------------------------------------------------------------------
# Chaos / degradation scenarios (repro.queueing.chaos)
# ---------------------------------------------------------------------------
#: Degradation knobs, fixed so the scenario names always denote the
#: same failure story. Event anchors are in model *time* units (like
#: the flash-crowd spike): the builders convert to epochs with the
#: sweep cell's Δt, so the outage hits at the same model time for
#: every synchronization delay — and well inside the ~500-time-unit
#: evaluation episodes (``resolved_eval_length``). Victim sets are
#: *fractions* of the fleet so ``--queues`` overrides stay valid.
OUTAGE_FRACTION = 0.1  # 10% of the fleet fails (queue-loss semantics)
OUTAGE_START_TIME = 150.0  # failure, in time units
OUTAGE_RESTART_TIME = 300.0  # restart (queues come back empty)
FLAP_FACTOR = 0.5  # service rates halve while a flap window is open
FLAP_FRACTION = 0.5  # ... on half the fleet
FLAP_WINDOWS = ((100.0, 200.0), (250.0, 350.0))  # two chained windows
LINK_FAIL_FRACTION = 0.1  # links to 10% of the queues are severed
LINK_FAIL_START_TIME = 150.0
LINK_FAIL_RESTORE_TIME = 300.0


def _time_to_epoch(t: float, delta_t: float, after: int = 0) -> int:
    """Epoch anchor for model time ``t``, strictly past ``after``."""
    if delta_t <= 0:
        raise ValueError(f"delta_t must be > 0, got {delta_t}")
    return max(after + 1, round(t / delta_t))


def outage_recovery_schedule(delta_t: float) -> "DegradationSchedule":
    """10% of the fleet fails at t=150 (jobs lost) and restarts at t=300.

    Queue-loss semantics on purpose: the restarted queues come back
    empty, and until then the dispatchers — who are not told — keep
    herding traffic into queues that read as empty. How much mass each
    policy blackholes is the scenario's ranking signal.
    """
    from repro.queueing.chaos import DegradationSchedule, ServerOutage

    start = _time_to_epoch(OUTAGE_START_TIME, delta_t)
    return DegradationSchedule(
        (
            ServerOutage(
                epoch=start,
                fraction=OUTAGE_FRACTION,
                restart_epoch=_time_to_epoch(
                    OUTAGE_RESTART_TIME, delta_t, after=start
                ),
                preserve_jobs=False,
            ),
        )
    )


def capacity_flap_schedule(delta_t: float) -> "DegradationSchedule":
    """Half the fleet serves at half rate through two chained windows.

    Two disjoint windows (not one) so the compounding path — degrade,
    recover, degrade again — is exercised; rates are rebuilt from the
    pristine base each epoch, so the second recovery is exact.
    """
    from repro.queueing.chaos import CapacityFlap, DegradationSchedule

    events = []
    for start_t, end_t in FLAP_WINDOWS:
        start = _time_to_epoch(start_t, delta_t)
        events.append(
            CapacityFlap(
                epoch=start,
                factor=FLAP_FACTOR,
                fraction=FLAP_FRACTION,
                end_epoch=_time_to_epoch(end_t, delta_t, after=start),
            )
        )
    return DegradationSchedule(tuple(events))


def link_failure_schedule(delta_t: float) -> "DegradationSchedule":
    """All links to 10% of the queues fail at t=150, restored at t=300.

    The queues stay up and drain their backlog; severed neighbor slots
    are re-pointed at the nearest surviving queues (degree preserved),
    so no mass is lost — the cost shows up as load concentration on
    the rerouted neighborhoods.
    """
    from repro.queueing.chaos import DegradationSchedule, LinkFailure

    start = _time_to_epoch(LINK_FAIL_START_TIME, delta_t)
    return DegradationSchedule(
        (
            LinkFailure(
                epoch=start,
                fraction=LINK_FAIL_FRACTION,
                restore_epoch=_time_to_epoch(
                    LINK_FAIL_RESTORE_TIME, delta_t, after=start
                ),
            ),
        )
    )


def _outage_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {
        "per_packet_randomization": True,
        "chaos": outage_recovery_schedule(config.delta_t),
    }


def _flap_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {
        "per_packet_randomization": True,
        "chaos": capacity_flap_schedule(config.delta_t),
    }


def _link_failure_env_kwargs(config: SystemConfig) -> dict[str, object]:
    kwargs = _ring_env_kwargs(config)
    kwargs["chaos"] = link_failure_schedule(config.delta_t)
    return kwargs


register_scenario(
    ScenarioSpec(
        name="outage-recovery",
        description=(
            f"{OUTAGE_FRACTION:.0%} of the fleet fails at "
            f"t={OUTAGE_START_TIME:g} (jobs lost, dispatchers not told) "
            f"and restarts at t={OUTAGE_RESTART_TIME:g}"
        ),
        base_config=paper_system_config(num_queues=100),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_static_policies,
        build_env_kwargs=_outage_env_kwargs,
        tags=("chaos", "stress"),
    )
)

register_scenario(
    ScenarioSpec(
        name="capacity-flap",
        description=(
            f"Service rates of {FLAP_FRACTION:.0%} of the fleet flap to "
            f"{FLAP_FACTOR:g}x through two chained degradation windows"
        ),
        base_config=paper_system_config(num_queues=100),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_static_policies,
        build_env_kwargs=_flap_env_kwargs,
        tags=("chaos", "stress"),
    )
)

register_scenario(
    ScenarioSpec(
        name="link-failure-local",
        description=(
            f"Ring topology: links to {LINK_FAIL_FRACTION:.0%} of the "
            f"queues fail at t={LINK_FAIL_START_TIME:g} and reroute to "
            "the nearest surviving neighbors"
        ),
        base_config=paper_system_config(num_queues=100),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_static_policies,
        env_cls=BatchedGraphFiniteEnv,
        build_env_kwargs=_link_failure_env_kwargs,
        tags=("chaos", "topology", "related-work"),
    )
)

#: Tracked-subsystem sizing for ``theorem1-gap``: one tracked queue per
#: ten fleet queues, floored at 1 so tiny ``--queues`` overrides stay
#: valid. Part of the scenario identity (it shapes the hybrid closure).
HYBRID_TRACKED_DIVISOR = 10


def _hybrid_num_tracked(num_queues: int) -> int:
    return max(1, num_queues // HYBRID_TRACKED_DIVISOR)


def _hybrid_env_kwargs(config: SystemConfig) -> dict[str, object]:
    return {
        "num_tracked": _hybrid_num_tracked(config.num_queues),
        "per_packet_randomization": True,
    }


register_scenario(
    ScenarioSpec(
        name="theorem1-gap",
        description=(
            "Hybrid finite/mean-field fleet: M/10 tracked queues + "
            "mean-field closure, for Theorem-1 gaps at M up to 10^6"
        ),
        base_config=paper_system_config(num_queues=100),
        delta_ts=(1.0, 5.0, 10.0),
        num_runs=5,
        build_policies=_static_policies,
        env_cls=BatchedHybridFleetEnv,
        build_env_kwargs=_hybrid_env_kwargs,
        # N = 10 M, not the default M^2: the hybrid env exists to reach
        # million-queue fleets, where quadratic client counts would
        # blow past memory in the client-sampling arrays.
        clients_of_m=lambda m: 10 * m,
        tags=("paper", "hybrid", "scale"),
    )
)

register_scenario(
    ScenarioSpec(
        name="sparse-heterogeneous",
        description=(
            "Random regular graph + two server speed classes "
            "(class-blind routing)"
        ),
        base_config=paper_system_config(num_queues=100).with_updates(
            service_rate=HETEROGENEOUS_SPEC.mean_service_rate()
        ),
        delta_ts=_DEFAULT_DELTA_TS,
        num_runs=5,
        build_policies=_static_policies,
        env_cls=BatchedGraphFiniteEnv,
        build_env_kwargs=_sparse_het_env_kwargs,
        tags=("topology", "heterogeneous", "related-work"),
    )
)
