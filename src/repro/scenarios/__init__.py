"""Scenario registry: named workloads for the sweep orchestrator.

Importing this package registers the built-in catalogue — the dense
workloads ``paper-baseline``, ``heterogeneous-sed``, ``bursty-mmpp``
and ``overload``, the sparse-topology workloads ``ring-local``,
``torus-local``, ``random-regular`` and ``sparse-heterogeneous``, the
streaming workloads ``diurnal-stream``, ``flash-crowd`` and
``stochastic-delay``, and the closed-loop control workloads
``adaptive-diurnal`` and ``adaptive-flash-crowd`` (see
:mod:`repro.scenarios.builtin`).
:func:`run_scenario` executes any registered name through the sharded
:class:`repro.experiments.parallel.SweepExecutor`, optionally backed by
the content-addressed shard store (``store=``); the ``stream`` CLI
subcommand (:mod:`repro.serving`) streams any of them over long
horizons instead. See ``docs/workloads.md`` for the catalogue and
``docs/scaling.md`` for worker guidance.
"""

from repro.scenarios import builtin as _builtin  # noqa: F401  (registers the catalogue)
from repro.scenarios.registry import (
    ScenarioSpec,
    available_scenarios,
    get_scenario,
    register_scenario,
    scenario_summaries,
)
from repro.scenarios.run import ScenarioSweepResult, run_scenario

__all__ = [
    "ScenarioSpec",
    "ScenarioSweepResult",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_summaries",
]
