"""Named, frozen scenario specifications for the experiment harness.

A *scenario* is everything the sweep orchestrator needs to evaluate one
workload: a base :class:`repro.config.SystemConfig`, a policy suite, the
environment class/kwargs, and default sweep grids. Registering a
scenario turns a workload into a name —
``python -m repro.experiments.cli scenario <name>`` — instead of a fork
of the figure runners, which is how the related-work directions
(heterogeneous servers, bursty arrivals, overload stress) plug into the
same sharded Monte-Carlo machinery as the paper's own Figures 4-6.

Specs are frozen dataclasses: a registered scenario never mutates, so a
name always denotes the same experiment. Mutable experiment inputs
(policy suites, environment kwargs such as arrival processes) are
produced by builder callables invoked fresh per sweep point, keeping the
spec itself immutable and cheap to import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.config import SystemConfig

if TYPE_CHECKING:
    from repro.policies.base import UpperLevelPolicy
    from repro.serving.control import Controller

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "scenario_summaries",
]

_REGISTRY: dict[str, "ScenarioSpec"] = {}


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload: config, policies, environment, default grids.

    Attributes
    ----------
    name:
        Registry key (kebab-case, e.g. ``"heterogeneous-sed"``).
    description:
        One-line summary shown by ``scenario list``.
    base_config:
        System parameters at the default scale; per-sweep-point configs
        are derived via :meth:`config_for`.
    delta_ts:
        Default synchronization-delay grid.
    num_runs:
        Default Monte-Carlo replicas per sweep point.
    build_policies:
        ``config -> {name: policy}`` builder for the comparison suite,
        invoked once per sweep point (the config carries that point's
        ``delta_t``).
    env_cls:
        Environment class handed to the runner (``None`` selects the
        standard batched finite-system environment).
    build_env_kwargs:
        Optional ``config -> kwargs`` builder for environment
        construction (server-class specs, arrival processes, ...).
    clients_of_m:
        ``M -> N`` rule applied when the queue count is overridden;
        defaults to the paper's ``N = M²``.
    build_controllers:
        Optional ``(config, policies) -> {name: controller}`` builder
        for the scenario's closed-loop controller suite
        (:mod:`repro.serving.control`), invoked fresh per stream;
        ``None`` means the scenario offers no controllers.
    max_batch_replicas:
        Replica chunk size for the batched backend (also the shard
        granularity of the parallel executor).
    tags:
        Free-form labels (``"paper"``, ``"stress"``, ...).
    """

    name: str
    description: str
    base_config: SystemConfig
    delta_ts: tuple[float, ...]
    num_runs: int
    build_policies: "Callable[[SystemConfig], dict[str, UpperLevelPolicy]]"
    env_cls: type | None = None
    build_env_kwargs: "Callable[[SystemConfig], dict] | None" = None
    clients_of_m: "Callable[[int], int] | None" = None
    build_controllers: (
        "Callable[[SystemConfig, dict[str, UpperLevelPolicy]],"
        " dict[str, Controller]] | None"
    ) = None
    max_batch_replicas: int = 64
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.delta_ts:
            raise ValueError("scenario needs a non-empty delta_t grid")
        if any(dt <= 0 for dt in self.delta_ts):
            raise ValueError("delta_ts must be positive")
        if self.num_runs < 1:
            raise ValueError("num_runs must be >= 1")
        if self.max_batch_replicas < 1:
            raise ValueError("max_batch_replicas must be >= 1")

    def config_for(
        self, delta_t: float, num_queues: int | None = None
    ) -> SystemConfig:
        """The sweep-point config: base config at ``delta_t``, optionally
        rescaled to ``num_queues`` with ``N`` following the client rule."""
        changes: dict = {"delta_t": float(delta_t)}
        if num_queues is not None:
            rule = self.clients_of_m or (lambda m: m * m)
            changes["num_queues"] = int(num_queues)
            changes["num_clients"] = int(rule(int(num_queues)))
        return self.base_config.with_updates(**changes)

    def env_kwargs_for(self, config: SystemConfig) -> dict:
        """Environment kwargs for one sweep point (fresh per call)."""
        if self.build_env_kwargs is None:
            return {}
        return dict(self.build_env_kwargs(config))


def register_scenario(
    spec: ScenarioSpec, overwrite: bool = False
) -> ScenarioSpec:
    """Add ``spec`` to the registry (rejecting silent redefinition)."""
    if not overwrite and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario; unknown names list the available ones."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown scenario {name!r}; available: {known}"
        ) from None


def available_scenarios() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def scenario_summaries() -> list[tuple[str, str, str, str]]:
    """``(name, ρ, grid, description)`` rows for the CLI listing."""
    rows = []
    for name in available_scenarios():
        spec = _REGISTRY[name]
        grid = (
            f"Δt∈{{{', '.join(f'{dt:g}' for dt in spec.delta_ts)}}}, "
            f"M={spec.base_config.num_queues}, "
            f"N={spec.base_config.num_clients}, n={spec.num_runs}"
        )
        rows.append(
            (name, f"{spec.base_config.offered_load:.2f}", grid, spec.description)
        )
    return rows
