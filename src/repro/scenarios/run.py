"""Run a registered scenario through the sharded sweep orchestrator.

:func:`run_scenario` expands a :class:`repro.scenarios.registry.ScenarioSpec`
into one :class:`repro.experiments.parallel.EvalRequest` per
``(Δt, policy)`` cell and executes the whole grid on a single
:class:`repro.experiments.parallel.SweepExecutor`, so every replica
chunk of every sweep point competes for the same worker pool — the
per-cell statistics are bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.execution import resolve_execution_context
from repro.experiments.parallel import EvalRequest, SweepExecutor
from repro.scenarios.registry import ScenarioSpec, get_scenario
from repro.utils.tables import format_table, series_to_csv

if TYPE_CHECKING:
    from repro.execution import ExecutionContext
    from repro.experiments.runner import MonteCarloResult
    from repro.queueing.chaos import DegradationSchedule
    from repro.store.store import ExperimentStore

__all__ = ["ScenarioSweepResult", "run_scenario"]


@dataclass
class ScenarioSweepResult:
    """One scenario sweep: drops per ``(Δt, policy)`` with 95% CIs."""

    scenario: str
    num_queues: int
    num_clients: int
    delta_ts: tuple[float, ...]
    results: "dict[str, list[MonteCarloResult]]"  # policy name -> per-Δt
    workers: int

    def mean_series(self, policy_name: str) -> np.ndarray:
        return np.asarray([r.mean_drops for r in self.results[policy_name]])

    def winner_at(self, delta_t: float) -> str:
        idx = self.delta_ts.index(delta_t)
        return min(
            self.results, key=lambda name: self.results[name][idx].mean_drops
        )

    def to_csv(self) -> str:
        headers = ["delta_t"]
        for name in self.results:
            headers += [f"{name}_mean", f"{name}_lo", f"{name}_hi"]
        rows = []
        for i, dt in enumerate(self.delta_ts):
            row: list[object] = [dt]
            for name in self.results:
                r = self.results[name][i]
                row += [r.mean_drops, r.interval.lower, r.interval.upper]
            rows.append(row)
        return series_to_csv(headers, rows)

    def format_table(self) -> str:
        headers = ["Δt", *self.results.keys(), "winner"]
        rows = []
        for i, dt in enumerate(self.delta_ts):
            row: list[object] = [dt]
            for name in self.results:
                r = self.results[name][i]
                row.append(f"{r.mean_drops:.3g}±{r.interval.half_width:.2g}")
            row.append(self.winner_at(dt))
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=(
                f"Scenario {self.scenario} — M={self.num_queues}, "
                f"N={self.num_clients}, total per-queue drops "
                f"(workers={self.workers})"
            ),
        )


def run_scenario(
    name: str,
    delta_ts: tuple[float, ...] | None = None,
    num_queues: int | None = None,
    num_runs: int | None = None,
    workers: int | None = None,
    seed: int = 0,
    store: "ExperimentStore | None" = None,
    sim_backend: str | None = None,
    context: "ExecutionContext | None" = None,
    chaos: "DegradationSchedule | None" = None,
) -> ScenarioSweepResult:
    """Evaluate one registered scenario over its delay grid.

    Parameters
    ----------
    name:
        Registered scenario name (see
        :func:`repro.scenarios.registry.available_scenarios`).
    delta_ts, num_queues, num_runs:
        Grid overrides; each defaults to the spec's frozen value
        (``num_queues`` rescales ``N`` through the spec's client rule).
    seed:
        Master seed of every sweep cell's replica streams.
    chaos:
        Optional :class:`repro.queueing.chaos.DegradationSchedule`
        injected into every sweep cell's environment (replacing any
        schedule the scenario itself embeds). The schedule enters the
        content-addressed shard keys through the environment kwargs, so
        chaos sweeps cache and resume like any other; it is validated
        against the scenario's environment before any cell runs.
    context:
        :class:`repro.execution.ExecutionContext` with the execution
        knobs — ``workers`` (process count of the shared
        :class:`SweepExecutor`; never changes the merged statistics),
        ``store`` (content-addressed shard cache, see
        :mod:`repro.store`: cells already computed by a previous run —
        or by an overlapping figure sweep — are merged from the store
        instead of simulated), ``sim_backend`` (epoch kernel for every
        cell; contract-preserving kernels never change the statistics)
        and ``max_batch_replicas`` (defaults to the spec's registered
        chunk size).
    workers, store, sim_backend:
        Deprecated individual forms of the same knobs; they keep
        working for one release behind a :class:`DeprecationWarning`.

    Raises
    ------
    KeyError
        If ``name`` is not registered (the message lists the catalogue).
    """
    ctx = resolve_execution_context(
        context, workers=workers, store=store, sim_backend=sim_backend
    )
    spec: ScenarioSpec = get_scenario(name)
    grid = tuple(delta_ts) if delta_ts else spec.delta_ts
    runs = int(num_runs) if num_runs is not None else spec.num_runs

    requests: list[EvalRequest] = []
    cells: list[tuple[float, str]] = []
    for dt in grid:
        config = spec.config_for(dt, num_queues=num_queues)
        policies = spec.build_policies(config)
        env_kwargs = spec.env_kwargs_for(config)
        if chaos is not None:
            # Fail fast, before the pool spins up: topology events need
            # the graph environment, and queue indices must fit M.
            chaos.validate_for(
                num_queues=config.num_queues,
                supports_topology="topology" in env_kwargs,
            )
            env_kwargs = {**env_kwargs, "chaos": chaos}
        for policy_name, policy in policies.items():
            requests.append(
                EvalRequest(
                    config=config,
                    policy=policy,
                    num_runs=runs,
                    num_epochs=config.resolved_eval_length(),
                    seed=seed,
                    backend="batched",
                    max_batch_replicas=ctx.resolved_max_batch_replicas(
                        spec.max_batch_replicas
                    ),
                    env_cls=spec.env_cls,
                    env_kwargs=env_kwargs,
                    sim_backend=ctx.sim_backend,
                )
            )
            cells.append((dt, policy_name))

    executor = SweepExecutor(context=ctx)
    merged = executor.run(requests)

    results: "dict[str, list[MonteCarloResult]]" = {}
    for (_dt, policy_name), result in zip(cells, merged):
        results.setdefault(policy_name, []).append(result)
    lengths = {name: len(series) for name, series in results.items()}
    if any(length != len(grid) for length in lengths.values()):
        raise RuntimeError(
            "policy suite changed across the delay grid: "
            f"{lengths} vs {len(grid)} sweep points"
        )

    reference = spec.config_for(grid[0], num_queues=num_queues)
    return ScenarioSweepResult(
        scenario=name,
        num_queues=reference.num_queues,
        num_clients=reference.num_clients,
        delta_ts=grid,
        results=results,
        workers=executor.workers,
    )
