"""repro — Learning Mean-Field Control for Delayed-Information Load Balancing.

A complete, self-contained reproduction of Tahir, Cui & Koeppl (ICPP
'22): the ``N``-client/``M``-queue delayed-information load-balancing
system, its mean-field control limit with exact discretization, baseline
policies (JSQ(d), RND, SED(d)), a from-scratch PPO stack, and the full
experiment harness regenerating every table and figure of the paper.

Quickstart
----------
>>> from repro import paper_system_config, MeanFieldEnv
>>> from repro.policies import JoinShortestQueuePolicy
>>> cfg = paper_system_config(delta_t=5.0, num_queues=100)
>>> env = MeanFieldEnv(cfg, horizon=100)
>>> jsq = JoinShortestQueuePolicy(cfg.num_queue_states, cfg.d)
>>> ret = env.rollout_return(jsq, seed=0)  # expected −drops over 100 epochs
"""

from repro.config import (
    PPOConfig,
    SystemConfig,
    paper_ppo_config,
    paper_system_config,
)
from repro.meanfield import (
    DecisionRule,
    MeanFieldEnv,
    epoch_update,
    per_state_arrival_rates,
)
from repro.queueing import (
    FiniteSystemEnv,
    InfiniteClientEnv,
    MarkovModulatedRate,
    run_episode,
)
from repro.policies import (
    ConstantRulePolicy,
    JoinShortestQueuePolicy,
    NeuralPolicy,
    RandomPolicy,
)

# Kept in sync with pyproject.toml; also salts the experiment-store
# cache keys (repro.store.keys.CODE_SALT), so bump it whenever a change
# alters the simulation random streams.
__version__ = "0.9.0"

__all__ = [
    "PPOConfig",
    "SystemConfig",
    "paper_ppo_config",
    "paper_system_config",
    "DecisionRule",
    "MeanFieldEnv",
    "epoch_update",
    "per_state_arrival_rates",
    "FiniteSystemEnv",
    "InfiniteClientEnv",
    "MarkovModulatedRate",
    "run_episode",
    "ConstantRulePolicy",
    "JoinShortestQueuePolicy",
    "NeuralPolicy",
    "RandomPolicy",
    "__version__",
]
