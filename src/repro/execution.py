"""One frozen bundle for the execution knobs threaded through the harness.

Every sweep/stream entry point used to take the same four keyword
arguments — ``workers`` (process count), ``store`` (the
content-addressed shard cache), ``sim_backend`` (the epoch kernel) and
``max_batch_replicas`` (the replica chunk size) — repeated through
:mod:`repro.experiments.runner`, the figure runners,
:mod:`repro.scenarios.run`, :mod:`repro.serving.engine` and the CLI.
:class:`ExecutionContext` consolidates them into one frozen dataclass,
and :func:`resolve_execution_context` is the single resolver every
entry point calls: pass ``context=ExecutionContext(...)`` going
forward; the legacy kwargs keep working for one release behind a
:class:`DeprecationWarning`.

None of these knobs ever changes a merged result — worker count, cache
hits and contract-preserving kernels are all bit-identity-preserving —
so the context is deliberately *not* part of any experiment-store
fingerprint.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.store.store import ExperimentStore

__all__ = ["ExecutionContext", "resolve_execution_context"]

#: One shared deprecation text so every entry point tells the same story.
_DEPRECATION = (
    "passing execution knobs ({names}) as individual keyword arguments is "
    "deprecated; pass context=ExecutionContext(...) instead (the legacy "
    "kwargs will be removed in a future release)"
)


@dataclass(frozen=True)
class ExecutionContext:
    """How to execute a sweep or stream (never *what* to compute).

    Attributes
    ----------
    workers:
        Process count (``1`` = in-process). Never changes merged
        statistics — replica chunking and seeding are worker-invariant.
    store:
        Optional :class:`repro.store.store.ExperimentStore`: previously
        computed shards are merged from the cache instead of simulated.
    sim_backend:
        Epoch kernel (``"numpy"``, ``"numba"``, ``"auto"``; see
        :mod:`repro.queueing.backends`).
    max_batch_replicas:
        Replica chunk size (also the shard granularity). ``None`` keeps
        the callee's default (``64``, or a scenario's registered value).
    claim:
        Multi-node mode: claim each pending shard through the store's
        atomic claim files before computing it, and wait for (rather
        than recompute) shards claimed by other hosts — so independent
        hosts sharing ``store`` partition a sweep. Requires ``store``.
    merge_only:
        Merge previously completed shards from the store without
        computing anything; raises if any shard is missing. Requires
        ``store``; mutually exclusive with ``claim``.
    """

    workers: int = 1
    store: "ExperimentStore | None" = None
    sim_backend: str = "numpy"
    max_batch_replicas: int | None = None
    claim: bool = False
    merge_only: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.claim and self.merge_only:
            raise ValueError("claim and merge_only are mutually exclusive")
        if (self.claim or self.merge_only) and self.store is None:
            raise ValueError(
                "claim/merge_only coordinate through the experiment "
                "store; pass store= as well"
            )
        if self.max_batch_replicas is not None and self.max_batch_replicas < 1:
            raise ValueError(
                "max_batch_replicas must be >= 1, "
                f"got {self.max_batch_replicas}"
            )
        from repro.queueing.backends import available_backends

        if self.sim_backend != "auto" and (
            self.sim_backend not in available_backends()
        ):
            raise ValueError(
                f"unknown sim_backend {self.sim_backend!r}; registered "
                f"kernels: {available_backends()} (or 'auto')"
            )

    def resolved_max_batch_replicas(self, default: int = 64) -> int:
        """The chunk size with the callee's default applied."""
        if self.max_batch_replicas is None:
            return int(default)
        return int(self.max_batch_replicas)


def resolve_execution_context(
    context: ExecutionContext | None = None,
    *,
    workers: int | None = None,
    store: "ExperimentStore | None" = None,
    store_dir: "str | Path | None" = None,
    sim_backend: str | None = None,
    max_batch_replicas: int | None = None,
    stacklevel: int = 3,
) -> ExecutionContext:
    """The single resolver behind every entry point's execution knobs.

    Exactly one style may be used per call: either ``context=`` or the
    legacy keyword arguments (which emit a :class:`DeprecationWarning`
    naming the offending kwargs). With neither, the defaults of
    :class:`ExecutionContext` apply. ``store_dir`` (a path) opens an
    :class:`~repro.store.store.ExperimentStore` rooted there and is
    mutually exclusive with ``store``.
    """
    legacy = {
        name: value
        for name, value in (
            ("workers", workers),
            ("store", store),
            ("store_dir", store_dir),
            ("sim_backend", sim_backend),
            ("max_batch_replicas", max_batch_replicas),
        )
        if value is not None
    }
    if context is not None:
        if legacy:
            raise TypeError(
                "pass execution knobs either via context= or via the legacy "
                f"keyword arguments, not both (got {sorted(legacy)})"
            )
        return context
    if not legacy:
        return ExecutionContext()
    warnings.warn(
        _DEPRECATION.format(names=", ".join(sorted(legacy))),
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if store is not None and store_dir is not None:
        raise TypeError("store and store_dir are mutually exclusive")
    if store_dir is not None:
        from repro.store.store import ExperimentStore

        store = ExperimentStore(Path(store_dir))
    return ExecutionContext(
        workers=1 if workers is None else int(workers),
        store=store,
        sim_backend="numpy" if sim_backend is None else str(sim_backend),
        max_batch_replicas=max_batch_replicas,
    )
