"""Packaged artifacts: pretrained MF policy checkpoints.

Checkpoints are produced by ``scripts/pretrain_policies.py`` (PPO on the
mean-field MDP, one policy per synchronization delay) and shipped as
``policies/mf_dt{delta_t}.npz``. See
:mod:`repro.experiments.pretrained` for the lookup logic.
"""

from pathlib import Path

ASSETS_DIR = Path(__file__).resolve().parent
POLICY_DIR = ASSETS_DIR / "policies"

__all__ = ["ASSETS_DIR", "POLICY_DIR"]
