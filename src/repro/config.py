"""Configuration layer: the paper's Table 1 (system) and Table 2 (PPO).

Every experiment in the reproduction is driven by two frozen dataclasses:

* :class:`SystemConfig` — the load-balancing system of Section 2 and
  Table 1: ``N`` clients, ``M`` queues with buffer ``B`` and service rate
  ``alpha``, power-of-``d`` sampling, synchronization delay ``delta_t``
  and the two-level Markov-modulated arrival process of Eq. (32)-(33).
* :class:`PPOConfig` — the RL hyperparameters of Table 2, matching the
  RLlib PPO configuration used by the authors.

Both validate their fields eagerly so that a bad experiment definition
fails at construction time, not hours into a sweep, and both round-trip
through plain dictionaries for checkpointing.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any

__all__ = [
    "SystemConfig",
    "PPOConfig",
    "paper_system_config",
    "paper_ppo_config",
    "TABLE1_ROWS",
    "TABLE2_ROWS",
]


def _check_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


@dataclass(frozen=True)
class SystemConfig:
    """System parameters of the delayed-information load balancer (Table 1).

    Attributes
    ----------
    num_clients:
        ``N`` — number of dispatchers. Paper range: ``1e3`` to ``1e6``.
    num_queues:
        ``M`` — number of parallel servers/queues. Paper: 100 to 1000.
    buffer_size:
        ``B`` — maximum jobs a queue holds; queue state space is
        ``Z = {0, ..., B}``.
    d:
        Power-of-``d`` fan-out: queues sampled per client per epoch.
    service_rate:
        ``alpha`` — exponential service rate of every (homogeneous) server.
    arrival_rate_high / arrival_rate_low:
        The two levels ``(lambda_h, lambda_l)`` of the Markov-modulated
        per-queue arrival intensity (system-wide rate is ``M * lambda_t``).
    p_high_to_low / p_low_to_high:
        Transition probabilities of the modulating chain, Eq. (32)-(33).
    delta_t:
        Synchronization delay ``Δt``: queue states are broadcast and
        decision rules are refreshed only every ``delta_t`` time units.
    episode_length:
        ``T`` — decision epochs per *training* episode.
    eval_episode_length:
        ``T_e`` — decision epochs per evaluation episode. The paper uses
        ``round(500 / delta_t)`` so that each evaluation covers the same
        ~500 time units irrespective of ``delta_t``; ``None`` selects
        that default lazily via :meth:`resolved_eval_length`.
    monte_carlo_runs:
        ``n`` — independent evaluation repetitions.
    drop_penalty:
        Cost per dropped job (paper: 1).
    initial_state:
        Queue starting state; paper uses ``nu_0 = [1, 0, ..., 0]``, i.e.
        all queues start empty (state 0).
    """

    num_clients: int = 10_000
    num_queues: int = 100
    buffer_size: int = 5
    d: int = 2
    service_rate: float = 1.0
    arrival_rate_high: float = 0.9
    arrival_rate_low: float = 0.6
    p_high_to_low: float = 0.2
    p_low_to_high: float = 0.5
    delta_t: float = 1.0
    episode_length: int = 500
    eval_episode_length: int | None = None
    monte_carlo_runs: int = 100
    drop_penalty: float = 1.0
    initial_state: int = 0

    def __post_init__(self) -> None:
        _check_positive("num_clients", self.num_clients)
        _check_positive("num_queues", self.num_queues)
        if self.buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {self.buffer_size}")
        if not 1 <= self.d:
            raise ValueError(f"d must be >= 1, got {self.d}")
        if self.d > self.num_queues:
            raise ValueError(
                f"d={self.d} cannot exceed num_queues={self.num_queues}"
            )
        _check_positive("service_rate", self.service_rate)
        _check_positive("arrival_rate_high", self.arrival_rate_high)
        _check_positive("arrival_rate_low", self.arrival_rate_low)
        _check_probability("p_high_to_low", self.p_high_to_low)
        _check_probability("p_low_to_high", self.p_low_to_high)
        _check_positive("delta_t", self.delta_t)
        _check_positive("episode_length", self.episode_length)
        if self.eval_episode_length is not None:
            _check_positive("eval_episode_length", self.eval_episode_length)
        _check_positive("monte_carlo_runs", self.monte_carlo_runs)
        if self.drop_penalty < 0:
            raise ValueError("drop_penalty must be >= 0")
        if not 0 <= self.initial_state <= self.buffer_size:
            raise ValueError(
                f"initial_state must lie in [0, {self.buffer_size}], "
                f"got {self.initial_state}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_queue_states(self) -> int:
        """``|Z| = B + 1`` — size of the single-queue state space."""
        return self.buffer_size + 1

    @property
    def arrival_levels(self) -> tuple[float, float]:
        """``(lambda_h, lambda_l)`` in paper order (high first)."""
        return (self.arrival_rate_high, self.arrival_rate_low)

    @property
    def stationary_arrival_rate(self) -> float:
        """Long-run mean per-queue arrival intensity ``E[λ_t]``.

        The two-level modulating chain of Eq. (32)-(33) has stationary
        distribution ``(π_h, π_l) ∝ (p_low_to_high, p_high_to_low)``;
        degenerate chains (both switching probabilities zero) fall back
        to the uniform initial distribution ``λ_0 ~ Unif({λ_h, λ_l})``.
        """
        total = self.p_high_to_low + self.p_low_to_high
        if total == 0.0:
            pi_high = 0.5
        else:
            pi_high = self.p_low_to_high / total
        return (
            pi_high * self.arrival_rate_high
            + (1.0 - pi_high) * self.arrival_rate_low
        )

    @property
    def offered_load(self) -> float:
        """Stationary per-server utilization ``ρ = E[λ_t] / α``.

        ``ρ > 1`` means the system is in overload: queues saturate and
        drops are unavoidable regardless of the routing policy (the
        regime stressed by the ``overload`` scenario).
        """
        return self.stationary_arrival_rate / self.service_rate

    def resolved_eval_length(self) -> int:
        """``T_e``: explicit value, else the paper's ``round(500/Δt)``."""
        if self.eval_episode_length is not None:
            return self.eval_episode_length
        return max(1, round(500.0 / self.delta_t))

    def total_eval_time(self) -> float:
        """Wall-clock (model-time) span of one evaluation episode."""
        return self.resolved_eval_length() * self.delta_t

    def with_updates(self, **changes: Any) -> "SystemConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SystemConfig":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(f"unknown SystemConfig fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class PPOConfig:
    """PPO hyperparameters (paper Table 2, RLlib conventions).

    ``gamma`` is the MDP discount factor of the objective (Eq. 7/31); the
    remaining fields configure the clipped-surrogate optimization. The
    paper's RLlib setup uses *both* the clip and an (adaptive) KL penalty
    whose initial coefficient is ``kl_coeff`` and whose target is
    ``kl_target``; we mirror that behaviour.

    The four *hardening knobs* below the Table 2 block follow standard
    RLlib/torchrl practice for long training campaigns; each defaults to
    ``None`` (off), and off reproduces the paper's update bit for bit
    (pinned by the golden traces in ``tests/test_training_determinism.py``):

    * ``kl_coeff_bounds`` — clamp the adaptively updated KL coefficient
      into ``[lo, hi]`` so a mis-scaled warmup cannot run ``beta`` to
      zero or infinity.
    * ``kl_early_stop_factor`` — stop the SGD epochs of an iteration as
      soon as the full-batch KL exceeds ``factor * kl_target`` (the
      update has left the trust region; further minibatches only make it
      worse).
    * ``clip_param_final`` / ``clip_decay_iters`` — linearly decay the
      surrogate clip ``epsilon`` from ``clip_param`` to
      ``clip_param_final`` over ``clip_decay_iters`` iterations
      (monotone, then constant). Both must be set together.
    * ``value_clamp_param`` — clip the critic's predicted value to a
      ``+- delta`` band around its pre-update prediction and take the
      elementwise *minimum* of the clamped and unclamped squared errors,
      so the clamp can limit an update but never widen the loss.
    """

    gamma: float = 0.99
    gae_lambda: float = 1.0
    kl_coeff: float = 0.2
    kl_target: float = 0.01
    clip_param: float = 0.3
    learning_rate: float = 5e-5
    train_batch_size: int = 4000
    minibatch_size: int = 128
    num_epochs: int = 30
    value_loss_coeff: float = 1.0
    value_clip_param: float = 10.0
    entropy_coeff: float = 0.0
    grad_clip: float = 40.0
    hidden_sizes: tuple[int, ...] = (256, 256)
    # Free-log-std Gaussian head as in RLlib's default continuous policy.
    initial_log_std: float = 0.0
    seed: int = 0
    # Hardening knobs (None = off = the paper's exact update).
    kl_coeff_bounds: tuple[float, float] | None = None
    kl_early_stop_factor: float | None = None
    clip_param_final: float | None = None
    clip_decay_iters: int | None = None
    value_clamp_param: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma < 1.0:
            raise ValueError(f"gamma must be in (0,1), got {self.gamma}")
        if not 0.0 <= self.gae_lambda <= 1.0:
            raise ValueError(f"gae_lambda must be in [0,1], got {self.gae_lambda}")
        if self.kl_coeff < 0:
            raise ValueError("kl_coeff must be >= 0")
        _check_positive("kl_target", self.kl_target)
        _check_positive("clip_param", self.clip_param)
        _check_positive("learning_rate", self.learning_rate)
        _check_positive("train_batch_size", self.train_batch_size)
        _check_positive("minibatch_size", self.minibatch_size)
        if self.minibatch_size > self.train_batch_size:
            raise ValueError(
                "minibatch_size cannot exceed train_batch_size "
                f"({self.minibatch_size} > {self.train_batch_size})"
            )
        _check_positive("num_epochs", self.num_epochs)
        if self.value_loss_coeff < 0 or self.entropy_coeff < 0:
            raise ValueError("loss coefficients must be >= 0")
        _check_positive("grad_clip", self.grad_clip)
        if not self.hidden_sizes or any(h < 1 for h in self.hidden_sizes):
            raise ValueError("hidden_sizes must be a non-empty tuple of >=1 ints")
        if not math.isfinite(self.initial_log_std):
            raise ValueError("initial_log_std must be finite")
        if self.kl_coeff_bounds is not None:
            if len(self.kl_coeff_bounds) != 2:
                raise ValueError("kl_coeff_bounds must be a (lo, hi) pair")
            lo, hi = self.kl_coeff_bounds
            if not 0.0 <= lo < hi:
                raise ValueError(
                    f"kl_coeff_bounds needs 0 <= lo < hi, got ({lo}, {hi})"
                )
        if self.kl_early_stop_factor is not None:
            _check_positive("kl_early_stop_factor", self.kl_early_stop_factor)
        if (self.clip_param_final is None) != (self.clip_decay_iters is None):
            raise ValueError(
                "clip_param_final and clip_decay_iters must be set together"
            )
        if self.clip_param_final is not None:
            if not 0.0 < self.clip_param_final <= self.clip_param:
                raise ValueError(
                    "clip_param_final must lie in (0, clip_param], got "
                    f"{self.clip_param_final} (clip_param={self.clip_param})"
                )
            _check_positive("clip_decay_iters", self.clip_decay_iters)
        if self.value_clamp_param is not None:
            _check_positive("value_clamp_param", self.value_clamp_param)

    def with_updates(self, **changes: Any) -> "PPOConfig":
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["hidden_sizes"] = list(self.hidden_sizes)
        if self.kl_coeff_bounds is not None:
            payload["kl_coeff_bounds"] = list(self.kl_coeff_bounds)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PPOConfig":
        payload = dict(payload)
        if "hidden_sizes" in payload:
            payload["hidden_sizes"] = tuple(payload["hidden_sizes"])
        if payload.get("kl_coeff_bounds") is not None:
            payload["kl_coeff_bounds"] = tuple(payload["kl_coeff_bounds"])
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(f"unknown PPOConfig fields: {sorted(unknown)}")
        return cls(**payload)


def paper_system_config(
    delta_t: float = 1.0,
    num_queues: int = 1000,
    num_clients: int | None = None,
) -> SystemConfig:
    """Table 1 configuration; ``num_clients`` defaults to ``M**2``."""
    if num_clients is None:
        num_clients = num_queues**2
    return SystemConfig(
        num_clients=num_clients,
        num_queues=num_queues,
        buffer_size=5,
        d=2,
        service_rate=1.0,
        arrival_rate_high=0.9,
        arrival_rate_low=0.6,
        p_high_to_low=0.2,
        p_low_to_high=0.5,
        delta_t=delta_t,
        episode_length=500,
        eval_episode_length=None,
        monte_carlo_runs=100,
        drop_penalty=1.0,
        initial_state=0,
    )


def paper_ppo_config(seed: int = 0) -> PPOConfig:
    """Table 2 configuration, verbatim."""
    return PPOConfig(
        gamma=0.99,
        gae_lambda=1.0,
        kl_coeff=0.2,
        clip_param=0.3,
        learning_rate=5e-5,
        train_batch_size=4000,
        minibatch_size=128,
        num_epochs=30,
        hidden_sizes=(256, 256),
        seed=seed,
    )


# Rendered rows for the Table 1 / Table 2 reproduction benches; each row
# is (symbol, name, paper value, accessor on the default paper config).
TABLE1_ROWS: tuple[tuple[str, str, str], ...] = (
    ("Δt", "Time step size", "1 - 10"),
    ("α", "Service rate", "1"),
    ("(λh, λl)", "Arrival rates", "(0.9, 0.6)"),
    ("N", "Number of clients", "1000 - 1000000"),
    ("M", "Number of queues", "100 - 1000"),
    ("d", "Number of accessible queues", "2"),
    ("n", "Monte Carlo simulations", "100"),
    ("B", "Queue buffer size", "5"),
    ("ν0", "Queue starting state distribution", "[1, 0, 0, ...]"),
    ("D", "Drop penalty per job", "1"),
    ("T", "Training episode length", "500"),
    ("Te", "Evaluation episode length", "50 - 500"),
)

TABLE2_ROWS: tuple[tuple[str, str, str], ...] = (
    ("γ", "Discount factor", "0.99"),
    ("λRL", "GAE lambda", "1"),
    ("β", "KL coefficient", "0.2"),
    ("ε", "Clip parameter", "0.3"),
    ("lr", "Learning rate", "0.00005"),
    ("Bb", "Training batch size", "4000"),
    ("Bm", "SGD Mini batch size", "128"),
    ("Tb", "Number of epochs", "30"),
)
