"""Per-regime policy training campaign (delayed, graph, diurnal regimes).

The paper trains one MF policy per synchronization delay on the exact
mean-field MDP (``scripts/pretrain_policies.py``). The regimes added
since — stochastic observation delays, sparse topologies, diurnal
traffic — change the dynamics the policy faces and make *context*
informative, so each gets a natively trained policy:

* the training environment matches the regime's *fidelity*: the
  :class:`repro.meanfield.delayed_env.DelayedMeanFieldEnv` proxy for
  regimes whose costs survive the mean-field limit
  (``fidelity="meanfield"``: graph, diurnal), and one replica of the
  finite deployment system behind
  :class:`repro.queueing.finite_mdp.FiniteRegimeEnv` for the delayed
  regimes (``fidelity="finite"``) — in the limit the law drifts
  smoothly and stale information is nearly free, so the delay cost the
  leaderboard measures (finite-``M`` fluctuations, dispatcher herding)
  only exists at finite fidelity; both carry the regime's
  :class:`~repro.meanfield.features.ObservationFeatures`,
* training warm-starts from the packaged paper checkpoint for the
  regime's ``Δt`` with the first layer widened by zero rows
  (:func:`repro.rl.nn.widen_input_weights`) — at initialization the
  policy *is* the transplanted paper policy, so fine-tuning on the true
  regime dynamics can only move away from it where that helps, and a
  keep-best evaluation guard falls back to the warm start on a
  regression,
* collection runs through the chunk-invariant independent-streams mode
  of :class:`repro.rl.vector_rollout.VectorRolloutCollector`, which
  makes a finished regime a pure function of
  ``(regime, ppo, budget, seed)``.

That purity is what the campaign's durability leans on: each finished
regime is persisted as one content-addressed *training shard* in the
:class:`repro.store.store.ExperimentStore`
(:func:`repro.store.keys.train_shard_key`), so an interrupted campaign
resumes bit-identically, results are invariant to the worker count, and
multiple hosts sharing a store directory partition the regime list via
the store's claim files — the same coordination discipline as the
evaluation sweeps in :mod:`repro.experiments.parallel`.

Entry point: ``scripts/train_regime_policies.py``; packaged checkpoints
land in ``repro/assets/policies/mf_regime_<name>.npz`` and feed the
``leaderboard`` comparison.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

from repro.config import PPOConfig, SystemConfig, paper_system_config
from repro.meanfield.delayed_env import DelayedMeanFieldEnv
from repro.meanfield.features import ObservationFeatures, age_context
from repro.policies.learned import NeuralPolicy
from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.delays import DelayModel, DeterministicDelay
from repro.queueing.finite_mdp import FiniteRegimeEnv
from repro.rl.nn import GaussianPolicyNetwork, widen_input_weights
from repro.store.keys import train_shard_key

if TYPE_CHECKING:
    from repro.store.store import ExperimentStore
    from repro.utils.stats import ConfidenceInterval

__all__ = [
    "CAMPAIGN_DELTA_TS",
    "CampaignResult",
    "RegimeSpec",
    "TrainingBudget",
    "available_regime_checkpoints",
    "campaign_ppo_config",
    "collect_cached",
    "default_regimes",
    "get_regime_policy",
    "package_policies",
    "regime_checkpoint_path",
    "run_campaign",
    "train_regime",
]

#: The label every campaign checkpoint carries; distinguishes natively
#: trained regime policies from the transplanted paper "MF" policies in
#: the leaderboard.
REGIME_POLICY_LABEL = "MF-regime"

#: Synchronization delays of the delayed-regime grid (the paper's
#: Figure-5 grid).
CAMPAIGN_DELTA_TS = (1.0, 3.0, 5.0, 7.0, 10.0)


@dataclass(frozen=True)
class RegimeSpec:
    """One training regime: environment shape, features, warm start.

    ``fidelity`` selects the training dynamics: ``"meanfield"`` trains
    on the exact MFC proxy (cheap, but blind to finite-``M``
    fluctuation costs), ``"finite"`` trains and keep-best-evaluates on
    the finite deployment system itself
    (:class:`~repro.queueing.finite_mdp.FiniteRegimeEnv`).

    Frozen and fingerprintable — the spec is part of the training-shard
    key, so editing any field moves the regime to a fresh key space
    instead of replaying a stale result.
    """

    name: str
    config: SystemConfig
    delay_model: DelayModel | None = None
    features: ObservationFeatures = ObservationFeatures()
    arrival_process: MarkovModulatedRate | None = None
    horizon: int = 100
    warm_start_delta_t: float | None = None
    fidelity: str = "meanfield"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(f"invalid regime name {self.name!r}")
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        if self.fidelity not in ("meanfield", "finite"):
            raise ValueError(
                "fidelity must be 'meanfield' or 'finite', got "
                f"{self.fidelity!r}"
            )

    def build_env(
        self, seed: int | np.random.Generator | None = None
    ) -> "DelayedMeanFieldEnv | FiniteRegimeEnv":
        """A fresh training environment for this regime."""
        arrivals = (
            self.arrival_process.replica()
            if self.arrival_process is not None
            else None
        )
        delay = (
            self.delay_model.replica() if self.delay_model is not None else None
        )
        if self.fidelity == "finite":
            return FiniteRegimeEnv(
                self.config,
                horizon=self.horizon,
                delay_model=delay,
                arrival_process=arrivals,
                features=self.features,
                seed=seed,
            )
        return DelayedMeanFieldEnv(
            self.config,
            horizon=self.horizon,
            propagator="tabulated",
            arrival_process=arrivals,
            seed=seed,
            delay_model=delay,
            features=self.features,
        )

    def age_context(self) -> tuple[float, float] | None:
        """Frozen age features for the deployed policy (``None`` if off)."""
        if not self.features.age:
            return None
        model = (
            self.delay_model
            if self.delay_model is not None
            else DeterministicDelay(0)
        )
        return age_context(model)

    @property
    def num_modes(self) -> int:
        return (
            self.arrival_process.num_modes
            if self.arrival_process is not None
            else 2
        )


@dataclass(frozen=True)
class TrainingBudget:
    """Compute budget of one regime's training run.

    Part of the training-shard key: the trained parameters depend on
    every field (warmup and training iterations consume collector
    stream, the evaluation settings drive the keep-best guard).
    """

    iterations: int = 120
    num_envs: int = 4
    critic_warmup: int = 6
    eval_episodes: int = 24
    eval_seed: int = 7

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        if self.critic_warmup < 0:
            raise ValueError("critic_warmup must be >= 0")
        if self.eval_episodes < 1:
            raise ValueError("eval_episodes must be >= 1")


@dataclass
class CampaignResult:
    """One finished regime: the policy plus training provenance."""

    regime: RegimeSpec
    key: str
    policy: NeuralPolicy
    curve: np.ndarray
    meta: dict[str, Any] = field(default_factory=dict)
    from_cache: bool = False


def campaign_ppo_config(seed: int = 0, iterations: int = 120) -> PPOConfig:
    """The campaign's PPO configuration: the pretraining hyperparameters
    with the hardening knobs on (adaptive-KL bounds, KL early stopping,
    clip-ε decayed to 0.1 across the run)."""
    return PPOConfig(
        gamma=0.99,
        gae_lambda=0.95,
        kl_coeff=0.2,
        kl_target=0.01,
        clip_param=0.3,
        learning_rate=1e-4,
        train_batch_size=4000,
        minibatch_size=256,
        num_epochs=8,
        value_clip_param=5000.0,
        hidden_sizes=(256, 256),
        initial_log_std=-1.5,
        seed=seed,
        kl_coeff_bounds=(1e-3, 10.0),
        kl_early_stop_factor=2.0,
        clip_param_final=0.1,
        clip_decay_iters=max(1, iterations),
    )


def default_regimes() -> tuple[RegimeSpec, ...]:
    """The packaged campaign: delayed Δt grid, graph, diurnal regimes."""
    from repro.scenarios.builtin import (
        DIURNAL_PERIOD,
        stochastic_delay_model,
    )

    regimes: list[RegimeSpec] = []
    for dt in CAMPAIGN_DELTA_TS:
        regimes.append(
            RegimeSpec(
                name=f"dt{dt:g}",
                config=paper_system_config(delta_t=dt, num_queues=100),
                delay_model=stochastic_delay_model(),
                features=ObservationFeatures(age=True, live_age=True),
                warm_start_delta_t=dt,
                fidelity="finite",
                description=(
                    f"Δt={dt:g} under synced/degraded monitoring "
                    "(stochastic snapshot ages 0-3, live-age-conditioned, "
                    "finite-fidelity fine-tuning)"
                ),
            )
        )
    # Graph regimes: the policy is queried on neighborhood-aggregated
    # laws, so it conditions on the mean occupancy of the law it sees.
    # One checkpoint per end of the sweep grid (ring at Δt=1,
    # random-regular at Δt=5).
    regimes.append(
        RegimeSpec(
            name="ring",
            config=paper_system_config(delta_t=1.0, num_queues=100),
            features=ObservationFeatures(occupancy=True),
            warm_start_delta_t=1.0,
            description=(
                "occupancy-conditioned policy for ring neighborhoods "
                "(trained at Δt=1)"
            ),
        )
    )
    regimes.append(
        RegimeSpec(
            name="random-regular",
            config=paper_system_config(delta_t=5.0, num_queues=100),
            features=ObservationFeatures(occupancy=True),
            warm_start_delta_t=5.0,
            description=(
                "occupancy-conditioned policy for random-regular "
                "neighborhoods (trained at Δt=5)"
            ),
        )
    )
    # Diurnal regime: a slow two-mode surrogate of the sinusoidal
    # day/night cycle (envelope 0.55-0.95, dwell ~ half a period), so
    # the policy's two λ-mode inputs map to day and night load.
    diurnal_surrogate = MarkovModulatedRate(
        levels=(0.95, 0.55),
        transition_matrix=(
            (1.0 - 2.0 / DIURNAL_PERIOD, 2.0 / DIURNAL_PERIOD),
            (2.0 / DIURNAL_PERIOD, 1.0 - 2.0 / DIURNAL_PERIOD),
        ),
    )
    regimes.append(
        RegimeSpec(
            name="diurnal",
            config=paper_system_config(delta_t=1.0, num_queues=100).with_updates(
                arrival_rate_high=0.95, arrival_rate_low=0.55
            ),
            arrival_process=diurnal_surrogate,
            warm_start_delta_t=1.0,
            description=(
                "two-mode surrogate of the diurnal day/night cycle "
                f"(period {DIURNAL_PERIOD} epochs, rho 0.55-0.95)"
            ),
        )
    )
    return tuple(regimes)


# ---------------------------------------------------------------------------
# Checkpoint locations (mirrors repro.experiments.pretrained for the
# paper checkpoints)
# ---------------------------------------------------------------------------
def regime_checkpoint_path(name: str, directory: Path | None = None) -> Path:
    """Canonical packaged-checkpoint location for a regime."""
    if directory is None:
        from repro.assets import POLICY_DIR

        directory = POLICY_DIR
    return directory / f"mf_regime_{name}.npz"


def available_regime_checkpoints(
    directory: Path | None = None,
) -> dict[str, Path]:
    """Map of regime name -> packaged campaign checkpoint."""
    if directory is None:
        from repro.assets import POLICY_DIR

        directory = POLICY_DIR
    out: dict[str, Path] = {}
    if not directory.exists():
        return out
    for path in sorted(directory.glob("mf_regime_*.npz")):
        out[path.stem[len("mf_regime_") :]] = path
    return out


def get_regime_policy(
    delta_t: float,
    directory: Path | None = None,
    allow_fallback: bool = True,
    seed: int = 0,
) -> "tuple[Any, str]":
    """Resolve the natively-trained regime policy for a delay.

    Mirrors :func:`repro.experiments.pretrained.get_mf_policy` for the
    campaign checkpoints, in three steps:

    1. the packaged campaign checkpoint ``mf_regime_dt{Δt}.npz``
       (``source="checkpoint"``),
    2. else the nearest packaged delayed-regime checkpoint on the Δt
       grid (``source="nearest-dt{Δt'}"``),
    3. else (``allow_fallback=True``) the transplanted paper policy via
       :func:`get_mf_policy` (``source="transplant-checkpoint"`` /
       ``"transplant-cem-fallback"``), keeping leaderboard sweeps
       runnable from a cold checkout; the sources are reported so a
       degenerate comparison is visible.
    """
    path = regime_checkpoint_path(f"dt{delta_t:g}", directory)
    if path.exists():
        return NeuralPolicy.load(path), "checkpoint"
    grid: dict[float, Path] = {}
    for name, ckpt in available_regime_checkpoints(directory).items():
        if not name.startswith("dt"):
            continue
        try:
            grid[float(name[len("dt") :])] = ckpt
        except ValueError:  # pragma: no cover - stray files
            continue
    if grid:
        nearest = min(grid, key=lambda dt: (abs(dt - delta_t), dt))
        return NeuralPolicy.load(grid[nearest]), f"nearest-dt{nearest:g}"
    if not allow_fallback:
        raise FileNotFoundError(
            f"no campaign checkpoint for Δt={delta_t:g} at {path}; run "
            "scripts/train_regime_policies.py or pass allow_fallback=True"
        )
    from repro.experiments.pretrained import get_mf_policy

    policy, source = get_mf_policy(delta_t, seed=seed)
    return policy, f"transplant-{source}"


# ---------------------------------------------------------------------------
# Training
# ---------------------------------------------------------------------------
def _warm_start_state(
    regime: RegimeSpec, ppo: PPOConfig
) -> dict[str, np.ndarray] | None:
    """Widened paper-checkpoint state for the regime, or ``None``.

    Returns ``None`` when no warm start is configured, the checkpoint is
    absent (cold checkout), or its geometry does not match the campaign
    network — training then starts from a fresh initialization.
    """
    if regime.warm_start_delta_t is None:
        return None
    from repro.experiments.pretrained import checkpoint_path
    from repro.utils.serialization import load_npz_checkpoint

    path = checkpoint_path(regime.warm_start_delta_t)
    if not path.exists():
        return None
    arrays, meta = load_npz_checkpoint(path)
    hidden = tuple(int(h) for h in meta.get("hidden_sizes", ()))
    if (
        hidden != tuple(ppo.hidden_sizes)
        or int(meta.get("num_states", -1)) != regime.config.num_queue_states
        or int(meta.get("d", -1)) != regime.config.d
        or int(meta.get("num_modes", -1)) != regime.num_modes
        or ObservationFeatures.from_dict(meta.get("features")).extra_dims != 0
    ):
        return None
    state = {
        k[len("policy/") :]: v
        for k, v in arrays.items()
        if k.startswith("policy/")
    }
    return widen_input_weights(state, regime.features.extra_dims)


def _build_policy(
    state: Mapping[str, np.ndarray],
    regime: RegimeSpec,
    hidden_sizes: Sequence[int],
    num_modes: int,
) -> NeuralPolicy:
    s, d = regime.config.num_queue_states, regime.config.d
    network = GaussianPolicyNetwork(
        obs_dim=s + num_modes + regime.features.extra_dims,
        action_dim=s**d * d,
        hidden_sizes=tuple(int(h) for h in hidden_sizes),
    )
    network.load_state_dict(dict(state))
    return NeuralPolicy(
        network,
        num_states=s,
        d=d,
        num_modes=num_modes,
        label=REGIME_POLICY_LABEL,
        features=regime.features,
        age_context=regime.age_context(),
    )


def _result_from_entry(
    regime: RegimeSpec,
    key: str,
    arrays: Mapping[str, np.ndarray],
    meta: Mapping[str, Any],
) -> CampaignResult:
    state = {
        k[len("policy/") :]: v
        for k, v in arrays.items()
        if k.startswith("policy/")
    }
    policy = _build_policy(
        state,
        regime,
        hidden_sizes=meta["hidden_sizes"],
        num_modes=int(meta["num_modes"]),
    )
    curve = np.asarray(arrays.get("curve", np.empty(0)), dtype=np.float64)
    return CampaignResult(
        regime=regime,
        key=key,
        policy=policy,
        curve=curve,
        meta=dict(meta),
        from_cache=True,
    )


def _evaluate_finite(
    regime: RegimeSpec, policy: NeuralPolicy, budget: TrainingBudget
) -> "ConfidenceInterval":
    """Keep-best evaluation on the *deployment* system.

    Finite-fidelity regimes are scored where they deploy: an ensemble of
    ``budget.eval_episodes`` lock-step replicas of the finite delayed
    system, episode return per replica, all randomness from
    ``budget.eval_seed`` — so the warm start and the trained policy face
    identically-seeded ensembles (common random numbers) and the verdict
    is a pure function of the training inputs.
    """
    from repro.queueing.delayed_env import BatchedDelayedFiniteEnv
    from repro.utils.stats import mean_confidence_interval

    env = BatchedDelayedFiniteEnv(
        regime.config,
        num_replicas=budget.eval_episodes,
        delay_model=(
            regime.delay_model.replica()
            if regime.delay_model is not None
            else None
        ),
        arrival_process=(
            regime.arrival_process.replica()
            if regime.arrival_process is not None
            else None
        ),
        seed=budget.eval_seed,
    )
    env.reset()
    totals = np.zeros(budget.eval_episodes)
    for _ in range(regime.horizon):
        _, rewards, _ = env.step_with_policy(policy)
        totals += rewards
    return mean_confidence_interval(totals)


def train_regime(
    regime: RegimeSpec,
    ppo: PPOConfig | None = None,
    budget: TrainingBudget | None = None,
    seed: int = 0,
    store: "ExperimentStore | None" = None,
    verbose: bool = False,
) -> CampaignResult:
    """Train (or resume from the store) one regime's policy.

    With a store, a finished regime is returned from its training shard
    without consuming any randomness — the resume is bit-identical to
    the original run's result.
    """
    from repro.rl.evaluation import evaluate_policy_mfc
    from repro.rl.ppo import PPOTrainer

    ppo = ppo if ppo is not None else campaign_ppo_config(seed)
    budget = budget if budget is not None else TrainingBudget()
    key = train_shard_key(regime, ppo, budget, seed)
    if store is not None:
        cached = store.get_entry(key)
        if cached is not None:
            return _result_from_entry(regime, key, *cached)

    env = regime.build_env(seed=seed)
    eval_env = regime.build_env(seed=seed + 1)
    trainer = PPOTrainer(
        env,
        ppo,
        seed=seed,
        num_envs=budget.num_envs,
        independent_streams=budget.num_envs > 1,
    )

    def _evaluate() -> "ConfidenceInterval":
        # Policies share the live training network: evaluate in place.
        probe = NeuralPolicy(
            trainer.policy,
            num_states=regime.config.num_queue_states,
            d=regime.config.d,
            num_modes=env.num_modes,
            label=REGIME_POLICY_LABEL,
            features=regime.features,
            age_context=regime.age_context(),
        )
        if regime.fidelity == "finite":
            return _evaluate_finite(regime, probe, budget)
        return evaluate_policy_mfc(
            eval_env,
            probe,
            episodes=budget.eval_episodes,
            seed=budget.eval_seed,
        )

    warm_state = _warm_start_state(regime, ppo)
    warm_eval = None
    if warm_state is not None:
        trainer.policy.load_state_dict(warm_state)
        warm_eval = _evaluate()
        if verbose:
            print(f"[{regime.name}] warm start: {warm_eval.mean:.2f}")

    curve: list[float] = []
    for i in range(budget.critic_warmup + budget.iterations):
        stats = trainer.train_iteration(
            update_policy=i >= budget.critic_warmup
        )
        curve.append(stats.mean_episode_return)
        if verbose and (i % 10 == 0 or i == len(curve) - 1):
            print(
                f"[{regime.name}] iter {i:3d} return "
                f"{stats.mean_episode_return:9.2f} kl {stats.kl:.4f}"
            )

    trained_state = trainer.policy.state_dict()
    trained_eval = _evaluate()
    kept = "trained"
    final_state = trained_state
    if warm_eval is not None and warm_eval.mean > trained_eval.mean:
        # Keep-best guard: fine-tuning can only help; fall back to the
        # (functionally transplanted) warm start on a regression.
        kept = "warm-start"
        final_state = warm_state
    if verbose:
        print(
            f"[{regime.name}] trained: {trained_eval.mean:.2f} "
            f"(kept: {kept})"
        )

    meta: dict[str, Any] = {
        "regime": regime.name,
        "description": regime.description,
        "delta_t": regime.config.delta_t,
        "seed": seed,
        "iterations": budget.iterations,
        "critic_warmup": budget.critic_warmup,
        "env_steps": trainer.collector.total_env_steps,
        "kept": kept,
        "trained_return": trained_eval.mean,
        "warm_return": warm_eval.mean if warm_eval is not None else None,
        "num_states": regime.config.num_queue_states,
        "d": regime.config.d,
        "num_modes": env.num_modes,
        "fidelity": regime.fidelity,
        "hidden_sizes": list(ppo.hidden_sizes),
        "features": regime.features.to_dict(),
        "age_context": (
            list(regime.age_context())
            if regime.age_context() is not None
            else None
        ),
        "label": REGIME_POLICY_LABEL,
    }
    if store is not None:
        arrays = {f"policy/{k}": v for k, v in final_state.items()}
        arrays["curve"] = np.asarray(curve, dtype=np.float64)
        store.put_entry(key, arrays, meta)
    policy = _build_policy(
        final_state,
        regime,
        hidden_sizes=ppo.hidden_sizes,
        num_modes=env.num_modes,
    )
    return CampaignResult(
        regime=regime,
        key=key,
        policy=policy,
        curve=np.asarray(curve, dtype=np.float64),
        meta=meta,
        from_cache=False,
    )


def _train_claimed(
    regime: RegimeSpec,
    ppo: PPOConfig,
    budget: TrainingBudget,
    seed: int,
    store: "ExperimentStore",
    owner: str,
    stale_after: float | None,
    verbose: bool,
) -> CampaignResult | None:
    """Claim-gated training: ``None`` when another worker holds the regime."""
    key = train_shard_key(regime, ppo, budget, seed)
    cached = store.get_entry(key)
    if cached is not None:
        return _result_from_entry(regime, key, *cached)
    if not store.try_claim(key, owner, stale_after=stale_after):
        return None
    try:
        return train_regime(
            regime, ppo, budget, seed=seed, store=store, verbose=verbose
        )
    finally:
        store.release_claim(key)


def _train_regime_task(
    regime: RegimeSpec,
    ppo: PPOConfig,
    budget: TrainingBudget,
    seed: int,
    store_root: str | None,
    claim: bool,
    owner: str | None,
    stale_after: float | None,
) -> CampaignResult | None:
    """Worker-process entry: rebuilds the store from its root path."""
    from repro.store.store import ExperimentStore

    store = ExperimentStore(store_root) if store_root is not None else None
    if claim:
        assert store is not None and owner is not None
        return _train_claimed(
            regime, ppo, budget, seed, store, owner, stale_after, False
        )
    return train_regime(regime, ppo, budget, seed=seed, store=store)


def run_campaign(
    regimes: Iterable[RegimeSpec] | None = None,
    ppo: PPOConfig | None = None,
    budget: TrainingBudget | None = None,
    seed: int = 0,
    store: "ExperimentStore | None" = None,
    workers: int = 1,
    claim: bool = False,
    owner: str | None = None,
    stale_after: float | None = None,
    verbose: bool = False,
) -> dict[str, CampaignResult]:
    """Train every regime; returns ``{regime name: result}``.

    Regimes are independent training shards, so the campaign
    parallelizes trivially: ``workers > 1`` fans the regime list across
    a process pool, and because each shard's streams are a pure function
    of its own inputs the results are **bit-identical for every worker
    count** (tested). With ``claim=True`` (requires a store) regimes
    claimed by other hosts are skipped — they simply don't appear in the
    returned mapping; rerun with :func:`collect_cached` once every host
    finished to merge the full campaign.
    """
    regime_list = list(regimes if regimes is not None else default_regimes())
    names = [r.name for r in regime_list]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate regime names: {names}")
    if claim and store is None:
        raise ValueError("claim mode requires a store")
    if claim and owner is None:
        raise ValueError("claim mode requires an owner id")
    budget = budget if budget is not None else TrainingBudget()
    resolved_ppo = ppo if ppo is not None else campaign_ppo_config(seed)

    results: dict[str, CampaignResult] = {}
    if workers <= 1 or len(regime_list) <= 1:
        for regime in regime_list:
            if claim:
                assert store is not None and owner is not None
                res = _train_claimed(
                    regime,
                    resolved_ppo,
                    budget,
                    seed,
                    store,
                    owner,
                    stale_after,
                    verbose,
                )
            else:
                res = train_regime(
                    regime,
                    resolved_ppo,
                    budget,
                    seed=seed,
                    store=store,
                    verbose=verbose,
                )
            if res is not None:
                results[regime.name] = res
        return results

    store_root = str(store.root) if store is not None else None
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(
                _train_regime_task,
                regime,
                resolved_ppo,
                budget,
                seed,
                store_root,
                claim,
                owner,
                stale_after,
            ): regime
            for regime in regime_list
        }
        for future in as_completed(futures):
            res = future.result()
            if res is not None:
                results[futures[future].name] = res
    return results


def collect_cached(
    regimes: Iterable[RegimeSpec],
    store: "ExperimentStore",
    ppo: PPOConfig | None = None,
    budget: TrainingBudget | None = None,
    seed: int = 0,
) -> dict[str, CampaignResult]:
    """Merge finished training shards from the store (no training).

    The merge step of a multi-host claim-mode campaign; regimes without
    a stored shard are simply absent from the result.
    """
    budget = budget if budget is not None else TrainingBudget()
    results: dict[str, CampaignResult] = {}
    for regime in regimes:
        resolved_ppo = ppo if ppo is not None else campaign_ppo_config(seed)
        key = train_shard_key(regime, resolved_ppo, budget, seed)
        cached = store.get_entry(key)
        if cached is not None:
            results[regime.name] = _result_from_entry(regime, key, *cached)
    return results


def package_policies(
    results: Mapping[str, CampaignResult],
    out_dir: Path | None = None,
) -> dict[str, Path]:
    """Write each result to its packaged checkpoint; returns the paths."""
    if out_dir is None:
        from repro.assets import POLICY_DIR

        out_dir = POLICY_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    # NeuralPolicy.save writes the geometry/feature metadata itself;
    # forward only the campaign provenance.
    provenance_keys = (
        "regime",
        "description",
        "delta_t",
        "seed",
        "iterations",
        "env_steps",
        "fidelity",
        "kept",
        "trained_return",
        "warm_return",
    )
    paths: dict[str, Path] = {}
    for name in sorted(results):
        res = results[name]
        extra = {k: res.meta[k] for k in provenance_keys if k in res.meta}
        paths[name] = res.policy.save(
            regime_checkpoint_path(name, out_dir), extra_meta=extra
        )
    return paths
