"""Experiment harness regenerating every table and figure of the paper.

One module per artifact:

* :mod:`repro.experiments.tables` — Table 1 / Table 2 parameter tables.
* :mod:`repro.experiments.fig3_training` — Figure 3 PPO training curve.
* :mod:`repro.experiments.fig4_convergence` — Figure 4 mean-field
  convergence over system size.
* :mod:`repro.experiments.fig5_delay_sweep` — Figure 5 policy comparison
  over the synchronization delay.
* :mod:`repro.experiments.fig6_small_n` — Figure 6 with the ``N ≫ M``
  assumption violated.
* :mod:`repro.experiments.pretrained` — registry of trained MF policies
  (packaged PPO checkpoints, CEM fallback).
* :mod:`repro.experiments.runner` — shared Monte-Carlo machinery.
* :mod:`repro.experiments.parallel` — the sharded multiprocess sweep
  executor (optionally backed by the :mod:`repro.store` shard cache).
* :mod:`repro.experiments.cli` — shell entry point for all of the
  above, including the manifest-driven ``reproduce`` pipeline.
"""

from repro.experiments.runner import (
    MonteCarloResult,
    evaluate_policy_finite,
    policy_suite,
)
from repro.experiments.tables import render_table1, render_table2
from repro.experiments.pretrained import get_mf_policy
from repro.experiments.fig3_training import TrainingCurveResult, run_fig3
from repro.experiments.fig4_convergence import Fig4Result, run_fig4
from repro.experiments.fig5_delay_sweep import Fig5Result, run_fig5
from repro.experiments.fig6_small_n import Fig6Result, run_fig6

__all__ = [
    "MonteCarloResult",
    "evaluate_policy_finite",
    "policy_suite",
    "render_table1",
    "render_table2",
    "get_mf_policy",
    "TrainingCurveResult",
    "run_fig3",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
]
