"""Registry of trained "MF" policies, one per synchronization delay.

The paper trains a separate PPO policy for every ``Δt`` (Section 4,
Figure 5: "we have trained a separate MF policy for each of the Δt").
This registry resolves the MF policy for a delay in three steps:

1. a packaged PPO checkpoint ``repro/assets/policies/mf_dt{Δt}.npz``
   produced by ``scripts/pretrain_policies.py``,
2. else (``allow_fallback=True``) a CEM-optimized constant decision rule
   computed on the fly on the mean-field MDP (seconds, deterministic
   given the seed) and cached for the process lifetime,
3. else a :class:`FileNotFoundError`.

The fallback keeps every figure bench runnable from a cold checkout; the
benches report which variant was used.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.assets import POLICY_DIR
from repro.config import SystemConfig, paper_system_config

if TYPE_CHECKING:
    from repro.policies.base import UpperLevelPolicy

__all__ = ["checkpoint_path", "get_mf_policy", "available_checkpoints"]

_FALLBACK_CACHE: dict[tuple, "UpperLevelPolicy"] = {}


def checkpoint_path(delta_t: float, directory: Path | None = None) -> Path:
    """Canonical checkpoint location for a given delay."""
    base = directory if directory is not None else POLICY_DIR
    return base / f"mf_dt{delta_t:g}.npz"


def available_checkpoints(directory: Path | None = None) -> dict[float, Path]:
    """Map of delay -> packaged checkpoint file."""
    base = directory if directory is not None else POLICY_DIR
    out: dict[float, Path] = {}
    if not base.exists():
        return out
    for path in sorted(base.glob("mf_dt*.npz")):
        try:
            delta_t = float(path.stem[len("mf_dt") :])
        except ValueError:  # pragma: no cover - stray files
            continue
        out[delta_t] = path
    return out


def _cem_fallback(
    config: SystemConfig,
    seed: int,
    generations: int,
    population: int,
) -> "UpperLevelPolicy":
    from repro.meanfield.mfc_env import MeanFieldEnv
    from repro.rl.cem import optimize_constant_rule

    horizon = config.resolved_eval_length()
    env = MeanFieldEnv(
        config, horizon=horizon, propagator="tabulated", seed=seed
    )
    result = optimize_constant_rule(
        env,
        generations=generations,
        population=population,
        episodes_per_candidate=2,
        seed=seed,
    )
    policy = result.policy
    policy._name = "MF"  # presented as the learned MF policy stand-in
    return policy


def get_mf_policy(
    delta_t: float,
    config: SystemConfig | None = None,
    allow_fallback: bool = True,
    seed: int = 0,
    fallback_generations: int = 12,
    fallback_population: int = 24,
    directory: Path | None = None,
) -> tuple["UpperLevelPolicy", str]:
    """Resolve the MF policy for ``delta_t``.

    Returns ``(policy, source)`` with ``source`` one of ``"checkpoint"``
    or ``"cem-fallback"``.
    """
    from repro.policies.learned import NeuralPolicy

    path = checkpoint_path(delta_t, directory)
    if path.exists():
        return NeuralPolicy.load(path), "checkpoint"
    if not allow_fallback:
        raise FileNotFoundError(
            f"no pretrained MF policy for Δt={delta_t:g} at {path}; run "
            "scripts/pretrain_policies.py or pass allow_fallback=True"
        )
    cfg = (
        config
        if config is not None
        else paper_system_config(delta_t=delta_t, num_queues=100)
    )
    if cfg.delta_t != delta_t:
        cfg = cfg.with_updates(delta_t=delta_t)
    key = (
        delta_t,
        cfg.buffer_size,
        cfg.d,
        cfg.arrival_levels,
        seed,
        fallback_generations,
        fallback_population,
    )
    if key not in _FALLBACK_CACHE:
        _FALLBACK_CACHE[key] = _cem_fallback(
            cfg, seed, fallback_generations, fallback_population
        )
    return _FALLBACK_CACHE[key], "cem-fallback"
