"""Sharded multiprocess execution of Monte-Carlo sweeps.

The paper's headline artifacts (Figures 4-6) are embarrassingly parallel:
independent Monte-Carlo replicas of independent sweep points. This module
shards that work across a :class:`concurrent.futures.ProcessPoolExecutor`
without giving up the repository's bit-for-bit reproducibility
discipline.

The key invariant is that the random streams are a pure function of each
request's master seed and the *replica-chunk layout* — never of the
worker count or completion order. :class:`SweepExecutor` decomposes every
:class:`EvalRequest` into the exact same ``(sweep-point × replica-chunk)``
shards the serial path of
:func:`repro.experiments.runner.evaluate_policy_finite` iterates over,
spawns one ``SeedSequence`` child per chunk (batched backend) or per run
(scalar backend) the same way :func:`repro.utils.rng.spawn_generators`
does, executes the shards in any order on any number of processes, and
reassembles the per-replica drops by offset. Consequently::

    SweepExecutor(workers=1).run(reqs)
    == SweepExecutor(workers=4).run(reqs)     # bit-identical
    == [evaluate_policy_finite(...) per req]  # bit-identical

``workers=1`` never touches ``multiprocessing`` at all — the graceful
in-process fallback used by tests, single-core boxes and nested callers.

Everything shipped to a worker (config, policy, environment class and
kwargs, seed material) crosses the process boundary by pickling; the
policies and environments in this repository are plain
NumPy-array-holding objects, so this is cheap relative to a shard's
simulation work. See ``docs/scaling.md`` for guidance on combining
process-level sharding with the replica-batched backend.

Because shard results are a pure function of their request and seed
material, they are also *cacheable*: pass ``store=`` (a
:class:`repro.store.store.ExperimentStore`) to reuse previously
computed shards by content hash and persist fresh ones — the mechanism
behind resumable sweeps and the ``reproduce`` pipeline (see
``docs/reproduction.md``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.config import SystemConfig
from repro.queueing.backends import available_backends
from repro.queueing.batched_env import (
    BatchedFiniteSystemEnv,
    _BatchedQueueSystemBase,
    run_episodes_batched,
)
from repro.queueing.env import FiniteSystemEnv, run_episode
from repro.utils.stats import mean_confidence_interval

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext

    from repro.execution import ExecutionContext
    from repro.experiments.runner import MonteCarloResult
    from repro.policies.base import UpperLevelPolicy
    from repro.store.store import ExperimentStore

__all__ = ["EvalRequest", "SweepExecutor"]

SeedLike = "int | np.random.SeedSequence | np.random.Generator | None"

#: Picklable seed material carried by a shard: ``SeedSequence`` children
#: in the common case, drawn integers for exotic bit generators.
SeedMaterial = "np.random.SeedSequence | int"


@dataclass(frozen=True)
class EvalRequest:
    """One Monte-Carlo evaluation: a sweep point of Figures 4-6.

    Mirrors the signature of
    :func:`repro.experiments.runner.evaluate_policy_finite`; a request is
    the unit whose merged statistics are guaranteed identical no matter
    how many workers execute its shards.

    ``env_cls`` may be a scalar environment class (``backend="scalar"``)
    or a subclass of the batched queue-system base
    (``backend="batched"``); ``None`` selects the standard
    finite-system environment for the chosen backend.

    ``backend`` picks the *execution style* (lock-step replicas vs a
    scalar loop); ``sim_backend`` independently picks the *epoch kernel*
    from :mod:`repro.queueing.backends` (``"numpy"``, ``"numba"`` or
    ``"auto"``). Kernels that preserve the RNG-draw contract produce
    bit-identical results, so shards cached under one such kernel are
    reused by the others.
    """

    config: SystemConfig
    policy: "UpperLevelPolicy"
    num_runs: int | None = None
    num_epochs: int | None = None
    seed: "SeedLike" = 0
    backend: str = "batched"
    max_batch_replicas: int = 64
    env_cls: type | None = None
    env_kwargs: dict[str, Any] = field(default_factory=dict)
    sim_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.backend not in ("batched", "scalar"):
            raise ValueError(
                f"unknown backend {self.backend!r}; use 'batched' or 'scalar'"
            )
        if self.sim_backend != "auto" and (
            self.sim_backend not in available_backends()
        ):
            raise ValueError(
                f"unknown sim_backend {self.sim_backend!r}; registered "
                f"kernels: {available_backends()} (or 'auto')"
            )
        if self.max_batch_replicas < 1:
            raise ValueError("max_batch_replicas must be >= 1")
        if self.resolved_runs() < 1:
            raise ValueError("num_runs must be >= 1")

    def resolved_runs(self) -> int:
        return int(
            self.num_runs
            if self.num_runs is not None
            else self.config.monte_carlo_runs
        )

    def uses_batched_backend(self) -> bool:
        """Batched lock-step path unless a scalar-only env is requested."""
        if self.backend != "batched":
            return False
        return self.env_cls is None or issubclass(
            self.env_cls, _BatchedQueueSystemBase
        )


@dataclass(frozen=True)
class _Shard:
    """A contiguous replica chunk of one request (the work unit)."""

    request_index: int
    offset: int  # first replica index within the request
    num_runs: int
    # Batched shards carry one seed (the chunk generator); scalar shards
    # one seed per run. Entries are SeedSequences (or ints for exotic
    # generators without a retrievable seed sequence).
    seeds: "tuple[SeedMaterial, ...]"


def _spawn_seed_children(seed: "SeedLike", count: int) -> "list[SeedMaterial]":
    """Children mirroring :func:`repro.utils.rng.spawn_generators`.

    Returns picklable seed material (``SeedSequence`` children, or drawn
    integers for generators without a seed sequence) such that
    ``np.random.default_rng(child)`` equals the serial path's generator
    for the same position.
    """
    if isinstance(seed, np.random.Generator):
        seed_seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if seed_seq is None:  # pragma: no cover - exotic bit generators
            return [int(seed.integers(2**63)) for _ in range(count)]
        return list(seed_seq.spawn(count))
    if isinstance(seed, np.random.SeedSequence):
        return list(seed.spawn(count))
    return list(np.random.SeedSequence(seed).spawn(count))


def _chunk_sizes(runs: int, max_chunk: int) -> list[int]:
    """The serial path's replica chunking (same layout, same order)."""
    return [min(max_chunk, runs - start) for start in range(0, runs, max_chunk)]


def _decompose(requests: Sequence[EvalRequest]) -> list[_Shard]:
    """Split every request into its deterministic replica-chunk shards."""
    shards: list[_Shard] = []
    for index, request in enumerate(requests):
        runs = request.resolved_runs()
        if request.uses_batched_backend():
            sizes = _chunk_sizes(runs, request.max_batch_replicas)
            children = _spawn_seed_children(request.seed, len(sizes))
            offset = 0
            for size, child in zip(sizes, children):
                shards.append(_Shard(index, offset, size, (child,)))
                offset += size
        else:
            # Scalar path: one generator per run (matching the serial
            # loop), grouped into chunks so task count stays bounded.
            children = _spawn_seed_children(request.seed, runs)
            sizes = _chunk_sizes(runs, request.max_batch_replicas)
            offset = 0
            for size in sizes:
                shards.append(
                    _Shard(
                        index,
                        offset,
                        size,
                        tuple(children[offset : offset + size]),
                    )
                )
                offset += size
    return shards


def _run_shard(request: EvalRequest, shard: _Shard) -> np.ndarray:
    """Execute one shard; returns its per-replica cumulative drops.

    Must remain a module-level function (pickled by reference when
    dispatched to worker processes).
    """
    # The kernel choice travels as a kwarg only when it deviates from
    # the default, so custom env classes that predate the ``backend``
    # parameter keep working with the default kernel.
    env_kwargs = dict(request.env_kwargs)
    if request.sim_backend != "numpy":
        env_kwargs.setdefault("backend", request.sim_backend)
    if request.uses_batched_backend():
        rng = np.random.default_rng(shard.seeds[0])
        env_cls = request.env_cls or BatchedFiniteSystemEnv
        env = env_cls(
            request.config,
            num_replicas=shard.num_runs,
            seed=rng,
            **env_kwargs,
        )
        result = run_episodes_batched(
            env, request.policy, num_epochs=request.num_epochs, seed=rng
        )
        return result.total_drops_per_queue
    env_cls = request.env_cls or FiniteSystemEnv
    drops = np.empty(shard.num_runs)
    for i, child in enumerate(shard.seeds):
        rng = np.random.default_rng(child)
        env = env_cls(request.config, seed=rng, **env_kwargs)
        episode = run_episode(
            env, request.policy, num_epochs=request.num_epochs, seed=rng
        )
        drops[i] = episode.total_drops_per_queue
    return drops


class SweepExecutor:
    """Shard ``(sweep-point × replica-chunk)`` work units across processes.

    Parameters
    ----------
    workers:
        Process count. ``1`` executes every shard in-process (no
        ``multiprocessing`` involvement); ``None`` uses
        ``os.cpu_count()``. Results are independent of this value.
    mp_context:
        Optional ``multiprocessing`` context or start-method name
        (``"fork"``, ``"spawn"``, ...) forwarded to the pool.
    store:
        Optional :class:`repro.store.store.ExperimentStore`. When given,
        every shard is looked up by its content hash before dispatch
        (cache hits merge without simulating anything) and every freshly
        computed shard is persisted atomically on completion — so a
        killed sweep resumes where it stopped, and overlapping sweeps
        (e.g. two figure grids sharing sub-sweeps) reuse each other's
        shards. Cached and fresh shards merge bit-identically to a cold
        run because a shard's streams are a pure function of its key
        inputs.
    context:
        Optional :class:`repro.execution.ExecutionContext` carrying
        ``workers``, ``store``, ``claim`` and ``merge_only`` in one
        bundle. Mutually exclusive with passing those individually
        (``TypeError``); the executor is the low-level machinery, so its
        own keywords stay supported — only the *mixing* of styles is
        rejected. The context's ``sim_backend``/``max_batch_replicas``
        are per-request knobs and are ignored here.
    claim:
        Multi-node mode: before computing a pending shard, claim it
        through the store's atomic claim files
        (:meth:`~repro.store.store.ExperimentStore.try_claim`).
        Independent hosts pointing at one shared store directory then
        partition a sweep between them without a coordinator: each host
        computes the shards it wins, polls the store for shards claimed
        elsewhere, and merges everything bit-identically to a
        single-host run (shard streams are pure functions of their key
        inputs, so *who* computes a shard cannot change it). A claim
        untouched for ``stale_claim_after`` seconds (a killed worker) is
        taken over, making every shard at-least-once. Requires
        ``store``.
    merge_only:
        Merge previously completed shards from the store without
        computing anything; raises ``RuntimeError`` naming the missing
        shard count if the sweep is incomplete. This is how any host —
        even one that computed nothing — assembles a partitioned
        sweep's final result. Requires ``store``; mutually exclusive
        with ``claim``.
    claim_owner:
        Identity written into claim files (diagnostics only); defaults
        to ``"<hostname>:<pid>"``.
    stale_claim_after:
        Seconds after which another worker's untouched claim is
        considered abandoned and taken over. ``None`` disables takeover
        (a killed claimant then blocks the sweep until its claim is
        removed by hand).
    claim_poll_interval:
        Seconds between store polls while waiting for shards claimed by
        other hosts.
    claim_timeout:
        Optional overall deadline (seconds) for those waits;
        ``TimeoutError`` when exceeded. ``None`` waits indefinitely.
    """

    def __init__(
        self,
        workers: int | None = None,
        mp_context: "BaseContext | str | None" = None,
        store: "ExperimentStore | None" = None,
        context: "ExecutionContext | None" = None,
        claim: bool = False,
        merge_only: bool = False,
        claim_owner: str | None = None,
        stale_claim_after: float | None = 1800.0,
        claim_poll_interval: float = 0.25,
        claim_timeout: float | None = None,
    ) -> None:
        import os

        if context is not None:
            if workers is not None or store is not None or claim or merge_only:
                raise TypeError(
                    "pass workers/store either via context= or "
                    "individually, not both"
                )
            workers = context.workers
            store = context.store
            claim = getattr(context, "claim", False)
            merge_only = getattr(context, "merge_only", False)
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if claim and merge_only:
            raise ValueError("claim and merge_only are mutually exclusive")
        if (claim or merge_only) and store is None:
            raise ValueError(
                "claim/merge_only coordinate through the experiment "
                "store; pass store= as well"
            )
        if stale_claim_after is not None and stale_claim_after <= 0:
            raise ValueError("stale_claim_after must be > 0 (or None)")
        if claim_poll_interval <= 0:
            raise ValueError("claim_poll_interval must be > 0")
        if claim_timeout is not None and claim_timeout <= 0:
            raise ValueError("claim_timeout must be > 0 (or None)")
        self.workers = int(workers)
        if isinstance(mp_context, str):
            import multiprocessing

            mp_context = multiprocessing.get_context(mp_context)
        self._mp_context = mp_context
        self.store = store
        self.claim = bool(claim)
        self.merge_only = bool(merge_only)
        if claim_owner is None:
            import socket

            claim_owner = f"{socket.gethostname()}:{os.getpid()}"
        self.claim_owner = str(claim_owner)
        self.stale_claim_after = stale_claim_after
        self.claim_poll_interval = float(claim_poll_interval)
        self.claim_timeout = claim_timeout

    def run_drops(self, requests: Sequence[EvalRequest]) -> list[np.ndarray]:
        """Merged per-replica drops for every request, in request order.

        The low-level entry point: returns the raw drop arrays so callers
        that do not want :class:`MonteCarloResult` objects (benchmarks,
        custom mergers) can consume shard output directly.
        """
        requests = list(requests)
        merged = [np.empty(req.resolved_runs()) for req in requests]
        pending = self._resolve_cached(requests, _decompose(requests), merged)
        if self.merge_only:
            if pending:
                raise RuntimeError(
                    f"merge-only sweep is missing {len(pending)} shard(s) "
                    "from the store; run the claimants to completion first"
                )
            return merged
        if self.claim:
            self._run_claimed(requests, merged, pending)
            return merged
        self._execute(requests, merged, pending)
        return merged

    def _execute(
        self,
        requests: list[EvalRequest],
        merged: list[np.ndarray],
        pending: "list[tuple[_Shard, str | None]]",
    ) -> None:
        """Compute ``pending`` shards (serially or pooled) and merge them."""
        if self.workers == 1 or len(pending) <= 1:
            for shard, key in pending:
                drops = _run_shard(requests[shard.request_index], shard)
                self._merge(merged, shard, drops)
                self._persist(requests[shard.request_index], shard, key, drops)
            return
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=max_workers, mp_context=self._mp_context
        ) as pool:
            futures = {
                pool.submit(
                    _run_shard, requests[shard.request_index], shard
                ): (shard, key)
                for shard, key in pending
            }
            try:
                for future in as_completed(futures):
                    shard, key = futures[future]
                    drops = future.result()
                    self._merge(merged, shard, drops)
                    self._persist(
                        requests[shard.request_index], shard, key, drops
                    )
            except BaseException:
                # Fail fast: drop every still-queued shard instead of
                # letting a long sweep run to completion behind the
                # first worker failure (in-flight shards still finish).
                for future in futures:
                    future.cancel()
                raise

    def _run_claimed(
        self,
        requests: list[EvalRequest],
        merged: list[np.ndarray],
        pending: "list[tuple[_Shard, str | None]]",
    ) -> None:
        """Claim-partitioned execution of ``pending`` against the store.

        Each round claims whatever shards are unowned (including stale
        claims of dead workers), computes them, then sweeps the store
        for shards other hosts finished in the meantime. The loop
        terminates because every shard is either claimable here
        eventually (stale takeover) or completed — and published —
        elsewhere; merged output is bit-identical to a single-host run
        because shard results are pure functions of their key inputs.
        """
        import time

        assert self.store is not None
        deadline = (
            None
            if self.claim_timeout is None
            else time.monotonic() + self.claim_timeout
        )
        remaining = list(pending)
        while remaining:
            mine: list[tuple[_Shard, str | None]] = []
            waiting: list[tuple[_Shard, str | None]] = []
            for shard, key in remaining:
                assert key is not None  # claim mode requires a store
                if not self.store.try_claim(
                    key, self.claim_owner, stale_after=self.stale_claim_after
                ):
                    waiting.append((shard, key))
                    continue
                # Claim-then-check: a finished claimant persists *before*
                # releasing, so holding the claim and still missing the
                # entry proves nobody computed this shard — duplicates
                # are impossible outside stale takeover of a live
                # worker.
                drops = self.store.get_shard(key, expected_runs=shard.num_runs)
                if drops is not None:
                    self._merge(merged, shard, drops)
                    self.store.release_claim(key)
                else:
                    mine.append((shard, key))
            if mine:
                try:
                    self._execute(requests, merged, mine)
                finally:
                    # Results are persisted (or at least merged); drop
                    # the claims so crashes here don't strand shards
                    # until stale takeover.
                    for _, key in mine:
                        self.store.release_claim(key)
            remaining = []
            for shard, key in waiting:
                drops = self.store.get_shard(key, expected_runs=shard.num_runs)
                if drops is not None:
                    self._merge(merged, shard, drops)
                else:
                    remaining.append((shard, key))
            if remaining and not mine:
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"{len(remaining)} shard(s) still claimed by other "
                        f"workers after {self.claim_timeout:g}s"
                    )
                time.sleep(self.claim_poll_interval)

    def _resolve_cached(
        self,
        requests: list[EvalRequest],
        shards: list[_Shard],
        merged: list[np.ndarray],
    ) -> "list[tuple[_Shard, str | None]]":
        """Merge store hits in place; return the shards left to compute.

        Each pending entry carries the shard's precomputed store key
        (``None`` without a store) so completion can persist the result
        without re-hashing the request.
        """
        if self.store is None:
            return [(shard, None) for shard in shards]
        from repro.store.keys import shard_key

        pending: list[tuple[_Shard, str | None]] = []
        for shard in shards:
            key = shard_key(requests[shard.request_index], shard)
            drops = self.store.get_shard(key, expected_runs=shard.num_runs)
            if drops is not None:
                self._merge(merged, shard, drops)
            else:
                pending.append((shard, key))
        return pending

    def _persist(
        self,
        request: EvalRequest,
        shard: _Shard,
        key: str | None,
        drops: np.ndarray,
    ) -> None:
        """Write one completed shard back to the store (if attached).

        Persistence failures (disk full, store turned read-only, ...)
        must not lose the freshly simulated result or abort the sweep:
        the merged statistics are already correct without the cache, so
        the error is downgraded to a warning and counted on the store's
        ``write_errors`` stat — the worst case of an unwritable store is
        recomputation next run, mirroring the read path's recovery
        discipline.
        """
        if self.store is None or key is None:
            return
        try:
            self.store.put_shard(
                key,
                drops,
                meta={"policy": request.policy.name, "offset": shard.offset},
            )
        except OSError as exc:
            import warnings

            self.store.stats.write_errors += 1
            warnings.warn(
                f"experiment store write failed ({exc}); continuing "
                "without persisting this shard",
                RuntimeWarning,
                stacklevel=2,
            )

    def run(self, requests: Sequence[EvalRequest]) -> "list[MonteCarloResult]":
        """Evaluate every request; returns one merged
        :class:`~repro.experiments.runner.MonteCarloResult` per request,
        bit-identical to the serial
        :func:`~repro.experiments.runner.evaluate_policy_finite` path."""
        from repro.experiments.runner import MonteCarloResult

        requests = list(requests)
        return [
            MonteCarloResult(
                policy_name=request.policy.name,
                config=request.config,
                drops=drops,
                interval=mean_confidence_interval(drops),
            )
            for request, drops in zip(requests, self.run_drops(requests))
        ]

    @staticmethod
    def _merge(
        merged: list[np.ndarray], shard: _Shard, drops: np.ndarray
    ) -> None:
        if drops.shape != (shard.num_runs,):
            raise RuntimeError(
                f"shard returned {drops.shape}, expected ({shard.num_runs},)"
            )
        merged[shard.request_index][
            shard.offset : shard.offset + shard.num_runs
        ] = drops
