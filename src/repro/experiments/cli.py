"""Command-line interface for the experiment harness.

Regenerate any paper artifact — or any registered scenario — from a
shell::

    python -m repro.experiments.cli table1
    python -m repro.experiments.cli table2
    python -m repro.experiments.cli fig3 --iterations 10
    python -m repro.experiments.cli fig4 --delta-t 5 --m-grid 25,50,100
    python -m repro.experiments.cli fig5 --queues 100 --runs 5 --workers 4
    python -m repro.experiments.cli fig6 --queues 100 --runs 5
    python -m repro.experiments.cli scenario list
    python -m repro.experiments.cli scenario heterogeneous-sed --workers 4
    python -m repro.experiments.cli leaderboard --workers 4
    python -m repro.experiments.cli stream diurnal-stream --horizon 100000
    python -m repro.experiments.cli reproduce --workers 4

Each command prints the regenerated ASCII table and, with ``--csv PATH``,
writes the underlying series for external plotting. Grids default to
bench scale; pass paper-scale values explicitly for a full reproduction.
``--workers K`` shards the Monte-Carlo sweeps across ``K`` processes
(results are bit-identical to ``--workers 1``; see ``docs/scaling.md``).
``--store-dir DIR`` attaches a content-addressed shard cache so repeated
and overlapping sweeps only simulate what is new. Adding ``--claim``
turns the shared store into a multi-node work queue: independent hosts
pointing the same command at one store directory partition the sweep's
shards between them, and ``--merge-only`` assembles the final result
from a completed partitioned run (see ``docs/scaling.md``).

``stream`` runs one registered scenario through the streaming serving
engine (:mod:`repro.serving`) for an arbitrarily long horizon with
O(1)-memory online metrics — per-replica drop/throughput/latency-proxy
summaries plus a bounded windowed time series — instead of a finite
sweep; see ``docs/serving.md``.

``reproduce`` regenerates *every* artifact declared in a reproduction
manifest (default: the packaged ``repro/assets/reproduction.toml``) into
``results/`` with per-artifact provenance JSON, routing all Monte-Carlo
work through the shard store — an interrupted run resumes where it
stopped, bit-identical to a cold run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.fig3_training import run_fig3
from repro.experiments.fig4_convergence import run_fig4
from repro.experiments.fig5_delay_sweep import run_fig5
from repro.experiments.fig6_small_n import run_fig6
from repro.experiments.tables import render_table1, render_table2

__all__ = ["main", "build_parser"]


def _parse_floats(text: str) -> tuple[float, ...]:
    try:
        values = tuple(float(x) for x in text.split(",") if x.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of numbers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError(
            f"expected at least one value, got {text!r}"
        )
    return values


def _parse_ints(text: str) -> tuple[int, ...]:
    try:
        values = tuple(int(x) for x in text.split(",") if x.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of integers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError(
            f"expected at least one value, got {text!r}"
        )
    return values


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_chaos(text: str):
    """Parse a ``--chaos`` degradation-schedule spec at argument time,
    so a malformed schedule is a usage error (exit 2) before any
    simulation or pool spin-up."""
    from repro.queueing.chaos import parse_chaos_spec

    try:
        return parse_chaos_spec(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_chaos_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--chaos", type=_parse_chaos, default=None, metavar="SPEC",
        help="inject a degradation schedule (repro.queueing.chaos): "
        "';'-separated epoch-anchored events, e.g. "
        "'outage@40-80:frac=0.1,mode=loss; flap@20-60:factor=0.5' "
        "('links@...' needs a graph scenario); replaces any schedule "
        "the scenario embeds",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: system parameters")
    sub.add_parser("table2", help="Table 2: PPO hyperparameters")

    p3 = sub.add_parser("fig3", help="Figure 3: PPO training curve")
    p3.add_argument("--delta-t", type=float, default=5.0)
    p3.add_argument("--iterations", type=int, default=10)
    p3.add_argument("--horizon", type=int, default=100)
    p3.add_argument("--seed", type=int, default=0)
    p3.add_argument("--csv", type=Path, default=None)

    p4 = sub.add_parser("fig4", help="Figure 4: mean-field convergence")
    p4.add_argument("--delta-t", type=float, default=5.0)
    p4.add_argument("--m-grid", type=_parse_ints, default=(25, 50, 100))
    p4.add_argument("--runs", type=int, default=5)
    p4.add_argument("--seed", type=int, default=0)
    p4.add_argument("--csv", type=Path, default=None)
    _add_workers_flag(p4)
    _add_store_flag(p4)
    _add_sim_backend_flag(p4)

    p5 = sub.add_parser("fig5", help="Figure 5: delay sweep")
    p5.add_argument("--queues", type=int, default=100)
    p5.add_argument(
        "--delta-ts", type=_parse_floats,
        default=tuple(float(x) for x in range(1, 11)),
    )
    p5.add_argument("--runs", type=int, default=5)
    p5.add_argument("--seed", type=int, default=0)
    p5.add_argument("--csv", type=Path, default=None)
    _add_workers_flag(p5)
    _add_store_flag(p5)
    _add_sim_backend_flag(p5)

    p6 = sub.add_parser("fig6", help="Figure 6: N >> M violated")
    p6.add_argument("--queues", type=int, default=100)
    p6.add_argument(
        "--delta-ts", type=_parse_floats,
        default=tuple(float(x) for x in range(1, 11)),
    )
    p6.add_argument("--runs", type=int, default=5)
    p6.add_argument("--seed", type=int, default=0)
    p6.add_argument("--csv", type=Path, default=None)
    _add_workers_flag(p6)
    _add_store_flag(p6)
    _add_sim_backend_flag(p6)

    ps = sub.add_parser(
        "scenario",
        help="registered scenario sweeps ('scenario list' to enumerate)",
    )
    ps.add_argument(
        "name",
        help="registered scenario name, or 'list' to print the catalogue",
    )
    ps.add_argument(
        "--delta-ts", type=_parse_floats, default=None,
        help="override the scenario's delay grid",
    )
    ps.add_argument(
        "--queues", type=_positive_int, default=None,
        help="override M (N follows the scenario's client rule)",
    )
    ps.add_argument(
        "--runs", type=_positive_int, default=None,
        help="override the Monte-Carlo replica count",
    )
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument("--csv", type=Path, default=None)
    _add_chaos_flag(ps)
    _add_workers_flag(ps)
    _add_store_flag(ps)
    _add_sim_backend_flag(ps)
    _add_claim_flags(ps)

    plb = sub.add_parser(
        "leaderboard",
        help="training-campaign leaderboard: natively trained MF-regime "
        "checkpoints vs transplanted MF vs JSQ/RND/THR under matched "
        "seeds (the 'leaderboard' scenario, plus checkpoint provenance)",
    )
    plb.add_argument(
        "--delta-ts", type=_parse_floats, default=None,
        help="override the leaderboard's delay grid",
    )
    plb.add_argument(
        "--queues", type=_positive_int, default=None,
        help="override M (N follows the scenario's client rule)",
    )
    plb.add_argument(
        "--runs", type=_positive_int, default=None,
        help="override the Monte-Carlo replica count",
    )
    plb.add_argument("--seed", type=int, default=0)
    plb.add_argument("--csv", type=Path, default=None)
    _add_workers_flag(plb)
    _add_store_flag(plb)
    _add_sim_backend_flag(plb)
    _add_claim_flags(plb)

    pstream = sub.add_parser(
        "stream",
        help="stream a registered scenario with O(1)-memory online metrics",
    )
    pstream.add_argument("name", help="registered scenario name")
    pstream.add_argument(
        "--horizon", type=_positive_int, default=2000,
        help="decision epochs to stream (memory stays flat at any value)",
    )
    pstream.add_argument(
        "--window", type=_positive_int, default=None,
        help="operator-series window in epochs (default: horizon // 64)",
    )
    pstream.add_argument(
        "--replicas", type=_positive_int, default=4,
        help="lock-step Monte-Carlo replicas",
    )
    pstream.add_argument(
        "--delta-t", type=float, default=None,
        help="broadcast period (default: the scenario grid's first entry)",
    )
    pstream.add_argument(
        "--policy", default=None,
        help="policy name within the scenario's suite (default: first)",
    )
    pstream.add_argument(
        "--queues", type=_positive_int, default=None,
        help="override M (N follows the scenario's client rule)",
    )
    pstream.add_argument(
        "--controller", default=None, metavar="NAME",
        help="closed-loop controller from the scenario's registered "
        "suite (e.g. 'rate', 'oracle', 'static'; see docs/serving.md); "
        "default: uncontrolled",
    )
    pstream.add_argument(
        "--max-windows", type=_positive_int, default=None,
        help="retained operator-series rows (older windows are merged "
        "pairwise; default: 512)",
    )
    pstream.add_argument("--seed", type=int, default=0)
    pstream.add_argument(
        "--csv", type=Path, default=None,
        help="write the windowed series as CSV",
    )
    _add_chaos_flag(pstream)
    _add_workers_flag(pstream)
    _add_store_flag(pstream)
    _add_sim_backend_flag(pstream)

    pr = sub.add_parser(
        "reproduce",
        help="regenerate every artifact of a reproduction manifest",
    )
    pr.add_argument(
        "--manifest", type=Path, default=None,
        help="manifest TOML (default: the packaged reproduction.toml)",
    )
    pr.add_argument(
        "--results-dir", type=Path, default=Path("results"),
        help="output directory for tables/CSVs/provenance (default: results/)",
    )
    pr.add_argument(
        "--store-dir", type=Path, default=None,
        help="shard-store directory (default: <results-dir>/.store)",
    )
    pr.add_argument(
        "--no-store", action="store_true",
        help="disable the shard store (simulate everything fresh)",
    )
    pr.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="run only this artifact (repeatable)",
    )
    pr.add_argument(
        "--list", action="store_true", dest="list_artifacts",
        help="list the manifest's artifacts and exit",
    )
    pr.add_argument(
        "--echo", action="store_true",
        help="print each artifact's table as it is regenerated",
    )
    _add_workers_flag(pr)
    _add_claim_flags(pr)
    return parser


def _add_workers_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="process count for the sharded sweep (1 = in-process; "
        "results are identical for any value)",
    )


def _add_store_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--store-dir", type=Path, default=None, metavar="DIR",
        help="content-addressed shard cache: reuse previously computed "
        "replica chunks and persist fresh ones (bit-identical results "
        "either way)",
    )


def _add_claim_flags(subparser: argparse.ArgumentParser) -> None:
    group = subparser.add_mutually_exclusive_group()
    group.add_argument(
        "--claim", action="store_true",
        help="multi-node mode: claim each shard through the shared store "
        "before computing it, so independent hosts pointing at one "
        "--store-dir partition the sweep between them (results merge "
        "bit-identically to a single-host run; see docs/scaling.md)",
    )
    group.add_argument(
        "--merge-only", action="store_true",
        help="assemble the result purely from previously computed shards "
        "in the store; fails if any shard is missing",
    )


def _check_claim_flags(parser: argparse.ArgumentParser, args) -> None:
    """Claim coordination needs the shared store directory to exist."""
    if getattr(args, "claim", False) or getattr(args, "merge_only", False):
        flag = "--claim" if getattr(args, "claim", False) else "--merge-only"
        if getattr(args, "store_dir", None) is None:
            parser.error(
                f"{flag} coordinates work through the shared shard store; "
                "pass --store-dir as well"
            )


def _add_sim_backend_flag(subparser: argparse.ArgumentParser) -> None:
    from repro.queueing.backends import available_backends

    subparser.add_argument(
        "--sim-backend", default="numpy", metavar="NAME",
        choices=(*available_backends(), "auto"),
        help="epoch kernel: 'numpy' (default), 'numba' (JIT-compiled, "
        "bit-identical, falls back to numpy when numba is missing) or "
        "'auto' (fastest runnable)",
    )


def _emit(text: str, result, csv_path: Path | None) -> None:
    print(text)
    if csv_path is not None and result is not None:
        csv_path.parent.mkdir(parents=True, exist_ok=True)
        csv_path.write_text(result.to_csv() + "\n")
        print(f"\n[csv written to {csv_path}]")


def _open_store(args):
    """The ``--store-dir`` cache for sweep commands (``None`` when unset)."""
    if getattr(args, "store_dir", None) is None:
        return None
    from repro.store import ExperimentStore

    return ExperimentStore(args.store_dir)


def _execution_context(args):
    """Bundle the sweep flags into one ExecutionContext."""
    from repro.execution import ExecutionContext

    return ExecutionContext(
        workers=getattr(args, "workers", 1),
        store=_open_store(args),
        sim_backend=getattr(args, "sim_backend", "numpy"),
        claim=getattr(args, "claim", False),
        merge_only=getattr(args, "merge_only", False),
    )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "table1":
        print(render_table1())
    elif args.command == "table2":
        print(render_table2())
    elif args.command == "fig3":
        result = run_fig3(
            delta_t=args.delta_t,
            iterations=args.iterations,
            horizon=args.horizon,
            seed=args.seed,
        )
        _emit(result.format_table(), result, args.csv)
    elif args.command == "fig4":
        result = run_fig4(
            delta_t=args.delta_t,
            m_grid=args.m_grid,
            num_runs=args.runs,
            seed=args.seed,
            context=_execution_context(args),
        )
        _emit(result.format_table(), result, args.csv)
    elif args.command == "fig5":
        result = run_fig5(
            num_queues=args.queues,
            delta_ts=args.delta_ts,
            num_runs=args.runs,
            seed=args.seed,
            context=_execution_context(args),
        )
        _emit(result.format_table(), result, args.csv)
    elif args.command == "fig6":
        result = run_fig6(
            num_queues=args.queues,
            delta_ts=args.delta_ts,
            num_runs=args.runs,
            seed=args.seed,
            context=_execution_context(args),
        )
        _emit(result.format_table(), result, args.csv)
    elif args.command == "scenario":
        from repro.scenarios import run_scenario, scenario_summaries
        from repro.utils.tables import format_table

        if args.name == "list":
            conflicting = [
                flag
                for flag, value in (
                    ("--delta-ts", args.delta_ts),
                    ("--queues", args.queues),
                    ("--runs", args.runs),
                    ("--csv", args.csv),
                    ("--chaos", args.chaos),
                    ("--store-dir", args.store_dir),
                )
                if value is not None
            ]
            if args.workers != 1:
                conflicting.append("--workers")
            if args.sim_backend != "numpy":
                conflicting.append("--sim-backend")
            if args.claim:
                conflicting.append("--claim")
            if args.merge_only:
                conflicting.append("--merge-only")
            if conflicting:
                parser.error(
                    "'scenario list' prints the catalogue and takes no "
                    f"sweep options (got {', '.join(conflicting)})"
                )
            print(
                format_table(
                    ["scenario", "ρ", "default grid", "description"],
                    [list(row) for row in scenario_summaries()],
                    title="Registered scenarios",
                )
            )
        else:
            _check_claim_flags(parser, args)
            try:
                result = run_scenario(
                    args.name,
                    delta_ts=args.delta_ts,
                    num_queues=args.queues,
                    num_runs=args.runs,
                    seed=args.seed,
                    context=_execution_context(args),
                    chaos=args.chaos,
                )
            except KeyError as exc:
                # Unknown scenario: a usage error, not a traceback. The
                # registry's message already lists the available names.
                print(f"error: {exc.args[0]}", file=sys.stderr)
                print(
                    "hint: 'scenario list' prints the catalogue",
                    file=sys.stderr,
                )
                return 2
            except ValueError as exc:
                if args.chaos is None:
                    raise
                # Well-formed schedule that cannot run on this scenario
                # (e.g. link events without a topology, queue indices
                # past M): still a usage error, caught pre-simulation.
                print(f"error: {exc}", file=sys.stderr)
                return 2
            _emit(result.format_table(), result, args.csv)
    elif args.command == "leaderboard":
        from repro.experiments.campaign import get_regime_policy
        from repro.scenarios import run_scenario

        _check_claim_flags(parser, args)
        result = run_scenario(
            "leaderboard",
            delta_ts=args.delta_ts,
            num_queues=args.queues,
            num_runs=args.runs,
            seed=args.seed,
            context=_execution_context(args),
        )
        _emit(result.format_table(), result, args.csv)
        # Provenance footer: whether each MF-regime column came from a
        # native campaign checkpoint or a fallback (cold checkout).
        sources = ", ".join(
            f"Δt={dt:g}: {get_regime_policy(dt)[1]}" for dt in result.delta_ts
        )
        print(f"\nMF-regime checkpoint sources — {sources}")
    elif args.command == "stream":
        from repro.serving import run_stream_scenario

        if args.delta_t is not None and args.delta_t <= 0:
            parser.error("--delta-t must be > 0")
        try:
            result = run_stream_scenario(
                args.name,
                horizon=args.horizon,
                window=args.window,
                delta_t=args.delta_t,
                num_queues=args.queues,
                num_replicas=args.replicas,
                policy=args.policy,
                controller=args.controller,
                seed=args.seed,
                context=_execution_context(args),
                chaos=args.chaos,
                **(
                    {"max_windows": args.max_windows}
                    if args.max_windows is not None
                    else {}
                ),
            )
        except KeyError as exc:
            # Unknown scenario or policy: a usage error, not a traceback.
            print(f"error: {exc.args[0]}", file=sys.stderr)
            print(
                "hint: 'scenario list' prints the catalogue",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            if args.chaos is None:
                raise
            # A schedule that parsed but cannot run on this scenario's
            # environment is still a usage error, caught pre-simulation.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _emit(result.format_table(), result, args.csv)
    elif args.command == "reproduce":
        from repro.store import load_manifest, run_reproduction

        if args.no_store and args.store_dir is not None:
            parser.error(
                "--store-dir names a shard cache but --no-store disables "
                "caching; pass one or the other"
            )
        if (args.claim or args.merge_only) and args.no_store:
            flag = "--claim" if args.claim else "--merge-only"
            parser.error(
                f"{flag} coordinates work through the shard store; "
                "drop --no-store"
            )
        try:
            manifest = load_manifest(args.manifest)
        except (OSError, ValueError) as exc:
            print(f"error: invalid manifest: {exc}", file=sys.stderr)
            return 2
        if args.list_artifacts:
            from repro.utils.tables import format_table

            rows = [
                [
                    spec.name,
                    spec.kind,
                    ", ".join(
                        f"{k}={v}" for k, v in sorted(spec.params.items())
                    )
                    or "—",
                ]
                for spec in manifest.artifacts
            ]
            print(
                format_table(
                    ["artifact", "kind", "parameters"],
                    rows,
                    title=f"Manifest — {manifest.title}",
                )
            )
            return 0
        store = None
        if not args.no_store:
            store = (
                args.store_dir
                if args.store_dir is not None
                else args.results_dir / ".store"
            )
        try:
            report = run_reproduction(
                manifest,
                results_dir=args.results_dir,
                store=store,
                workers=args.workers,
                only=args.only,
                echo=args.echo,
                claim=args.claim,
                merge_only=args.merge_only,
            )
        except ValueError as exc:  # unknown --only name, bad params, ...
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.format_table())
    else:  # pragma: no cover - argparse enforces choices
        raise AssertionError(f"unhandled command {args.command!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
