"""Figure 3: PPO training curve on the mean-field MDP.

The paper trains PPO for ~2.5e7 simulated decision epochs at ``Δt = 5``
and plots the episode return (negative packet drops per ``T_e = 500``
epoch episode) against training steps, together with horizontal
reference lines for the MF-JSQ(2) and MF-RND rules evaluated in the same
mean-field model. This module reproduces that experiment at a
configurable budget: the same MDP, the same loss, the same
hyperparameters (Table 2), fewer iterations by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.config import PPOConfig, SystemConfig, paper_ppo_config, paper_system_config
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.policies.learned import NeuralPolicy
from repro.policies.static import JoinShortestQueuePolicy, RandomPolicy
from repro.rl.evaluation import evaluate_policies_mfc, evaluate_policy_mfc
from repro.rl.ppo import PPOTrainer
from repro.utils.tables import format_table, series_to_csv

__all__ = ["TrainingCurveResult", "run_fig3"]


@dataclass
class TrainingCurveResult:
    """Everything Figure 3 plots, as numbers."""

    delta_t: float
    horizon: int
    env_steps: list[int]
    mean_returns: list[float]
    baseline_returns: dict[str, float]
    final_return: float
    policy: NeuralPolicy
    iteration_stats: list = field(default_factory=list)

    def improved_over(self, baseline: str) -> bool:
        return self.final_return > self.baseline_returns[baseline]

    def to_csv(self) -> str:
        rows = list(zip(self.env_steps, self.mean_returns))
        return series_to_csv(["env_steps", "mean_episode_return"], rows)

    def format_table(self) -> str:
        rows = [
            ["MF final", self.final_return],
            *[[name, value] for name, value in self.baseline_returns.items()],
        ]
        return format_table(
            ["Policy", f"Episode return (T={self.horizon}, Δt={self.delta_t:g})"],
            rows,
            title="Figure 3: mean-field episode returns",
        )


def run_fig3(
    delta_t: float = 5.0,
    iterations: int = 30,
    horizon: int = 100,
    config: SystemConfig | None = None,
    ppo_config: PPOConfig | None = None,
    baseline_episodes: int = 30,
    seed: int = 0,
    propagator: str = "tabulated",
    callback=None,
) -> TrainingCurveResult:
    """Train PPO on the MFC MDP and compare to the static baselines.

    Parameters
    ----------
    iterations:
        PPO iterations of ``train_batch_size`` env steps each. The paper
        uses ~6000 (2.5e7 steps); the default regenerates the curve's
        shape in minutes.
    horizon:
        Episode length in decision epochs (paper: 500). Returns scale
        linearly with it, so baselines and the learned curve stay
        comparable at any value.
    """
    cfg = (
        config
        if config is not None
        else paper_system_config(delta_t=delta_t, num_queues=100)
    )
    if cfg.delta_t != delta_t:
        cfg = cfg.with_updates(delta_t=delta_t)
    ppo = ppo_config if ppo_config is not None else paper_ppo_config(seed=seed)

    env = MeanFieldEnv(cfg, horizon=horizon, propagator=propagator, seed=seed)
    eval_env = MeanFieldEnv(
        cfg, horizon=horizon, propagator=propagator, seed=seed + 1
    )

    baselines = {
        f"MF-JSQ({cfg.d})": JoinShortestQueuePolicy(cfg.num_queue_states, cfg.d),
        "MF-RND": RandomPolicy(cfg.num_queue_states, cfg.d),
    }
    baseline_cis = evaluate_policies_mfc(
        eval_env, baselines, episodes=baseline_episodes, seed=seed
    )
    baseline_returns = {name: ci.mean for name, ci in baseline_cis.items()}

    trainer = PPOTrainer(env, config=ppo, seed=seed)
    env_steps: list[int] = []
    mean_returns: list[float] = []
    stats_history = []

    def record(stats) -> None:
        env_steps.append(stats.env_steps)
        mean_returns.append(stats.mean_episode_return)
        stats_history.append(stats)
        if callback is not None:
            callback(stats)

    trainer.train(iterations, callback=record)

    policy = NeuralPolicy(
        trainer.policy,
        num_states=cfg.num_queue_states,
        d=cfg.d,
        num_modes=env.num_modes,
        deterministic=True,
    )
    final_ci = evaluate_policy_mfc(
        eval_env, policy, episodes=baseline_episodes, seed=seed + 2
    )
    return TrainingCurveResult(
        delta_t=delta_t,
        horizon=horizon,
        env_steps=env_steps,
        mean_returns=mean_returns,
        baseline_returns=baseline_returns,
        final_return=final_ci.mean,
        policy=policy,
        iteration_stats=stats_history,
    )
