"""Regeneration of the paper's Table 1 and Table 2.

Both tables are parameter listings; "reproducing" them means rendering
the library's default configurations and asserting they carry exactly
the published values (done in the corresponding benches/tests).
"""

from __future__ import annotations

from repro.config import (
    TABLE1_ROWS,
    TABLE2_ROWS,
    PPOConfig,
    SystemConfig,
    paper_ppo_config,
    paper_system_config,
)
from repro.utils.tables import format_table

__all__ = [
    "render_table1",
    "render_table2",
    "table1_matches_config",
    "table2_matches_config",
]


def render_table1() -> str:
    """ASCII rendition of Table 1 (system parameters)."""
    return format_table(
        ["Symbol", "Name", "Value"],
        TABLE1_ROWS,
        title="Table 1: System parameters used in the experiments.",
    )


def render_table2() -> str:
    """ASCII rendition of Table 2 (PPO hyperparameters)."""
    return format_table(
        ["Symbol", "Name", "Value"],
        TABLE2_ROWS,
        title="Table 2: Hyperparameter configuration for PPO.",
    )


def table1_matches_config(config: SystemConfig | None = None) -> dict[str, bool]:
    """Field-by-field agreement of Table 1 with the default paper config."""
    cfg = config if config is not None else paper_system_config()
    return {
        "service_rate": cfg.service_rate == 1.0,
        "arrival_rates": cfg.arrival_levels == (0.9, 0.6),
        "d": cfg.d == 2,
        "buffer_size": cfg.buffer_size == 5,
        "initial_state": cfg.initial_state == 0,
        "drop_penalty": cfg.drop_penalty == 1.0,
        "episode_length": cfg.episode_length == 500,
        "monte_carlo_runs": cfg.monte_carlo_runs == 100,
        "delta_t_in_range": 1.0 <= cfg.delta_t <= 10.0,
        "num_queues_in_range": 100 <= cfg.num_queues <= 1000,
        "num_clients_in_range": 1_000 <= cfg.num_clients <= 1_000_000,
        "eval_length_rule": cfg.resolved_eval_length()
        == max(1, round(500 / cfg.delta_t)),
    }


def table2_matches_config(config: PPOConfig | None = None) -> dict[str, bool]:
    """Field-by-field agreement of Table 2 with the default PPO config."""
    cfg = config if config is not None else paper_ppo_config()
    return {
        "gamma": cfg.gamma == 0.99,
        "gae_lambda": cfg.gae_lambda == 1.0,
        "kl_coeff": cfg.kl_coeff == 0.2,
        "clip_param": cfg.clip_param == 0.3,
        "learning_rate": cfg.learning_rate == 5e-5,
        "train_batch_size": cfg.train_batch_size == 4000,
        "minibatch_size": cfg.minibatch_size == 128,
        "num_epochs": cfg.num_epochs == 30,
        "network": cfg.hidden_sizes == (256, 256),
    }
