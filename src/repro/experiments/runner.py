"""Shared Monte-Carlo evaluation machinery for the figure experiments.

The paper evaluates every policy with ``n`` independent simulations of
the finite system and reports the mean cumulative per-queue packet drops
with 95% confidence intervals. :func:`evaluate_policy_finite` is that
loop; :func:`policy_suite` builds the standard comparison set
(MF / JSQ(2) / RND) used by Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config import SystemConfig
from repro.queueing.env import FiniteSystemEnv, run_episode
from repro.utils.rng import spawn_generators
from repro.utils.stats import ConfidenceInterval, mean_confidence_interval

if TYPE_CHECKING:
    from repro.policies.base import UpperLevelPolicy

__all__ = ["MonteCarloResult", "evaluate_policy_finite", "policy_suite"]


@dataclass
class MonteCarloResult:
    """Aggregate of ``n`` finite-system evaluation episodes."""

    policy_name: str
    config: SystemConfig
    drops: np.ndarray  # per-run cumulative per-queue drops
    interval: ConfidenceInterval

    @property
    def mean_drops(self) -> float:
        return self.interval.mean


def evaluate_policy_finite(
    config: SystemConfig,
    policy: "UpperLevelPolicy",
    num_runs: int | None = None,
    num_epochs: int | None = None,
    seed=0,
    env_cls=FiniteSystemEnv,
    env_kwargs: dict | None = None,
) -> MonteCarloResult:
    """Monte-Carlo estimate of cumulative per-queue drops (Figures 4-6).

    Each run uses an independent generator spawned from ``seed``; the
    environment is rebuilt per run so runs are fully independent.
    """
    runs = int(num_runs if num_runs is not None else config.monte_carlo_runs)
    if runs < 1:
        raise ValueError("num_runs must be >= 1")
    rngs = spawn_generators(seed, runs)
    drops = np.empty(runs)
    for i, rng in enumerate(rngs):
        env = env_cls(config, seed=rng, **(env_kwargs or {}))
        result = run_episode(env, policy, num_epochs=num_epochs, seed=rng)
        drops[i] = result.total_drops_per_queue
    return MonteCarloResult(
        policy_name=policy.name,
        config=config,
        drops=drops,
        interval=mean_confidence_interval(drops),
    )


def policy_suite(
    config: SystemConfig,
    mf_policy: "UpperLevelPolicy | None" = None,
) -> dict[str, "UpperLevelPolicy"]:
    """The paper's comparison set: MF (if given), JSQ(d), RND."""
    from repro.policies.static import JoinShortestQueuePolicy, RandomPolicy

    suite: dict[str, "UpperLevelPolicy"] = {}
    if mf_policy is not None:
        suite["MF"] = mf_policy
    suite[f"JSQ({config.d})"] = JoinShortestQueuePolicy(
        config.num_queue_states, config.d
    )
    suite["RND"] = RandomPolicy(config.num_queue_states, config.d)
    return suite
