"""Shared Monte-Carlo evaluation machinery for the figure experiments.

The paper evaluates every policy with ``n`` independent simulations of
the finite system and reports the mean cumulative per-queue packet drops
with 95% confidence intervals. :func:`evaluate_policy_finite` is that
loop; :func:`policy_suite` builds the standard comparison set
(MF / JSQ(2) / RND) used by Figures 5 and 6.

Since the batched-backend refactor the ``n`` replicas run in lock-step
through :class:`repro.queueing.batched_env.BatchedFiniteSystemEnv`
(queue states ``(E, M)``, one kernel call per epoch for the whole
ensemble) instead of one scalar environment at a time — the Figure 4-6
seed- and ``N``-sweeps all flow through this path. Replicas are chunked
(``max_batch_replicas``) so the ``(E, N, d)`` client-sampling buffers
stay bounded for the paper's largest ``N = 10^6`` settings, and
``backend="scalar"`` forces the historical per-replica loop (identical
in distribution; used by the equivalence tests and as a fallback for
custom scalar-only environments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config import SystemConfig
from repro.queueing.batched_env import (
    BatchedFiniteSystemEnv,
    run_episodes_batched,
)
from repro.queueing.env import FiniteSystemEnv, run_episode
from repro.utils.rng import spawn_generators
from repro.utils.stats import ConfidenceInterval, mean_confidence_interval

if TYPE_CHECKING:
    from repro.policies.base import UpperLevelPolicy

__all__ = ["MonteCarloResult", "evaluate_policy_finite", "policy_suite"]


@dataclass
class MonteCarloResult:
    """Aggregate of ``n`` finite-system evaluation episodes."""

    policy_name: str
    config: SystemConfig
    drops: np.ndarray  # per-run cumulative per-queue drops
    interval: ConfidenceInterval

    @property
    def mean_drops(self) -> float:
        return self.interval.mean


def evaluate_policy_finite(
    config: SystemConfig,
    policy: "UpperLevelPolicy",
    num_runs: int | None = None,
    num_epochs: int | None = None,
    seed=0,
    env_cls=None,
    env_kwargs: dict | None = None,
    backend: str = "batched",
    max_batch_replicas: int = 64,
) -> MonteCarloResult:
    """Monte-Carlo estimate of cumulative per-queue drops (Figures 4-6).

    ``backend="batched"`` (default) simulates the runs as lock-step
    replicas of a :class:`BatchedFiniteSystemEnv` in chunks of at most
    ``max_batch_replicas``; each chunk draws from its own generator
    spawned from ``seed``. ``backend="scalar"`` rebuilds one scalar
    environment per run (one spawned generator each) — the historical
    path, kept for equivalence testing and for custom ``env_cls``
    overrides, which stay scalar-only.
    """
    runs = int(num_runs if num_runs is not None else config.monte_carlo_runs)
    if runs < 1:
        raise ValueError("num_runs must be >= 1")
    if backend not in ("batched", "scalar"):
        raise ValueError(f"unknown backend {backend!r}; use 'batched' or 'scalar'")
    kwargs = env_kwargs or {}
    if backend == "batched" and env_cls is None:
        if max_batch_replicas < 1:
            raise ValueError("max_batch_replicas must be >= 1")
        chunks = [
            min(max_batch_replicas, runs - start)
            for start in range(0, runs, max_batch_replicas)
        ]
        rngs = spawn_generators(seed, len(chunks))
        drops = np.empty(runs)
        cursor = 0
        for chunk, rng in zip(chunks, rngs):
            env = BatchedFiniteSystemEnv(
                config, num_replicas=chunk, seed=rng, **kwargs
            )
            result = run_episodes_batched(
                env, policy, num_epochs=num_epochs, seed=rng
            )
            drops[cursor : cursor + chunk] = result.total_drops_per_queue
            cursor += chunk
    else:
        scalar_cls = env_cls if env_cls is not None else FiniteSystemEnv
        rngs = spawn_generators(seed, runs)
        drops = np.empty(runs)
        for i, rng in enumerate(rngs):
            env = scalar_cls(config, seed=rng, **kwargs)
            result = run_episode(env, policy, num_epochs=num_epochs, seed=rng)
            drops[i] = result.total_drops_per_queue
    return MonteCarloResult(
        policy_name=policy.name,
        config=config,
        drops=drops,
        interval=mean_confidence_interval(drops),
    )


def policy_suite(
    config: SystemConfig,
    mf_policy: "UpperLevelPolicy | None" = None,
) -> dict[str, "UpperLevelPolicy"]:
    """The paper's comparison set: MF (if given), JSQ(d), RND."""
    from repro.policies.static import JoinShortestQueuePolicy, RandomPolicy

    suite: dict[str, "UpperLevelPolicy"] = {}
    if mf_policy is not None:
        suite["MF"] = mf_policy
    suite[f"JSQ({config.d})"] = JoinShortestQueuePolicy(
        config.num_queue_states, config.d
    )
    suite["RND"] = RandomPolicy(config.num_queue_states, config.d)
    return suite
