"""Shared Monte-Carlo evaluation machinery for the figure experiments.

The paper evaluates every policy with ``n`` independent simulations of
the finite system and reports the mean cumulative per-queue packet drops
with 95% confidence intervals. :func:`evaluate_policy_finite` is that
loop; :func:`policy_suite` builds the standard comparison set
(MF / JSQ(2) / RND) used by Figures 5 and 6.

Since the batched-backend refactor the ``n`` replicas run in lock-step
through :class:`repro.queueing.batched_env.BatchedFiniteSystemEnv`
(queue states ``(E, M)``, one kernel call per epoch for the whole
ensemble) instead of one scalar environment at a time — the Figure 4-6
seed- and ``N``-sweeps all flow through this path. Replicas are chunked
(``max_batch_replicas``) so the ``(E, N, d)`` client-sampling buffers
stay bounded for the paper's largest ``N = 10^6`` settings, and
``backend="scalar"`` forces the historical per-replica loop (identical
in distribution; used by the equivalence tests and as a fallback for
custom scalar-only environments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config import SystemConfig
from repro.execution import ExecutionContext, resolve_execution_context
from repro.utils.stats import ConfidenceInterval

if TYPE_CHECKING:
    from repro.policies.base import UpperLevelPolicy
    from repro.store.store import ExperimentStore

__all__ = ["MonteCarloResult", "evaluate_policy_finite", "policy_suite"]


@dataclass
class MonteCarloResult:
    """Aggregate of ``n`` finite-system evaluation episodes."""

    policy_name: str
    config: SystemConfig
    drops: np.ndarray  # per-run cumulative per-queue drops
    interval: ConfidenceInterval

    @property
    def mean_drops(self) -> float:
        return self.interval.mean


def evaluate_policy_finite(
    config: SystemConfig,
    policy: "UpperLevelPolicy",
    num_runs: int | None = None,
    num_epochs: int | None = None,
    seed=0,
    env_cls=None,
    env_kwargs: dict | None = None,
    backend: str = "batched",
    max_batch_replicas: int | None = None,
    workers: int | None = None,
    store: "ExperimentStore | None" = None,
    sim_backend: str | None = None,
    context: ExecutionContext | None = None,
) -> MonteCarloResult:
    """Monte-Carlo estimate of cumulative per-queue drops (Figures 4-6).

    ``backend="batched"`` (default) simulates the runs as lock-step
    replicas of a :class:`BatchedFiniteSystemEnv` in chunks of at most
    ``max_batch_replicas``; each chunk draws from its own generator
    spawned from ``seed``. ``backend="scalar"`` rebuilds one scalar
    environment per run (one spawned generator each) — the historical
    path, kept for equivalence testing and for custom scalar ``env_cls``
    overrides. A batched ``env_cls`` (any
    :class:`repro.queueing.batched_env._BatchedQueueSystemBase`
    subclass, e.g. the heterogeneous-server environment) rides the
    batched path.

    ``workers > 1`` shards the replica chunks across a process pool via
    :class:`repro.experiments.parallel.SweepExecutor`; the random
    streams are a function of ``seed`` and the chunk layout only, so the
    result is bit-identical to ``workers=1`` (which stays entirely
    in-process). ``store`` attaches a content-addressed
    :class:`repro.store.store.ExperimentStore`: previously computed
    replica chunks are reused instead of simulated, and fresh chunks are
    persisted for the next run — merged results stay bit-identical
    either way.

    ``sim_backend`` selects the epoch kernel from
    :mod:`repro.queueing.backends` (``"numpy"``, ``"numba"`` or
    ``"auto"``) independently of the execution style; contract-
    preserving kernels leave the result bit-identical.

    Prefer bundling the execution knobs into
    ``context=ExecutionContext(...)``; the individual ``workers`` /
    ``store`` / ``sim_backend`` / ``max_batch_replicas`` keywords keep
    working for one release behind a :class:`DeprecationWarning`.
    """
    # Lazy import: parallel builds on this module's result type. The
    # replica-chunk layout, SeedSequence spawning and both execution
    # backends live in ONE place (repro.experiments.parallel); the
    # ``workers=1`` executor is the serial path, not a parallel variant
    # of it, so there is no second copy of the chunk/seed logic whose
    # drift could silently break the bit-identity guarantee.
    from repro.experiments.parallel import EvalRequest, SweepExecutor

    ctx = resolve_execution_context(
        context,
        workers=workers,
        store=store,
        sim_backend=sim_backend,
        max_batch_replicas=max_batch_replicas,
    )
    request = EvalRequest(
        config=config,
        policy=policy,
        num_runs=num_runs,
        num_epochs=num_epochs,
        seed=seed,
        backend=backend,
        max_batch_replicas=ctx.resolved_max_batch_replicas(),
        env_cls=env_cls,
        env_kwargs=env_kwargs or {},
        sim_backend=ctx.sim_backend,
    )
    return SweepExecutor(workers=ctx.workers, store=ctx.store).run([request])[0]


def policy_suite(
    config: SystemConfig,
    mf_policy: "UpperLevelPolicy | None" = None,
) -> dict[str, "UpperLevelPolicy"]:
    """The paper's comparison set: MF (if given), JSQ(d), RND."""
    from repro.policies.static import JoinShortestQueuePolicy, RandomPolicy

    suite: dict[str, "UpperLevelPolicy"] = {}
    if mf_policy is not None:
        suite["MF"] = mf_policy
    suite[f"JSQ({config.d})"] = JoinShortestQueuePolicy(
        config.num_queue_states, config.d
    )
    suite["RND"] = RandomPolicy(config.num_queue_states, config.d)
    return suite
