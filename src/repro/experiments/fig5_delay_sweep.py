"""Figure 5: total packet drops vs synchronization delay, per policy.

For each panel ``M ∈ {400, 600, 800, 1000}`` (``N = M²``) the paper
sweeps ``Δt ∈ {1, ..., 10}``, keeps the total running time ≈ 500 time
units (``T_e = round(500/Δt)`` epochs) and compares the per-``Δt``
trained MF policy against JSQ(2) and RND with 95% CIs. Expected shape:
drops grow with ``Δt`` for all policies; JSQ(2) wins for ``Δt ≤ 2``; the
MF policy matches or beats both baselines from intermediate delays on;
RND is flattest but worst at small delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config import paper_system_config
from repro.execution import resolve_execution_context
from repro.experiments.pretrained import get_mf_policy
from repro.experiments.runner import MonteCarloResult, policy_suite
from repro.utils.tables import format_table, series_to_csv

if TYPE_CHECKING:
    from repro.execution import ExecutionContext
    from repro.policies.base import UpperLevelPolicy
    from repro.store.store import ExperimentStore

__all__ = ["Fig5Result", "run_fig5"]

PAPER_M_PANELS = (400, 600, 800, 1000)
PAPER_DELTA_TS = tuple(float(x) for x in range(1, 11))


@dataclass
class Fig5Result:
    """One Figure 5 panel: drops per ``(Δt, policy)``."""

    num_queues: int
    num_clients_rule: str
    delta_ts: tuple[float, ...]
    results: dict[str, list[MonteCarloResult]]  # policy name -> per-Δt
    policy_sources: dict[float, str]

    def mean_series(self, policy_name: str) -> np.ndarray:
        return np.asarray([r.mean_drops for r in self.results[policy_name]])

    def winner_at(self, delta_t: float) -> str:
        idx = self.delta_ts.index(delta_t)
        return min(self.results, key=lambda name: self.results[name][idx].mean_drops)

    def to_csv(self) -> str:
        headers = ["delta_t"]
        for name in self.results:
            headers += [f"{name}_mean", f"{name}_lo", f"{name}_hi"]
        rows = []
        for i, dt in enumerate(self.delta_ts):
            row: list[object] = [dt]
            for name in self.results:
                r = self.results[name][i]
                row += [r.mean_drops, r.interval.lower, r.interval.upper]
            rows.append(row)
        return series_to_csv(headers, rows)

    def format_table(self) -> str:
        headers = ["Δt", *self.results.keys(), "winner"]
        rows = []
        for i, dt in enumerate(self.delta_ts):
            row: list[object] = [dt]
            for name in self.results:
                r = self.results[name][i]
                row.append(f"{r.mean_drops:.3g}±{r.interval.half_width:.2g}")
            row.append(self.winner_at(dt))
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=(
                f"Figure 5 panel M={self.num_queues}, "
                f"N={self.num_clients_rule} — total per-queue drops over "
                "~500 time units"
            ),
        )


def run_fig5(
    num_queues: int = 100,
    delta_ts: tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 7.0, 10.0),
    num_runs: int = 10,
    clients_of_m=None,
    mf_policies: "dict[float, UpperLevelPolicy] | None" = None,
    per_packet_randomization: bool = True,
    seed: int = 0,
    workers: int | None = None,
    store: "ExperimentStore | None" = None,
    sim_backend: str | None = None,
    context: "ExecutionContext | None" = None,
) -> Fig5Result:
    """Regenerate one Figure 5 panel (scaled grid by default).

    ``mf_policies`` may map each ``Δt`` to a caller-trained policy;
    missing entries are resolved via the pretrained registry.
    ``per_packet_randomization`` defaults to the paper's experimental
    setting (remark below Eq. 4: packets re-sample their slot); set it
    to False for the committed-choice model of Eq. (5).

    The whole ``(Δt × policy)`` grid runs on one
    :class:`repro.experiments.parallel.SweepExecutor`: with
    ``workers > 1`` every replica chunk of every cell competes for the
    same process pool, and the per-cell statistics are bit-identical to
    the in-process ``workers=1`` sweep. ``store`` attaches a
    content-addressed shard cache (see :mod:`repro.store`): chunks
    already computed by a previous panel run — or by any sweep sharing
    cells with this grid — are merged from the store instead of
    simulated. ``sim_backend`` picks the epoch kernel (``"numpy"``,
    ``"numba"``, ``"auto"``) without changing any statistic.

    Prefer ``context=ExecutionContext(...)`` for those knobs; the
    individual keywords keep working for one release behind a
    :class:`DeprecationWarning`.
    """
    from repro.experiments.parallel import EvalRequest, SweepExecutor

    ctx = resolve_execution_context(
        context, workers=workers, store=store, sim_backend=sim_backend
    )
    if clients_of_m is None:
        clients_of_m = lambda m: m * m  # noqa: E731
        clients_rule = "M^2"
    else:
        clients_rule = "custom"
    num_clients = int(clients_of_m(num_queues))

    requests: list[EvalRequest] = []
    cells: list[str] = []
    policy_sources: dict[float, str] = {}
    for dt in delta_ts:
        cfg = paper_system_config(
            delta_t=dt, num_queues=num_queues, num_clients=num_clients
        )
        if mf_policies is not None and dt in mf_policies:
            mf_policy, source = mf_policies[dt], "caller-supplied"
        else:
            mf_policy, source = get_mf_policy(dt, seed=seed)
        policy_sources[dt] = source
        suite = policy_suite(cfg, mf_policy=mf_policy)
        num_epochs = max(1, round(500.0 / dt))
        for name, policy in suite.items():
            requests.append(
                EvalRequest(
                    config=cfg,
                    policy=policy,
                    num_runs=num_runs,
                    num_epochs=num_epochs,
                    seed=seed,
                    env_kwargs={
                        "per_packet_randomization": per_packet_randomization
                    },
                    sim_backend=ctx.sim_backend,
                )
            )
            cells.append(name)

    results: dict[str, list[MonteCarloResult]] = {}
    for name, res in zip(cells, SweepExecutor(context=ctx).run(requests)):
        results.setdefault(name, []).append(res)
    return Fig5Result(
        num_queues=num_queues,
        num_clients_rule=clients_rule,
        delta_ts=tuple(delta_ts),
        results=results,
        policy_sources=policy_sources,
    )
