"""Figure 6: the sweep of Figure 5 with the ``N ≫ M`` assumption violated.

Panel (a): ``N = M`` (as many clients as queues); panel (b): ``N = M/2``.
The paper reports that the MF policy still performs well at larger
delays even though the mean-field derivation assumed ``N ≫ M``, and that
RND's performance now degrades with ``Δt`` because individual clients'
uneven sampling of queues no longer averages out within an epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.execution import resolve_execution_context
from repro.experiments.fig5_delay_sweep import Fig5Result, run_fig5

if TYPE_CHECKING:
    from repro.execution import ExecutionContext
    from repro.policies.base import UpperLevelPolicy
    from repro.store.store import ExperimentStore

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    """Both Figure 6 panels."""

    panel_a: Fig5Result  # N = M
    panel_b: Fig5Result  # N = M/2

    def format_table(self) -> str:
        return (
            self.panel_a.format_table()
            + "\n\n"
            + self.panel_b.format_table()
        )

    def to_csv(self) -> str:
        return (
            "# panel (a): N = M\n"
            + self.panel_a.to_csv()
            + "\n# panel (b): N = M/2\n"
            + self.panel_b.to_csv()
        )


def run_fig6(
    num_queues: int = 100,
    delta_ts: tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 7.0, 10.0),
    num_runs: int = 10,
    mf_policies: "dict[float, UpperLevelPolicy] | None" = None,
    seed: int = 0,
    workers: int | None = None,
    store: "ExperimentStore | None" = None,
    sim_backend: str | None = None,
    context: "ExecutionContext | None" = None,
) -> Fig6Result:
    """Regenerate both Figure 6 panels (paper uses ``M = 1000``).

    ``context`` (an :class:`repro.execution.ExecutionContext`) carries
    the execution knobs — process count, shard cache, epoch kernel —
    forwarded to each panel's sharded sweep; the individual ``workers``
    / ``store`` / ``sim_backend`` keywords keep working for one release
    behind a :class:`DeprecationWarning`.
    """
    ctx = resolve_execution_context(
        context, workers=workers, store=store, sim_backend=sim_backend
    )
    panel_a = run_fig5(
        num_queues=num_queues,
        delta_ts=delta_ts,
        num_runs=num_runs,
        clients_of_m=lambda m: m,
        mf_policies=mf_policies,
        seed=seed,
        context=ctx,
    )
    panel_a.num_clients_rule = "M"
    panel_b = run_fig5(
        num_queues=num_queues,
        delta_ts=delta_ts,
        num_runs=num_runs,
        clients_of_m=lambda m: max(1, m // 2),
        mf_policies=mf_policies,
        seed=seed,
        context=ctx,
    )
    panel_b.num_clients_rule = "M/2"
    return Fig6Result(panel_a=panel_a, panel_b=panel_b)
