"""Figure 4: finite-system performance of the MF policy vs system size.

For each panel (one per ``Δt ∈ {1, 3, 5, 7, 10}``) the paper sweeps the
number of queues ``M`` with ``N = M²`` clients, evaluates the learned MF
policy in the finite system over ~500 time units (``T_e = round(500/Δt)``
epochs, ``n`` Monte-Carlo runs, 95% CIs) and draws the mean-field MDP
value of the same policy as a horizontal reference: as ``M`` grows the
finite-system drops approach the mean-field value, validating the
formulation (Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config import paper_system_config
from repro.execution import resolve_execution_context
from repro.experiments.pretrained import get_mf_policy
from repro.experiments.runner import MonteCarloResult
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.rl.evaluation import evaluate_policy_mfc
from repro.utils.tables import format_table, series_to_csv

if TYPE_CHECKING:
    from repro.execution import ExecutionContext
    from repro.policies.base import UpperLevelPolicy
    from repro.store.store import ExperimentStore

__all__ = ["Fig4Result", "run_fig4"]

PAPER_M_GRID = (100, 200, 400, 600, 800, 1000)
PAPER_DELTA_TS = (1.0, 3.0, 5.0, 7.0, 10.0)


@dataclass
class Fig4Result:
    """One Figure 4 panel: drops over ``M`` plus the mean-field value."""

    delta_t: float
    m_grid: tuple[int, ...]
    n_values: tuple[int, ...]
    results: list[MonteCarloResult]
    mean_field_value: float
    policy_source: str

    def gaps(self) -> np.ndarray:
        """|finite mean − mean-field value| per grid point."""
        return np.asarray(
            [abs(r.mean_drops - self.mean_field_value) for r in self.results]
        )

    def converges(self) -> bool:
        """Largest-system gap no larger than the smallest-system gap."""
        gaps = self.gaps()
        return bool(gaps[-1] <= gaps[0] + 1e-12)

    def to_csv(self) -> str:
        rows = [
            [m, n, r.mean_drops, r.interval.lower, r.interval.upper,
             self.mean_field_value]
            for m, n, r in zip(self.m_grid, self.n_values, self.results)
        ]
        return series_to_csv(
            ["M", "N", "mean_drops", "ci_low", "ci_high", "mf_value"], rows
        )

    def format_table(self) -> str:
        rows = [
            [m, n, r.mean_drops, f"±{r.interval.half_width:.3g}"]
            for m, n, r in zip(self.m_grid, self.n_values, self.results)
        ]
        rows.append(["∞ (MFC)", "∞", self.mean_field_value, "exact model"])
        return format_table(
            ["M", "N", "avg packet drops", "95% CI"],
            rows,
            title=(
                f"Figure 4 panel Δt={self.delta_t:g} — MF policy "
                f"({self.policy_source}), finite system vs mean-field value"
            ),
        )


def run_fig4(
    delta_t: float = 5.0,
    m_grid: tuple[int, ...] = (50, 100, 200),
    num_runs: int = 10,
    policy: "UpperLevelPolicy | None" = None,
    clients_of_m=None,
    mf_eval_episodes: int = 50,
    seed: int = 0,
    workers: int | None = None,
    store: "ExperimentStore | None" = None,
    sim_backend: str | None = None,
    context: "ExecutionContext | None" = None,
) -> Fig4Result:
    """Regenerate one Figure 4 panel (scaled grid by default).

    ``clients_of_m`` maps ``M`` to ``N`` and defaults to the paper's
    ``N = M²``. ``context`` (an
    :class:`repro.execution.ExecutionContext`) carries the execution
    knobs: ``workers > 1`` shards the whole ``M``-grid (all replica
    chunks of all sweep points) across one process pool, bit-identical
    to the in-process sweep; the mean-field reference value is cheap and
    stays in-process either way. ``store`` attaches a content-addressed
    shard cache (see :mod:`repro.store`) so repeated or overlapping
    panel runs skip already-computed replica chunks. ``sim_backend``
    picks the epoch kernel (``"numpy"``, ``"numba"``, ``"auto"``; see
    :mod:`repro.queueing.backends`) without changing any statistic. The
    individual ``workers``/``store``/``sim_backend`` keywords keep
    working for one release behind a :class:`DeprecationWarning`.
    """
    from repro.experiments.parallel import EvalRequest, SweepExecutor

    ctx = resolve_execution_context(
        context, workers=workers, store=store, sim_backend=sim_backend
    )

    if clients_of_m is None:
        clients_of_m = lambda m: m * m  # noqa: E731 - tiny local default
    if policy is None:
        policy, source = get_mf_policy(delta_t, seed=seed)
    else:
        source = "caller-supplied"

    n_values: list[int] = []
    num_epochs = max(1, round(500.0 / delta_t))
    requests: list[EvalRequest] = []
    for m in m_grid:
        n = int(clients_of_m(m))
        cfg = paper_system_config(
            delta_t=delta_t, num_queues=m, num_clients=n
        ).with_updates(monte_carlo_runs=num_runs)
        requests.append(
            EvalRequest(
                config=cfg,
                policy=policy,
                num_runs=num_runs,
                num_epochs=num_epochs,
                seed=seed,
                sim_backend=ctx.sim_backend,
            )
        )
        n_values.append(n)
    results: list[MonteCarloResult] = SweepExecutor(context=ctx).run(requests)

    # Mean-field reference (the red dotted line): expected cumulative
    # drops of the same policy in the limiting MDP over the same horizon.
    mf_cfg = paper_system_config(delta_t=delta_t, num_queues=m_grid[-1])
    mf_env = MeanFieldEnv(
        mf_cfg, horizon=num_epochs, propagator="tabulated", seed=seed
    )
    mf_ci = evaluate_policy_mfc(
        mf_env, policy, episodes=mf_eval_episodes, seed=seed
    )
    return Fig4Result(
        delta_t=delta_t,
        m_grid=tuple(m_grid),
        n_values=tuple(n_values),
        results=results,
        mean_field_value=-mf_ci.mean,  # returns are −drops
        policy_source=source,
    )
