"""Content-addressed experiment store and reproduction pipeline.

Monte-Carlo sweeps decompose into ``(sweep-point × replica-chunk)``
shards whose random streams are a pure function of the request and the
chunk's seed material (see :mod:`repro.experiments.parallel`). That
purity makes every shard *cacheable*: :func:`repro.store.keys.shard_key`
derives a stable content hash from the shard's full identity — config
dataclass, policy parameters, environment class/kwargs, seed material
and a code-version salt — and :class:`repro.store.store.ExperimentStore`
persists completed shard results atomically under that key.

:class:`repro.experiments.parallel.SweepExecutor` consults the store
before dispatching shards and writes every freshly computed shard back,
so

* an interrupted sweep resumes exactly where it stopped (cached shards
  merge with fresh ones bit-identically to a cold run), and
* overlapping figure grids (e.g. Figure 5 and the ``paper-baseline``
  scenario share their whole ``(Δt × policy)`` sub-sweep) reuse each
  other's shards for free.

On top of the store, :mod:`repro.store.manifest` parses the declarative
reproduction manifest (``repro/assets/reproduction.toml``) and
:mod:`repro.store.pipeline` regenerates every declared paper artifact
into ``results/`` with provenance metadata — the engine behind
``python -m repro.experiments.cli reproduce``.
"""

from repro.store.keys import CODE_SALT, fingerprint, shard_key
from repro.store.manifest import (
    ArtifactSpec,
    ReproductionManifest,
    load_manifest,
    packaged_manifest_path,
)
from repro.store.pipeline import (
    ArtifactRun,
    ReproductionReport,
    run_reproduction,
)
from repro.store.store import ExperimentStore, StoreStats

__all__ = [
    "ArtifactRun",
    "ArtifactSpec",
    "CODE_SALT",
    "ExperimentStore",
    "ReproductionManifest",
    "ReproductionReport",
    "StoreStats",
    "fingerprint",
    "load_manifest",
    "packaged_manifest_path",
    "run_reproduction",
    "shard_key",
]
