"""Stable content hashes for Monte-Carlo shards.

A shard's random streams — and therefore its result — are a pure
function of

* the :class:`~repro.config.SystemConfig` dataclass,
* the policy object (its parameter arrays, not its identity),
* the environment class and construction kwargs,
* the resolved execution backend and episode length,
* the shard's replica count and its ``SeedSequence`` material.

:func:`shard_key` feeds exactly those inputs — plus :data:`CODE_SALT`,
a code-version salt that invalidates every entry when the simulation
kernels change — through one canonical SHA-256 and returns the hex
digest used as the store key.

Canonicalization rules (:func:`fingerprint`):

* scalars are hashed with an explicit type tag (``1`` and ``1.0`` and
  ``"1"`` all differ; floats use ``float.hex`` so the hash is exact),
* ``numpy`` arrays hash dtype, shape and raw bytes,
* mappings are order-insensitive (entries sorted by key), sequences are
  order-sensitive,
* ``SeedSequence`` hashes its entropy/spawn-key/pool-size — the fields
  that determine the generated stream — and ignores mutable spawn
  counters,
* dataclasses and plain objects hash their qualified name plus field
  dict, recursively (cycles are detected and hashed by back-reference);
  a class may declare ``__fingerprint_exclude__`` (a tuple of attribute
  names) to keep *replay-irrelevant mutable state* — e.g. an arrival
  profile's playback cursor, which every environment resets before
  use — out of its hash, so a shared object mutated by one run still
  resolves the same shards on the next,
* classes and functions hash their qualified name only. Closures are
  **not** captured — keep stream-relevant state in attributes, not in
  lambdas (true for every policy/environment in this repository).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

import repro

if TYPE_CHECKING:
    from repro.config import PPOConfig
    from repro.experiments.campaign import RegimeSpec, TrainingBudget
    from repro.experiments.parallel import EvalRequest, _Shard
    from repro.serving.engine import StreamRequest

__all__ = [
    "CODE_SALT",
    "fingerprint",
    "shard_key",
    "stream_shard_key",
    "train_shard_key",
]

#: Store-format generation; bump to invalidate all entries on layout
#: changes that keep the package version (rare — prefer version bumps).
STORE_SCHEMA_VERSION = 1

#: Every key is salted with the package version: a release that touches
#: the simulation kernels moves every shard to a fresh key space instead
#: of silently replaying stale results.
CODE_SALT = f"repro/{repro.__version__}/store-v{STORE_SCHEMA_VERSION}"


def _seen(h: "hashlib._Hash", obj: Any, memo: "dict[int, tuple[int, Any]]") -> bool:
    """Cycle guard for mutable containers and objects.

    On first visit the object is registered (content gets hashed by the
    caller); on revisit a back-reference index is hashed instead, so
    self-referential structures terminate with equal-structure inputs
    hashing equally.

    The memo entry keeps a strong reference to the object: ``id`` is
    only unique among *live* objects, and the traversal creates
    temporaries (``vars()`` field dicts, filtered copies) whose ids
    could otherwise be reused by later temporaries — which would then
    hash as spurious back-references, silently skipping their content
    and making the digest depend on allocator state.
    """
    entry = memo.get(id(obj))
    if entry is not None:
        h.update(b"\x00c" + str(entry[0]).encode())
        return True
    memo[id(obj)] = (len(memo), obj)
    return False


def _feed(h: "hashlib._Hash", obj: Any, memo: "dict[int, tuple[int, Any]]") -> None:
    """Feed one canonicalized object into the running hash."""
    if obj is None:
        h.update(b"\x00N")
    elif isinstance(obj, (bool, np.bool_)):
        h.update(b"\x00b1" if obj else b"\x00b0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"\x00i" + str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"\x00f" + float(obj).hex().encode())
    elif isinstance(obj, str):
        h.update(b"\x00s" + obj.encode("utf-8") + b"\x00")
    elif isinstance(obj, bytes):
        h.update(b"\x00y" + obj + b"\x00")
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"\x00a" + arr.dtype.str.encode() + repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, np.random.SeedSequence):
        h.update(b"\x00q")
        _feed(h, obj.entropy, memo)
        _feed(h, tuple(obj.spawn_key), memo)
        _feed(h, int(obj.pool_size), memo)
    elif isinstance(obj, Mapping):
        if _seen(h, obj, memo):
            return
        h.update(b"\x00d" + str(len(obj)).encode())
        for key, value in sorted(obj.items(), key=lambda kv: repr(kv[0])):
            _feed(h, key, memo)
            _feed(h, value, memo)
    elif isinstance(obj, (list, tuple)):
        if isinstance(obj, list) and _seen(h, obj, memo):
            return
        h.update(b"\x00l" + str(len(obj)).encode())
        for item in obj:
            _feed(h, item, memo)
    elif isinstance(obj, (set, frozenset)):
        if isinstance(obj, set) and _seen(h, obj, memo):
            return
        h.update(b"\x00e" + str(len(obj)).encode())
        for item in sorted(obj, key=repr):
            _feed(h, item, memo)
    elif isinstance(obj, type):
        h.update(b"\x00T" + f"{obj.__module__}.{obj.__qualname__}".encode())
    elif callable(obj) and hasattr(obj, "__qualname__"):
        h.update(b"\x00F" + f"{obj.__module__}.{obj.__qualname__}".encode())
    else:
        # Compound object: hash its type identity plus field dict.
        if _seen(h, obj, memo):
            return
        cls = type(obj)
        h.update(b"\x00O" + f"{cls.__module__}.{cls.__qualname__}".encode())
        if dataclasses.is_dataclass(obj):
            fields = {
                f.name: getattr(obj, f.name)
                for f in dataclasses.fields(obj)
            }
        elif hasattr(obj, "__dict__"):
            fields = vars(obj)
        elif hasattr(cls, "__slots__"):
            fields = {
                name: getattr(obj, name)
                for name in cls.__slots__
                if hasattr(obj, name)
            }
        else:
            raise TypeError(
                f"cannot fingerprint {cls.__module__}.{cls.__qualname__}: "
                "no dataclass fields, __dict__ or __slots__"
            )
        excluded = getattr(cls, "__fingerprint_exclude__", ())
        if excluded:
            fields = {
                name: value
                for name, value in fields.items()
                if name not in excluded
            }
        _feed(h, fields, memo)


def fingerprint(obj: Any) -> str:
    """Canonical SHA-256 hex digest of ``obj`` (see module docstring)."""
    h = hashlib.sha256()
    _feed(h, obj, {})
    return h.hexdigest()


def shard_key(request: "EvalRequest", shard: "_Shard") -> str:
    """Content hash identifying one shard's result.

    Deliberately *excludes* the shard's merge offset and the request's
    total replica count: a chunk's streams depend only on its own seed
    material and size, so a 5-run request and a 100-run request with the
    same seed and chunk layout share their common prefix of shards —
    the property that lets overlapping figure grids reuse each other's
    work.

    It also excludes the simulation kernel (``sim_backend``) whenever
    that kernel preserves the RNG-draw contract: such kernels are
    bit-identical by construction (conformance-tested), so shards
    computed under NumPy are legitimately replayed for numba sweeps and
    vice versa. A contract-breaking kernel registered by downstream code
    gets its own key space.
    """
    payload = {
        "salt": CODE_SALT,
        "config": request.config.to_dict(),
        "policy": request.policy,
        "policy_name": request.policy.name,
        "num_epochs": request.num_epochs,
        "backend": (
            "batched" if request.uses_batched_backend() else "scalar"
        ),
        "env_cls": request.env_cls,
        "env_kwargs": request.env_kwargs,
        "shard_runs": shard.num_runs,
        "shard_seeds": shard.seeds,
    }
    _feed_sim_backend(payload, getattr(request, "sim_backend", "numpy"))
    return fingerprint(payload)


def _feed_sim_backend(payload: dict, sim_backend: str) -> None:
    """Key the kernel choice only when it can change the result.

    Contract-preserving kernels (every built-in) share one key space;
    a kernel whose registration declares
    ``preserves_rng_contract=False`` produces different streams, so its
    name becomes part of the key.
    """
    from repro.queueing.backends import preserves_rng_contract

    if not preserves_rng_contract(sim_backend):
        payload["sim_backend"] = sim_backend


def stream_shard_key(
    request: "StreamRequest", num_runs: int, seed_material
) -> str:
    """Content hash identifying one *streaming* shard's result.

    Streaming shards fingerprint exactly like finite-sweep shards —
    same canonicalization, same code salt, same exclusion of the merge
    offset and total replica count (a chunk's streams depend only on
    its own seed material and size). The windowing parameters *are*
    part of the key because the cached payload carries the retained
    window series at that resolution; the per-replica summaries it also
    carries are window-invariant regardless.
    """
    payload = {
        "salt": CODE_SALT,
        "kind": "stream",
        "config": request.config.to_dict(),
        "policy": request.policy,
        "policy_name": request.policy.name,
        "horizon": int(request.horizon),
        "window": int(request.window),
        "max_windows": int(request.max_windows),
        "env_cls": request.env_cls,
        "env_kwargs": request.env_kwargs,
        "shard_runs": int(num_runs),
        "shard_seeds": (seed_material,),
    }
    if request.controller is not None:
        # Closed-loop streams: the controller's *construction
        # parameters* and the switchable policy suite shape the
        # trajectory, so they enter the key; mutable run state is
        # excluded via each controller's ``__fingerprint_exclude__``
        # (and cleared by ``Controller.reset`` before every shard).
        # Uncontrolled requests omit these entries entirely, keeping
        # every pre-existing cache key byte-identical.
        payload["controller"] = request.controller
        payload["control_policies"] = dict(request.policies or {})
    _feed_sim_backend(payload, getattr(request, "sim_backend", "numpy"))
    return fingerprint(payload)


def train_shard_key(
    regime: "RegimeSpec",
    ppo: "PPOConfig",
    budget: "TrainingBudget",
    seed: int,
) -> str:
    """Content hash identifying one *training* shard's result.

    A training shard is one regime's finished policy (network state dict
    plus learning curve). With ``independent_streams`` collection the
    trained parameters are a pure function of the regime definition, the
    PPO configuration, the training budget and the seed — exactly the
    fields hashed here — so an interrupted campaign resumes from the
    store bit-identically, on any worker count.
    """
    payload = {
        "salt": CODE_SALT,
        "kind": "train",
        "regime": regime,
        "ppo": ppo.to_dict(),
        "budget": budget,
        "seed": int(seed),
    }
    return fingerprint(payload)
