"""Declarative reproduction manifests (TOML).

A manifest names every artifact of a full reproduction run — paper
tables, figure panels, registered scenarios — together with the grid
parameters each one uses. ``python -m repro.experiments.cli reproduce``
feeds the parsed manifest to :func:`repro.store.pipeline.run_reproduction`,
which regenerates all artifacts through the shard store.

Format (``repro/assets/reproduction.toml`` is the packaged default)::

    title = "Bench-scale reproduction"
    seed = 0

    [artifacts.fig5-m100]
    kind = "fig5"
    queues = 100
    delta_ts = [1.0, 3.0, 5.0, 7.0, 10.0]
    runs = 5

    [artifacts.scenario-overload]
    kind = "scenario"
    scenario = "overload"

Every ``[artifacts.<name>]`` table needs a ``kind``; the remaining keys
are grid parameters, validated against the kind's schema below. Unknown
kinds or parameters fail at parse time — a typo never silently runs a
default grid.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from importlib import resources
from pathlib import Path
from typing import Any, Mapping

try:  # stdlib from 3.11; the tomli backport covers Python 3.10
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 only
    import tomli as tomllib  # type: ignore[no-redef]

__all__ = [
    "ArtifactSpec",
    "ReproductionManifest",
    "load_manifest",
    "packaged_manifest_path",
]

#: Allowed parameter keys per artifact kind (``kind`` itself excluded).
KIND_PARAMS: dict[str, frozenset[str]] = {
    "table1": frozenset(),
    "table2": frozenset(),
    "fig4": frozenset({"delta_t", "m_grid", "runs", "seed", "mf_eval_episodes"}),
    "fig5": frozenset({"queues", "delta_ts", "runs", "seed"}),
    "fig6": frozenset({"queues", "delta_ts", "runs", "seed"}),
    "scenario": frozenset(
        {"scenario", "queues", "delta_ts", "runs", "seed"}
    ),
}

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")


@dataclass(frozen=True)
class ArtifactSpec:
    """One manifest entry: an artifact name, its kind and parameters."""

    name: str
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"artifact name {self.name!r} must be lowercase "
                "alphanumeric with ._- separators (it becomes a filename)"
            )
        if self.kind not in KIND_PARAMS:
            raise ValueError(
                f"artifact {self.name!r} has unknown kind {self.kind!r}; "
                f"known kinds: {', '.join(sorted(KIND_PARAMS))}"
            )
        allowed = KIND_PARAMS[self.kind]
        unknown = set(self.params) - allowed
        if unknown:
            raise ValueError(
                f"artifact {self.name!r} ({self.kind}) has unknown "
                f"parameters {sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        if self.kind == "scenario" and "scenario" not in self.params:
            raise ValueError(
                f"artifact {self.name!r}: kind 'scenario' requires a "
                "'scenario' parameter naming the registry entry"
            )

    def seed_for(self, default_seed: int) -> int:
        """Artifact seed: the entry's own ``seed``, else the manifest's."""
        return int(self.params.get("seed", default_seed))

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, **dict(self.params)}


@dataclass(frozen=True)
class ReproductionManifest:
    """A parsed manifest: global settings plus the artifact list."""

    artifacts: tuple[ArtifactSpec, ...]
    title: str = "reproduction"
    seed: int = 0
    source: Path | None = None

    def __post_init__(self) -> None:
        if not self.artifacts:
            raise ValueError("manifest declares no artifacts")
        names = [spec.name for spec in self.artifacts]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"duplicate artifact names: {sorted(dupes)}")

    def names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.artifacts)

    def select(self, only: "list[str] | None" = None) -> tuple[ArtifactSpec, ...]:
        """The artifacts to run, in manifest order.

        ``only`` filters by name; unknown names raise with the
        available list so a CLI typo fails before hours of simulation.
        """
        if not only:
            return self.artifacts
        known = set(self.names())
        unknown = [name for name in only if name not in known]
        if unknown:
            raise ValueError(
                f"unknown artifact(s) {unknown}; manifest declares: "
                f"{', '.join(self.names())}"
            )
        wanted = set(only)
        return tuple(s for s in self.artifacts if s.name in wanted)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (used for provenance records and tests)."""
        return {
            "title": self.title,
            "seed": self.seed,
            "artifacts": [spec.to_dict() for spec in self.artifacts],
        }

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], source: Path | None = None
    ) -> "ReproductionManifest":
        payload = dict(payload)
        raw_artifacts = payload.pop("artifacts", {})
        title = str(payload.pop("title", "reproduction"))
        seed = int(payload.pop("seed", 0))
        if payload:
            raise ValueError(
                f"unknown top-level manifest keys: {sorted(payload)} "
                "(expected 'title', 'seed', 'artifacts')"
            )
        if isinstance(raw_artifacts, Mapping):
            items = list(raw_artifacts.items())
        else:  # list form: [{"name": ..., "kind": ...}, ...]
            items = [
                (dict(entry).pop("name", ""), entry) for entry in raw_artifacts
            ]
        specs = []
        for name, table in items:
            table = dict(table)
            table.pop("name", None)
            kind = table.pop("kind", None)
            if kind is None:
                raise ValueError(f"artifact {name!r} is missing 'kind'")
            specs.append(ArtifactSpec(name=name, kind=str(kind), params=table))
        return cls(
            artifacts=tuple(specs), title=title, seed=seed, source=source
        )

    @classmethod
    def from_toml(cls, path: str | Path) -> "ReproductionManifest":
        path = Path(path)
        with path.open("rb") as fh:
            try:
                payload = tomllib.load(fh)
            except tomllib.TOMLDecodeError as exc:
                # Normalized so callers handle one exception type for
                # every way a manifest can be malformed.
                raise ValueError(f"{path}: {exc}") from exc
        return cls.from_dict(payload, source=path)


def packaged_manifest_path() -> Path:
    """Location of the packaged default manifest."""
    return Path(
        str(resources.files("repro.assets").joinpath("reproduction.toml"))
    )


def load_manifest(path: "str | Path | None" = None) -> ReproductionManifest:
    """Parse ``path``, or the packaged default manifest when ``None``."""
    return ReproductionManifest.from_toml(
        path if path is not None else packaged_manifest_path()
    )
