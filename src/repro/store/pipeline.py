"""One-command reproduction: manifest → artifacts → ``results/`` + provenance.

:func:`run_reproduction` walks a parsed
:class:`~repro.store.manifest.ReproductionManifest`, regenerates every
declared artifact through the sharded sweep machinery (all Monte-Carlo
work flows through one shared
:class:`~repro.store.store.ExperimentStore`, so shards computed by one
artifact — or by a previous, possibly interrupted, run — are reused by
every later one) and writes, per artifact ``<name>``:

* ``results/<name>.txt`` — the rendered ASCII table,
* ``results/<name>.csv`` — the underlying series (when the artifact has
  one; the parameter tables do not),
* ``results/<name>.provenance.json`` — machine-readable provenance: the
  manifest entry, its content fingerprint, the code-version salt, seed,
  worker count, wall-clock seconds and the shard-cache hit/miss counters
  attributed to this artifact.

Interrupting ``reproduce`` and re-invoking it is safe and cheap: every
already-persisted shard is a cache hit, and merged statistics are
bit-identical to an uninterrupted cold run. A fully warm re-run reports
a 100% hit-rate and recomputes nothing.

Engine of the CLI subcommand::

    python -m repro.experiments.cli reproduce [--manifest M] [--workers K]
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.store.keys import CODE_SALT, fingerprint
from repro.store.manifest import ArtifactSpec, ReproductionManifest
from repro.store.store import ExperimentStore, StoreStats
from repro.utils.tables import format_table

__all__ = ["ArtifactRun", "ReproductionReport", "run_reproduction"]


@dataclass
class ArtifactRun:
    """Outcome of regenerating one manifest artifact."""

    spec: ArtifactSpec
    seed: int
    wall_clock_s: float
    cache: StoreStats  # this artifact's share of the store counters
    outputs: tuple[Path, ...]
    table: str

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate

    def provenance(self, workers: int, store_root: "Path | None") -> dict:
        """JSON-serializable provenance record for this artifact."""
        entry = self.spec.to_dict()
        return {
            "artifact": entry,
            "artifact_fingerprint": fingerprint(entry),
            "code_salt": CODE_SALT,
            "seed": self.seed,
            "workers": workers,
            "store_root": str(store_root) if store_root is not None else None,
            "wall_clock_s": round(self.wall_clock_s, 3),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "writes": self.cache.writes,
                "invalid": self.cache.invalid,
                "hit_rate": round(self.cache.hit_rate, 4),
            },
            "outputs": [p.name for p in self.outputs],
        }


@dataclass
class ReproductionReport:
    """Aggregate outcome of one ``reproduce`` invocation."""

    manifest: ReproductionManifest
    runs: list[ArtifactRun]
    workers: int
    store_root: "Path | None"
    results_dir: Path
    wall_clock_s: float

    @property
    def cache(self) -> StoreStats:
        """Summed shard-cache counters over all artifacts."""
        total = StoreStats()
        for run in self.runs:
            total.hits += run.cache.hits
            total.misses += run.cache.misses
            total.writes += run.cache.writes
            total.invalid += run.cache.invalid
        return total

    @property
    def hit_rate(self) -> float:
        """Fraction of all Monte-Carlo shards served from the store."""
        return self.cache.hit_rate

    def format_table(self) -> str:
        rows = []
        for run in self.runs:
            lookups = run.cache.lookups
            rows.append(
                [
                    run.spec.name,
                    run.spec.kind,
                    f"{run.wall_clock_s:.2f}",
                    lookups,
                    f"{run.cache.hits}/{lookups}" if lookups else "—",
                    ", ".join(p.name for p in run.outputs),
                ]
            )
        total = self.cache
        rows.append(
            [
                "TOTAL",
                "",
                f"{self.wall_clock_s:.2f}",
                total.lookups,
                f"{total.hits}/{total.lookups} ({self.hit_rate:.0%})"
                if total.lookups
                else "—",
                f"→ {self.results_dir}",
            ]
        )
        return format_table(
            ["artifact", "kind", "wall s", "shards", "cache hits", "outputs"],
            rows,
            title=(
                f"Reproduction — {self.manifest.title} "
                f"(workers={self.workers}, store="
                f"{self.store_root if self.store_root else 'disabled'})"
            ),
        )


def _regenerate(
    spec: ArtifactSpec,
    seed: int,
    workers: int,
    store: "ExperimentStore | None",
    claim: bool = False,
    merge_only: bool = False,
) -> "tuple[str, str | None]":
    """Run one artifact; returns ``(table_text, csv_text | None)``.

    Imports are local: this module must stay importable from
    :mod:`repro.store` without dragging in the experiment runners (which
    themselves import the parallel executor, which consults the store).
    """
    from repro.execution import ExecutionContext

    ctx = ExecutionContext(
        workers=int(workers),
        store=store,
        claim=bool(claim),
        merge_only=bool(merge_only),
    )
    params = dict(spec.params)
    params.pop("seed", None)  # already resolved into ``seed``
    if spec.kind == "table1":
        from repro.experiments.tables import render_table1

        return render_table1(), None
    if spec.kind == "table2":
        from repro.experiments.tables import render_table2

        return render_table2(), None
    if spec.kind == "fig4":
        from repro.experiments.fig4_convergence import run_fig4

        result = run_fig4(
            delta_t=float(params.get("delta_t", 5.0)),
            m_grid=tuple(int(m) for m in params.get("m_grid", (25, 50, 100))),
            num_runs=int(params.get("runs", 5)),
            mf_eval_episodes=int(params.get("mf_eval_episodes", 50)),
            seed=seed,
            context=ctx,
        )
        return result.format_table(), result.to_csv()
    if spec.kind in ("fig5", "fig6"):
        from repro.experiments.fig5_delay_sweep import run_fig5
        from repro.experiments.fig6_small_n import run_fig6

        runner = run_fig5 if spec.kind == "fig5" else run_fig6
        result = runner(
            num_queues=int(params.get("queues", 100)),
            delta_ts=tuple(
                float(dt)
                for dt in params.get("delta_ts", (1.0, 3.0, 5.0, 7.0, 10.0))
            ),
            num_runs=int(params.get("runs", 5)),
            seed=seed,
            context=ctx,
        )
        return result.format_table(), result.to_csv()
    if spec.kind == "scenario":
        from repro.scenarios import run_scenario

        delta_ts = params.get("delta_ts")
        result = run_scenario(
            str(params["scenario"]),
            delta_ts=tuple(float(dt) for dt in delta_ts) if delta_ts else None,
            num_queues=(
                int(params["queues"]) if "queues" in params else None
            ),
            num_runs=int(params["runs"]) if "runs" in params else None,
            seed=seed,
            context=ctx,
        )
        return result.format_table(), result.to_csv()
    raise AssertionError(f"unhandled kind {spec.kind!r}")  # pragma: no cover


def _preflight(specs: "tuple[ArtifactSpec, ...]") -> None:
    """Fail before any simulation starts, not hours into the run.

    Manifest parsing already validates kinds and parameter names; what
    it cannot see is the scenario *registry*, so unknown scenario names
    are checked here (import is local — the registry pulls in the whole
    environment stack).
    """
    from repro.scenarios import available_scenarios

    registered = set(available_scenarios())
    unknown = [
        (spec.name, spec.params["scenario"])
        for spec in specs
        if spec.kind == "scenario" and spec.params["scenario"] not in registered
    ]
    if unknown:
        listing = ", ".join(f"{a!r} -> {s!r}" for a, s in unknown)
        raise ValueError(
            f"manifest references unregistered scenario(s): {listing}; "
            f"registered: {', '.join(sorted(registered))}"
        )


def run_reproduction(
    manifest: ReproductionManifest,
    results_dir: str | Path = "results",
    store: "ExperimentStore | str | Path | None" = None,
    workers: int = 1,
    only: "list[str] | None" = None,
    echo: bool = False,
    claim: bool = False,
    merge_only: bool = False,
) -> ReproductionReport:
    """Regenerate the manifest's artifacts into ``results_dir``.

    Parameters
    ----------
    manifest:
        Parsed manifest (:func:`repro.store.manifest.load_manifest`).
    results_dir:
        Output directory (created if missing).
    store:
        Shard cache: an :class:`ExperimentStore`, a directory path to
        open one at, or ``None`` to disable caching (every shard is
        simulated fresh and nothing is persisted).
    workers:
        Process count for every artifact's sharded sweep; merged
        statistics are bit-identical for any value.
    only:
        Optional artifact-name filter (manifest order is kept).
    echo:
        Print each artifact's table as soon as it is regenerated.
    claim:
        Multi-node mode: claim each shard through the store before
        computing it, so several hosts pointing ``reproduce`` at one
        shared store directory partition the manifest's shards between
        them (see ``docs/scaling.md``). Requires ``store``.
    merge_only:
        Assemble artifacts purely from previously computed shards;
        raises if any shard is missing. Requires ``store``; mutually
        exclusive with ``claim``.
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    if store is not None and not isinstance(store, ExperimentStore):
        store = ExperimentStore(store)
    if (claim or merge_only) and store is None:
        raise ValueError(
            "claim/merge_only coordinate through the experiment "
            "store; pass store= as well"
        )
    store_root = store.root if store is not None else None

    selected = manifest.select(only)
    _preflight(selected)
    runs: list[ArtifactRun] = []
    t_start = time.perf_counter()
    for spec in selected:
        seed = spec.seed_for(manifest.seed)
        before = store.stats.snapshot() if store is not None else StoreStats()
        t0 = time.perf_counter()
        table, csv_text = _regenerate(
            spec, seed, workers, store, claim=claim, merge_only=merge_only
        )
        wall = time.perf_counter() - t0
        cache = (
            store.stats.since(before) if store is not None else StoreStats()
        )

        outputs = [results_dir / f"{spec.name}.txt"]
        outputs[0].write_text(table + "\n")
        if csv_text is not None:
            csv_path = results_dir / f"{spec.name}.csv"
            csv_path.write_text(csv_text + "\n")
            outputs.append(csv_path)
        run = ArtifactRun(
            spec=spec,
            seed=seed,
            wall_clock_s=wall,
            cache=cache,
            outputs=tuple(outputs),
            table=table,
        )
        provenance_path = results_dir / f"{spec.name}.provenance.json"
        provenance_path.write_text(
            json.dumps(
                run.provenance(workers, store_root), indent=2, sort_keys=True
            )
            + "\n"
        )
        run.outputs = (*run.outputs, provenance_path)
        runs.append(run)
        if echo:
            print(table)
            print()
    return ReproductionReport(
        manifest=manifest,
        runs=runs,
        workers=workers,
        store_root=store_root,
        results_dir=results_dir,
        wall_clock_s=time.perf_counter() - t_start,
    )
