"""Atomic, content-addressed persistence of completed shard results.

One entry per shard key: a small ``.npz`` archive holding the shard's
per-replica drop array plus a JSON metadata blob (schema version, key,
replica count, free-form provenance). Entries live under
``root/<key[:2]>/<key>.npz`` so directories stay small even for very
large sweeps.

Durability discipline:

* **Atomic writes** — every entry is written to a temporary file in the
  same directory and published with :func:`os.replace`, so a killed
  process never leaves a half-written entry behind; re-running the sweep
  simply recomputes the missing shards.
* **Corrupted-entry recovery** — any entry that fails to load or
  validate (truncated archive, wrong schema, key/shape mismatch) is
  quarantined (removed) and reported as a cache miss, never an error:
  the worst case of a damaged store is recomputation, not a crash or a
  wrong result.

The store keeps running :class:`StoreStats` counters; callers that need
per-phase numbers (e.g. the reproduction pipeline's per-artifact cache
hit-rate) snapshot the counters before and after and diff them.

For multi-node sweeps the store doubles as the coordination medium:
:meth:`ExperimentStore.try_claim` atomically marks a shard as being
computed by one worker (``O_CREAT|O_EXCL`` claim files, stale takeover
via :func:`os.replace`, no coordinator process), so independent hosts
sharing a store directory partition a sweep between them — see
``docs/scaling.md``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro.store.keys import STORE_SCHEMA_VERSION
from repro.utils.serialization import (
    load_npz_checkpoint,
    save_npz_checkpoint,
)

__all__ = ["ExperimentStore", "StoreStats"]

_DROPS_KEY = "drops"


@dataclass
class StoreStats:
    """Running cache counters (``invalid`` entries also count as misses;
    ``write_errors`` counts persists the sweep layer tolerated)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalid: int = 0
    write_errors: int = 0
    claims: int = 0
    claim_conflicts: int = 0
    claims_stolen: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "StoreStats":
        return StoreStats(
            self.hits,
            self.misses,
            self.writes,
            self.invalid,
            self.write_errors,
            self.claims,
            self.claim_conflicts,
            self.claims_stolen,
        )

    def since(self, earlier: "StoreStats") -> "StoreStats":
        """Counter delta relative to an earlier :meth:`snapshot`."""
        return StoreStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            writes=self.writes - earlier.writes,
            invalid=self.invalid - earlier.invalid,
            write_errors=self.write_errors - earlier.write_errors,
            claims=self.claims - earlier.claims,
            claim_conflicts=self.claim_conflicts - earlier.claim_conflicts,
            claims_stolen=self.claims_stolen - earlier.claims_stolen,
        )


class ExperimentStore:
    """Content-addressed shard cache rooted at a directory.

    Parameters
    ----------
    root:
        Cache directory (created, with parents, if missing). Safe to
        share between figure runs and scenarios — keys are content
        hashes, so distinct experiments never collide and identical
        sub-sweeps deduplicate automatically.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    def path_for(self, key: str) -> Path:
        """Entry location for ``key`` (two-level fan-out)."""
        if len(key) < 3:
            raise ValueError(f"store key too short: {key!r}")
        return self.root / key[:2] / f"{key}.npz"

    def get_shard(
        self, key: str, expected_runs: int | None = None
    ) -> np.ndarray | None:
        """Cached per-replica drops for ``key``, or ``None`` on a miss.

        A present-but-invalid entry (corruption, schema or shape
        mismatch) is quarantined and reported as a miss.
        """
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            arrays, meta = load_npz_checkpoint(path)
            drops = np.asarray(arrays[_DROPS_KEY], dtype=np.float64)
            if meta.get("schema") != STORE_SCHEMA_VERSION:
                raise ValueError(f"schema mismatch: {meta.get('schema')!r}")
            if meta.get("key") != key:
                raise ValueError("stored key does not match file name")
            if drops.ndim != 1 or not np.all(np.isfinite(drops)):
                raise ValueError(f"malformed drops array: {drops.shape}")
            if expected_runs is not None and drops.shape != (expected_runs,):
                raise ValueError(
                    f"entry holds {drops.shape[0]} runs, expected "
                    f"{expected_runs}"
                )
        except Exception:
            # Corrupted or stale entry: recover by quarantining it and
            # recomputing the shard (a cache can always afford a miss).
            self._quarantine(path)
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return drops

    def put_shard(
        self,
        key: str,
        drops: np.ndarray,
        meta: Mapping[str, Any] | None = None,
    ) -> Path:
        """Persist one shard result atomically; returns the entry path."""
        drops = np.asarray(drops, dtype=np.float64)
        if drops.ndim != 1:
            raise ValueError(f"drops must be 1-D, got shape {drops.shape}")
        payload = {"num_runs": int(drops.shape[0]), **dict(meta or {})}
        return self.put_entry(key, {_DROPS_KEY: drops}, meta=payload)

    # -- generic entries -------------------------------------------------
    # Shard results are one flavor of entry (a single 1-D drops array);
    # training shards persist whole network state dicts plus a learning
    # curve through the same atomic-publish / quarantine-on-invalid
    # machinery below.

    def get_entry(
        self, key: str
    ) -> tuple[dict[str, np.ndarray], dict[str, Any]] | None:
        """Cached arrays and metadata for ``key``, or ``None`` on a miss.

        A present-but-invalid entry (corruption, schema or key mismatch,
        non-finite floats) is quarantined and reported as a miss.
        """
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            arrays, meta = load_npz_checkpoint(path)
            if meta.get("schema") != STORE_SCHEMA_VERSION:
                raise ValueError(f"schema mismatch: {meta.get('schema')!r}")
            if meta.get("key") != key:
                raise ValueError("stored key does not match file name")
            for name, arr in arrays.items():
                if np.issubdtype(arr.dtype, np.floating) and not np.all(
                    np.isfinite(arr)
                ):
                    raise ValueError(f"non-finite values in array {name!r}")
        except Exception:
            # Corrupted or stale entry: recover by quarantining it and
            # recomputing the shard (a cache can always afford a miss).
            self._quarantine(path)
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return dict(arrays), meta

    def put_entry(
        self,
        key: str,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, Any] | None = None,
    ) -> Path:
        """Persist a multi-array entry atomically; returns the entry path."""
        if not arrays:
            raise ValueError("entry must hold at least one array")
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            **dict(meta or {}),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".npz"
        )
        os.close(fd)
        tmp_path = Path(tmp_name)
        try:
            save_npz_checkpoint(tmp_path, dict(arrays), meta=payload)
            os.replace(tmp_path, path)  # atomic publish
        except BaseException:
            tmp_path.unlink(missing_ok=True)
            raise
        self.stats.writes += 1
        return path

    # -- multi-node work claiming ---------------------------------------
    # Claims are tiny JSON files under root/claims/<key[:2]>/<key>.claim.
    # The ``claims/`` subtree is invisible to iter_keys (which globs
    # ``??/*.npz``), so claim bookkeeping never pollutes the cache view.
    # Acquisition is O_CREAT|O_EXCL — atomic on every POSIX filesystem,
    # including NFS since v3 — and stale takeover republishes the claim
    # via os.replace, so there is no coordinator and no lock server.

    def claim_path_for(self, key: str) -> Path:
        """Claim-file location for ``key`` (two-level fan-out)."""
        if len(key) < 3:
            raise ValueError(f"store key too short: {key!r}")
        return self.root / "claims" / key[:2] / f"{key}.claim"

    def try_claim(
        self,
        key: str,
        owner: str,
        stale_after: float | None = None,
    ) -> bool:
        """Atomically claim ``key`` for ``owner``; ``True`` if acquired.

        A claim marks a shard as being computed by one worker so
        independent hosts sharing the store partition a sweep without a
        coordinator. When ``stale_after`` (seconds) is given, a claim
        whose file has not been refreshed for longer than that is
        considered abandoned (e.g. a killed worker) and taken over —
        takeover republishes the claim file via :func:`os.replace`, so
        at most the shard is computed twice (at-least-once semantics),
        never lost.
        """
        path = self.claim_path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"owner": owner, "key": key}).encode()
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if stale_after is not None and self._claim_is_stale(
                path, stale_after
            ):
                fd, tmp_name = tempfile.mkstemp(
                    dir=path.parent, prefix=".tmp-", suffix=".claim"
                )
                try:
                    os.write(fd, payload)
                finally:
                    os.close(fd)
                os.replace(tmp_name, path)  # atomic takeover
                self.stats.claims += 1
                self.stats.claims_stolen += 1
                return True
            self.stats.claim_conflicts += 1
            return False
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        self.stats.claims += 1
        return True

    def release_claim(self, key: str) -> None:
        """Drop the claim on ``key`` (missing claims are a no-op)."""
        try:
            self.claim_path_for(key).unlink(missing_ok=True)
        except OSError:  # pragma: no cover - e.g. read-only stores
            pass

    def claim_owner(self, key: str) -> str | None:
        """Owner recorded in ``key``'s claim file, or ``None``.

        Damaged claim files (a worker killed mid-write on a filesystem
        without atomic O_EXCL content) read as owned-by-unknown rather
        than raising.
        """
        path = self.claim_path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return "<unreadable>"
        owner = payload.get("owner") if isinstance(payload, dict) else None
        return owner if isinstance(owner, str) else "<unreadable>"

    @staticmethod
    def _claim_is_stale(path: Path, stale_after: float) -> bool:
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:  # claim vanished: owner finished or released it
            return False
        return age > stale_after

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def iter_keys(self) -> Iterator[str]:
        """All entry keys currently on disk (unordered)."""
        for path in self.root.glob("??/*.npz"):
            if not path.name.startswith(".tmp-"):
                yield path.stem

    @staticmethod
    def _quarantine(path: Path) -> None:
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - e.g. read-only stores
            pass
