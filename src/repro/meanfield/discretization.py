"""Exact discretization of the mean-field dynamics (paper Section 2.4).

Within one decision epoch of length ``Δt`` every queue evolves as a
birth-death CTMC whose arrival rate is *frozen* at the value implied by
its state at the epoch start:

    λ_t(ν, z) = λ_t · Σ_u Σ_{z̄ : z̄_u = z} Π_{i≠u} ν(z̄_i) · h(u | z̄)

(Eq. 22, in the ν(z)-cancelled form that also appears in the proof of
Theorem 1 — this removes the 0/0 issue when ``ν(z) = 0``). The epoch map
``ν_t → ν_{t+1}`` and the expected per-queue drops ``D_t`` then follow
from one matrix exponential of the extended generator per initial state
(Eq. 27-28):

    [P_z(Δt), D_z(Δt)] = [e_z, 0] · expm(Ā(ν_t, z) Δt)

with the ``(S+1) x (S+1)`` block matrix ``Ā = [[G, r], [0, 0]]`` where
``G`` is the row-stochastic birth-death generator and ``r = λ_t(ν,z)·e_B``
accumulates the drop flux (arrivals occurring while the queue sits at its
buffer limit ``B``).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from repro.meanfield.decision_rule import DecisionRule

__all__ = [
    "per_state_arrival_rates",
    "birth_death_generator",
    "extended_generator",
    "propagate_state",
    "epoch_update",
    "ExactPropagator",
    "TabulatedPropagator",
    "uniformization_transition_matrix",
]


def per_state_arrival_rates(
    nu: np.ndarray, rule: DecisionRule, lam: float
) -> np.ndarray:
    """Frozen per-queue arrival rate ``λ_t(ν, z)`` for every ``z`` (Eq. 22).

    For each action slot ``u`` the inner sum is a tensor contraction of
    ``h(u | ·)`` with ``ν`` along every state axis except axis ``u``; the
    result is indexed by the state in slot ``u``.

    The returned vector satisfies the *arrival-mass identity*
    ``Σ_z ν(z) λ(ν,z) = λ`` for any row-stochastic rule — thinning the
    global Poisson stream of rate ``M λ`` over queues loses no mass.
    """
    nu = np.asarray(nu, dtype=np.float64)
    if nu.shape != (rule.num_states,):
        raise ValueError(
            f"nu has shape {nu.shape}, expected ({rule.num_states},)"
        )
    if lam < 0:
        raise ValueError(f"arrival intensity must be >= 0, got {lam}")
    d = rule.d
    total = np.zeros(rule.num_states)
    for u in range(d):
        t = rule.probs[..., u]
        # Contract axes in descending order so that remaining axis indices
        # stay valid; skip the slot-u axis, which carries the output index.
        for axis in range(d - 1, -1, -1):
            if axis == u:
                continue
            t = np.tensordot(t, nu, axes=([axis], [0]))
        total += t
    return lam * total


def birth_death_generator(
    arrival: float, service: float, num_states: int
) -> np.ndarray:
    """Row-convention generator of the finite-buffer birth-death chain.

    State space ``{0, ..., B}`` with ``B = num_states - 1``; up-jumps at
    ``arrival`` (except from ``B``, where arrivals are dropped and do not
    move the state), down-jumps at ``service`` (except from ``0``). Rows
    sum to zero.
    """
    if num_states < 2:
        raise ValueError("need at least two queue states")
    if arrival < 0 or service < 0:
        raise ValueError("rates must be non-negative")
    g = np.zeros((num_states, num_states))
    idx = np.arange(num_states - 1)
    g[idx, idx + 1] = arrival
    g[idx + 1, idx] = service
    np.fill_diagonal(g, -g.sum(axis=1))
    return g


def extended_generator(
    arrival: float, service: float, num_states: int
) -> np.ndarray:
    """``(S+1) x (S+1)`` extended generator with the drop-flux column.

    The last column accumulates ``∫ arrival · P(y(s) = B) ds``; the last
    row is zero (the accumulator is an integral, not a state).
    """
    g = birth_death_generator(arrival, service, num_states)
    ext = np.zeros((num_states + 1, num_states + 1))
    ext[:num_states, :num_states] = g
    ext[num_states - 1, num_states] = arrival
    return ext


def _stacked_extended_generators(
    arrival_rates: np.ndarray, service: float, num_states: int
) -> np.ndarray:
    """One extended generator per initial state, stacked on axis 0."""
    arrival_rates = np.asarray(arrival_rates, dtype=np.float64)
    stacked = np.zeros((arrival_rates.size, num_states + 1, num_states + 1))
    for z, lam_z in enumerate(arrival_rates):
        stacked[z] = extended_generator(float(lam_z), service, num_states)
    return stacked


def propagate_state(
    arrival_rates: np.ndarray,
    service: float,
    delta_t: float,
    num_states: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-initial-state propagator rows and expected drops (Eq. 28).

    Returns
    -------
    transitions:
        Array ``(S, S)`` where row ``z`` is the distribution of the queue
        state after ``Δt`` given it started the epoch in state ``z`` (and
        received arrivals at the frozen rate ``arrival_rates[z]``).
    drops:
        Array ``(S,)`` of expected packets dropped during the epoch by a
        queue starting in state ``z``.
    """
    if delta_t <= 0:
        raise ValueError(f"delta_t must be > 0, got {delta_t}")
    stacked = _stacked_extended_generators(arrival_rates, service, num_states)
    exp_stack = expm(stacked * delta_t)
    rows = exp_stack[np.arange(num_states), np.arange(num_states), :]
    transitions = rows[:, :num_states]
    drops = rows[:, num_states]
    return transitions, drops


def epoch_update(
    nu: np.ndarray,
    rule: DecisionRule,
    lam: float,
    service: float,
    delta_t: float,
) -> tuple[np.ndarray, float]:
    """One exact epoch of the mean-field dynamics (Eq. 24-26).

    Returns ``(nu_next, expected_drops_per_queue)``.
    """
    nu = np.asarray(nu, dtype=np.float64)
    rates = per_state_arrival_rates(nu, rule, lam)
    transitions, drops = propagate_state(
        rates, service, delta_t, rule.num_states
    )
    nu_next = nu @ transitions
    # Round-off guard: the analytical update preserves the simplex exactly.
    nu_next = np.maximum(nu_next, 0.0)
    nu_next /= nu_next.sum()
    expected_drops = float(nu @ drops)
    return nu_next, expected_drops


def uniformization_transition_matrix(
    arrival: float,
    service: float,
    num_states: int,
    delta_t: float,
    tol: float = 1e-12,
) -> np.ndarray:
    """Epoch transition matrix via uniformization (validation path).

    ``P(Δt) = Σ_k e^{-ΛΔt} (ΛΔt)^k / k! · U^k`` with
    ``U = I + G/Λ`` and ``Λ ≥ max_i |G_ii|``. Truncates the Poisson sum
    once the remaining mass falls below ``tol``. Used in tests to
    cross-validate the ``expm`` path with an independent algorithm.
    """
    g = birth_death_generator(arrival, service, num_states)
    lam_unif = float(max(-g.diagonal().min(), 1e-12))
    u = np.eye(num_states) + g / lam_unif
    mean_jumps = lam_unif * delta_t
    weight = np.exp(-mean_jumps)
    term = np.eye(num_states)
    total = weight * term
    accumulated = weight
    k = 0
    # Poisson tail bound: stop when remaining probability mass < tol.
    while 1.0 - accumulated > tol and k < 100_000:
        k += 1
        term = term @ u
        weight = weight * mean_jumps / k
        total += weight * term
        accumulated += weight
    # Renormalize the truncated sum so rows are exactly stochastic.
    total /= total.sum(axis=1, keepdims=True)
    return total


class ExactPropagator:
    """Stateless exact epoch propagator (one stacked ``expm`` per call)."""

    def __init__(self, num_states: int, service: float, delta_t: float) -> None:
        if num_states < 2:
            raise ValueError("need at least two queue states")
        if service <= 0 or delta_t <= 0:
            raise ValueError("service and delta_t must be > 0")
        self.num_states = num_states
        self.service = service
        self.delta_t = delta_t

    def propagate(
        self, nu: np.ndarray, arrival_rates: np.ndarray
    ) -> tuple[np.ndarray, float]:
        transitions, drops = propagate_state(
            arrival_rates, self.service, self.delta_t, self.num_states
        )
        nu = np.asarray(nu, dtype=np.float64)
        nu_next = nu @ transitions
        nu_next = np.maximum(nu_next, 0.0)
        nu_next /= nu_next.sum()
        return nu_next, float(nu @ drops)


class TabulatedPropagator:
    """Grid-interpolated epoch propagator (training fast path).

    Pre-computes the extended matrix exponential on a uniform grid of
    arrival-rate values and answers queries by linear interpolation of
    the exponentials. Interpolation is a convex combination of stochastic
    matrices, so the returned ``ν_{t+1}`` is always a valid distribution
    and drops are always non-negative; the dynamics error is
    ``O(grid_step²)`` and is measured explicitly in the ablation bench.
    """

    def __init__(
        self,
        num_states: int,
        service: float,
        delta_t: float,
        max_arrival: float,
        grid_size: int = 257,
    ) -> None:
        if grid_size < 2:
            raise ValueError("grid_size must be >= 2")
        if max_arrival <= 0:
            raise ValueError("max_arrival must be > 0")
        self.num_states = num_states
        self.service = service
        self.delta_t = delta_t
        self.max_arrival = max_arrival
        self.grid = np.linspace(0.0, max_arrival, grid_size)
        self._step = self.grid[1] - self.grid[0]
        # Table of expm rows: shape (grid, S, S+1); entry [g, z, :] is the
        # z-th row of expm(Ā(grid[g]) Δt) (state distribution + drops).
        table = np.empty((grid_size, num_states, num_states + 1))
        for gi, lam_g in enumerate(self.grid):
            stacked = extended_generator(float(lam_g), service, num_states)
            exp_mat = expm(stacked * delta_t)
            table[gi] = exp_mat[:num_states, :]
        self._table = table

    def _rows(self, arrival_rates: np.ndarray) -> np.ndarray:
        """Interpolated (state-distribution + drop) rows per initial state."""
        rates = np.asarray(arrival_rates, dtype=np.float64)
        if rates.shape != (self.num_states,):
            raise ValueError(
                f"arrival_rates must have shape ({self.num_states},)"
            )
        if rates.min() < -1e-12 or rates.max() > self.max_arrival + 1e-9:
            raise ValueError(
                f"arrival rates {rates} outside tabulated range "
                f"[0, {self.max_arrival}]"
            )
        pos = np.clip(rates, 0.0, self.max_arrival) / self._step
        low = np.minimum(pos.astype(np.intp), len(self.grid) - 2)
        frac = pos - low
        z_idx = np.arange(self.num_states)
        row_low = self._table[low, z_idx, :]
        row_high = self._table[low + 1, z_idx, :]
        return row_low * (1.0 - frac[:, None]) + row_high * frac[:, None]

    def propagate(
        self, nu: np.ndarray, arrival_rates: np.ndarray
    ) -> tuple[np.ndarray, float]:
        rows = self._rows(arrival_rates)
        nu = np.asarray(nu, dtype=np.float64)
        nu_next = nu @ rows[:, : self.num_states]
        nu_next = np.maximum(nu_next, 0.0)
        nu_next /= nu_next.sum()
        return nu_next, float(nu @ rows[:, self.num_states])

    def max_interpolation_error(self, probe_points: int = 100) -> float:
        """Sup-norm error of interpolated rows at grid midpoints."""
        worst = 0.0
        probes = np.linspace(
            self._step / 2.0, self.max_arrival - self._step / 2.0, probe_points
        )
        for lam_probe in probes:
            exact, drops = propagate_state(
                np.full(self.num_states, lam_probe),
                self.service,
                self.delta_t,
                self.num_states,
            )
            exact_rows = np.concatenate([exact, drops[:, None]], axis=1)
            approx_rows = self._rows(np.full(self.num_states, lam_probe))
            worst = max(worst, float(np.abs(exact_rows - approx_rows).max()))
        return worst
