"""The upper-level MFC Markov decision process (paper Section 2.5).

State: ``(ν_t, λ_t) ∈ P(Z) × Λ``. Action: a lower-level decision rule
``h_t : Z^d → P(U)``. Dynamics (Eq. 29): ``ν_{t+1} = T_ν(ν_t, λ_t, h_t)``
via the exact discretization, and ``λ_{t+1} ~ P_λ(λ_t)``; the reward is
the negative expected per-queue packet drops ``-D_t`` (Eq. 31).

The environment exposes a gym-like ``reset``/``step`` API plus a
``step_raw`` entry point that accepts unconstrained action vectors from
the RL stack and normalizes them onto the simplex the way the paper does
(Gaussian policy output + manual normalization).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.discretization import (
    ExactPropagator,
    TabulatedPropagator,
    per_state_arrival_rates,
)
from repro.queueing.arrivals import MarkovModulatedRate
from repro.utils.rng import as_generator

__all__ = ["MeanFieldEnv", "MeanFieldState", "observation_dim"]


@dataclass(frozen=True)
class MeanFieldState:
    """Immutable snapshot of the MFC MDP state."""

    nu: np.ndarray
    lam_mode: int
    t: int

    def copy(self) -> "MeanFieldState":
        return MeanFieldState(self.nu.copy(), self.lam_mode, self.t)


def observation_dim(config: SystemConfig, num_modes: int = 2) -> int:
    """Flat observation size: ``ν`` (S floats) + one-hot arrival mode."""
    return config.num_queue_states + num_modes


class MeanFieldEnv:
    """Mean-field control MDP for delayed-information load balancing.

    Parameters
    ----------
    config:
        System parameters (buffer size, rates, ``Δt``, ``d``, ...).
    horizon:
        Episode length in decision epochs; defaults to
        ``config.episode_length`` (the paper's ``T = 500``).
    propagator:
        ``"exact"`` (one stacked matrix exponential per step) or
        ``"tabulated"`` (grid-interpolated exponentials, ~10x faster,
        error measured by
        :meth:`repro.meanfield.discretization.TabulatedPropagator.max_interpolation_error`).
    arrival_process:
        Optional custom modulating chain; defaults to the two-level chain
        of Eq. (32)-(33) built from ``config``.
    """

    def __init__(
        self,
        config: SystemConfig,
        horizon: int | None = None,
        propagator: str = "exact",
        arrival_process: MarkovModulatedRate | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config
        self.horizon = int(horizon if horizon is not None else config.episode_length)
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        self.arrivals = (
            arrival_process
            if arrival_process is not None
            else MarkovModulatedRate.from_config(config)
        )
        s = config.num_queue_states
        if propagator == "exact":
            self._propagator = ExactPropagator(
                s, config.service_rate, config.delta_t
            )
        elif propagator == "tabulated":
            # Frozen arrival rates are bounded by d * λ_max (Section 3:
            # λ_t(ν, z) <= d λ_t); keep a small safety margin.
            max_arrival = config.d * self.arrivals.max_rate() * (1.0 + 1e-9)
            self._propagator = TabulatedPropagator(
                s, config.service_rate, config.delta_t, max_arrival
            )
        else:
            raise ValueError(
                f"unknown propagator {propagator!r}; use 'exact' or 'tabulated'"
            )
        self.propagator_kind = propagator
        self._rng = as_generator(seed)
        self._nu: np.ndarray | None = None
        self._lam_mode: int = 0
        self._t: int = 0

    # ------------------------------------------------------------------
    # Spaces
    # ------------------------------------------------------------------
    @property
    def num_queue_states(self) -> int:
        return self.config.num_queue_states

    @property
    def num_modes(self) -> int:
        return self.arrivals.num_modes

    @property
    def observation_size(self) -> int:
        return self.num_queue_states + self.num_modes

    @property
    def action_size(self) -> int:
        """Flat size of a raw action: ``S^d * d`` (full rule table)."""
        return self.num_queue_states**self.config.d * self.config.d

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def state(self) -> MeanFieldState:
        if self._nu is None:
            raise RuntimeError("environment must be reset before use")
        return MeanFieldState(self._nu.copy(), self._lam_mode, self._t)

    @property
    def current_rate(self) -> float:
        return self.arrivals.rate(self._lam_mode)

    def observation(self) -> np.ndarray:
        """Flat observation: ``[ν, one_hot(λ mode)]``."""
        if self._nu is None:
            raise RuntimeError("environment must be reset before use")
        one_hot = np.zeros(self.num_modes)
        one_hot[self._lam_mode] = 1.0
        return np.concatenate([self._nu, one_hot])

    def set_state(self, nu: np.ndarray, lam_mode: int, t: int = 0) -> None:
        """Force an arbitrary state (used by convergence analysis/tests)."""
        nu = np.asarray(nu, dtype=np.float64)
        if nu.shape != (self.num_queue_states,):
            raise ValueError(f"nu must have shape ({self.num_queue_states},)")
        if np.any(nu < -1e-12) or not np.isclose(nu.sum(), 1.0):
            raise ValueError("nu must be a probability vector")
        if not 0 <= lam_mode < self.num_modes:
            raise ValueError(f"lam_mode {lam_mode} out of range")
        self._nu = np.maximum(nu, 0.0)
        self._nu /= self._nu.sum()
        self._lam_mode = int(lam_mode)
        self._t = int(t)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def clone(self, seed: int | np.random.Generator | None = None) -> "MeanFieldEnv":
        """Fresh environment with the same configuration (used to build
        lock-step ensembles for the vectorized rollout collector)."""
        env = MeanFieldEnv(
            self.config,
            horizon=self.horizon,
            propagator="exact",
            # replica(): stateful processes (ScriptedRate's replay cursor)
            # must not be shared across lock-step clones.
            arrival_process=self.arrivals.replica(),
            seed=seed,
        )
        # Propagators are stateless; share ours instead of re-tabulating
        # (a TabulatedPropagator rebuild is ~100ms of matrix exponentials).
        env._propagator = self._propagator
        env.propagator_kind = self.propagator_kind
        return env

    def reset(self, seed: int | np.random.Generator | None = None) -> np.ndarray:
        """Start a fresh episode: ``ν_0 = δ_{z0}``, ``λ_0 ~ Unif``."""
        if seed is not None:
            self._rng = as_generator(seed)
        nu0 = np.zeros(self.num_queue_states)
        nu0[self.config.initial_state] = 1.0
        self._nu = nu0
        self._lam_mode = self.arrivals.sample_initial_mode(self._rng)
        self._t = 0
        return self.observation()

    def step(self, rule: DecisionRule) -> tuple[np.ndarray, float, bool, dict]:
        """Apply decision rule ``h_t`` for one epoch.

        Returns ``(observation, reward, done, info)`` with
        ``reward = -drop_penalty * D_t`` (per-queue expected drops) and
        ``done`` marking the horizon truncation.
        """
        if self._nu is None:
            raise RuntimeError("environment must be reset before use")
        if rule.num_states != self.num_queue_states or rule.d != self.config.d:
            raise ValueError(
                f"rule has (S={rule.num_states}, d={rule.d}), environment "
                f"expects (S={self.num_queue_states}, d={self.config.d})"
            )
        lam = self.current_rate
        rates = per_state_arrival_rates(self._nu, rule, lam)
        nu_next, drops = self._propagator.propagate(self._nu, rates)
        self._nu = nu_next
        self._lam_mode = self.arrivals.step_mode(self._lam_mode, self._rng)
        self._t += 1
        done = self._t >= self.horizon
        reward = -self.config.drop_penalty * drops
        info = {
            "drops": drops,
            "arrival_rates": rates,
            "lam": lam,
            "t": self._t,
            # The MDP is infinite-horizon discounted; episode ends are
            # always time-limit truncations (bootstrapped by the RL stack).
            "truncated": done,
        }
        return self.observation(), reward, done, info

    def step_raw(self, raw_action: np.ndarray) -> tuple[np.ndarray, float, bool, dict]:
        """Step with an unconstrained action vector (RL interface)."""
        rule = DecisionRule.from_raw(
            raw_action, self.num_queue_states, self.config.d
        )
        return self.step(rule)

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def rollout_return(
        self,
        policy,
        num_steps: int | None = None,
        discount: float | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> float:
        """Total (optionally discounted) reward of ``policy`` over one episode.

        ``policy`` is an upper-level policy exposing
        ``decision_rule(nu, lam_mode, rng)`` (see
        :mod:`repro.policies.base`). The only randomness in the MFC MDP
        is the modulating chain, so a handful of rollouts estimates the
        expected return tightly.
        """
        rng = as_generator(seed)
        steps = int(num_steps if num_steps is not None else self.horizon)
        self.reset(rng)
        total = 0.0
        weight = 1.0
        for _ in range(steps):
            rule = policy.decision_rule(self._nu, self._lam_mode, rng)
            _, reward, done, _ = self.step(rule)
            total += weight * reward
            if discount is not None:
                weight *= discount
            if done:
                break
        return total
