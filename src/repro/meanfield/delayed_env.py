"""MFC MDP under stochastic observation delays (training environment).

:class:`DelayedMeanFieldEnv` is the :class:`repro.meanfield.mfc_env.MeanFieldEnv`
of the delayed-information regimes: the epoch map runs through the
delay-mixture closure of
:class:`repro.meanfield.delayed.DelayedMeanFieldPropagator` (a fraction
``p_k`` of dispatchers routes against the law from ``k`` epochs back),
the delay regime follows the model's exogenous Markov chain, and the
observation can carry the regime-context features of
:class:`repro.meanfield.features.ObservationFeatures`.

Two exactness guarantees keep it a drop-in replacement:

* With a point mass at age 0 the dynamics take the parent's exact code
  path (same propagator call, same RNG draws) — **bit-identical** to
  :class:`MeanFieldEnv`, not merely close.
* With features off the observation is exactly ``[ν, one_hot(λ mode)]``.

This is the environment the per-regime training campaign collects from;
the finite-system counterpart is
:class:`repro.queueing.delayed_env.BatchedDelayedFiniteEnv`, which
consumes the same :class:`repro.queueing.delays.DelayModel` objects.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.delayed import DelayedMeanFieldPropagator
from repro.meanfield.features import (
    ObservationFeatures,
    age_context,
    regime_age_context,
)
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.delays import DelayModel, DeterministicDelay

__all__ = ["DelayedMeanFieldEnv"]


class DelayedMeanFieldEnv(MeanFieldEnv):
    """Mean-field control MDP with delayed snapshots and context features.

    Parameters
    ----------
    config, horizon, propagator, arrival_process, seed:
        As in :class:`repro.meanfield.mfc_env.MeanFieldEnv`.
    delay_model:
        Snapshot-age model; defaults to the paper's synchronous
        broadcast (:class:`repro.queueing.delays.DeterministicDelay`
        with ``k = 0``), under which this class is bit-identical to the
        parent.
    features:
        Context features appended to the observation. Age features are
        the *stationary* context of ``delay_model`` (frozen per
        environment — see :func:`repro.meanfield.features.age_context`),
        matching what a deployed :class:`repro.policies.learned.NeuralPolicy`
        sees through plumbing without a live channel. With
        ``features.live_age`` they are instead the *current* delay
        regime's conditional context
        (:func:`repro.meanfield.features.regime_age_context`), matching
        the per-replica live channel of
        :meth:`repro.queueing.delayed_env.BatchedDelayedFiniteEnv.step_with_policy`.
    """

    def __init__(
        self,
        config: SystemConfig,
        horizon: int | None = None,
        propagator: str = "exact",
        arrival_process: MarkovModulatedRate | None = None,
        seed: int | np.random.Generator | None = None,
        delay_model: DelayModel | None = None,
        features: ObservationFeatures | None = None,
    ) -> None:
        super().__init__(
            config,
            horizon=horizon,
            propagator=propagator,
            arrival_process=arrival_process,
            seed=seed,
        )
        self.delay_model = (
            delay_model if delay_model is not None else DeterministicDelay(0)
        )
        self.features = features if features is not None else ObservationFeatures()
        self._age_context = (
            age_context(self.delay_model) if self.features.age else None
        )
        self._regime: int = 0
        self._delayed: DelayedMeanFieldPropagator | None = None

    # ------------------------------------------------------------------
    @property
    def observation_size(self) -> int:
        return super().observation_size + self.features.extra_dims

    @property
    def delay_regime(self) -> int:
        """Current delay regime (0 for single-regime models)."""
        return self._regime

    @property
    def _exact_dynamics(self) -> bool:
        """Age-0 point mass: use the parent's exact epoch map."""
        return self.delay_model.max_delay == 0

    def live_age_context(self) -> tuple[float, float]:
        """Age context of the *current* delay regime (no randomness)."""
        return regime_age_context(self.delay_model, self._regime)

    def observation(self) -> np.ndarray:
        base = super().observation()
        age = (
            self.live_age_context()
            if self.features.live_age
            else self._age_context
        )
        extra = self.features.vector(self._nu, age=age)
        if extra.size == 0:
            return base
        return np.concatenate([base, extra])

    # ------------------------------------------------------------------
    def clone(
        self, seed: int | np.random.Generator | None = None
    ) -> "DelayedMeanFieldEnv":
        env = DelayedMeanFieldEnv(
            self.config,
            horizon=self.horizon,
            propagator="exact",
            arrival_process=self.arrivals.replica(),
            seed=seed,
            delay_model=self.delay_model.replica(),
            features=self.features,
        )
        env._propagator = self._propagator
        env.propagator_kind = self.propagator_kind
        return env

    def reset(
        self, seed: int | np.random.Generator | None = None
    ) -> np.ndarray:
        super().reset(seed)
        # Single-regime models draw nothing: keeps the age-0 case on the
        # parent's exact RNG stream.
        if self.delay_model.num_regimes > 1:
            self._regime = int(
                self.delay_model.sample_initial_regimes_batch(1, self._rng)[0]
            )
        else:
            self._regime = 0
        if not self._exact_dynamics:
            self._delayed = DelayedMeanFieldPropagator(
                self._nu,
                self.delay_model.max_delay,
                self.config.service_rate,
                self.config.delta_t,
            )
        return self.observation()

    def step(self, rule: DecisionRule) -> tuple[np.ndarray, float, bool, dict]:
        if self._exact_dynamics:
            # Parent path: bit-identical dynamics, observation() above
            # still appends any enabled features.
            obs, reward, done, info = super().step(rule)
            info["delay_regime"] = self._regime
            return obs, reward, done, info
        if self._nu is None or self._delayed is None:
            raise RuntimeError("environment must be reset before use")
        if rule.num_states != self.num_queue_states or rule.d != self.config.d:
            raise ValueError(
                f"rule has (S={rule.num_states}, d={rule.d}), environment "
                f"expects (S={self.num_queue_states}, d={self.config.d})"
            )
        lam = self.current_rate
        pmf = self.delay_model.pmf(self._regime)
        nu_next, drops = self._delayed.step(rule, lam, pmf)
        self._nu = nu_next
        self._lam_mode = self.arrivals.step_mode(self._lam_mode, self._rng)
        if self.delay_model.num_regimes > 1:
            self._regime = int(
                self.delay_model.step_regimes_batch(
                    np.array([self._regime]), self._rng
                )[0]
            )
        self._t += 1
        done = self._t >= self.horizon
        reward = -self.config.drop_penalty * drops
        info = {
            "drops": drops,
            "lam": lam,
            "t": self._t,
            "truncated": done,
            "delay_regime": self._regime,
            "delay_pmf": pmf,
        }
        return self.observation(), reward, done, info
