"""Mean-field closure of the untracked fleet in hybrid simulations.

:class:`HybridFieldClosure` maintains, per replica, the law of the
``M_field = M - M_track`` queues that
:class:`repro.queueing.hybrid_env.BatchedHybridFleetEnv` does *not*
simulate exactly. Each epoch the closure advances those laws with the
exact propagators of :mod:`repro.meanfield.discretization` (dense) and
:mod:`repro.meanfield.delayed` (snapshot-age mixtures), evaluated at the
*global* mixture law

    μ_t = (M_track / M) · H_t  +  (M_field / M) · ν_t

so field queues are sampled and ranked against the same population the
tracked queues see. Arrival mass is exchanged consistently with the
tracked half: the environment hands the closure the exact per-queue
arrival mass the field must absorb (offered mass minus the tracked
half's sampled rates) and the closure rescales its frozen per-state
rates so ``Σ_z ν_t(z) r(z)`` matches it bit-for-bit — conservation
holds every epoch by construction.

Both reductions are exact:

* ``M_track = 0`` — the mixture collapses to ``ν_t``, no rescaling is
  applied, and the per-replica update performs the *identical* floating
  point operations as :func:`repro.meanfield.discretization.epoch_update`
  / :class:`repro.meanfield.delayed.DelayedMeanFieldPropagator`.
* ``M_field = 0`` — the environment never constructs a closure at all.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.delayed import _MASS_EPS
from repro.meanfield.discretization import (
    per_state_arrival_rates,
    propagate_state,
)

__all__ = ["HybridFieldClosure"]

#: Below this natural-to-target mass ratio the rescaling factor would
#: blow up; fall back to a state-uniform rate with the exact target mass.
_SCALE_EPS = 1e-12


class HybridFieldClosure:
    """Per-replica field laws advanced by the exact epoch propagators.

    Parameters
    ----------
    nu0 : ndarray
        Initial law shared by every replica, shape ``(S,)``.
    num_replicas : int
        Lock-step replica count ``E``.
    max_delay : int
        Largest snapshot age ``K`` served (``0`` for the dense closure).
    service : float
        Service rate ``α`` of the field queues.
    delta_t : float
        Epoch length ``Δt``.
    """

    def __init__(
        self,
        nu0: np.ndarray,
        num_replicas: int,
        max_delay: int,
        service: float,
        delta_t: float,
    ) -> None:
        nu0 = np.asarray(nu0, dtype=np.float64)
        if nu0.ndim != 1 or nu0.size < 2:
            raise ValueError("nu0 must be a law over >= 2 states")
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if service <= 0 or delta_t <= 0:
            raise ValueError("service and delta_t must be > 0")
        self.num_replicas = int(num_replicas)
        self.num_states = int(nu0.size)
        self.max_delay = int(max_delay)
        self.service = float(service)
        self.delta_t = float(delta_t)
        # Newest-first histories (mirrors DelayedMeanFieldPropagator):
        # _nus[k] holds the age-k laws, shape (E, S).
        self._nus: deque[np.ndarray] = deque(
            [np.tile(nu0, (self.num_replicas, 1))], maxlen=self.max_delay + 1
        )
        self._epoch_transitions: deque[np.ndarray] = deque(
            maxlen=self.max_delay
        )

    @property
    def nu(self) -> np.ndarray:
        """Current field laws ``ν_t`` per replica, shape ``(E, S)``."""
        return self._nus[0].copy()

    def laws(self, age: int) -> np.ndarray:
        """Age-``age`` field laws (clamped to the oldest), ``(E, S)``."""
        if not 0 <= age <= self.max_delay:
            raise ValueError(f"age must lie in [0, {self.max_delay}]")
        return self._nus[min(age, len(self._nus) - 1)].copy()

    def sample_states(self, age: int, count: int, rng) -> np.ndarray:
        """Draw ``count`` i.i.d. virtual field states per replica.

        Inverse-CDF sampling from the age-``age`` laws with one
        ``rng.random((E, count))`` draw — the hybrid environment's only
        extra consumption of the generator stream relative to the dense
        environment. Returns int64 states shaped ``(E, count)``.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        laws = self._nus[min(age, len(self._nus) - 1)]
        cum = np.cumsum(laws, axis=1)
        cum[:, -1] = 1.0
        u = rng.random((self.num_replicas, count))
        out = np.empty((self.num_replicas, count), dtype=np.int64)
        for e in range(self.num_replicas):
            out[e] = np.searchsorted(cum[e], u[e], side="right")
        np.minimum(out, self.num_states - 1, out=out)
        return out

    def _replica_history(
        self, e: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Replica ``e``'s age-indexed laws and ``Φ_k`` products."""
        nus = [
            self._nus[min(k, len(self._nus) - 1)][e]
            for k in range(self.max_delay + 1)
        ]
        phis = [np.eye(self.num_states)]
        phi = phis[0]
        for i in range(self.max_delay):
            if i < len(self._epoch_transitions):
                phi = self._epoch_transitions[i][e] @ phi
            phis.append(phi)
        return nus, phis

    def step(
        self,
        rules: "DecisionRule | Sequence[DecisionRule]",
        lams: np.ndarray,
        *,
        pmfs: np.ndarray | None = None,
        tracked_hists: "Sequence[np.ndarray] | None" = None,
        tracked_weight: float = 0.0,
        field_targets: np.ndarray | None = None,
    ) -> np.ndarray:
        """Advance every replica's field law by one epoch.

        Parameters
        ----------
        rules : DecisionRule or sequence
            Decision rule(s) — one shared or ``E`` per-replica rules.
        lams : ndarray
            Per-replica arrival intensities ``λ_t``, shape ``(E,)``.
        pmfs : ndarray, optional
            Per-replica snapshot-age pmfs ``(E, K + 1)``; ``None`` is the
            dense (age-0) closure.
        tracked_hists : sequence of ndarray, optional
            Age-indexed tracked-subsystem histograms, each ``(E, S)``
            (epoch-start snapshots). ``None`` when nothing is tracked.
        tracked_weight : float
            Mixture weight ``M_track / M`` of the tracked histograms.
        field_targets : ndarray, optional
            Exact per-field-queue arrival mass each replica's field must
            absorb, shape ``(E,)``. ``None`` skips rescaling (the pure
            mean-field reduction).

        Returns
        -------
        ndarray
            Expected per-field-queue drops this epoch, shape ``(E,)``.
        """
        if isinstance(rules, DecisionRule):
            rule_list: "list[DecisionRule]" = [rules] * self.num_replicas
        else:
            rule_list = list(rules)
            if len(rule_list) != self.num_replicas:
                raise ValueError(
                    f"need {self.num_replicas} rules, got {len(rule_list)}"
                )
        lams = np.asarray(lams, dtype=np.float64)
        if lams.shape != (self.num_replicas,):
            raise ValueError(
                f"lams must have shape ({self.num_replicas},), "
                f"got {lams.shape}"
            )
        w_t = float(tracked_weight)
        w_f = 1.0 - w_t
        e_count, s = self.num_replicas, self.num_states
        nu_next_all = np.empty((e_count, s))
        transitions_all = (
            np.empty((e_count, s, s)) if self.max_delay > 0 else None
        )
        expected = np.empty(e_count)
        for e in range(e_count):
            rule, lam_e = rule_list[e], float(lams[e])
            if self.max_delay == 0:
                nu_now = self._nus[0][e]
                if tracked_hists is None:
                    mix = nu_now
                else:
                    mix = w_f * nu_now + w_t * tracked_hists[0][e]
                rates = per_state_arrival_rates(mix, rule, lam_e)
            else:
                nus_e, phis = self._replica_history(e)
                nu_now = nus_e[0]
                if pmfs is not None:
                    pmf = np.asarray(pmfs[e], dtype=np.float64)
                else:
                    pmf = np.zeros(self.max_delay + 1)
                    pmf[0] = 1.0
                numerator = np.zeros(s)
                filler = 0.0
                for k, p_k in enumerate(pmf):
                    if p_k <= 0.0:
                        continue
                    nu_k = nus_e[k]
                    if tracked_hists is None:
                        mix_k = nu_k
                    else:
                        mix_k = w_f * nu_k + w_t * tracked_hists[k][e]
                    # Sampling happens against the age-k *mixture*; the
                    # Bayes transport back to current states runs through
                    # the field's own law and propagator product, as in
                    # delayed_arrival_rates.
                    r_k = per_state_arrival_rates(mix_k, rule, lam_e)
                    numerator += p_k * ((nu_k * r_k) @ phis[k])
                    filler += p_k * float(nu_k @ r_k)
                rates = np.where(
                    nu_now > _MASS_EPS,
                    numerator / np.maximum(nu_now, _MASS_EPS),
                    filler,
                )
            if field_targets is not None:
                # Pin absorbed mass to the exact remainder the tracked
                # half left over: Σ_z ν(z) r(z) == target afterwards.
                target = max(float(field_targets[e]), 0.0)
                natural = float(nu_now @ rates)
                if natural > _SCALE_EPS * max(target, 1.0):
                    rates = rates * (target / natural)
                else:
                    rates = np.full(s, target)
            transitions, drops = propagate_state(
                rates, self.service, self.delta_t, s
            )
            nu_next = nu_now @ transitions
            nu_next = np.maximum(nu_next, 0.0)
            nu_next /= nu_next.sum()
            expected[e] = float(nu_now @ drops)
            nu_next_all[e] = nu_next
            if transitions_all is not None:
                transitions_all[e] = transitions
        self._nus.appendleft(nu_next_all)
        if transitions_all is not None:
            self._epoch_transitions.appendleft(transitions_all)
        return expected
