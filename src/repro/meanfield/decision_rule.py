"""Lower-level decision rules ``h : Z^d -> P(U)`` — the MFC action space.

A decision rule tells an agent that sampled ``d`` queues with (anonymous)
states ``z̄ = (z̄_1, ..., z̄_d)`` with which probability to route its jobs
to each of the ``d`` sampled queues. The paper's upper-level policy
``π̃(ν_t, λ_t)`` emits one such rule per decision epoch (Eq. 30); the
static baselines MF-JSQ (Eq. 34) and MF-RND (Eq. 35) are fixed rules.

The rule is stored densely as an array of shape ``(S,)*d + (d,)`` with
``S = B + 1`` queue states; entry ``probs[z̄_1, ..., z̄_d, u]`` is
``h(u | z̄)``. For the paper's setting (``B=5``, ``d=2``) this is a
``6 x 6 x 2`` table — small enough that dense algebra is always the right
choice.
"""

from __future__ import annotations

import itertools
from typing import Iterable

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["DecisionRule"]


class DecisionRule:
    """Dense routing rule over ``d`` sampled queues.

    Parameters
    ----------
    probs:
        Array broadcastable to shape ``(S,)*d + (d,)`` whose last axis is
        a probability vector for every joint sampled-state ``z̄``.
    validate:
        If true (default), check simplex constraints up to ``atol``.
    """

    __slots__ = ("probs", "num_states", "d")

    def __init__(self, probs: np.ndarray, validate: bool = True, atol: float = 1e-8):
        probs = np.asarray(probs, dtype=np.float64)
        if probs.ndim < 2:
            raise ValueError("decision rule needs at least 2 axes: (states..., action)")
        d = probs.ndim - 1
        if probs.shape[-1] != d:
            raise ValueError(
                f"last axis must have size d={d} (one prob per sampled queue), "
                f"got shape {probs.shape}"
            )
        state_sizes = set(probs.shape[:-1])
        if len(state_sizes) != 1:
            raise ValueError(
                f"all state axes must have equal length, got shape {probs.shape}"
            )
        self.probs = probs
        self.num_states = probs.shape[0]
        self.d = d
        if validate:
            self._validate(atol)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, num_states: int, d: int) -> "DecisionRule":
        """MF-RND (Eq. 35): route uniformly among the ``d`` sampled queues."""
        shape = (num_states,) * d + (d,)
        return cls(np.full(shape, 1.0 / d))

    @classmethod
    def join_shortest(cls, num_states: int, d: int) -> "DecisionRule":
        """MF-JSQ(d) (Eq. 34): uniform over the sampled queues of minimal state."""
        shape = (num_states,) * d + (d,)
        probs = np.zeros(shape)
        for zbar in itertools.product(range(num_states), repeat=d):
            arr = np.asarray(zbar)
            minimal = arr == arr.min()
            probs[zbar] = minimal / minimal.sum()
        return cls(probs)

    @classmethod
    def join_longest(cls, num_states: int, d: int) -> "DecisionRule":
        """Adversarial rule (joins the *fullest* queue) — used in tests as a
        known-bad policy: it should never beat MF-JSQ on drops."""
        shape = (num_states,) * d + (d,)
        probs = np.zeros(shape)
        for zbar in itertools.product(range(num_states), repeat=d):
            arr = np.asarray(zbar)
            maximal = arr == arr.max()
            probs[zbar] = maximal / maximal.sum()
        return cls(probs)

    @classmethod
    def threshold(cls, num_states: int, d: int, threshold: int) -> "DecisionRule":
        """Route JSQ-style only when the shortest sampled queue is below
        ``threshold``; otherwise route uniformly. A simple interpolation
        family between MF-JSQ (``threshold = S``) and MF-RND
        (``threshold = 0``) used in examples and ablations."""
        jsq = cls.join_shortest(num_states, d).probs
        rnd = cls.uniform(num_states, d).probs
        probs = np.empty_like(jsq)
        for zbar in itertools.product(range(num_states), repeat=d):
            probs[zbar] = jsq[zbar] if min(zbar) < threshold else rnd[zbar]
        return cls(probs)

    @classmethod
    def from_raw(
        cls,
        raw: np.ndarray,
        num_states: int,
        d: int,
        floor: float = 1e-6,
    ) -> "DecisionRule":
        """Map an unconstrained RL action onto the simplex.

        Mirrors the paper's "manual normalization" of Gaussian-policy
        outputs (Section 4): values are clipped into ``[0, 1]``, floored
        by ``floor`` (so every sampled queue keeps positive mass and the
        normalizer can never vanish), and normalized along the action
        axis.
        """
        raw = np.asarray(raw, dtype=np.float64)
        expected = num_states**d * d
        if raw.size != expected:
            raise ValueError(
                f"raw action has {raw.size} entries, expected {expected} "
                f"(= S^d * d with S={num_states}, d={d})"
            )
        shaped = raw.reshape((num_states,) * d + (d,))
        clipped = np.clip(shaped, 0.0, 1.0) + floor
        probs = clipped / clipped.sum(axis=-1, keepdims=True)
        return cls(probs, validate=False)

    @classmethod
    def from_flat(cls, flat: np.ndarray, num_states: int, d: int) -> "DecisionRule":
        """Rebuild from :meth:`flat` output (already a valid simplex table)."""
        shaped = np.asarray(flat, dtype=np.float64).reshape(
            (num_states,) * d + (d,)
        )
        return cls(shaped)

    @classmethod
    def convex_combination(
        cls, rules: Iterable["DecisionRule"], weights: Iterable[float]
    ) -> "DecisionRule":
        """Pointwise mixture of rules (stays on the simplex)."""
        rules = list(rules)
        weights_arr = np.asarray(list(weights), dtype=np.float64)
        if len(rules) == 0 or len(rules) != weights_arr.size:
            raise ValueError("need equally many rules and weights (>= 1)")
        if np.any(weights_arr < 0) or not np.isclose(weights_arr.sum(), 1.0):
            raise ValueError("weights must be a probability vector")
        shape = rules[0].probs.shape
        if any(r.probs.shape != shape for r in rules):
            raise ValueError("all rules must share (S, d)")
        mixed = sum(w * r.probs for w, r in zip(weights_arr, rules))
        return cls(mixed)

    # ------------------------------------------------------------------
    # Validation & representation
    # ------------------------------------------------------------------
    def _validate(self, atol: float) -> None:
        if np.any(self.probs < -atol):
            raise ValueError("decision rule has negative probabilities")
        sums = self.probs.sum(axis=-1)
        if not np.allclose(sums, 1.0, atol=1e-6):
            worst = float(np.abs(sums - 1.0).max())
            raise ValueError(
                f"decision rule rows must sum to 1 (max deviation {worst:.3g})"
            )

    def flat(self) -> np.ndarray:
        """Flat copy of the probability table (for optimizers/serialization)."""
        return self.probs.ravel().copy()

    @property
    def num_parameters(self) -> int:
        return self.probs.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecisionRule):
            return NotImplemented
        return self.probs.shape == other.probs.shape and np.allclose(
            self.probs, other.probs
        )

    def __hash__(self) -> int:  # pragma: no cover - rules are not dict keys
        raise TypeError("DecisionRule is unhashable")

    def distance(self, other: "DecisionRule") -> float:
        """Max over ``z̄`` of the total-variation distance between rows."""
        if self.probs.shape != other.probs.shape:
            raise ValueError("rules have different shapes")
        return float(0.5 * np.abs(self.probs - other.probs).sum(axis=-1).max())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DecisionRule(S={self.num_states}, d={self.d}, "
            f"params={self.num_parameters})"
        )

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def action_probs(self, zbar: np.ndarray) -> np.ndarray:
        """Rows ``h(· | z̄)`` for a batch of sampled states.

        Parameters
        ----------
        zbar:
            Integer array of shape ``(n, d)`` (or ``(d,)``) of sampled
            queue states.

        Returns
        -------
        Array of shape ``(n, d)`` of routing probabilities.
        """
        zbar = np.asarray(zbar)
        single = zbar.ndim == 1
        if single:
            zbar = zbar[None, :]
        if zbar.shape[1] != self.d:
            raise ValueError(f"zbar must have {self.d} columns, got {zbar.shape}")
        if zbar.min() < 0 or zbar.max() >= self.num_states:
            raise ValueError(
                f"sampled states must lie in [0, {self.num_states - 1}]"
            )
        idx = tuple(zbar[:, k] for k in range(self.d))
        rows = self.probs[idx]
        return rows[0] if single else rows

    def sample_actions(
        self,
        zbar: np.ndarray,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample ``u_i ~ h(· | z̄_i)`` for a batch of agents (vectorized)."""
        rng = as_generator(rng)
        rows = self.action_probs(np.atleast_2d(np.asarray(zbar)))
        cdf = np.cumsum(rows, axis=1)
        # Guard against round-off: the final cumulative value is exactly 1.
        cdf[:, -1] = 1.0
        uniforms = rng.random(rows.shape[0])
        return (uniforms[:, None] > cdf).sum(axis=1)

    # ------------------------------------------------------------------
    # Symmetry
    # ------------------------------------------------------------------
    def symmetrized(self) -> "DecisionRule":
        """Average the rule over simultaneous permutations of slots.

        Because agents sample their ``d`` queues i.i.d. uniformly, the
        optimal rule can be taken exchangeable:
        ``h(σ(u) | z̄ ∘ σ⁻¹) = h(u | z̄)`` for any slot permutation σ.
        Symmetrizing never changes the induced per-state arrival rates
        (tested), but halves the effective search space for ``d=2``.
        """
        acc = np.zeros_like(self.probs)
        count = 0
        for perm in itertools.permutations(range(self.d)):
            # Move state axes according to perm and re-index the action axis.
            permuted = np.transpose(self.probs, axes=(*perm, self.d))
            permuted = permuted[..., list(perm)]
            acc += permuted
            count += 1
        return DecisionRule(acc / count)

    def is_symmetric(self, atol: float = 1e-10) -> bool:
        return self.distance(self.symmetrized()) <= atol
