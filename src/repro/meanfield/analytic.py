"""Closed-form queueing results used as ground truth in tests and checks.

Under the MF-RND rule with a *constant* arrival intensity ``λ`` every
queue in the mean-field limit is an independent M/M/1/B queue; its
stationary distribution and loss (Erlang-like) probability are classic
textbook formulas. These functions anchor the property tests: the
simulated and exactly-discretized systems must converge to them.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mm1b_stationary_distribution",
    "mm1b_loss_probability",
    "mm1b_expected_queue_length",
    "mm1b_drop_rate",
    "mmpp_stationary_distribution",
]


def mm1b_stationary_distribution(
    arrival: float, service: float, buffer_size: int
) -> np.ndarray:
    """Stationary law of the M/M/1/B queue on ``{0, ..., B}``.

    ``π(z) ∝ ρ^z`` with ``ρ = arrival / service``; the ``ρ = 1`` case is
    uniform.
    """
    if arrival < 0 or service <= 0:
        raise ValueError("need arrival >= 0 and service > 0")
    if buffer_size < 1:
        raise ValueError("buffer_size must be >= 1")
    rho = arrival / service
    states = np.arange(buffer_size + 1)
    if np.isclose(rho, 1.0):
        return np.full(buffer_size + 1, 1.0 / (buffer_size + 1))
    weights = rho**states
    return weights / weights.sum()


def mm1b_loss_probability(
    arrival: float, service: float, buffer_size: int
) -> float:
    """Stationary probability that an arriving packet finds the buffer full.

    By PASTA this equals ``π(B)``.
    """
    return float(mm1b_stationary_distribution(arrival, service, buffer_size)[-1])


def mm1b_expected_queue_length(
    arrival: float, service: float, buffer_size: int
) -> float:
    pi = mm1b_stationary_distribution(arrival, service, buffer_size)
    return float(pi @ np.arange(buffer_size + 1))


def mm1b_drop_rate(arrival: float, service: float, buffer_size: int) -> float:
    """Stationary drop *rate* (packets lost per unit time per queue)."""
    return arrival * mm1b_loss_probability(arrival, service, buffer_size)


def mmpp_stationary_distribution(transition_matrix: np.ndarray) -> np.ndarray:
    """Stationary distribution of a finite discrete-time Markov chain.

    Solves ``π P = π`` via the eigenvector of ``P^T`` at eigenvalue 1;
    used for the modulating chain of Eq. (32)-(33), whose stationary law
    is ``(5/7, 2/7)`` over (high, low).
    """
    p = np.asarray(transition_matrix, dtype=np.float64)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        raise ValueError("transition matrix must be square")
    if np.any(p < 0) or not np.allclose(p.sum(axis=1), 1.0):
        raise ValueError("rows must be probability vectors")
    eigvals, eigvecs = np.linalg.eig(p.T)
    idx = int(np.argmin(np.abs(eigvals - 1.0)))
    pi = np.real(eigvecs[:, idx])
    pi = np.abs(pi)
    return pi / pi.sum()
