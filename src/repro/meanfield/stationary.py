"""Stationary analysis of the mean-field dynamics under constant rules.

For a *fixed* decision rule ``h`` and constant arrival intensity ``λ``
the exact epoch map ``ν ↦ T_ν(ν, λ, h)`` (Eq. 24) is a continuous map of
the probability simplex into itself, so a fixed point exists (Brouwer).
The fixed point is the long-run queue-length distribution the system
settles into, and its drop functional is the steady-state loss rate —
the quantity that dominates the paper's cumulative-drop metrics once the
``ν₀ = δ₀`` transient has washed out.

Closed-form anchor: under MF-RND every queue sees exactly rate ``λ``, so
the fixed point is the M/M/1/B stationary law (tested). For JSQ-like
rules the fixed point captures the herding equilibrium: the map
concentrates arrivals on short queues *within* an epoch, and the
stationary ν balances that against service.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.discretization import epoch_update

__all__ = ["StationaryResult", "stationary_distribution", "stationary_drops"]


@dataclass(frozen=True)
class StationaryResult:
    """Fixed point of the constant-rule mean-field epoch map."""

    nu: np.ndarray
    drops_per_epoch: float
    residual: float  # ‖T(ν*) − ν*‖₁
    iterations: int
    converged: bool

    @property
    def mean_queue_length(self) -> float:
        return float(self.nu @ np.arange(self.nu.size))

    @property
    def fill_probability(self) -> float:
        """Stationary fraction of full queues (the drop-prone mass)."""
        return float(self.nu[-1])


def stationary_distribution(
    rule: DecisionRule,
    lam: float,
    service: float,
    delta_t: float,
    tol: float = 1e-12,
    max_iterations: int = 100_000,
    damping: float = 0.0,
    initial: np.ndarray | None = None,
) -> StationaryResult:
    """Iterate the exact epoch map to its fixed point.

    Plain (optionally damped) fixed-point iteration: the epoch map is a
    composition of stochastic matrices and empirically a contraction for
    all paper-regime parameters; ``damping`` ∈ [0, 1) mixes in the
    previous iterate for stubborn cases.
    """
    if not 0.0 <= damping < 1.0:
        raise ValueError(f"damping must lie in [0, 1), got {damping}")
    if tol <= 0:
        raise ValueError("tol must be > 0")
    s = rule.num_states
    if initial is not None:
        nu = np.asarray(initial, dtype=np.float64)
        if nu.shape != (s,) or np.any(nu < 0) or not np.isclose(nu.sum(), 1.0):
            raise ValueError("initial must be a distribution over rule states")
    else:
        nu = np.full(s, 1.0 / s)
    drops = 0.0
    residual = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        nu_next, drops = epoch_update(nu, rule, lam, service, delta_t)
        if damping > 0.0:
            nu_next = damping * nu + (1.0 - damping) * nu_next
            nu_next /= nu_next.sum()
        residual = float(np.abs(nu_next - nu).sum())
        nu = nu_next
        if residual < tol:
            break
    return StationaryResult(
        nu=nu,
        drops_per_epoch=float(drops),
        residual=residual,
        iterations=iterations,
        converged=residual < tol,
    )


def stationary_drops(
    rule: DecisionRule,
    lam: float,
    service: float,
    delta_t: float,
    **kwargs,
) -> float:
    """Steady-state drops per queue per unit time under a constant rule."""
    result = stationary_distribution(rule, lam, service, delta_t, **kwargs)
    return result.drops_per_epoch / delta_t
