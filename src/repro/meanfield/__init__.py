"""Mean-field control model: decision rules, exact discretization, MFC MDP.

This package implements Sections 2.2-2.5 of the paper: the infinite
agent/queue limit of the load-balancing system, its exact discretization
via matrix exponentials of frozen-rate birth-death generators, and the
resulting upper-level Markov decision process on ``P(Z) x Lambda``.
"""

from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.discretization import (
    ExactPropagator,
    TabulatedPropagator,
    birth_death_generator,
    epoch_update,
    extended_generator,
    per_state_arrival_rates,
    propagate_state,
)
from repro.meanfield.mfc_env import MeanFieldEnv, MeanFieldState, observation_dim
from repro.meanfield.analytic import (
    mm1b_loss_probability,
    mm1b_stationary_distribution,
    mmpp_stationary_distribution,
)
from repro.meanfield.heterogeneous import HeterogeneousMeanFieldModel
from repro.meanfield.stationary import (
    StationaryResult,
    stationary_distribution,
    stationary_drops,
)
from repro.meanfield.convergence import (
    TrajectoryGap,
    empirical_distribution,
    mean_field_trajectory,
    trajectory_gap,
)
from repro.meanfield.local import (
    LocalMeanFieldTrajectory,
    local_arrival_rates,
    local_epoch_update,
    local_mean_field_trajectory,
    neighborhood_mixtures,
    observed_distributions,
)
from repro.meanfield.delayed import (
    DelayedMeanFieldPropagator,
    delayed_arrival_rates,
    delayed_local_epoch_update,
    delayed_mean_field_trajectory,
)
from repro.meanfield.delayed_env import DelayedMeanFieldEnv
from repro.meanfield.features import (
    ObservationFeatures,
    age_context,
    mean_occupancy,
    regime_age_context,
    regime_age_contexts_batch,
)
from repro.meanfield.hybrid import HybridFieldClosure

__all__ = [
    "HybridFieldClosure",
    "DelayedMeanFieldEnv",
    "DelayedMeanFieldPropagator",
    "ObservationFeatures",
    "age_context",
    "mean_occupancy",
    "regime_age_context",
    "regime_age_contexts_batch",
    "delayed_arrival_rates",
    "delayed_local_epoch_update",
    "delayed_mean_field_trajectory",
    "LocalMeanFieldTrajectory",
    "local_arrival_rates",
    "local_epoch_update",
    "local_mean_field_trajectory",
    "neighborhood_mixtures",
    "observed_distributions",
    "DecisionRule",
    "ExactPropagator",
    "TabulatedPropagator",
    "birth_death_generator",
    "extended_generator",
    "per_state_arrival_rates",
    "propagate_state",
    "epoch_update",
    "MeanFieldEnv",
    "MeanFieldState",
    "observation_dim",
    "mm1b_loss_probability",
    "mm1b_stationary_distribution",
    "mmpp_stationary_distribution",
    "HeterogeneousMeanFieldModel",
    "StationaryResult",
    "stationary_distribution",
    "stationary_drops",
    "TrajectoryGap",
    "empirical_distribution",
    "mean_field_trajectory",
    "trajectory_gap",
]
