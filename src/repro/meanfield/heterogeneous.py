"""Mean-field model with heterogeneous server classes (paper §5).

The homogeneous mean-field state is the queue-filling distribution
``ν ∈ P(Z)``. With ``C`` server classes the state becomes a joint
distribution over observed states ``(z, c) ∈ Z × C`` (encoded flat as
``o = z·C + c``, matching :mod:`repro.queueing.heterogeneous`). Two
facts make the extension land on the existing machinery:

* the per-state arrival-rate contraction of Eq. (22) is agnostic to what
  the "state" means — it works verbatim on the flat ``Z × C`` space;
* within an epoch a queue's filling evolves inside its own class (the
  class never changes), so the exact discretization factorizes into one
  birth-death propagation per class, each with its own service rate.

Class masses ``w_c = Σ_z ν(z, c)`` are conserved exactly (tested).
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.discretization import (
    per_state_arrival_rates,
    propagate_state,
)
from repro.queueing.heterogeneous import ServerClassSpec

__all__ = ["HeterogeneousMeanFieldModel"]


class HeterogeneousMeanFieldModel:
    """Exact mean-field epoch dynamics on the ``Z × C`` observed states.

    Parameters
    ----------
    config:
        System parameters (buffer size, ``d``, ``Δt``; the homogeneous
        ``service_rate`` field is ignored in favour of the class spec).
    spec:
        Server classes (rates and population fractions).
    """

    def __init__(self, config: SystemConfig, spec: ServerClassSpec) -> None:
        self.config = config
        self.spec = spec
        self.num_fillings = config.num_queue_states
        self.num_classes = spec.num_classes
        self.num_states = spec.num_observed_states(config.buffer_size)

    # ------------------------------------------------------------------
    def initial_distribution(self) -> np.ndarray:
        """``ν₀``: every queue at ``initial_state``, classes at their
        population fractions."""
        nu = np.zeros(self.num_states)
        for c, fraction in enumerate(self.spec.fractions):
            nu[self.config.initial_state * self.num_classes + c] = fraction
        return nu

    def class_masses(self, nu: np.ndarray) -> np.ndarray:
        """Per-class total mass ``w_c`` (invariant under the dynamics)."""
        nu = np.asarray(nu)
        return nu.reshape(self.num_fillings, self.num_classes).sum(axis=0)

    def filling_marginal(self, nu: np.ndarray) -> np.ndarray:
        """Marginal distribution of the queue filling ``z``."""
        nu = np.asarray(nu)
        return nu.reshape(self.num_fillings, self.num_classes).sum(axis=1)

    def _class_indices(self, c: int) -> np.ndarray:
        return np.arange(self.num_fillings) * self.num_classes + c

    # ------------------------------------------------------------------
    def epoch_update(
        self, nu: np.ndarray, rule: DecisionRule, lam: float
    ) -> tuple[np.ndarray, float]:
        """One exact epoch: ``(ν_{t+1}, expected drops per queue)``."""
        nu = np.asarray(nu, dtype=np.float64)
        if nu.shape != (self.num_states,):
            raise ValueError(f"nu must have shape ({self.num_states},)")
        if rule.num_states != self.num_states or rule.d != self.config.d:
            raise ValueError(
                "rule geometry does not match the heterogeneous model "
                f"(expected S={self.num_states}, d={self.config.d})"
            )
        rates = per_state_arrival_rates(nu, rule, lam)
        nu_next = np.empty_like(nu)
        drops = 0.0
        for c in range(self.num_classes):
            idx = self._class_indices(c)
            trans, dvec = propagate_state(
                rates[idx],
                float(self.spec.service_rates[c]),
                self.config.delta_t,
                self.num_fillings,
            )
            nu_c = nu[idx]
            nu_next[idx] = nu_c @ trans
            drops += float(nu_c @ dvec)
        nu_next = np.maximum(nu_next, 0.0)
        nu_next /= nu_next.sum()
        return nu_next, drops

    def rollout_drops(
        self,
        rule: DecisionRule,
        arrival_rates_per_epoch: np.ndarray,
    ) -> float:
        """Cumulative expected drops under a constant rule and a scripted
        sequence of arrival intensities."""
        nu = self.initial_distribution()
        total = 0.0
        for lam in np.asarray(arrival_rates_per_epoch, dtype=np.float64):
            nu, d = self.epoch_update(nu, rule, float(lam))
            total += d
        return total

    def stationary_distribution(
        self,
        rule: DecisionRule,
        lam: float,
        tol: float = 1e-12,
        max_iterations: int = 100_000,
    ) -> tuple[np.ndarray, float]:
        """Fixed point of the constant-rule epoch map; returns
        ``(ν*, drops per epoch at ν*)``."""
        nu = self.initial_distribution()
        drops = 0.0
        for _ in range(max_iterations):
            nu_next, drops = self.epoch_update(nu, rule, lam)
            if np.abs(nu_next - nu).sum() < tol:
                return nu_next, drops
            nu = nu_next
        return nu, drops
