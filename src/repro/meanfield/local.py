"""Local (per-node) mean-field propagator for sparse topologies.

The paper's mean-field limit replaces the ``M`` queues by *one* state
distribution ``ν_t`` because every dispatcher samples every queue — the
system is exchangeable. On a sparse access graph exchangeability breaks:
queue ``j``'s load depends on *which* dispatchers reach it. Following
the localized mean-field construction of arXiv:2312.12973, this module
tracks one distribution ``ν_j ∈ P(Z)`` per queue and couples them
through the adjacency structure:

* dispatcher node ``i`` carries arrival intensity
  ``λ_i = M λ_t / K`` (clients are spread uniformly over the ``K``
  nodes) and perceives the *neighborhood mixture*
  ``ν̄_i = (1/deg) Σ_{j ∈ n(i)} ν_j``;
* treating neighborhood queue states as independent with marginals
  ``ν_j`` (the local chaos assumption), the rate node ``i`` sends to a
  neighbor in state ``z`` is ``(λ_i / deg) · g_i(z)`` with
  ``g_i = per_state_arrival_rates(ν̄_i, h, 1)`` — the paper's Eq. (22)
  contraction evaluated at the local mixture;
* queue ``j`` then freezes the rate
  ``λ_j(z) = Σ_{i : j ∈ n(i)} (λ_i / deg_i) g_i(z)`` for the epoch and
  propagates through the exact extended-generator matrix exponential of
  :mod:`repro.meanfield.discretization`, one birth-death CTMC per queue
  (vectorized via one stacked ``expm``).

The construction conserves arrival mass exactly
(``Σ_j Σ_z ν_j(z) λ_j(z) = M λ_t``, tested) and *reduces to the global
propagator on the full mesh*: with one dispatcher seeing all queues and
a shared initial distribution, every ``ν_j`` follows exactly the
``epoch_update`` trajectory of the dense model (tested).

Heterogeneous capacities ride along: per-queue service rates feed the
per-queue CTMCs, and an optional server-class vector lets decision rules
operate on the ``Z × C`` observed states of
:mod:`repro.queueing.heterogeneous` (SED(d) on sparse graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy.linalg import expm

from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.discretization import per_state_arrival_rates
from repro.queueing.topology import TopologySpec

if TYPE_CHECKING:  # import cycle: policies build on top of the mean-field model
    from repro.policies.base import UpperLevelPolicy

__all__ = [
    "observed_distributions",
    "neighborhood_mixtures",
    "local_arrival_rates",
    "local_epoch_update",
    "LocalMeanFieldTrajectory",
    "local_mean_field_trajectory",
]


def observed_distributions(
    nus: np.ndarray, classes: np.ndarray | None, num_classes: int = 1
) -> np.ndarray:
    """Lift per-queue laws on ``Z`` to the ``Z × C`` observed states.

    Queue ``j`` of class ``c_j`` contributes its mass at filling ``z`` to
    observed state ``z·C + c_j`` (the encoding of
    :class:`repro.queueing.heterogeneous.ServerClassSpec`). With
    ``classes=None`` the input is returned unchanged.
    """
    nus = np.asarray(nus, dtype=np.float64)
    if classes is None:
        return nus
    m, s = nus.shape
    classes = np.asarray(classes)
    if classes.shape != (m,):
        raise ValueError(f"classes must have shape ({m},)")
    obs = np.zeros((m, s * num_classes))
    cols = np.arange(s)[None, :] * num_classes + classes[:, None]
    np.put_along_axis(obs, cols, nus, axis=1)
    return obs


def neighborhood_mixtures(
    obs_nus: np.ndarray, topology: TopologySpec
) -> np.ndarray:
    """Per-dispatcher mixtures ``ν̄_i``, shape ``(K, S_obs)``.

    ``ν̄_i`` is the law of one uniformly sampled neighbor's observed
    state — what node ``i``'s clients actually see.
    """
    obs_nus = np.asarray(obs_nus, dtype=np.float64)
    if obs_nus.ndim != 2 or obs_nus.shape[0] != topology.num_queues:
        raise ValueError(
            f"obs_nus must be (M={topology.num_queues}, S_obs), "
            f"got {obs_nus.shape}"
        )
    return obs_nus[topology.neighbors].mean(axis=1)


def local_arrival_rates(
    nus: np.ndarray,
    topology: TopologySpec,
    rule: DecisionRule,
    lam: float,
    classes: np.ndarray | None = None,
    num_classes: int = 1,
) -> np.ndarray:
    """Frozen per-(queue, own-state) arrival rates ``λ_j(z)``, ``(M, S)``.

    The local analogue of Eq. (22): queue ``j`` in state ``z`` receives
    ``Σ_{i : j ∈ n(i)} (λ_i / deg) g_i(o_j(z))`` where ``g_i`` is the
    per-state rate contraction at node ``i``'s neighborhood mixture and
    ``o_j(z)`` the observed state of queue ``j`` at filling ``z``.
    Satisfies the mass identity ``Σ_j ν_j · λ_j = M λ`` exactly.
    """
    nus = np.asarray(nus, dtype=np.float64)
    if lam < 0:
        raise ValueError(f"arrival intensity must be >= 0, got {lam}")
    m, s = nus.shape
    obs = observed_distributions(nus, classes, num_classes)
    mixtures = neighborhood_mixtures(obs, topology)
    # Per-node contraction g_i on observed states: a handful of S_obs-sized
    # tensor operations per dispatcher (K of them; cheap next to the expm).
    g = np.stack(
        [per_state_arrival_rates(mix, rule, 1.0) for mix in mixtures]
    )
    # Each dispatcher injects M·lam/K, split uniformly over its samples.
    weight = (m * lam / topology.num_dispatchers) / topology.degree
    targets = topology.neighbors.ravel()
    edge_vals = np.repeat(weight * g, topology.degree, axis=0)
    if classes is not None:
        cols = (
            np.arange(s)[None, :] * num_classes
            + np.asarray(classes)[targets][:, None]
        )
        edge_vals = np.take_along_axis(edge_vals, cols, axis=1)
    rates = np.zeros((m, s))
    np.add.at(rates, targets, edge_vals)
    return rates


def _propagate_per_queue(
    rates: np.ndarray,
    service_rates: np.ndarray,
    delta_t: float,
    nus: np.ndarray,
    return_transitions: bool = False,
) -> tuple[np.ndarray, ...]:
    """One exact epoch for every queue's CTMC (one stacked ``expm``).

    ``rates[j, z]`` is queue ``j``'s frozen arrival rate given it starts
    the epoch at filling ``z``; the extended generator of
    :func:`repro.meanfield.discretization.extended_generator` is built
    for every ``(j, z)`` pair and exponentiated in one stacked call.
    Returns ``(nu_next, expected_drops)`` shaped ``(M, S)`` / ``(M,)``;
    with ``return_transitions=True`` the per-queue epoch transition
    matrices ``(M, S, S)`` are appended (consumed by the delay-mixture
    propagator in :mod:`repro.meanfield.delayed`).
    """
    m, s = rates.shape
    z = np.arange(s - 1)
    # Sparse patterns of the extended generator, scaled per (queue, state):
    # `pat_arrival` moves z -> z+1 below the buffer and leaks drop flux
    # into the accumulator column at z = B; `pat_service` moves z -> z-1.
    pat_arrival = np.zeros((s + 1, s + 1))
    pat_arrival[z, z + 1] = 1.0
    pat_arrival[z, z] = -1.0
    pat_arrival[s - 1, s] = 1.0
    pat_service = np.zeros((s + 1, s + 1))
    pat_service[z + 1, z] = 1.0
    pat_service[z + 1, z + 1] = -1.0
    gen = (
        rates[:, :, None, None] * pat_arrival
        + service_rates[:, None, None, None] * pat_service
    )
    exp_stack = expm(gen * delta_t)
    z_idx = np.arange(s)
    rows = exp_stack[:, z_idx, z_idx, :]  # (M, S, S+1): start-state rows
    nu_next = np.einsum("ms,msk->mk", nus, rows[:, :, :s])
    drops = np.einsum("ms,ms->m", nus, rows[:, :, s])
    # Round-off guard, as in epoch_update: stay exactly on the simplex.
    nu_next = np.maximum(nu_next, 0.0)
    nu_next /= nu_next.sum(axis=1, keepdims=True)
    if return_transitions:
        return nu_next, drops, rows[:, :, :s]
    return nu_next, drops


def local_epoch_update(
    nus: np.ndarray,
    topology: TopologySpec,
    rule: DecisionRule,
    lam: float,
    service_rates: np.ndarray | float,
    delta_t: float,
    classes: np.ndarray | None = None,
    num_classes: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """One exact epoch of the local mean-field dynamics.

    The per-node counterpart of
    :func:`repro.meanfield.discretization.epoch_update`: returns
    ``(nus_next, expected_drops_per_queue)`` shaped ``(M, S)`` / ``(M,)``.
    """
    nus = np.asarray(nus, dtype=np.float64)
    m, _ = nus.shape
    if m != topology.num_queues:
        raise ValueError(
            f"nus covers {m} queues, topology {topology.num_queues}"
        )
    if delta_t <= 0:
        raise ValueError(f"delta_t must be > 0, got {delta_t}")
    service = np.broadcast_to(
        np.asarray(service_rates, dtype=np.float64), (m,)
    )
    if service.min() <= 0:
        raise ValueError("service rates must be > 0")
    rates = local_arrival_rates(
        nus, topology, rule, lam, classes=classes, num_classes=num_classes
    )
    return _propagate_per_queue(rates, service, delta_t, nus)


@dataclass
class LocalMeanFieldTrajectory:
    """Deterministic per-node trajectory on a sparse topology."""

    nus: np.ndarray  # (T+1, M, S) per-queue laws
    drops: np.ndarray  # (T, M) expected per-queue drops per epoch

    @property
    def mean_nus(self) -> np.ndarray:
        """Population-averaged laws, shape ``(T+1, S)`` — comparable to
        the global mean-field trajectory."""
        return self.nus.mean(axis=1)

    @property
    def total_drops_per_queue(self) -> float:
        """Cumulative expected drops averaged over queues (the Figure
        4-6 y-axis quantity in the limit model)."""
        return float(self.drops.sum(axis=0).mean())


def local_mean_field_trajectory(
    topology: TopologySpec,
    policy: "UpperLevelPolicy",
    mode_sequence: np.ndarray,
    arrival_levels: np.ndarray,
    service_rates: np.ndarray | float,
    delta_t: float,
    num_states: int,
    initial_state: int = 0,
    classes: np.ndarray | None = None,
    num_classes: int = 1,
) -> LocalMeanFieldTrajectory:
    """Replay a scripted arrival-mode sequence through the local model.

    The per-node counterpart of
    :func:`repro.meanfield.convergence.mean_field_trajectory`: the
    upper-level policy is queried once per epoch on the *population
    mixture* (what a delayed broadcast would carry) and the emitted rule
    drives every node. MF / JSQ(d) / SED(d) / RND can all be evaluated
    under delay on sparse graphs this way.
    """
    mode_sequence = np.asarray(mode_sequence, dtype=np.intp)
    levels = np.asarray(arrival_levels, dtype=np.float64)
    m = topology.num_queues
    if not 0 <= initial_state < num_states:
        raise ValueError(
            f"initial_state must lie in [0, {num_states - 1}]"
        )
    nus = np.zeros((m, num_states))
    nus[:, initial_state] = 1.0
    t_len = mode_sequence.size
    out_nus = np.empty((t_len + 1, m, num_states))
    out_drops = np.empty((t_len, m))
    out_nus[0] = nus
    for t, mode in enumerate(mode_sequence):
        mixture = observed_distributions(nus, classes, num_classes).mean(
            axis=0
        )
        rule = policy.decision_rule(mixture, int(mode), None)
        nus, drops = local_epoch_update(
            nus,
            topology,
            rule,
            float(levels[mode]),
            service_rates,
            delta_t,
            classes=classes,
            num_classes=num_classes,
        )
        out_nus[t + 1] = nus
        out_drops[t] = drops
    return LocalMeanFieldTrajectory(nus=out_nus, drops=out_drops)
