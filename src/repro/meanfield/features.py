"""Optional observation features for regime-conditioned policies.

The paper's upper-level policy observes ``[ν, one_hot(λ mode)]`` — the
exact MFC state under synchronous broadcast. The regimes added since
(stochastic observation delays, sparse graph topologies) leave that
state observable but make *context* informative: how stale is the
snapshot a dispatcher population routes on, and how loaded is the
neighborhood a queue sits in. :class:`ObservationFeatures` appends a
small, fixed block of such context features to the observation:

* ``age`` (2 dims) — the delay model's mean snapshot age (normalized by
  its max age ``K``) and stale fraction ``1 - p_0``. By default these
  are the **stationary** context of the deployment delay model — frozen
  constants of the information regime (:func:`age_context`). With
  ``live_age=True`` they are instead the *current regime's* conditional
  context (:func:`regime_age_context`): the training environment
  presents the context of the regime the chain is in right now, and the
  delayed evaluation environments feed the matching per-replica live
  context through the optional ``age_contexts`` channel of
  :meth:`repro.policies.learned.NeuralPolicy.decision_rules_batch`.
  Under the synced/degraded monitoring plane this is a crisp switch —
  ``(0, 0)`` while synced, ``(mean/K, 1 - p_0)`` while degraded — so a
  live-age policy can hedge only when its information actually is stale.
  Plumbing without a live channel falls back to the frozen context.
* ``occupancy`` (1 dim) — the mean queue occupancy ``E_ν[z] / (S - 1)``
  of the law the policy is queried on. On graph regimes that law is a
  neighborhood aggregate, making this the local-load summary that
  neighborhood-conditioned policies key on (cf. sparse mean-field load
  balancing, arXiv:2312.12973).

With both flags off (the default) the feature block is empty and the
observation is bit-identical to the paper's — the age-0 dense case
reduces exactly to the current input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.queueing.delays import DelayModel

__all__ = [
    "ObservationFeatures",
    "age_context",
    "mean_occupancy",
    "regime_age_context",
    "regime_age_contexts_batch",
]


def _pmf_age_context(pmf: np.ndarray, max_delay: int) -> tuple[float, float]:
    ages = np.arange(pmf.size, dtype=np.float64)
    mean_age = float(pmf @ ages)
    return (mean_age / max(max_delay, 1), float(1.0 - pmf[0]))


def age_context(delay_model: DelayModel) -> tuple[float, float]:
    """Frozen age features of a delay model: ``(mean age / K, 1 - p_0)``.

    Computed under the regime chain's stationary distribution, so the
    pair identifies the information regime a policy was trained for —
    e.g. ``(0, 0)`` for synchronous broadcast, ``(1, 1)`` for a point
    mass at the maximum age.
    """
    return _pmf_age_context(
        delay_model.stationary_pmf(), delay_model.max_delay
    )


def regime_age_context(
    delay_model: DelayModel, regime: int
) -> tuple[float, float]:
    """Live age features of one delay regime: ``(mean age / K, 1 - p_0)``
    under that regime's *conditional* pmf.

    Deterministic given the regime index — computing it draws no
    randomness, so feeding live context never perturbs an environment's
    generator stream. Single-regime models reduce to :func:`age_context`.
    """
    return _pmf_age_context(delay_model.pmf(regime), delay_model.max_delay)


def regime_age_contexts_batch(
    delay_model: DelayModel, regimes: np.ndarray
) -> np.ndarray:
    """Per-replica live age contexts, shape ``(E, 2)``.

    Vectorized :func:`regime_age_context` over a batch of regime
    indices (the ``delay_regimes`` of a delayed finite environment).
    """
    regimes = np.asarray(regimes, dtype=np.intp)
    pmfs = delay_model.pmfs[regimes]
    ages = np.arange(pmfs.shape[1], dtype=np.float64)
    mean_ages = pmfs @ ages
    return np.column_stack(
        [mean_ages / max(delay_model.max_delay, 1), 1.0 - pmfs[:, 0]]
    )


def mean_occupancy(nu: np.ndarray) -> float:
    """Mean queue occupancy of a law, normalized to ``[0, 1]``."""
    nu = np.asarray(nu, dtype=np.float64)
    if nu.ndim != 1 or nu.size < 2:
        raise ValueError("nu must be a law over >= 2 states")
    states = np.arange(nu.size, dtype=np.float64)
    return float(states @ nu) / (nu.size - 1)


@dataclass(frozen=True)
class ObservationFeatures:
    """Which context features to append to ``[ν, one_hot(λ mode)]``.

    Frozen and hashable so it can ride in configuration fingerprints;
    the default (all off) adds zero dimensions. ``live_age`` switches
    the two age dimensions from the frozen stationary context to the
    current delay regime's conditional context; it adds no dimensions
    of its own.
    """

    age: bool = False
    occupancy: bool = False
    live_age: bool = False

    def __post_init__(self) -> None:
        if self.live_age and not self.age:
            raise ValueError("live_age requires age features to be enabled")

    @property
    def extra_dims(self) -> int:
        """Number of observation dimensions the feature block adds."""
        return (2 if self.age else 0) + (1 if self.occupancy else 0)

    def names(self) -> tuple[str, ...]:
        """Feature names in observation order (for docs and tables)."""
        out: list[str] = []
        if self.age:
            out += ["mean_age_norm", "stale_fraction"]
        if self.occupancy:
            out.append("mean_occupancy")
        return tuple(out)

    def vector(
        self,
        nu: np.ndarray,
        age: tuple[float, float] | None = None,
    ) -> np.ndarray:
        """The feature block for one query, shape ``(extra_dims,)``."""
        parts: list[float] = []
        if self.age:
            if age is None:
                raise ValueError(
                    "age features enabled but no age context given"
                )
            parts += [float(age[0]), float(age[1])]
        if self.occupancy:
            parts.append(mean_occupancy(nu))
        return np.asarray(parts, dtype=np.float64)

    def to_dict(self) -> dict:
        return {
            "age": bool(self.age),
            "occupancy": bool(self.occupancy),
            "live_age": bool(self.live_age),
        }

    @classmethod
    def from_dict(cls, data: dict | None) -> "ObservationFeatures":
        if not data:
            return cls()
        return cls(
            age=bool(data.get("age", False)),
            occupancy=bool(data.get("occupancy", False)),
            live_age=bool(data.get("live_age", False)),
        )
