"""Numerical validation of Theorem 1 (mean-field convergence).

Theorem 1 states ``|J(π̂) - J^{N,M}(π̂)| → 0`` as ``N, M → ∞`` for any
stationary deterministic policy, via the two intermediate comparisons
``J ↔ J^M`` (infinite clients, finitely many queues) and
``J^M ↔ J^{N,M}``. The proof conditions on the arrival-mode sequence;
this module mirrors that: it replays one scripted mode sequence through

* the deterministic mean-field recursion ``(ν_t, D_t)``,
* the infinite-client finite-queue system ``(H^M_t, D^M_t)``, and
* the full finite system ``(H^{N,M}_t, D^{N,M}_t)``,

and reports per-step ``l1`` gaps ``‖H_t - ν_t‖₁`` and drop gaps — the
quantities that power the Figure 4 bench and the A5 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.config import SystemConfig
from repro.meanfield.discretization import epoch_update
from repro.queueing.arrivals import MarkovModulatedRate, ScriptedRate
from repro.queueing.env import FiniteSystemEnv, InfiniteClientEnv
from repro.utils.rng import as_generator

if TYPE_CHECKING:  # import cycle: policies build on top of the mean-field model
    from repro.policies.base import UpperLevelPolicy

__all__ = [
    "empirical_distribution",
    "mean_field_trajectory",
    "TrajectoryGap",
    "trajectory_gap",
]


def empirical_distribution(states: np.ndarray, num_states: int) -> np.ndarray:
    """Histogram of queue states as a probability vector (Eq. 2)."""
    states = np.asarray(states)
    if states.size == 0:
        raise ValueError("need at least one queue")
    if states.min() < 0 or states.max() >= num_states:
        raise ValueError(f"states must lie in [0, {num_states - 1}]")
    counts = np.bincount(states, minlength=num_states)
    return counts.astype(np.float64) / states.size


def mean_field_trajectory(
    config: SystemConfig,
    policy: "UpperLevelPolicy",
    mode_sequence: np.ndarray,
    arrival_levels: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic MFC trajectory under a scripted mode sequence.

    Returns ``(nus, drops)`` where ``nus`` has shape ``(T+1, S)`` and
    ``drops`` shape ``(T,)`` (expected per-queue drops per epoch).
    """
    mode_sequence = np.asarray(mode_sequence, dtype=np.intp)
    levels = (
        np.asarray(arrival_levels, dtype=np.float64)
        if arrival_levels is not None
        else np.asarray(
            MarkovModulatedRate.from_config(config).levels, dtype=np.float64
        )
    )
    s = config.num_queue_states
    t_len = mode_sequence.size
    nus = np.empty((t_len + 1, s))
    drops = np.empty(t_len)
    nu = np.zeros(s)
    nu[config.initial_state] = 1.0
    nus[0] = nu
    # The policy consumes only (nu, mode); the scripted sequence supplies
    # the modes, making the whole trajectory deterministic.
    for t, mode in enumerate(mode_sequence):
        rule = policy.decision_rule(nu, int(mode), None)
        nu, d = epoch_update(
            nu, rule, float(levels[mode]), config.service_rate, config.delta_t
        )
        nus[t + 1] = nu
        drops[t] = d
    return nus, drops


@dataclass
class TrajectoryGap:
    """Per-step gaps between a simulated system and the mean-field limit."""

    l1_gaps: np.ndarray  # ‖H_t − ν_t‖₁ at t = 0..T
    drop_gaps: np.ndarray  # |D̂_t − D_t| at t = 0..T−1
    total_drops_system: float
    total_drops_mean_field: float

    @property
    def sup_l1_gap(self) -> float:
        return float(self.l1_gaps.max())

    @property
    def mean_l1_gap(self) -> float:
        return float(self.l1_gaps.mean())

    @property
    def total_drop_gap(self) -> float:
        return abs(self.total_drops_system - self.total_drops_mean_field)


def trajectory_gap(
    config: SystemConfig,
    policy: "UpperLevelPolicy",
    num_epochs: int,
    system: str = "finite",
    mode_sequence: np.ndarray | None = None,
    seed=None,
) -> TrajectoryGap:
    """Simulate one episode and compare it to the mean-field trajectory.

    Parameters
    ----------
    system:
        ``"finite"`` for the ``N, M`` system or ``"infinite-clients"``
        for the ``M`` system of Section 2.2.
    mode_sequence:
        Arrival modes to replay; one is sampled from the config's chain
        when omitted.
    """
    rng = as_generator(seed)
    base_process = MarkovModulatedRate.from_config(config)
    if mode_sequence is None:
        mode_sequence = base_process.simulate_modes(num_epochs, rng)
    mode_sequence = np.asarray(mode_sequence, dtype=np.intp)
    if mode_sequence.size < num_epochs:
        raise ValueError("mode_sequence shorter than num_epochs")
    scripted = ScriptedRate(base_process.levels, mode_sequence)

    nus, mf_drops = mean_field_trajectory(
        config, policy, mode_sequence[:num_epochs]
    )

    if system == "finite":
        env: FiniteSystemEnv | InfiniteClientEnv = FiniteSystemEnv(
            config, arrival_process=scripted, seed=rng
        )
    elif system == "infinite-clients":
        env = InfiniteClientEnv(config, arrival_process=scripted, seed=rng)
    else:
        raise ValueError(
            f"unknown system {system!r}; use 'finite' or 'infinite-clients'"
        )

    env.reset(rng)
    l1 = np.empty(num_epochs + 1)
    drop_gaps = np.empty(num_epochs)
    sim_drops = np.empty(num_epochs)
    l1[0] = float(np.abs(env.empirical_distribution() - nus[0]).sum())
    for t in range(num_epochs):
        _, _, info = env.step_with_policy(policy)
        sim_drops[t] = info["drops_per_queue"]
        drop_gaps[t] = abs(sim_drops[t] - mf_drops[t])
        l1[t + 1] = float(np.abs(env.empirical_distribution() - nus[t + 1]).sum())
    return TrajectoryGap(
        l1_gaps=l1,
        drop_gaps=drop_gaps,
        total_drops_system=float(sim_drops.sum()),
        total_drops_mean_field=float(mf_drops.sum()),
    )
