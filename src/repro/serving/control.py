"""Closed-loop control for streamed environments.

The streaming engine (PR 5) observed but never acted: ``run_stream``
drove one fixed policy over the whole horizon. This module redesigns
the per-epoch loop around a small hook protocol — a
:class:`Controller` that, every decision window, receives the same
*delayed* observation surface the dispatchers see (windowed counts, a
snapshot age) and returns a :class:`ControlAction`: keep, switch or
re-weight the upper-level policy, and optionally autoscale the queue
fleet mid-stream (:func:`resize_queue_fleet`, mass-conserving).

Shipped controllers:

* :class:`StaticController` — never acts; a stream driven through the
  full hook machinery is bit-identical to the uncontrolled loop (the
  refactor's safety net, pinned by a test).
* :class:`RateEstimatingController` — online arrival-rate estimator
  with confidence-interval hysteresis per Goldsztajn–Borst–van
  Leeuwaarden, "Learning and balancing unknown loads in large-scale
  systems" (arXiv:2012.10142): pool the last few windows, switch to
  the policy of a different load band only once the rate's CI lies
  entirely inside that band and a minimum dwell has elapsed.
* :class:`OracleController` — reads the true workload profile; its
  drops define the regret baseline (:mod:`repro.serving.regret`).
* :class:`ScriptedController` — replays a fixed action sequence
  (testing / what-if).

Everything on the control path is deterministic and consumes **no**
RNG draws, so controlled streams inherit the engine's worker-count
invariance and store-cacheability unchanged: the controller's
*constructor parameters* enter the shard key
(:func:`repro.store.keys.stream_shard_key`) while its mutable run
state is excluded via ``__fingerprint_exclude__`` and cleared by
:meth:`Controller.reset` at the start of every shard.

Observation semantics
---------------------
Epochs are counted as *completed* steps (the environment's ``info["t"]``
clock). A decision window covers ``decision_interval`` epochs; its
record carries replica-mean expected arrivals (jobs, fleet-wide), drops
and backlog plus the *exposure* ``Σ M·Δt`` (autoscale-safe Poisson
denominator). ``observation_lag`` delays delivery by whole windows, so
a controller can be handicapped with exactly the staleness the paper's
Fig. 5/6 dispatchers suffer. The arrival counts are the environment's
frozen expected rates (Eq. 5) — what a dispatcher's accounting would
expose — not per-packet realizations.
"""

from __future__ import annotations

import copy
import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.policies.static import ConstantRulePolicy
from repro.queueing.batched_env import (
    BatchedFiniteSystemEnv,
    _BatchedQueueSystemBase,
)
from repro.queueing.chaos import water_fill

if TYPE_CHECKING:
    from repro.config import SystemConfig
    from repro.policies.base import UpperLevelPolicy
    from repro.queueing.workloads import ProfileRate
    from repro.serving.metrics import StreamingMetrics

__all__ = [
    "LoadBand",
    "ControlObservation",
    "ControlAction",
    "ControlDecision",
    "KEEP",
    "Controller",
    "StaticController",
    "RateEstimatingController",
    "OracleController",
    "ScriptedController",
    "ControlLoop",
    "resize_queue_fleet",
]


@dataclass(frozen=True)
class LoadBand:
    """One contiguous arrival-rate regime and the policy that owns it.

    ``low <= λ < high`` selects ``policy`` (per-queue intensity). A band
    table must tile ``[0, ∞)`` without gaps — validated by the
    controllers that consume it.
    """

    policy: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.policy:
            raise ValueError("band policy name must be non-empty")
        if not 0.0 <= self.low < self.high:
            raise ValueError(
                f"band needs 0 <= low < high, got [{self.low}, {self.high})"
            )

    def contains(self, rate: float) -> bool:
        return self.low <= rate < self.high


def _normalize_bands(bands) -> tuple[LoadBand, ...]:
    """Coerce ``(policy, low, high)`` triples and validate the tiling."""
    table = tuple(
        b if isinstance(b, LoadBand) else LoadBand(*b) for b in bands
    )
    if not table:
        raise ValueError("need at least one load band")
    table = tuple(sorted(table, key=lambda b: b.low))
    if table[0].low != 0.0:
        raise ValueError("bands must start at rate 0")
    for prev, cur in zip(table, table[1:]):
        if prev.high != cur.low:
            raise ValueError(
                f"bands must tile [0, inf) contiguously; gap between "
                f"{prev.high} and {cur.low}"
            )
    if not math.isinf(table[-1].high):
        raise ValueError("the last band must extend to infinity")
    return table


def _band_for(bands: tuple[LoadBand, ...], rate: float) -> LoadBand:
    for band in bands:
        if band.contains(rate):
            return band
    return bands[-1]


@dataclass(frozen=True)
class ControlObservation:
    """What a controller sees at one decision point — and nothing more.

    This is the dispatcher-grade surface: windowed counts closed
    ``age`` epochs ago, never the environment's live state. ``arrivals``
    / ``drops`` are replica means of fleet-wide totals over the window;
    ``exposure = Σ M·Δt`` over the window's epochs is the Poisson
    denominator that stays correct across autoscale events.
    """

    epoch: int  # epochs completed when the observed window closed
    age: int  # decision epoch minus window-close epoch (>= 0)
    window: int  # window width in epochs
    delta_t: float
    num_queues: int  # fleet size at decision time
    num_replicas: int
    arrivals: float  # replica-mean expected arrivals in the window
    drops: float  # replica-mean dropped packets in the window
    mean_queue_length: float  # replica- and epoch-mean backlog
    exposure: float  # queue-time observed: sum of M * delta_t
    policy: str  # active policy name at decision time

    @property
    def arrival_rate(self) -> float:
        """Per-queue arrival intensity λ̄ observed over the window."""
        return self.arrivals / self.exposure if self.exposure > 0 else 0.0

    @property
    def drop_rate(self) -> float:
        """Per-queue, per-time drop rate observed over the window."""
        return self.drops / self.exposure if self.exposure > 0 else 0.0


@dataclass(frozen=True)
class ControlAction:
    """What a controller asks the loop to do (default: nothing).

    Exactly one of ``policy`` (switch) / ``weights`` (re-weight) may be
    set; ``scale`` (add/drain ``scale`` queues) composes with either.
    ``weights`` maps policy names to non-negative mixture weights and is
    normalized to a sorted tuple so equal actions compare/fingerprint
    equal.
    """

    policy: str | None = None
    weights: tuple[tuple[str, float], ...] | None = None
    scale: int = 0

    def __post_init__(self) -> None:
        if self.policy is not None and self.weights is not None:
            raise ValueError("policy and weights are mutually exclusive")
        if self.weights is not None:
            if isinstance(self.weights, Mapping):
                items = self.weights.items()
            else:
                items = tuple(self.weights)
            norm = tuple(
                sorted((str(k), float(v)) for k, v in items)
            )
            if not norm or any(w < 0 for _, w in norm):
                raise ValueError("weights must be non-empty and >= 0")
            if not sum(w for _, w in norm) > 0:
                raise ValueError("weights must not all be zero")
            object.__setattr__(self, "weights", norm)
        if int(self.scale) != self.scale:
            raise ValueError("scale must be an integer queue delta")
        object.__setattr__(self, "scale", int(self.scale))

    @property
    def is_noop(self) -> bool:
        return self.policy is None and self.weights is None and not self.scale


#: The do-nothing action (module-level so ``decide`` can return it cheaply).
KEEP = ControlAction()


@dataclass(frozen=True)
class ControlDecision:
    """One applied decision, as recorded in ``controller.decisions``."""

    epoch: int  # epochs completed when the decision was applied
    observation: ControlObservation
    action: ControlAction
    policy: str  # active policy after applying the action
    num_queues: int  # fleet size after applying the action
    extras: dict = field(default_factory=dict)


class Controller:
    """Hook protocol for closed-loop control of a streamed environment.

    Subclasses implement :meth:`decide`; the loop calls it once every
    ``decision_interval`` epochs with a :class:`ControlObservation`
    whose window closed ``observation_lag`` windows earlier. Decisions
    must be deterministic functions of the observation stream and the
    controller's own state — the control path consumes no RNG draws, so
    controlled shards stay bit-identical across worker counts.

    Mutable run state lives in ``decisions`` (and subclass fields named
    in ``__fingerprint_exclude__``); :meth:`reset` clears it at the
    start of every shard, which is what makes one controller instance
    safe to reuse across shards and store-cacheable by construction
    parameters alone.
    """

    #: Epochs per decision window (>= 1).
    decision_interval: int = 1
    #: Whole windows of staleness before an observation is delivered.
    observation_lag: int = 0
    #: Mutable run state excluded from the experiment-store fingerprint.
    __fingerprint_exclude__: tuple[str, ...] = ("decisions",)

    def __init__(self) -> None:
        self.decisions: list[ControlDecision] = []

    @property
    def name(self) -> str:
        return type(self).__name__

    def reset(
        self,
        policies: tuple[str, ...],
        initial_policy: str,
        config: "SystemConfig",
    ) -> None:
        """Clear run state before a (re-)run; subclasses extend this."""
        self.decisions = []

    def decide(self, observation: ControlObservation) -> ControlAction:
        raise NotImplementedError

    def decision_extras(self) -> dict:
        """Diagnostics attached to the recorded decision (overridable)."""
        return {}


class StaticController(Controller):
    """Never acts — the uncontrolled loop expressed as a controller.

    A stream driven through the full hook machinery with this
    controller is bit-identical to ``run_stream`` without one (pinned
    by a test); it exists as the refactor's safety net and as the
    natural no-op default for A/B harnesses.
    """

    def decide(self, observation: ControlObservation) -> ControlAction:
        return KEEP


class _BandedController(Controller):
    """Shared band-table plumbing for the rate-driven controllers."""

    def __init__(self, bands) -> None:
        super().__init__()
        self.bands = _normalize_bands(bands)

    def band_for(self, rate: float) -> LoadBand:
        return _band_for(self.bands, rate)

    def reset(
        self,
        policies: tuple[str, ...],
        initial_policy: str,
        config: "SystemConfig",
    ) -> None:
        super().reset(policies, initial_policy, config)
        missing = [b.policy for b in self.bands if b.policy not in policies]
        if missing:
            raise KeyError(
                f"controller bands reference unknown policies "
                f"{missing}; suite: {', '.join(policies)}"
            )


class RateEstimatingController(_BandedController):
    """CI-hysteresis load balancing per arXiv:2012.10142.

    Pools the last ``estimation_windows`` observation windows into one
    arrival-rate estimate ``λ̂ = Σ arrivals / Σ exposure`` with the
    Poisson confidence half-width
    ``z · sqrt(Σ arrivals / E) / Σ exposure`` (``E`` lock-step replicas
    average the counts). The active policy switches to a different
    band's policy only when

    * the target band differs from the active policy's, **and**
    * at least ``min_dwell`` decisions have passed since the last
      switch (dwell hysteresis), **and**
    * the whole interval ``[λ̂ − half, λ̂ + half]`` lies inside the
      target band (confidence hysteresis).

    Both hysteresis rails exist to suppress chattering at band
    boundaries, where the candidate policies are near-tied anyway.
    """

    __fingerprint_exclude__ = (
        "decisions",
        "_windows",
        "_dwell",
        "_rate",
        "_half_width",
    )

    def __init__(
        self,
        bands,
        confidence: float = 1.96,
        estimation_windows: int = 3,
        min_dwell: int = 2,
        decision_interval: int = 2,
        observation_lag: int = 0,
    ) -> None:
        super().__init__(bands)
        if confidence <= 0:
            raise ValueError(f"confidence must be > 0, got {confidence}")
        if estimation_windows < 1:
            raise ValueError("estimation_windows must be >= 1")
        if min_dwell < 1:
            raise ValueError("min_dwell must be >= 1")
        if decision_interval < 1 or observation_lag < 0:
            raise ValueError(
                "decision_interval must be >= 1 and observation_lag >= 0"
            )
        self.confidence = float(confidence)
        self.estimation_windows = int(estimation_windows)
        self.min_dwell = int(min_dwell)
        self.decision_interval = int(decision_interval)
        self.observation_lag = int(observation_lag)
        self._windows: deque[tuple[float, float]] = deque(
            maxlen=self.estimation_windows
        )
        self._dwell = 0
        self._rate = 0.0
        self._half_width = math.inf

    def reset(
        self,
        policies: tuple[str, ...],
        initial_policy: str,
        config: "SystemConfig",
    ) -> None:
        super().reset(policies, initial_policy, config)
        self._windows = deque(maxlen=self.estimation_windows)
        self._dwell = 0
        self._rate = 0.0
        self._half_width = math.inf

    def decide(self, observation: ControlObservation) -> ControlAction:
        self._windows.append((observation.arrivals, observation.exposure))
        arrivals = sum(a for a, _ in self._windows)
        exposure = sum(x for _, x in self._windows)
        if exposure <= 0:
            return KEEP
        self._rate = arrivals / exposure
        self._half_width = (
            self.confidence
            * math.sqrt(max(arrivals, 0.0) / observation.num_replicas)
            / exposure
        )
        self._dwell += 1
        target = self.band_for(self._rate)
        if target.policy == observation.policy:
            return KEEP
        if self._dwell < self.min_dwell:
            return KEEP
        low, high = self._rate - self._half_width, self._rate + self._half_width
        if not (target.low <= low and high < target.high):
            return KEEP
        self._dwell = 0
        return ControlAction(policy=target.policy)

    def decision_extras(self) -> dict:
        return {"rate": self._rate, "half_width": self._half_width}


class OracleController(_BandedController):
    """Knows the true workload profile; defines the regret baseline.

    Reads the deterministic :class:`~repro.queueing.workloads.ProfileRate`
    directly (no estimation, no staleness) and switches immediately when
    the mean true rate over the *upcoming* decision window falls in a
    different band. Its drops lower-bound what any band-table policy
    selector can achieve, so ``drops(controller) − drops(oracle)`` is
    the regret reported by :mod:`repro.serving.regret`.
    """

    __fingerprint_exclude__ = ("decisions", "_rate")

    def __init__(
        self,
        profile: "ProfileRate",
        bands,
        decision_interval: int = 2,
    ) -> None:
        super().__init__(bands)
        if decision_interval < 1:
            raise ValueError("decision_interval must be >= 1")
        self.profile = profile
        self.decision_interval = int(decision_interval)
        self._rate = 0.0

    def reset(
        self,
        policies: tuple[str, ...],
        initial_policy: str,
        config: "SystemConfig",
    ) -> None:
        super().reset(policies, initial_policy, config)
        self._rate = 0.0

    def decide(self, observation: ControlObservation) -> ControlAction:
        start = observation.epoch + observation.age  # next epoch's index
        rates = [
            self.profile.rate_at(start + i)
            for i in range(self.decision_interval)
        ]
        self._rate = sum(rates) / len(rates)
        target = self.band_for(self._rate)
        if target.policy == observation.policy:
            return KEEP
        return ControlAction(policy=target.policy)

    def decision_extras(self) -> dict:
        return {"rate": self._rate}


class ScriptedController(Controller):
    """Replays a fixed action sequence, then keeps (testing / what-if)."""

    __fingerprint_exclude__ = ("decisions", "_cursor")

    def __init__(
        self,
        actions: "Sequence[ControlAction]",
        decision_interval: int = 1,
    ) -> None:
        super().__init__()
        if decision_interval < 1:
            raise ValueError("decision_interval must be >= 1")
        self.actions = tuple(actions)
        if not all(isinstance(a, ControlAction) for a in self.actions):
            raise ValueError("actions must be ControlAction instances")
        self.decision_interval = int(decision_interval)
        self._cursor = 0

    def reset(
        self,
        policies: tuple[str, ...],
        initial_policy: str,
        config: "SystemConfig",
    ) -> None:
        super().reset(policies, initial_policy, config)
        self._cursor = 0

    def decide(self, observation: ControlObservation) -> ControlAction:
        if self._cursor >= len(self.actions):
            return KEEP
        action = self.actions[self._cursor]
        self._cursor += 1
        return action


def resize_queue_fleet(
    env: BatchedFiniteSystemEnv,
    num_queues: int,
    conserve_traffic: bool = True,
) -> np.ndarray:
    """Add or drain queues of a running batched finite system, in place.

    Growing appends empty queues at the paper's homogeneous service
    rate. Draining removes the trailing queues and water-fills their
    jobs into the least-loaded surviving queues (deterministic,
    replica-by-replica); jobs that find every surviving buffer full are
    returned as the per-replica overflow ``(E,)`` so the caller can
    account them as drops — total queue mass is conserved up to exactly
    that overflow (tested).

    With ``conserve_traffic`` (the default) the arrival process is
    replaced by a shallow copy whose levels are scaled by
    ``M_old / M_new``: the *system-wide* offered load ``M·λ`` is held
    fixed, so scaling genuinely relieves (or concentrates) per-queue
    pressure instead of being cancelled by the frozen-rate model's
    ``λ_j ∝ M`` scaling. The scale is always computed against the
    levels the fleet had at its *first* conserving resize (a private
    copy, never the caller's array), so chained resizes compound
    exactly: grow → drain → grow back to ``M`` restores the original
    offered load bit-for-bit, with no accumulated rounding.  Derived
    cosmetic attributes of the profile (``mean``, ``base_rate``, ...)
    are left untouched — only ``levels`` feeds the simulation. A
    ``conserve_traffic=False`` call breaks the load/fleet relationship
    on purpose and therefore discards the anchor; the next conserving
    resize re-anchors at the then-current levels.

    Only the plain :class:`BatchedFiniteSystemEnv` is eligible:
    subclasses (graph, heterogeneous, delayed) carry extra per-queue
    state this function cannot see. Environments bound to a non-empty
    :class:`~repro.queueing.chaos.DegradationSchedule` are rejected:
    the chaos state's active mask and pristine rates are anchored to
    the original queue count.
    """
    if type(env) is not BatchedFiniteSystemEnv:
        raise TypeError(
            "resize_queue_fleet supports exactly BatchedFiniteSystemEnv, "
            f"got {type(env).__name__}"
        )
    if env._states is None:
        raise RuntimeError("environment must be reset before resizing")
    if getattr(env, "_chaos_state", None) is not None:
        raise RuntimeError(
            "cannot resize a fleet running a degradation schedule: the "
            "chaos state (active mask, pristine rates) is anchored to "
            "the original queue count"
        )
    config = env.config
    new_m = int(num_queues)
    old_m = config.num_queues
    floor = max(1, config.d)
    if new_m < floor:
        raise ValueError(
            f"num_queues must be >= {floor} (sampling d={config.d}), "
            f"got {new_m}"
        )
    e = env.num_replicas
    overflow = np.zeros(e)
    if new_m == old_m:
        return overflow
    if new_m > old_m:
        add = new_m - old_m
        env._states = np.hstack(
            [env._states, np.zeros((e, add), dtype=np.int64)]
        )
        env.service_rates = np.concatenate(
            [env.service_rates, np.full(add, config.service_rate)]
        )
    else:
        moved = env._states[:, new_m:].sum(axis=1)
        kept = np.ascontiguousarray(env._states[:, :new_m])
        overflow = water_fill(kept, moved, config.buffer_size)
        env._states = kept
        env.service_rates = env.service_rates[:new_m].copy()
    if conserve_traffic:
        anchor = getattr(env, "_fleet_anchor", None)
        if anchor is None:
            anchor = (env.arrivals.levels.copy(), old_m)
        base_levels, base_m = anchor
        arrivals = copy.copy(env.arrivals)
        arrivals.levels = base_levels * (base_m / new_m)
        env.arrivals = arrivals
        env._fleet_anchor = anchor
    else:
        env._fleet_anchor = None
    env.config = config.with_updates(num_queues=new_m)
    return overflow


class _WindowRecord:
    """One closed decision window awaiting (possibly lagged) delivery."""

    __slots__ = (
        "end_epoch",
        "epochs",
        "arrivals",
        "drops",
        "mean_queue_length",
        "exposure",
    )

    def __init__(
        self, end_epoch, epochs, arrivals, drops, mean_queue_length, exposure
    ) -> None:
        self.end_epoch = end_epoch
        self.epochs = epochs
        self.arrivals = arrivals
        self.drops = drops
        self.mean_queue_length = mean_queue_length
        self.exposure = exposure


class ControlLoop:
    """Engine-side glue: windows epochs, delivers observations, applies
    actions.

    Owned by :func:`repro.serving.engine.run_stream`; one loop per
    shard. The loop accumulates per-epoch aggregates into the open
    decision window, closes it every ``controller.decision_interval``
    epochs, delays delivery by ``controller.observation_lag`` windows,
    and applies the returned :class:`ControlAction`:

    * ``policy`` — activate a named policy from the suite;
    * ``weights`` — activate a convex combination of constant-rule
      policies (cached per weight vector);
    * ``scale`` — :func:`resize_queue_fleet` by ``scale`` queues,
      resizing the metric fold alongside and accounting handoff
      overflow as drops.

    Everything here is pure Python/NumPy arithmetic on already-computed
    epoch outputs — no RNG draws — so attaching a controller never
    perturbs the environment's random streams.
    """

    def __init__(
        self,
        env: _BatchedQueueSystemBase,
        metrics: "StreamingMetrics",
        controller: Controller,
        policy: "UpperLevelPolicy",
        policies: "Mapping[str, UpperLevelPolicy] | None" = None,
    ) -> None:
        if not isinstance(controller, Controller):
            raise TypeError(
                f"controller must be a Controller, got {controller!r}"
            )
        self.env = env
        self.metrics = metrics
        self.controller = controller
        self.suite: dict[str, "UpperLevelPolicy"] = dict(policies or {})
        self.suite.setdefault(policy.name, policy)
        self.active_name = policy.name
        self.active_policy = policy
        self._blends: dict[tuple, "UpperLevelPolicy"] = {}
        self._pending: deque[_WindowRecord] = deque()
        self._t = 0
        self._open_window()
        controller.reset(tuple(self.suite), self.active_name, env.config)

    def _open_window(self) -> None:
        self._w_epochs = 0
        self._w_arrivals = 0.0
        self._w_drops = 0.0
        self._w_qlen = 0.0
        self._w_queue_epochs = 0

    def after_epoch(self, states: np.ndarray, info: dict) -> None:
        """Fold one completed epoch; decide/apply at window boundaries."""
        delta_t = self.env.config.delta_t
        self._t += 1
        self._w_epochs += 1
        self._w_arrivals += (
            float(info["arrival_rates"].sum(axis=1).mean()) * delta_t
        )
        self._w_drops += float(info["drops_total"].mean())
        self._w_qlen += float(states.mean())
        self._w_queue_epochs += self.env.config.num_queues
        if self._w_epochs < self.controller.decision_interval:
            return
        self._pending.append(
            _WindowRecord(
                end_epoch=self._t,
                epochs=self._w_epochs,
                arrivals=self._w_arrivals,
                drops=self._w_drops,
                mean_queue_length=self._w_qlen / self._w_epochs,
                exposure=self._w_queue_epochs * delta_t,
            )
        )
        self._open_window()
        if len(self._pending) <= self.controller.observation_lag:
            return
        record = self._pending.popleft()
        observation = ControlObservation(
            epoch=record.end_epoch,
            age=self._t - record.end_epoch,
            window=record.epochs,
            delta_t=delta_t,
            num_queues=self.env.config.num_queues,
            num_replicas=self.env.num_replicas,
            arrivals=record.arrivals,
            drops=record.drops,
            mean_queue_length=record.mean_queue_length,
            exposure=record.exposure,
            policy=self.active_name,
        )
        action = self.controller.decide(observation)
        if not isinstance(action, ControlAction):
            raise TypeError(
                f"{self.controller.name}.decide returned {action!r}, "
                "expected a ControlAction"
            )
        if not action.is_noop:
            self._apply(action)
        self.controller.decisions.append(
            ControlDecision(
                epoch=self._t,
                observation=observation,
                action=action,
                policy=self.active_name,
                num_queues=self.env.config.num_queues,
                extras=self.controller.decision_extras(),
            )
        )

    # -- action application ---------------------------------------------
    def _apply(self, action: ControlAction) -> None:
        if action.policy is not None:
            try:
                self.active_policy = self.suite[action.policy]
            except KeyError:
                raise KeyError(
                    f"controller switched to unknown policy "
                    f"{action.policy!r}; suite: {', '.join(self.suite)}"
                ) from None
            self.active_name = action.policy
        elif action.weights is not None:
            blend = self._blends.get(action.weights)
            if blend is None:
                blend = self._build_blend(action.weights)
                self._blends[action.weights] = blend
            self.active_policy = blend
            self.active_name = blend.name
        if action.scale:
            target = self.env.config.num_queues + action.scale
            overflow = resize_queue_fleet(self.env, target)
            # Overflow happened during the handoff, while the fleet was
            # still at its old width — account it before the metric
            # fold adopts the new geometry.
            if overflow.any():
                self.metrics.observe_extra_drops(overflow)
            self.metrics.resize(self.env.service_rates)

    def _build_blend(
        self, weights: tuple[tuple[str, float], ...]
    ) -> "UpperLevelPolicy":
        rules = []
        for name, _ in weights:
            policy = self.suite.get(name)
            if policy is None:
                raise KeyError(
                    f"controller re-weighted unknown policy {name!r}; "
                    f"suite: {', '.join(self.suite)}"
                )
            if not isinstance(policy, ConstantRulePolicy):
                raise TypeError(
                    f"re-weighting requires constant-rule policies, "
                    f"{name!r} is {type(policy).__name__}"
                )
            rules.append(policy.rule)
        total = sum(w for _, w in weights)
        mixed = DecisionRule.convex_combination(
            rules, [w / total for _, w in weights]
        )
        label = ",".join(f"{n}:{w / total:g}" for n, w in weights)
        return ConstantRulePolicy(mixed, name=f"mix({label})")
