"""Online metrics for streaming runs: quantile sketches and windows.

Everything here is O(1) memory in the horizon:

* :class:`P2Quantile` — the P² algorithm (Jain & Chlamtać 1985): five
  markers track one quantile of a scalar stream without storing
  observations. Used for the continuous sojourn-time proxy;
  property-tested against :func:`numpy.quantile` in
  ``tests/test_serving.py``.
* exact streaming quantiles for *queue lengths*: the state space is the
  finite set ``{0, ..., B}``, so a per-replica count histogram gives
  exact quantiles in O(S) memory — no sketch error where none is
  needed.
* :class:`WindowedSeries` — fixed-size time windows of operator-grade
  series (drop rate, throughput, mean backlog). The retained window
  count is bounded by ``max_windows``: when a run outgrows it,
  adjacent windows merge pairwise and the window width doubles, so an
  arbitrarily long horizon keeps at most ``max_windows`` rows at a
  deterministic resolution (:func:`window_layout` computes the layout
  without running anything).
* :class:`StreamingMetrics` — the per-epoch fold tying the above to the
  batched environments' ``(states, drops, rates)`` epoch outputs.

Metric definitions are documented for operators in ``docs/serving.md``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "P2Quantile",
    "WindowedSeries",
    "window_layout",
    "StreamingMetrics",
    "SUMMARY_FIELDS",
    "WINDOW_FIELDS",
]

#: Default cap on retained windows (see :class:`WindowedSeries`).
DEFAULT_MAX_WINDOWS = 512


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm.

    Parameters
    ----------
    p : float
        Target quantile in ``(0, 1)``.

    Notes
    -----
    Five markers (min, two intermediates, the target, max) are moved by
    piecewise-parabolic interpolation as observations arrive; memory is
    constant and one :meth:`add` is O(1). With five or fewer
    observations the estimate is the exact (linearly interpolated)
    sample quantile. Accuracy on well-behaved streams is typically a
    fraction of a percent of the sample range — the property test pins
    a tolerance against ``np.quantile`` on random streams.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must lie in (0, 1), got {p}")
        self.p = float(p)
        self.count = 0
        self._heights: list[float] = []  # marker heights q_i
        self._positions = [0.0, 1.0, 2.0, 3.0, 4.0]  # marker positions n_i
        self._desired = [0.0, 0.0, 0.0, 0.0, 0.0]  # desired positions n'_i
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def add(self, value: float) -> None:
        """Fold one observation into the sketch."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"non-finite observation: {value!r}")
        self.count += 1
        if self.count <= 5:
            self._heights.append(value)
            self._heights.sort()
            if self.count == 5:
                p = self.p
                self._positions = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._desired = [
                    0.0,
                    2.0 * p,
                    4.0 * p,
                    2.0 + 2.0 * p,
                    4.0,
                ]
            return
        q, n, nd = self._heights, self._positions, self._desired
        # Locate the cell and bump the extreme markers if needed.
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            nd[i] += self._increments[i]
        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            d = nd[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:  # parabolic move would break monotonicity
                    j = i + int(step)
                    q[i] += step * (q[j] - q[i]) / (n[j] - n[i])
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, n = self._heights, self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (q[i] - q[i - 1])
            / (n[i] - n[i - 1])
        )

    def extend(self, values) -> None:
        """Fold a batch of observations (in order)."""
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.add(float(value))

    @property
    def value(self) -> float:
        """Current quantile estimate."""
        if self.count == 0:
            raise ValueError("no observations folded")
        if self.count <= 5:
            return float(np.quantile(self._heights, self.p))
        return float(self._heights[2])


class _P2Batch:
    """``R`` independent P² sketches advanced in lock-step (vectorized).

    The streaming fold feeds one observation per replica per epoch into
    ``len(quantiles)`` sketches each; looping scalar
    :class:`P2Quantile` objects would put ``E × Q`` Python calls on the
    hot path. This class stacks all marker state into ``(R, 5)`` arrays
    and performs the identical update arithmetic with a handful of
    NumPy operations per batch — per-row results match the scalar
    implementation (pinned by a test).
    """

    def __init__(self, ps: np.ndarray) -> None:
        self.p = np.asarray(ps, dtype=np.float64)
        if self.p.ndim != 1 or np.any((self.p <= 0) | (self.p >= 1)):
            raise ValueError("quantiles must lie in (0, 1)")
        r = self.p.size
        self.count = 0
        self._buffer: list[np.ndarray] = []
        self._q = np.empty((r, 5))
        self._n = np.empty((r, 5))
        self._nd = np.empty((r, 5))
        p = self.p
        self._inc = np.stack(
            [
                np.zeros(r),
                p / 2.0,
                p,
                (1.0 + p) / 2.0,
                np.ones(r),
            ],
            axis=1,
        )

    def add(self, values: np.ndarray) -> None:
        """Fold one observation per sketch (shape ``(R,)``)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.p.size,):
            raise ValueError(f"expected ({self.p.size},), got {values.shape}")
        self.count += 1
        if self.count <= 5:
            self._buffer.append(values.copy())
            if self.count == 5:
                self._q = np.sort(np.stack(self._buffer, axis=1), axis=1)
                self._n = np.broadcast_to(
                    np.arange(5.0), self._q.shape
                ).copy()
                p = self.p
                self._nd = np.stack(
                    [
                        np.zeros_like(p),
                        2.0 * p,
                        4.0 * p,
                        2.0 + 2.0 * p,
                        np.full_like(p, 4.0),
                    ],
                    axis=1,
                )
            return
        q, n, nd = self._q, self._n, self._nd
        v = values
        q[:, 0] = np.minimum(q[:, 0], v)
        q[:, 4] = np.maximum(q[:, 4], v)
        k = (v[:, None] >= q[:, 1:4]).sum(axis=1)
        n += np.arange(5)[None, :] > k[:, None]
        nd += self._inc
        with np.errstate(divide="ignore", invalid="ignore"):
            for i in (1, 2, 3):
                d = nd[:, i] - n[:, i]
                plus = (d >= 1.0) & (n[:, i + 1] - n[:, i] > 1.0)
                minus = (d <= -1.0) & (n[:, i - 1] - n[:, i] < -1.0)
                act = plus | minus
                if not act.any():
                    continue
                step = np.where(plus, 1.0, -1.0)
                cand = q[:, i] + step / (n[:, i + 1] - n[:, i - 1]) * (
                    (n[:, i] - n[:, i - 1] + step)
                    * (q[:, i + 1] - q[:, i])
                    / (n[:, i + 1] - n[:, i])
                    + (n[:, i + 1] - n[:, i] - step)
                    * (q[:, i] - q[:, i - 1])
                    / (n[:, i] - n[:, i - 1])
                )
                ok = (q[:, i - 1] < cand) & (cand < q[:, i + 1])
                lin = q[:, i] + step * (
                    np.where(plus, q[:, i + 1], q[:, i - 1]) - q[:, i]
                ) / (np.where(plus, n[:, i + 1], n[:, i - 1]) - n[:, i])
                q[:, i] = np.where(act, np.where(ok, cand, lin), q[:, i])
                n[:, i] += np.where(act, step, 0.0)

    def values(self) -> np.ndarray:
        """Current per-sketch estimates, shape ``(R,)``."""
        if self.count == 0:
            raise ValueError("no observations folded")
        if self.count <= 5:
            data = np.stack(self._buffer, axis=1)
            return np.asarray(
                [
                    float(np.quantile(data[i], self.p[i]))
                    for i in range(self.p.size)
                ]
            )
        return self._q[:, 2].copy()


def window_layout(
    horizon: int, window: int, max_windows: int = DEFAULT_MAX_WINDOWS
) -> np.ndarray:
    """Widths (in epochs) of the windows a streaming run will retain.

    Pure arithmetic mirror of :class:`WindowedSeries`'s flush/coarsen
    discipline; the shape of a cached streaming shard's window series is
    derived from this (and a test pins the two implementations
    together).
    """
    if horizon < 0 or window < 1 or max_windows < 1:
        raise ValueError("horizon >= 0, window >= 1, max_windows >= 1 needed")
    # Iterate flush events, not epochs: between flushes the per-epoch
    # accumulation is layout-irrelevant, so this is O(max_windows · log
    # horizon) — the series class performs the identical flush/coarsen
    # sequence per epoch (a test pins the two together).
    widths: list[int] = []
    remaining = int(horizon)
    current = int(window)
    while remaining >= current:
        widths.append(current)
        remaining -= current
        if len(widths) > max_windows:
            widths = [
                sum(widths[i : i + 2]) for i in range(0, len(widths), 2)
            ]
            current *= 2
    if remaining:
        widths.append(remaining)
    return np.asarray(widths, dtype=np.int64)


class WindowedSeries:
    """Per-window sums of a fixed field set, with bounded coarsening.

    Parameters
    ----------
    window : int
        Initial window width in epochs.
    num_fields : int
        Number of scalar series folded per epoch.
    max_windows : int, optional
        Retention cap: exceeding it merges adjacent windows pairwise
        and doubles the effective window width.

    Notes
    -----
    Sums (not means) are accumulated so that merged windows stay exact;
    :meth:`rows` divides by the recorded widths. The recorded layout is
    a deterministic function of ``(epochs, window, max_windows)`` —
    independent of the folded values — which is what lets cached
    streaming shards be reshaped without re-simulation.
    """

    def __init__(
        self,
        window: int,
        num_fields: int,
        max_windows: int = DEFAULT_MAX_WINDOWS,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1 epoch, got {window}")
        if num_fields < 0:
            raise ValueError("num_fields must be >= 0")
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        self.initial_window = int(window)
        self.current_window = int(window)
        self.max_windows = int(max_windows)
        self.num_fields = int(num_fields)
        self._widths: list[int] = []
        self._sums: list[np.ndarray] = []
        self._acc = np.zeros(num_fields)
        self._acc_epochs = 0
        self.epochs = 0

    def add_epoch(self, values) -> None:
        """Fold one epoch's field values (summed into the open window)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.num_fields,):
            raise ValueError(
                f"expected {self.num_fields} fields, got shape {values.shape}"
            )
        self._acc += values
        self._acc_epochs += 1
        self.epochs += 1
        if self._acc_epochs == self.current_window:
            self._flush()

    def add_partial(self, values) -> None:
        """Fold extra field mass into the open window without advancing
        the epoch clock (for between-epoch events like an autoscale
        handoff). The recorded window layout is unchanged."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.num_fields,):
            raise ValueError(
                f"expected {self.num_fields} fields, got shape {values.shape}"
            )
        if self._acc_epochs == 0 and self._sums:
            # The previous window just flushed; retroactively charge the
            # event to it rather than pre-charging an empty window.
            self._sums[-1] = self._sums[-1] + values
        else:
            self._acc += values

    def _flush(self) -> None:
        self._widths.append(self._acc_epochs)
        self._sums.append(self._acc)
        self._acc = np.zeros(self.num_fields)
        self._acc_epochs = 0
        if len(self._widths) > self.max_windows:
            self._widths = [
                sum(self._widths[i : i + 2])
                for i in range(0, len(self._widths), 2)
            ]
            self._sums = [
                np.sum(self._sums[i : i + 2], axis=0)
                for i in range(0, len(self._sums), 2)
            ]
            self.current_window *= 2

    def widths(self) -> np.ndarray:
        """Recorded window widths in epochs (open window included)."""
        widths = list(self._widths)
        if self._acc_epochs:
            widths.append(self._acc_epochs)
        return np.asarray(widths, dtype=np.int64)

    def sums(self) -> np.ndarray:
        """Per-window field sums, shape ``(W, num_fields)``."""
        sums = list(self._sums)
        if self._acc_epochs:
            sums.append(self._acc.copy())
        if not sums:
            return np.zeros((0, self.num_fields))
        return np.stack(sums)

    def rows(self) -> np.ndarray:
        """Per-window, per-epoch field means, shape ``(W, num_fields)``."""
        widths = self.widths()
        if widths.size == 0:
            return np.zeros((0, self.num_fields))
        return self.sums() / widths[:, None]


#: Per-replica summary fields produced by :class:`StreamingMetrics`
#: (the cacheable streaming shard payload; definitions in
#: ``docs/serving.md``).
SUMMARY_FIELDS = (
    "total_drops_per_queue",
    "drop_rate",
    "throughput",
    "mean_queue_length",
    "qlen_p50",
    "qlen_p95",
    "qlen_p99",
    "sojourn_p50",
    "sojourn_p95",
    "sojourn_p99",
)

#: Per-window series fields (replica-averaged, per-epoch means).
WINDOW_FIELDS = (
    "drop_rate",
    "throughput",
    "mean_queue_length",
    "arrival_rate",
)

_QUANTILES = (0.5, 0.95, 0.99)


class StreamingMetrics:
    """Fold batched-environment epochs into O(1)-memory statistics.

    Parameters
    ----------
    num_replicas : int
        Lock-step replica count ``E`` of the environment.
    num_states : int
        Queue state-space size ``S = B + 1``.
    service_rates : ndarray
        Per-queue service rates, shape ``(M,)`` (the sojourn proxy's
        denominator).
    delta_t : float
        Epoch length; converts per-epoch counts into per-time rates.
    window : int
        Window width in epochs for the operator series.
    max_windows : int, optional
        Window retention cap (see :class:`WindowedSeries`).

    Notes
    -----
    Per epoch the fold consumes the environment's post-epoch states
    ``(E, M)``, total drops ``(E,)`` and frozen arrival rates
    ``(E, M)``. Queue-length quantiles are exact (count histogram over
    the finite state space); the sojourn proxy — the Little's-law
    backlog-over-capacity ratio ``mean_j z_j / μ_j``, one value per
    replica per epoch — is continuous, so it goes through P² sketches.
    Throughput is expected arrivals (frozen rates × ``Δt``) minus
    realized drops, per queue per unit time. All summary statistics are
    independent of the window width; only the reporting resolution of
    the window series depends on it.
    """

    def __init__(
        self,
        num_replicas: int,
        num_states: int,
        service_rates: np.ndarray,
        delta_t: float,
        window: int,
        max_windows: int = DEFAULT_MAX_WINDOWS,
    ) -> None:
        if num_replicas < 1 or num_states < 2:
            raise ValueError("need >= 1 replica and >= 2 queue states")
        if delta_t <= 0:
            raise ValueError(f"delta_t must be > 0, got {delta_t}")
        self.num_replicas = int(num_replicas)
        self.num_states = int(num_states)
        self.service_rates = np.asarray(service_rates, dtype=np.float64)
        if self.service_rates.ndim != 1 or self.service_rates.min() <= 0:
            raise ValueError("service_rates must be positive, shape (M,)")
        self.delta_t = float(delta_t)
        self.num_queues = int(self.service_rates.size)
        self.epochs = 0
        # Queue-epochs observed (Σ M per epoch): the exposure that keeps
        # per-queue normalizations exact when autoscaling changes M
        # mid-stream. For a constant fleet this is the integer
        # M · epochs, so every summary below stays bit-identical to the
        # fixed-M arithmetic it replaced.
        self._queue_epochs = 0
        self._qlen_counts = np.zeros(
            (self.num_replicas, self.num_states), dtype=np.int64
        )
        self._drops = np.zeros(self.num_replicas)
        self._arrivals = np.zeros(self.num_replicas)
        self._qlen_sum = np.zeros(self.num_replicas)
        # One lock-step P² batch covering every (replica, quantile) pair.
        self._sojourn = _P2Batch(
            np.tile(np.asarray(_QUANTILES), self.num_replicas)
        )
        self.windows = WindowedSeries(
            window, len(WINDOW_FIELDS), max_windows=max_windows
        )

    def observe_epoch(
        self,
        states: np.ndarray,
        drops_total: np.ndarray,
        arrival_rates: np.ndarray,
    ) -> None:
        """Fold one epoch of every replica."""
        states = np.asarray(states)
        drops_total = np.asarray(drops_total, dtype=np.float64)
        arrival_rates = np.asarray(arrival_rates, dtype=np.float64)
        e, m = self.num_replicas, self.num_queues
        if states.shape != (e, m):
            raise ValueError(f"states must be ({e}, {m}), got {states.shape}")
        if drops_total.shape != (e,) or arrival_rates.shape != (e, m):
            raise ValueError("drops_total / arrival_rates shape mismatch")
        offsets = np.arange(e, dtype=np.int64)[:, None] * self.num_states
        self._qlen_counts += np.bincount(
            (states + offsets).ravel(), minlength=e * self.num_states
        ).reshape(e, self.num_states)
        self._drops += drops_total
        arrivals = arrival_rates.sum(axis=1) * self.delta_t
        self._arrivals += arrivals
        mean_qlen = states.mean(axis=1)
        self._qlen_sum += mean_qlen
        sojourn = (states / self.service_rates[None, :]).mean(axis=1)
        self._sojourn.add(np.repeat(sojourn, len(_QUANTILES)))
        self.epochs += 1
        self._queue_epochs += m
        span = m * self.delta_t
        self.windows.add_epoch(
            np.asarray(
                [
                    float(drops_total.mean()) / span,
                    float((arrivals - drops_total).mean()) / span,
                    float(mean_qlen.mean()),
                    float(arrival_rates.sum(axis=1).mean()) / m,
                ]
            )
        )

    def resize(self, service_rates: np.ndarray) -> None:
        """Adopt a new fleet size mid-stream (closed-loop autoscaling).

        Subsequent :meth:`observe_epoch` calls expect ``(E, M_new)``
        arrays; all accumulated statistics stay valid because every
        per-queue normalization divides by the observed queue-epochs,
        not a fixed ``M``.
        """
        service_rates = np.asarray(service_rates, dtype=np.float64)
        if service_rates.ndim != 1 or service_rates.size < 1:
            raise ValueError("service_rates must be 1-D and non-empty")
        if service_rates.min() <= 0:
            raise ValueError("service rates must be > 0")
        self.service_rates = service_rates.copy()
        self.num_queues = int(service_rates.size)

    def observe_extra_drops(self, drops: np.ndarray) -> None:
        """Account drops outside the epoch kernel (autoscale handoff
        overflow), shape ``(E,)``.

        The mass lands in the summary totals *and* the open window of
        the operator series (as drop rate over the current fleet's
        epoch span, mirroring :meth:`observe_epoch`'s normalization),
        so drained-queue losses are visible in ``run_stream`` window
        rows — not only in the resize call's return value.
        """
        drops = np.asarray(drops, dtype=np.float64)
        if drops.shape != (self.num_replicas,):
            raise ValueError(
                f"drops must be ({self.num_replicas},), got {drops.shape}"
            )
        if drops.min() < 0:
            raise ValueError("drop counts must be >= 0")
        self._drops += drops
        rate = float(drops.mean()) / (self.num_queues * self.delta_t)
        # Dropped jobs were counted as arrivals when their epoch folded,
        # so the same mass leaves the throughput field.
        self.windows.add_partial(np.asarray([rate, -rate, 0.0, 0.0]))

    # ------------------------------------------------------------------
    def _qlen_quantiles(self) -> np.ndarray:
        """Exact per-replica queue-length quantiles, ``(E, len(Q))``."""
        totals = self._qlen_counts.sum(axis=1, keepdims=True)
        cdf = np.cumsum(self._qlen_counts, axis=1) / np.maximum(totals, 1)
        out = np.empty((self.num_replicas, len(_QUANTILES)))
        for j, q in enumerate(_QUANTILES):
            out[:, j] = np.argmax(cdf >= q - 1e-12, axis=1)
        return out

    def summaries(self) -> np.ndarray:
        """Per-replica summary matrix, shape ``(E, len(SUMMARY_FIELDS))``.

        Row order follows :data:`SUMMARY_FIELDS`. Every entry is a pure
        fold of the observed epochs — bit-identical for any window
        width (tested).
        """
        if self.epochs == 0:
            raise ValueError("no epochs observed")
        e = self.num_replicas
        # Exposure-based spans: identical to M · epochs · Δt (and to an
        # exact float M divisor) while the fleet is constant, correct
        # when autoscaling varied it.
        span = self._queue_epochs * self.delta_t
        mean_m = self._queue_epochs / self.epochs
        qlen_q = self._qlen_quantiles()
        sojourn_q = self._sojourn.values().reshape(e, len(_QUANTILES))
        out = np.empty((e, len(SUMMARY_FIELDS)))
        out[:, 0] = self._drops / mean_m
        out[:, 1] = self._drops / span
        out[:, 2] = (self._arrivals - self._drops) / span
        out[:, 3] = self._qlen_sum / self.epochs
        out[:, 4:7] = qlen_q
        out[:, 7:10] = sojourn_q
        return out
