"""Chunked streaming driver over the batched environments.

:func:`run_stream` advances one batched environment (dense, graph,
heterogeneous or delayed) through an arbitrarily long horizon, folding
every epoch into :class:`repro.serving.metrics.StreamingMetrics` —
memory stays O(E·M + max_windows), independent of the horizon (asserted
by ``benchmarks/bench_streaming.py``).

:func:`run_stream_request` shards a :class:`StreamRequest` over replica
chunks with **exactly** the seed discipline of
:class:`repro.experiments.parallel.SweepExecutor` (same chunk layout,
same ``SeedSequence`` children), executes the chunks in-process or on a
process pool, and merges per-replica summaries by offset — results are
bit-identical for any worker count. With an
:class:`repro.store.store.ExperimentStore` attached, each streaming
shard is cached under a content key from
:func:`repro.store.keys.stream_shard_key` — streaming shards
fingerprint like finite-sweep shards, so killed streams resume where
they stopped.

:func:`run_stream_scenario` is the entry point behind
``python -m repro.experiments.cli stream <scenario>``: it instantiates
one registered scenario at a chosen delay and streams one policy of its
suite.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.config import SystemConfig
from repro.execution import ExecutionContext, resolve_execution_context
from repro.queueing.batched_env import (
    BatchedFiniteSystemEnv,
    _BatchedQueueSystemBase,
)
from repro.serving.control import Controller, ControlLoop
from repro.serving.metrics import (
    DEFAULT_MAX_WINDOWS,
    SUMMARY_FIELDS,
    WINDOW_FIELDS,
    StreamingMetrics,
    window_layout,
)
from repro.utils.stats import mean_confidence_interval
from repro.utils.tables import format_table, series_to_csv

if TYPE_CHECKING:
    from repro.policies.base import UpperLevelPolicy
    from repro.queueing.chaos import DegradationSchedule
    from repro.store.store import ExperimentStore

__all__ = [
    "StreamRequest",
    "StreamResult",
    "run_stream",
    "run_stream_request",
    "run_stream_scenario",
]


@dataclass(frozen=True)
class StreamRequest:
    """One streaming evaluation: env × policy × horizon × windowing.

    The streaming analogue of
    :class:`repro.experiments.parallel.EvalRequest`; a request is the
    unit whose merged metrics are identical no matter how many workers
    (or cache hits) serve its replica chunks.
    """

    config: SystemConfig
    policy: "UpperLevelPolicy"
    horizon: int
    window: int
    num_replicas: int = 4
    seed: Any = 0
    env_cls: type | None = None
    env_kwargs: dict[str, Any] = field(default_factory=dict)
    max_batch_replicas: int = 64
    max_windows: int = DEFAULT_MAX_WINDOWS
    sim_backend: str = "numpy"
    controller: "Controller | None" = None
    policies: "dict[str, UpperLevelPolicy] | None" = None

    def __post_init__(self) -> None:
        from repro.queueing.backends import available_backends

        if self.sim_backend != "auto" and (
            self.sim_backend not in available_backends()
        ):
            raise ValueError(
                f"unknown sim_backend {self.sim_backend!r}; registered "
                f"kernels: {available_backends()} (or 'auto')"
            )
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1 epoch")
        if self.window < 1:
            raise ValueError("window must be >= 1 epoch")
        if self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if self.max_batch_replicas < 1:
            raise ValueError("max_batch_replicas must be >= 1")
        if self.max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        if self.env_cls is not None and not issubclass(
            self.env_cls, _BatchedQueueSystemBase
        ):
            raise ValueError(
                "streaming requires a batched environment class, got "
                f"{self.env_cls!r}"
            )
        if self.controller is not None and not isinstance(
            self.controller, Controller
        ):
            raise ValueError(
                f"controller must be a Controller, got {self.controller!r}"
            )
        if self.policies is not None and self.controller is None:
            raise ValueError("policies requires a controller")

    def resolved_env_cls(self) -> type:
        return self.env_cls or BatchedFiniteSystemEnv

    def window_widths(self) -> np.ndarray:
        """Deterministic retained-window layout of this request."""
        return window_layout(self.horizon, self.window, self.max_windows)


@dataclass
class StreamResult:
    """Merged outcome of one streaming request.

    ``summaries`` holds one row per replica (columns
    :data:`~repro.serving.metrics.SUMMARY_FIELDS`); ``window_rows`` the
    replica-averaged operator series at the retained resolution
    (columns :data:`~repro.serving.metrics.WINDOW_FIELDS`, per-epoch
    means; widths in epochs in ``window_widths``).
    """

    policy_name: str
    config: SystemConfig
    horizon: int
    window: int
    summaries: np.ndarray  # (runs, len(SUMMARY_FIELDS))
    window_widths: np.ndarray  # (W,)
    window_rows: np.ndarray  # (W, len(WINDOW_FIELDS))
    workers: int = 1
    scenario: str | None = None
    controller_name: str | None = None

    summary_fields: tuple[str, ...] = SUMMARY_FIELDS
    window_fields: tuple[str, ...] = WINDOW_FIELDS

    @property
    def num_replicas(self) -> int:
        return int(self.summaries.shape[0])

    def summary_mean(self, field_name: str) -> float:
        """Replica-mean of one summary field."""
        return float(
            self.summaries[:, self.summary_fields.index(field_name)].mean()
        )

    def format_table(self) -> str:
        rows = []
        for j, name in enumerate(self.summary_fields):
            ci = mean_confidence_interval(self.summaries[:, j])
            rows.append(
                [name, f"{ci.mean:.4g}", f"±{ci.half_width:.2g}"]
            )
        control = (
            f"controller={self.controller_name}, "
            if self.controller_name
            else ""
        )
        title = (
            f"Stream {self.scenario or self.policy_name} — "
            f"policy={self.policy_name}, {control}"
            f"M={self.config.num_queues}, "
            f"Δt={self.config.delta_t:g}, horizon={self.horizon} epochs, "
            f"E={self.num_replicas} replicas (workers={self.workers})"
        )
        table = format_table(
            ["metric", "mean", "95% CI"], rows, title=title
        )
        return table + "\n\n" + self._format_window_table()

    def _format_window_table(self, max_rows: int = 12) -> str:
        widths = self.window_widths
        starts = np.concatenate([[0], np.cumsum(widths)[:-1]])
        idx = np.arange(widths.size)
        if widths.size > max_rows:
            idx = np.unique(
                np.linspace(0, widths.size - 1, max_rows).round().astype(int)
            )
        rows = []
        for i in idx:
            rows.append(
                [
                    f"{int(starts[i])}..{int(starts[i] + widths[i] - 1)}",
                    *(f"{v:.4g}" for v in self.window_rows[i]),
                ]
            )
        return format_table(
            ["epochs", *self.window_fields],
            rows,
            title=f"Windowed series ({widths.size} windows retained)",
        )

    def to_csv(self) -> str:
        """Windowed operator series as CSV (one row per window)."""
        widths = self.window_widths
        starts = np.concatenate([[0], np.cumsum(widths)[:-1]])
        rows = [
            [int(starts[i]), int(widths[i]), *self.window_rows[i]]
            for i in range(widths.size)
        ]
        return series_to_csv(
            ["epoch_start", "width", *self.window_fields], rows
        )


def run_stream(
    env: _BatchedQueueSystemBase,
    policy: "UpperLevelPolicy",
    horizon: int,
    window: int,
    max_windows: int = DEFAULT_MAX_WINDOWS,
    seed=None,
    controller: "Controller | None" = None,
    policies: "dict[str, UpperLevelPolicy] | None" = None,
) -> StreamingMetrics:
    """Stream one environment for ``horizon`` epochs, folding metrics.

    The driver advances the environment epoch by epoch; nothing
    trajectory-shaped is materialized (windows exist only inside the
    metric fold, as reporting boundaries). Final summary statistics are
    bit-identical for any ``window`` (the fold order never changes);
    only the retained series resolution differs.

    Parameters
    ----------
    env : _BatchedQueueSystemBase
        Any batched environment (dense, graph, heterogeneous, delayed).
    policy : UpperLevelPolicy
        Upper-level policy queried every epoch (Algorithm 1). With a
        controller attached this is the *initial* policy; the
        controller may switch or re-weight it mid-stream.
    horizon : int
        Number of decision epochs to stream.
    window : int
        Operator-series window width in epochs.
    max_windows : int, optional
        Retention cap for the windowed series.
    seed : optional
        Forwarded to ``env.reset``.
    controller : Controller, optional
        Closed-loop hook (:mod:`repro.serving.control`): consulted
        every ``controller.decision_interval`` epochs with the delayed
        windowed observation surface, may keep/switch/re-weight the
        policy or autoscale the fleet. ``None`` keeps the exact
        uncontrolled loop; a
        :class:`~repro.serving.control.StaticController` drives the
        full hook machinery and is bit-identical to ``None`` (tested).
    policies : dict, optional
        Named policy suite the controller may switch among (requires
        ``controller``); the initial policy is always included under
        its own name.

    Returns
    -------
    StreamingMetrics
        The populated fold (summaries + windowed series).
    """
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1 epoch, got {horizon}")
    if window < 1:
        raise ValueError(f"window must be >= 1 epoch, got {window}")
    if max_windows < 1:
        raise ValueError(f"max_windows must be >= 1, got {max_windows}")
    if policies is not None and controller is None:
        raise ValueError("policies requires a controller")
    env.reset(seed)
    metrics = StreamingMetrics(
        num_replicas=env.num_replicas,
        num_states=env.config.num_queue_states,
        service_rates=env.service_rates,
        delta_t=env.config.delta_t,
        window=window,
        max_windows=max_windows,
    )
    if controller is None:
        for _ in range(horizon):
            _, _, info = env.step_with_policy(policy)
            if info.get("chaos_rates_changed"):
                # A capacity event re-rated the fleet this epoch; the
                # new rates applied during the epoch's serve, so the
                # fold adopts them before consuming it.
                metrics.resize(env.service_rates)
            metrics.observe_epoch(
                env.queue_states, info["drops_total"], info["arrival_rates"]
            )
        return metrics
    loop = ControlLoop(env, metrics, controller, policy, policies)
    for _ in range(horizon):
        _, _, info = env.step_with_policy(loop.active_policy)
        states = env.queue_states
        if info.get("chaos_rates_changed"):
            metrics.resize(env.service_rates)
        metrics.observe_epoch(
            states, info["drops_total"], info["arrival_rates"]
        )
        loop.after_epoch(states, info)
    return metrics


def _run_stream_shard(
    request: StreamRequest, num_runs: int, seed_material
) -> np.ndarray:
    """Execute one replica chunk; returns the flat cacheable payload.

    Layout: per-replica summaries ``(num_runs × F)`` raveled, followed
    by the chunk's replica-averaged window rows ``(W × G)`` raveled —
    ``W`` is deterministic (:func:`repro.serving.metrics.window_layout`),
    so the payload reshapes without metadata. Module-level for pickling.
    """
    rng = np.random.default_rng(seed_material)
    env_kwargs = dict(request.env_kwargs)
    if request.sim_backend != "numpy":
        env_kwargs.setdefault("backend", request.sim_backend)
    env = request.resolved_env_cls()(
        request.config,
        num_replicas=num_runs,
        seed=rng,
        **env_kwargs,
    )
    metrics = run_stream(
        env,
        request.policy,
        request.horizon,
        request.window,
        max_windows=request.max_windows,
        seed=rng,
        controller=request.controller,
        policies=request.policies,
    )
    return np.concatenate(
        [metrics.summaries().ravel(), metrics.windows.rows().ravel()]
    )


def _shard_layout(request: StreamRequest) -> list[tuple[int, int]]:
    """``(offset, num_runs)`` per chunk — SweepExecutor's exact layout."""
    from repro.experiments.parallel import _chunk_sizes

    sizes = _chunk_sizes(request.num_replicas, request.max_batch_replicas)
    offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    return list(zip((int(o) for o in offsets), sizes))


def run_stream_request(
    request: StreamRequest,
    workers: int | None = None,
    store: "ExperimentStore | None" = None,
    context: ExecutionContext | None = None,
) -> StreamResult:
    """Execute one streaming request, sharded over replica chunks.

    Parameters
    ----------
    request : StreamRequest
        The stream to run (including its ``sim_backend`` and
        ``max_batch_replicas`` — those are request properties here
        because they shape the cacheable shard payloads).
    context : ExecutionContext, optional
        Execution knobs (worker count, shard store); the context's
        ``sim_backend``/``max_batch_replicas`` are ignored in favor of
        the request's.
    workers, store :
        Deprecated — pass ``context=ExecutionContext(...)`` instead.
        ``workers`` is the process count (``1`` stays in-process;
        never changes the merged result); ``store`` the
        content-addressed shard cache (chunks already streamed by a
        previous, possibly killed, run are merged from the store
        instead of simulated, bit-identically).

    Returns
    -------
    StreamResult
        Per-replica summaries and the merged windowed series.
    """
    from repro.experiments.parallel import _spawn_seed_children
    from repro.store.keys import stream_shard_key

    ctx = resolve_execution_context(context, workers=workers, store=store)
    workers = ctx.workers
    store = ctx.store
    layout = _shard_layout(request)
    children = _spawn_seed_children(request.seed, len(layout))
    widths = request.window_widths()
    n_sum = len(SUMMARY_FIELDS)
    n_win = len(WINDOW_FIELDS)
    flat_len = {
        runs: runs * n_sum + widths.size * n_win for _, runs in layout
    }

    summaries = np.empty((request.num_replicas, n_sum))
    window_acc = np.zeros((widths.size, n_win))
    pending: list[tuple[int, int, Any, str | None]] = []
    for (offset, runs), child in zip(layout, children):
        key = None
        if store is not None:
            key = stream_shard_key(request, runs, child)
            cached = store.get_shard(key, expected_runs=flat_len[runs])
            if cached is not None:
                _merge_stream_shard(
                    summaries, window_acc, offset, runs, widths.size, cached
                )
                continue
        pending.append((offset, runs, child, key))

    def finish(offset, runs, key, payload):
        _merge_stream_shard(
            summaries, window_acc, offset, runs, widths.size, payload
        )
        if store is not None and key is not None:
            store.put_shard(
                key,
                payload,
                meta={"policy": request.policy.name, "offset": offset},
            )

    if workers == 1 or len(pending) <= 1:
        for offset, runs, child, key in pending:
            finish(offset, runs, key, _run_stream_shard(request, runs, child))
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending))
        ) as pool:
            futures = {
                pool.submit(_run_stream_shard, request, runs, child): (
                    offset,
                    runs,
                    key,
                )
                for offset, runs, child, key in pending
            }
            try:
                for future in as_completed(futures):
                    offset, runs, key = futures[future]
                    finish(offset, runs, key, future.result())
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
    return StreamResult(
        policy_name=request.policy.name,
        config=request.config,
        horizon=request.horizon,
        window=request.window,
        summaries=summaries,
        window_widths=widths,
        window_rows=window_acc / request.num_replicas,
        workers=int(workers),
        controller_name=(
            request.controller.name if request.controller else None
        ),
    )


def _merge_stream_shard(
    summaries: np.ndarray,
    window_acc: np.ndarray,
    offset: int,
    runs: int,
    num_windows: int,
    payload: np.ndarray,
) -> None:
    """Fold one shard's flat payload into the merged accumulators."""
    n_sum = len(SUMMARY_FIELDS)
    n_win = len(WINDOW_FIELDS)
    expected = runs * n_sum + num_windows * n_win
    if payload.shape != (expected,):
        raise RuntimeError(
            f"stream shard payload has shape {payload.shape}, "
            f"expected ({expected},)"
        )
    summaries[offset : offset + runs] = payload[: runs * n_sum].reshape(
        runs, n_sum
    )
    window_acc += runs * payload[runs * n_sum :].reshape(num_windows, n_win)


def run_stream_scenario(
    name: str,
    horizon: int,
    window: int | None = None,
    delta_t: float | None = None,
    num_queues: int | None = None,
    num_replicas: int = 4,
    policy: str | None = None,
    workers: int | None = None,
    seed: int = 0,
    store: "ExperimentStore | None" = None,
    max_windows: int = DEFAULT_MAX_WINDOWS,
    sim_backend: str | None = None,
    controller: str | None = None,
    context: ExecutionContext | None = None,
    chaos: "DegradationSchedule | None" = None,
) -> StreamResult:
    """Stream one registered scenario at one delay.

    Parameters
    ----------
    name : str
        Registered scenario name
        (:func:`repro.scenarios.registry.available_scenarios`).
    horizon : int
        Decision epochs to stream (arbitrarily long; memory is flat).
    window : int, optional
        Operator-series window in epochs; defaults to
        ``max(1, horizon // 64)``.
    delta_t : float, optional
        Broadcast period; defaults to the scenario grid's first entry.
    num_queues : int, optional
        Override ``M`` (``N`` follows the scenario's client rule).
    num_replicas : int, optional
        Lock-step replica count ``E``.
    policy : str, optional
        Policy name within the scenario's suite; defaults to the
        suite's first policy. With a controller this is the stream's
        *initial* policy.
    controller : str, optional
        Controller name from the scenario's registered controller
        suite (``spec.build_controllers``); ``None`` streams
        uncontrolled. The controller may switch among the scenario's
        whole policy suite.
    chaos : DegradationSchedule, optional
        Degradation schedule (:mod:`repro.queueing.chaos`) injected
        into the stream's environment, replacing any schedule the
        scenario itself embeds. Enters the streaming shard keys through
        the environment kwargs; validated against the scenario's
        environment before the stream starts (:class:`ValueError` on
        mismatch — e.g. link events on a non-graph scenario).
    seed :
        As in :func:`run_stream_request`.
    context : ExecutionContext, optional
        Execution knobs (workers, store; a context ``sim_backend``
        other than ``"numpy"`` is forwarded to the request).
    workers, store, sim_backend :
        Deprecated — pass ``context=ExecutionContext(...)`` instead.

    Raises
    ------
    KeyError
        Unknown scenario (message lists the catalogue), unknown policy
        name (message lists the suite), or unknown controller name
        (message lists the scenario's controllers).
    """
    from repro.scenarios.registry import get_scenario

    ctx = resolve_execution_context(
        context, workers=workers, store=store, sim_backend=sim_backend
    )
    spec = get_scenario(name)
    dt = float(delta_t) if delta_t is not None else spec.delta_ts[0]
    config = spec.config_for(dt, num_queues=num_queues)
    suite = spec.build_policies(config)
    if policy is None:
        policy_name = next(iter(suite))
    elif policy in suite:
        policy_name = policy
    else:
        raise KeyError(
            f"scenario {name!r} has no policy {policy!r}; "
            f"available: {', '.join(suite)}"
        )
    hook = None
    if controller is not None:
        controllers = (
            spec.build_controllers(config, suite)
            if spec.build_controllers is not None
            else {}
        )
        if controller not in controllers:
            raise KeyError(
                f"scenario {name!r} has no controller {controller!r}; "
                f"available: {', '.join(controllers) or '<none>'}"
            )
        hook = controllers[controller]
    env_kwargs = spec.env_kwargs_for(config)
    if chaos is not None:
        chaos.validate_for(
            num_queues=config.num_queues,
            supports_topology="topology" in env_kwargs,
        )
        env_kwargs = {**env_kwargs, "chaos": chaos}
    request = StreamRequest(
        config=config,
        policy=suite[policy_name],
        horizon=int(horizon),
        window=int(window) if window is not None else max(1, horizon // 64),
        num_replicas=int(num_replicas),
        seed=seed,
        env_cls=spec.env_cls,
        env_kwargs=env_kwargs,
        max_batch_replicas=ctx.resolved_max_batch_replicas(
            spec.max_batch_replicas
        ),
        max_windows=max_windows,
        sim_backend=ctx.sim_backend,
        controller=hook,
        policies=dict(suite) if hook is not None else None,
    )
    result = run_stream_request(request, context=ctx)
    result.scenario = name
    return result
