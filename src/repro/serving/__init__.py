"""Streaming serving subsystem: long-horizon runs with O(1)-memory metrics.

The figure sweeps materialize per-epoch drop trajectories — fine for
the paper's 50-500-epoch evaluation episodes, linear-memory death for
the production-style horizons the ROADMAP targets. This package runs
the existing batched environments (dense, graph, heterogeneous,
delayed) over arbitrarily long, non-stationary horizons in fixed-size
time windows, folding per-packet outcomes into online accumulators
instead of trajectories:

* :mod:`repro.serving.metrics` — P²-quantile sketches, exact streaming
  quantiles for the discrete queue-length distribution, windowed
  drop-rate/throughput series with bounded coarsening.
* :mod:`repro.serving.engine` — the chunked streaming driver, replica
  sharding through the same seed discipline as
  :class:`repro.experiments.parallel.SweepExecutor`, experiment-store
  caching of streaming shards, and the scenario entry point behind the
  ``stream`` CLI subcommand.
* :mod:`repro.serving.control` — the closed-loop controller hook: a
  :class:`~repro.serving.control.Controller` observes the same delayed
  windowed surface a dispatcher sees and may switch/blend the active
  policy or resize the fleet mid-stream (mass-conserving handoff).
* :mod:`repro.serving.regret` — regret-vs-oracle evaluation of
  controlled streams on the ``adaptive-*`` scenarios.

See ``docs/serving.md`` for the operator's guide (metric definitions,
delay models, memory model, closed-loop control).
"""

from repro.serving.metrics import (
    P2Quantile,
    StreamingMetrics,
    WindowedSeries,
    window_layout,
)
from repro.serving.engine import (
    StreamRequest,
    StreamResult,
    run_stream,
    run_stream_request,
    run_stream_scenario,
)
from repro.serving.control import (
    ControlAction,
    ControlDecision,
    Controller,
    ControlObservation,
    LoadBand,
    OracleController,
    RateEstimatingController,
    ScriptedController,
    StaticController,
    resize_queue_fleet,
)
from repro.serving.regret import RegretReport, evaluate_regret

__all__ = [
    "P2Quantile",
    "StreamingMetrics",
    "WindowedSeries",
    "window_layout",
    "StreamRequest",
    "StreamResult",
    "run_stream",
    "run_stream_request",
    "run_stream_scenario",
    "Controller",
    "ControlAction",
    "ControlDecision",
    "ControlObservation",
    "LoadBand",
    "StaticController",
    "RateEstimatingController",
    "OracleController",
    "ScriptedController",
    "resize_queue_fleet",
    "RegretReport",
    "evaluate_regret",
]
