"""Streaming serving subsystem: long-horizon runs with O(1)-memory metrics.

The figure sweeps materialize per-epoch drop trajectories — fine for
the paper's 50-500-epoch evaluation episodes, linear-memory death for
the production-style horizons the ROADMAP targets. This package runs
the existing batched environments (dense, graph, heterogeneous,
delayed) over arbitrarily long, non-stationary horizons in fixed-size
time windows, folding per-packet outcomes into online accumulators
instead of trajectories:

* :mod:`repro.serving.metrics` — P²-quantile sketches, exact streaming
  quantiles for the discrete queue-length distribution, windowed
  drop-rate/throughput series with bounded coarsening.
* :mod:`repro.serving.engine` — the chunked streaming driver, replica
  sharding through the same seed discipline as
  :class:`repro.experiments.parallel.SweepExecutor`, experiment-store
  caching of streaming shards, and the scenario entry point behind the
  ``stream`` CLI subcommand.

See ``docs/serving.md`` for the operator's guide (metric definitions,
delay models, memory model).
"""

from repro.serving.metrics import (
    P2Quantile,
    StreamingMetrics,
    WindowedSeries,
    window_layout,
)
from repro.serving.engine import (
    StreamRequest,
    StreamResult,
    run_stream,
    run_stream_request,
    run_stream_scenario,
)

__all__ = [
    "P2Quantile",
    "StreamingMetrics",
    "WindowedSeries",
    "window_layout",
    "StreamRequest",
    "StreamResult",
    "run_stream",
    "run_stream_request",
    "run_stream_scenario",
]
