"""Regret-vs-oracle evaluation for closed-loop controlled streams.

*Regret* here is the excess cumulative drop count over the
:class:`~repro.serving.control.OracleController` baseline, under
matched seeds:

``regret(c) = drops(c) − drops(oracle)``

where ``drops`` is the replica-mean ``total_drops_per_queue`` summary
of one streamed horizon. The oracle reads the true workload profile
and switches bands instantly, so it lower-bounds what any selector
over the same band table can achieve; a learning controller's quality
is how little of the *static* policies' regret it leaves on the table.
Matched seeds give every contestant the same chunk layout and
``SeedSequence`` children (the deterministic arrival profile is shared
exactly; queue-side draws stay coupled until the first policy
divergence), which removes most of the Monte-Carlo variance from the
regret differences.

Only the O(1)-memory streaming engine makes this evaluation reachable
at long horizons — nothing trajectory-shaped is ever materialized.

``benchmarks/bench_adaptive_control.py`` runs this on both
``adaptive-*`` scenarios and asserts the acceptance band
(estimator regret ≤ 50% of the best static policy's regret).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.execution import ExecutionContext
from repro.serving.engine import run_stream_scenario
from repro.utils.tables import format_table

if TYPE_CHECKING:
    from repro.config import SystemConfig

__all__ = ["RegretReport", "evaluate_regret"]

#: Summary field the regret is computed over.
DROPS_FIELD = "total_drops_per_queue"


@dataclass
class RegretReport:
    """Drops and regrets of every contestant on one scenario stream."""

    scenario: str
    horizon: int
    delta_t: float
    num_queues: int
    num_replicas: int
    seed: int
    oracle_drops: float
    controlled_drops: dict[str, float] = field(default_factory=dict)
    static_drops: dict[str, float] = field(default_factory=dict)

    def regret(self, controller: str) -> float:
        """Excess drops of one controller over the oracle."""
        return self.controlled_drops[controller] - self.oracle_drops

    def static_regret(self, policy: str) -> float:
        """Excess drops of one fixed policy over the oracle."""
        return self.static_drops[policy] - self.oracle_drops

    @property
    def best_static_regret(self) -> float:
        """The strongest fixed policy's regret (the bar to beat)."""
        if not self.static_drops:
            raise ValueError("no static policies evaluated")
        return min(self.static_drops.values()) - self.oracle_drops

    def format_table(self) -> str:
        rows = [["oracle (controller)", f"{self.oracle_drops:.4g}", "0"]]
        for name, drops in sorted(self.controlled_drops.items()):
            rows.append(
                [
                    f"{name} (controller)",
                    f"{drops:.4g}",
                    f"{drops - self.oracle_drops:.4g}",
                ]
            )
        for name, drops in sorted(self.static_drops.items()):
            rows.append(
                [
                    f"{name} (static)",
                    f"{drops:.4g}",
                    f"{drops - self.oracle_drops:.4g}",
                ]
            )
        title = (
            f"Regret vs oracle — {self.scenario}, "
            f"horizon={self.horizon} epochs, Δt={self.delta_t:g}, "
            f"M={self.num_queues}, E={self.num_replicas}, seed={self.seed}"
        )
        return format_table(
            ["contestant", "drops/queue", "regret"], rows, title=title
        )


def evaluate_regret(
    name: str,
    horizon: int,
    num_replicas: int = 8,
    num_queues: int | None = None,
    delta_t: float | None = None,
    seed: int = 0,
    context: ExecutionContext | None = None,
) -> RegretReport:
    """Stream every controller and every static policy of one scenario
    under matched seeds and report drops/regret.

    The scenario must register a controller suite containing
    ``"oracle"`` (:func:`repro.scenarios.registry.ScenarioSpec`'s
    ``build_controllers``); every *other* registered controller is
    evaluated against it, as is every policy of the scenario's static
    suite. Controlled streams start from the suite's first policy.

    Parameters mirror :func:`repro.serving.engine.run_stream_scenario`;
    ``context`` carries the execution knobs (workers, store — cached
    shards make re-running a report incremental).
    """
    from repro.scenarios.registry import get_scenario

    spec = get_scenario(name)
    if spec.build_controllers is None:
        raise ValueError(
            f"scenario {name!r} registers no controllers; regret "
            "evaluation needs a controller suite with an 'oracle'"
        )
    ctx = context if context is not None else ExecutionContext()
    dt = float(delta_t) if delta_t is not None else spec.delta_ts[0]
    config = spec.config_for(dt, num_queues=num_queues)
    controllers = spec.build_controllers(config, spec.build_policies(config))
    if "oracle" not in controllers:
        raise ValueError(
            f"scenario {name!r} has no 'oracle' controller; "
            f"available: {', '.join(controllers)}"
        )

    def drops(policy=None, controller=None) -> float:
        result = run_stream_scenario(
            name,
            horizon,
            delta_t=dt,
            num_queues=num_queues,
            num_replicas=num_replicas,
            policy=policy,
            seed=seed,
            controller=controller,
            context=ctx,
        )
        return result.summary_mean(DROPS_FIELD)

    report = RegretReport(
        scenario=name,
        horizon=int(horizon),
        delta_t=dt,
        num_queues=config.num_queues,
        num_replicas=int(num_replicas),
        seed=int(seed),
        oracle_drops=drops(controller="oracle"),
    )
    for controller in controllers:
        if controller == "oracle":
            continue
        report.controlled_drops[controller] = drops(controller=controller)
    for policy in spec.build_policies(config):
        report.static_drops[policy] = drops(policy=policy)
    return report
