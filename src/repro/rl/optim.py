"""First-order optimizers over named parameter dictionaries.

The networks in :mod:`repro.rl.nn` expose their parameters as
``dict[str, np.ndarray]``; :class:`Adam` keeps per-key first/second
moments and produces *update dictionaries* that the networks apply in
place. A global-norm gradient clipper matching RLlib's ``grad_clip``
semantics is included.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["Adam", "Sgd", "global_norm", "clip_grads_by_global_norm"]


def global_norm(grads: dict[str, np.ndarray]) -> float:
    """L2 norm of the concatenation of all gradient arrays."""
    total = 0.0
    for g in grads.values():
        total += float(np.square(g).sum())
    return math.sqrt(total)


def clip_grads_by_global_norm(
    grads: dict[str, np.ndarray], max_norm: float
) -> tuple[dict[str, np.ndarray], float]:
    """Scale all gradients so their global norm is at most ``max_norm``.

    Returns the (possibly) clipped gradients and the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be > 0, got {max_norm}")
    norm = global_norm(grads)
    if norm <= max_norm or norm == 0.0:
        return grads, norm
    scale = max_norm / norm
    return {k: g * scale for k, g in grads.items()}, norm


class Adam:
    """Adam (Kingma & Ba 2015) over a parameter dictionary.

    ``step(grads)`` returns the update to *add* to each parameter
    (i.e. ``-lr * m_hat / (sqrt(v_hat) + eps)``), leaving application to
    the owning network. Unknown gradient keys raise immediately — a
    misspelled key silently not updating a layer is a classic RL bug.
    """

    def __init__(
        self,
        param_shapes: dict[str, tuple[int, ...]],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-7,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must lie in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = {k: np.zeros(shape) for k, shape in param_shapes.items()}
        self._v = {k: np.zeros(shape) for k, shape in param_shapes.items()}
        self._t = 0

    @classmethod
    def for_params(
        cls, params: dict[str, np.ndarray], learning_rate: float, **kwargs
    ) -> "Adam":
        return cls(
            {k: v.shape for k, v in params.items()},
            learning_rate=learning_rate,
            **kwargs,
        )

    def step(self, grads: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        unknown = set(grads) - set(self._m)
        if unknown:
            raise KeyError(f"gradients for unknown parameters: {sorted(unknown)}")
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        updates: dict[str, np.ndarray] = {}
        for key, grad in grads.items():
            if grad.shape != self._m[key].shape:
                raise ValueError(
                    f"gradient shape {grad.shape} != parameter shape "
                    f"{self._m[key].shape} for {key!r}"
                )
            m = self._m[key]
            v = self._v[key]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(grad)
            m_hat = m / bias1
            v_hat = v / bias2
            updates[key] = -self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        return updates

    @property
    def step_count(self) -> int:
        return self._t


class Sgd:
    """Plain SGD with optional momentum (used in optimizer unit tests)."""

    def __init__(
        self,
        param_shapes: dict[str, tuple[int, ...]],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must lie in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity = {k: np.zeros(shape) for k, shape in param_shapes.items()}

    def step(self, grads: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        updates: dict[str, np.ndarray] = {}
        for key, grad in grads.items():
            if key not in self._velocity:
                raise KeyError(f"gradient for unknown parameter {key!r}")
            vel = self._velocity[key]
            vel *= self.momentum
            vel -= self.learning_rate * grad
            updates[key] = vel.copy()
        return updates
