"""Generalized advantage estimation (Schulman et al. 2016).

The paper uses GAE with ``λ_RL = 1`` (Table 2), which reduces to the
plain discounted-return advantage ``A_t = G_t - V(s_t)``; we implement
the general recursion so the ablation benches can vary ``λ``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["compute_gae", "discounted_returns"]


def compute_gae(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    bootstrap_value: float,
    gamma: float,
    lam: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Advantages and value targets for one rollout segment.

    Parameters
    ----------
    rewards, values, dones:
        Per-step arrays of equal length ``T``. ``dones[t]`` is true when
        the episode *terminated* at step ``t`` (no bootstrapping across).
    bootstrap_value:
        ``V(s_T)`` of the state following the last step; used only when
        the segment was truncated mid-episode (``dones[-1]`` false).

    Returns
    -------
    ``(advantages, value_targets)`` with
    ``value_targets = advantages + values`` (the λ-return), the
    regression target RLlib uses for the value function.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    dones = np.asarray(dones, dtype=bool)
    if not (rewards.shape == values.shape == dones.shape) or rewards.ndim != 1:
        raise ValueError("rewards, values, dones must be equal-length 1-D arrays")
    if not 0.0 < gamma < 1.0:
        raise ValueError(f"gamma must be in (0,1), got {gamma}")
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"lam must be in [0,1], got {lam}")
    t_len = rewards.size
    advantages = np.zeros(t_len)
    last_gae = 0.0
    next_value = float(bootstrap_value)
    for t in range(t_len - 1, -1, -1):
        non_terminal = 0.0 if dones[t] else 1.0
        delta = rewards[t] + gamma * non_terminal * next_value - values[t]
        last_gae = delta + gamma * lam * non_terminal * last_gae
        advantages[t] = last_gae
        next_value = values[t]
    return advantages, advantages + values


def discounted_returns(
    rewards: np.ndarray,
    dones: np.ndarray,
    bootstrap_value: float,
    gamma: float,
) -> np.ndarray:
    """Per-step discounted returns (bootstrapped at truncation).

    Equals the GAE value target when ``λ = 1`` — the identity is covered
    by a property test.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    dones = np.asarray(dones, dtype=bool)
    returns = np.zeros_like(rewards)
    running = float(bootstrap_value)
    for t in range(rewards.size - 1, -1, -1):
        if dones[t]:
            running = 0.0
        running = rewards[t] + gamma * running
        returns[t] = running
    return returns
