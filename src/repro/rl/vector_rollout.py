"""Vectorized experience collection from ``E`` MFC environments.

:class:`VectorRolloutCollector` steps ``E`` independent gym-like
environments in lock-step: per collected time slice there is exactly one
policy forward pass and one value forward pass over the stacked
``(E, obs_dim)`` observations — ``E×`` fewer Python-level network calls
than looping :class:`repro.rl.rollout.RolloutCollector` over the same
environments, which is where single-environment PPO collection spends
most of its wall-clock (the MFC MDP step itself is a cheap tabulated
propagator lookup).

Semantics mirror the scalar collector: episodes keep running across
batch boundaries, time-limit ends (``info["truncated"]``) are
bootstrapped with the value of the final state, and completed-episode
undiscounted returns are recorded for the Figure 3 training curve. The
returned :class:`repro.rl.rollout.RolloutBatch` is flattened time-major
(slice ``t`` of all environments precedes slice ``t+1``), so the PPO
update consumes it unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.rl.distributions import DiagGaussian
from repro.rl.gae import compute_gae
from repro.rl.nn import GaussianPolicyNetwork, ValueNetwork
from repro.rl.rollout import RolloutBatch
from repro.utils.rng import as_generator

__all__ = ["VectorRolloutCollector"]


class VectorRolloutCollector:
    """Collects fixed-size batches from ``E`` environments in lock-step.

    Parameters
    ----------
    envs:
        Environments, each with ``reset(rng) -> obs`` and
        ``step_raw(action) -> (obs, reward, done, info)``. All must share
        observation/action geometry.
    policy, value:
        The actor and critic networks being trained.
    gamma, gae_lambda:
        Discounting parameters for advantage estimation.
    """

    def __init__(
        self,
        envs,
        policy: GaussianPolicyNetwork,
        value: ValueNetwork,
        gamma: float,
        gae_lambda: float,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.envs = list(envs)
        if not self.envs:
            raise ValueError("need at least one environment")
        self.policy = policy
        self.value = value
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self._rng = as_generator(seed)
        self._obs: np.ndarray | None = None  # (E, obs_dim) stacked
        self._episode_returns_running = np.zeros(len(self.envs))
        self.total_env_steps = 0

    @property
    def num_envs(self) -> int:
        return len(self.envs)

    def collect(self, batch_size: int) -> RolloutBatch:
        """Roll the policy for ``batch_size`` total environment steps.

        ``batch_size`` must be divisible by the number of environments;
        each environment contributes ``batch_size / E`` steps. Truncated
        episode ends are bootstrapped exactly as in the scalar collector:
        the GAE pass sees ``r + γ·V(s_final)`` at the truncated step.
        """
        e = self.num_envs
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_size % e != 0:
            raise ValueError(
                f"batch_size {batch_size} must be divisible by num_envs {e}"
            )
        steps = batch_size // e
        if self._obs is None:
            self._obs = np.stack(
                [np.asarray(env.reset(self._rng), dtype=np.float64) for env in self.envs]
            )
            self._episode_returns_running[:] = 0.0

        obs_dim = self.policy.obs_dim
        act_dim = self.policy.action_dim
        obs_buf = np.empty((steps, e, obs_dim))
        act_buf = np.empty((steps, e, act_dim))
        logp_buf = np.empty((steps, e))
        rew_buf = np.empty((steps, e))
        gae_rew_buf = np.empty((steps, e))
        done_buf = np.zeros((steps, e), dtype=bool)
        val_buf = np.empty((steps, e))
        episode_returns: list[float] = []

        for t in range(steps):
            obs = self._obs
            mu, log_std, _ = self.policy.forward(obs)
            actions = DiagGaussian.sample(mu, log_std, self._rng)
            logps = DiagGaussian.log_prob(actions, mu, log_std)
            values = self.value(obs)

            obs_buf[t] = obs
            act_buf[t] = actions
            logp_buf[t] = logps
            val_buf[t] = values

            next_obs = np.empty_like(obs)
            bootstrap_envs: list[int] = []
            bootstrap_obs: list[np.ndarray] = []
            for i, env in enumerate(self.envs):
                step_obs, reward, done, info = env.step_raw(actions[i])
                rew_buf[t, i] = reward
                gae_rew_buf[t, i] = reward
                done_buf[t, i] = done
                self._episode_returns_running[i] += reward
                if done:
                    if info.get("truncated", True):
                        bootstrap_envs.append(i)
                        bootstrap_obs.append(
                            np.asarray(step_obs, dtype=np.float64)
                        )
                    episode_returns.append(
                        float(self._episode_returns_running[i])
                    )
                    self._episode_returns_running[i] = 0.0
                    next_obs[i] = np.asarray(
                        env.reset(self._rng), dtype=np.float64
                    )
                else:
                    next_obs[i] = np.asarray(step_obs, dtype=np.float64)
            if bootstrap_envs:
                # One batched critic call for all truncated episode ends.
                final_values = self.value(np.stack(bootstrap_obs))
                gae_rew_buf[t, bootstrap_envs] += self.gamma * final_values
            self._obs = next_obs
            self.total_env_steps += e

        # Bootstrap the still-running tails with one batched critic call.
        tail_values = self.value(self._obs)
        advantages = np.empty((steps, e))
        targets = np.empty((steps, e))
        for i in range(e):
            bootstrap = 0.0 if done_buf[-1, i] else float(tail_values[i])
            advantages[:, i], targets[:, i] = compute_gae(
                gae_rew_buf[:, i],
                val_buf[:, i],
                done_buf[:, i],
                bootstrap,
                self.gamma,
                self.gae_lambda,
            )
        return RolloutBatch(
            obs=obs_buf.reshape(batch_size, obs_dim),
            actions=act_buf.reshape(batch_size, act_dim),
            log_probs=logp_buf.reshape(batch_size),
            rewards=rew_buf.reshape(batch_size),
            dones=done_buf.reshape(batch_size),
            values=val_buf.reshape(batch_size),
            advantages=advantages.reshape(batch_size),
            value_targets=targets.reshape(batch_size),
            episode_returns=episode_returns,
        )
