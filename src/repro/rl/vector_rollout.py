"""Vectorized experience collection from ``E`` MFC environments.

:class:`VectorRolloutCollector` steps ``E`` independent gym-like
environments in lock-step: per collected time slice there is exactly one
policy forward pass and one value forward pass over the stacked
``(E, obs_dim)`` observations — ``E×`` fewer Python-level network calls
than looping :class:`repro.rl.rollout.RolloutCollector` over the same
environments, which is where single-environment PPO collection spends
most of its wall-clock (the MFC MDP step itself is a cheap tabulated
propagator lookup).

Semantics mirror the scalar collector: episodes keep running across
batch boundaries, time-limit ends (``info["truncated"]``) are
bootstrapped with the value of the final state, and completed-episode
undiscounted returns are recorded for the Figure 3 training curve. The
returned :class:`repro.rl.rollout.RolloutBatch` is flattened time-major
(slice ``t`` of all environments precedes slice ``t+1``), so the PPO
update consumes it unchanged.

Two sampling modes are supported:

* **Shared stream** (default): one generator drives action noise and
  resets for the whole fleet, and network forwards are batched over the
  stacked observations. Fastest, and bit-identical to what PR 4 shipped,
  but an environment's trajectory depends on the fleet it runs in.
* **Independent streams** (``independent_streams=True``): environment
  ``i`` owns the ``stream_offset + i``-th generator spawned from the
  root seed, and both its action noise and its network forwards are
  per-environment (batch size 1). An environment's trajectory is then a
  pure function of ``(networks, seed, stream_offset + i)`` — a fleet's
  batch equals the column-interleave of any chunking of that fleet
  across collectors, which is what lets a training campaign shard
  collection over workers without changing the resulting PPO update.
  The batch-1 forwards are not an oversight: BLAS matrix products here
  are *not* row-stable across batch sizes (``(X @ W)[:m]`` need not
  bitwise equal ``X[:m] @ W``), so batched forwards would break exact
  chunk invariance.
"""

from __future__ import annotations

import numpy as np

from repro.rl.distributions import DiagGaussian
from repro.rl.gae import compute_gae
from repro.rl.nn import GaussianPolicyNetwork, ValueNetwork
from repro.rl.rollout import RolloutBatch
from repro.utils.rng import as_generator, spawn_generators

__all__ = ["VectorRolloutCollector"]


class VectorRolloutCollector:
    """Collects fixed-size batches from ``E`` environments in lock-step.

    Parameters
    ----------
    envs:
        Environments, each with ``reset(rng) -> obs`` and
        ``step_raw(action) -> (obs, reward, done, info)``. All must share
        observation/action geometry.
    policy, value:
        The actor and critic networks being trained.
    gamma, gae_lambda:
        Discounting parameters for advantage estimation.
    seed:
        Root seed. With ``independent_streams`` pass an ``int`` (or a
        fresh ``SeedSequence``-backed generator) so that re-creating a
        collector for a chunk reproduces the same per-environment
        streams.
    independent_streams:
        Give environment ``i`` its own spawned generator (child
        ``stream_offset + i`` of the root seed) and use per-environment
        batch-1 network forwards, making each column of the batch
        independent of the fleet size. See the module docstring.
    stream_offset:
        Global index of the first environment of this collector within
        the (conceptual) full fleet. Only meaningful with
        ``independent_streams``; a collector over chunk ``[k, k+m)`` of
        a fleet reproduces that fleet's columns when given
        ``stream_offset=k``.
    """

    def __init__(
        self,
        envs,
        policy: GaussianPolicyNetwork,
        value: ValueNetwork,
        gamma: float,
        gae_lambda: float,
        seed: int | np.random.Generator | None = None,
        independent_streams: bool = False,
        stream_offset: int = 0,
    ) -> None:
        self.envs = list(envs)
        if not self.envs:
            raise ValueError("need at least one environment")
        if stream_offset < 0:
            raise ValueError(f"stream_offset must be >= 0, got {stream_offset}")
        if stream_offset and not independent_streams:
            raise ValueError("stream_offset requires independent_streams=True")
        self.policy = policy
        self.value = value
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        if independent_streams:
            # Child i of the root seed belongs to *global* environment i,
            # so a chunked collector reproduces the fleet's streams.
            self._env_rngs = spawn_generators(
                seed, stream_offset + len(self.envs)
            )[stream_offset:]
            self._rng = None
        else:
            self._env_rngs = None
            self._rng = as_generator(seed)
        self._obs: np.ndarray | None = None  # (E, obs_dim) stacked
        self._episode_returns_running = np.zeros(len(self.envs))
        self.total_env_steps = 0

    @property
    def independent_streams(self) -> bool:
        return self._env_rngs is not None

    @property
    def num_envs(self) -> int:
        return len(self.envs)

    def _reset_rng(self, i: int) -> np.random.Generator:
        """The generator environment ``i`` resets (and then steps) with."""
        if self._env_rngs is not None:
            return self._env_rngs[i]
        return self._rng

    def collect(self, batch_size: int) -> RolloutBatch:
        """Roll the policy for ``batch_size`` total environment steps.

        ``batch_size`` must be divisible by the number of environments;
        each environment contributes ``batch_size / E`` steps. Truncated
        episode ends are bootstrapped exactly as in the scalar collector:
        the GAE pass sees ``r + γ·V(s_final)`` at the truncated step.
        """
        e = self.num_envs
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_size % e != 0:
            raise ValueError(
                f"batch_size {batch_size} must be divisible by num_envs {e}"
            )
        steps = batch_size // e
        if self._obs is None:
            self._obs = np.stack(
                [
                    np.asarray(env.reset(self._reset_rng(i)), dtype=np.float64)
                    for i, env in enumerate(self.envs)
                ]
            )
            self._episode_returns_running[:] = 0.0

        obs_dim = self.policy.obs_dim
        act_dim = self.policy.action_dim
        obs_buf = np.empty((steps, e, obs_dim))
        act_buf = np.empty((steps, e, act_dim))
        logp_buf = np.empty((steps, e))
        rew_buf = np.empty((steps, e))
        gae_rew_buf = np.empty((steps, e))
        done_buf = np.zeros((steps, e), dtype=bool)
        val_buf = np.empty((steps, e))
        episode_returns: list[float] = []

        for t in range(steps):
            obs = self._obs
            if self._env_rngs is not None:
                # Per-environment batch-1 forwards: keeps every column a
                # pure function of (networks, seed, global env index).
                actions = np.empty((e, act_dim))
                logps = np.empty(e)
                values = np.empty(e)
                for i in range(e):
                    row = obs[i : i + 1]
                    mu_i, log_std_i, _ = self.policy.forward(row)
                    action_i = DiagGaussian.sample(
                        mu_i, log_std_i, self._env_rngs[i]
                    )
                    actions[i] = action_i[0]
                    logps[i] = DiagGaussian.log_prob(
                        action_i, mu_i, log_std_i
                    )[0]
                    values[i] = self.value(row)[0]
            else:
                mu, log_std, _ = self.policy.forward(obs)
                actions = DiagGaussian.sample(mu, log_std, self._rng)
                logps = DiagGaussian.log_prob(actions, mu, log_std)
                values = self.value(obs)

            obs_buf[t] = obs
            act_buf[t] = actions
            logp_buf[t] = logps
            val_buf[t] = values

            next_obs = np.empty_like(obs)
            bootstrap_envs: list[int] = []
            bootstrap_obs: list[np.ndarray] = []
            for i, env in enumerate(self.envs):
                step_obs, reward, done, info = env.step_raw(actions[i])
                rew_buf[t, i] = reward
                gae_rew_buf[t, i] = reward
                done_buf[t, i] = done
                self._episode_returns_running[i] += reward
                if done:
                    if info.get("truncated", True):
                        bootstrap_envs.append(i)
                        bootstrap_obs.append(
                            np.asarray(step_obs, dtype=np.float64)
                        )
                    episode_returns.append(
                        float(self._episode_returns_running[i])
                    )
                    self._episode_returns_running[i] = 0.0
                    next_obs[i] = np.asarray(
                        env.reset(self._reset_rng(i)), dtype=np.float64
                    )
                else:
                    next_obs[i] = np.asarray(step_obs, dtype=np.float64)
            if bootstrap_envs:
                if self._env_rngs is not None:
                    # Batch-1 calls: batched BLAS is not row-stable.
                    final_values = np.array(
                        [float(self.value(o[None, :])[0]) for o in bootstrap_obs]
                    )
                else:
                    # One batched critic call for all truncated episode ends.
                    final_values = self.value(np.stack(bootstrap_obs))
                gae_rew_buf[t, bootstrap_envs] += self.gamma * final_values
            self._obs = next_obs
            self.total_env_steps += e

        # Bootstrap the still-running tails (one batched critic call in
        # shared-stream mode, batch-1 calls in independent-streams mode).
        if self._env_rngs is not None:
            tail_values = np.array(
                [float(self.value(self._obs[i : i + 1])[0]) for i in range(e)]
            )
        else:
            tail_values = self.value(self._obs)
        advantages = np.empty((steps, e))
        targets = np.empty((steps, e))
        for i in range(e):
            bootstrap = 0.0 if done_buf[-1, i] else float(tail_values[i])
            advantages[:, i], targets[:, i] = compute_gae(
                gae_rew_buf[:, i],
                val_buf[:, i],
                done_buf[:, i],
                bootstrap,
                self.gamma,
                self.gae_lambda,
            )
        return RolloutBatch(
            obs=obs_buf.reshape(batch_size, obs_dim),
            actions=act_buf.reshape(batch_size, act_dim),
            log_probs=logp_buf.reshape(batch_size),
            rewards=rew_buf.reshape(batch_size),
            dones=done_buf.reshape(batch_size),
            values=val_buf.reshape(batch_size),
            advantages=advantages.reshape(batch_size),
            value_targets=targets.reshape(batch_size),
            episode_returns=episode_returns,
        )
