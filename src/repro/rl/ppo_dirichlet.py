"""PPO with a Dirichlet action head — the paper's negative ablation.

Section 4: "we have tried Dirichlet-parameterized upper-level policies
to directly output simplex-valued actions in order to eliminate the need
for manual normalization, [but] performance was significantly worse,
hence motivating our approach [Gaussian + normalization]".

This trainer reproduces that comparison: the network emits concentration
logits for ``S^d`` independent Dirichlet(d) blocks (one per sampled
state combination); sampled actions are already valid decision-rule
tables. Everything else — GAE, clipped surrogate with adaptive KL
penalty, clamped value loss, minibatch Adam — matches
:class:`repro.rl.ppo.PPOTrainer` so the two heads differ only in their
action distribution.
"""

from __future__ import annotations

import numpy as np

from repro.config import PPOConfig
from repro.rl.distributions import DirichletBlocks
from repro.rl.gae import compute_gae
from repro.rl.nn import MLP, ValueNetwork
from repro.rl.optim import Adam, clip_grads_by_global_norm
from repro.rl.ppo import TrainIterationStats, _explained_variance
from repro.utils.rng import as_generator

__all__ = ["DirichletPPOTrainer"]


class DirichletPPOTrainer:
    """PPO whose policy outputs per-block Dirichlet concentrations.

    The environment must expose ``observation_size``, ``action_size``
    (interpreted as ``num_blocks * block_size``), ``reset`` and
    ``step_raw``; ``block_size`` is the number of routing choices ``d``.
    """

    def __init__(
        self,
        env,
        block_size: int,
        config: PPOConfig | None = None,
        seed=None,
    ) -> None:
        self.config = config if config is not None else PPOConfig()
        self.env = env
        root = as_generator(seed if seed is not None else self.config.seed)
        init_rng = as_generator(int(root.integers(2**63)))
        self._rng = as_generator(int(root.integers(2**63)))
        self._shuffle_rng = as_generator(int(root.integers(2**63)))

        obs_dim = int(env.observation_size)
        act_dim = int(env.action_size)
        if act_dim % block_size != 0:
            raise ValueError(
                f"action_size {act_dim} not divisible by block_size {block_size}"
            )
        self.head = DirichletBlocks(act_dim // block_size, block_size)
        self.policy = MLP(
            obs_dim, self.config.hidden_sizes, act_dim, rng=init_rng, out_std=0.01
        )
        self.value = ValueNetwork(
            obs_dim, hidden_sizes=self.config.hidden_sizes, rng=init_rng
        )
        self.kl_coeff = self.config.kl_coeff
        self._policy_opt = Adam.for_params(
            self.policy.params, self.config.learning_rate
        )
        self._value_opt = Adam.for_params(
            self.value.params, self.config.learning_rate
        )
        self.iteration = 0
        self.total_env_steps = 0
        self._obs: np.ndarray | None = None
        self._episode_return = 0.0
        self._return_history: list[float] = []

    # ------------------------------------------------------------------
    def _collect(self, batch_size: int):
        if self._obs is None:
            self._obs = self.env.reset(self._rng)
            self._episode_return = 0.0
        obs_buf = np.empty((batch_size, self.policy.in_dim))
        act_buf = np.empty((batch_size, self.policy.out_dim))
        logp_buf = np.empty(batch_size)
        rew_buf = np.empty(batch_size)
        gae_rew = np.empty(batch_size)
        done_buf = np.zeros(batch_size, dtype=bool)
        val_buf = np.empty(batch_size)
        episode_returns: list[float] = []
        for t in range(batch_size):
            obs = np.asarray(self._obs, dtype=np.float64)
            logits = self.policy(obs[None, :])
            action = self.head.sample(logits, self._rng)
            logp = self.head.log_prob(action, logits)
            next_obs, reward, done, info = self.env.step_raw(action[0])
            obs_buf[t] = obs
            act_buf[t] = action[0]
            logp_buf[t] = logp[0]
            rew_buf[t] = reward
            gae_rew[t] = reward
            done_buf[t] = done
            val_buf[t] = self.value(obs[None, :])[0]
            self._episode_return += reward
            self.total_env_steps += 1
            if done:
                if info.get("truncated", True):
                    gae_rew[t] += self.config.gamma * float(
                        self.value(np.asarray(next_obs)[None, :])[0]
                    )
                episode_returns.append(self._episode_return)
                self._episode_return = 0.0
                self._obs = self.env.reset(self._rng)
            else:
                self._obs = next_obs
        bootstrap = (
            0.0
            if done_buf[-1]
            else float(self.value(np.asarray(self._obs)[None, :])[0])
        )
        adv, targets = compute_gae(
            gae_rew, val_buf, done_buf, bootstrap,
            self.config.gamma, self.config.gae_lambda,
        )
        return obs_buf, act_buf, logp_buf, adv, targets, episode_returns

    # ------------------------------------------------------------------
    def _policy_step(self, obs, actions, logp_old, advantages, logits_old):
        cfg = self.config
        n = obs.shape[0]
        logits, cache = self.policy.forward(obs)
        logp = self.head.log_prob(actions, logits)
        ratio = np.exp(np.clip(logp - logp_old, -30, 30))
        clipped_ratio = np.clip(ratio, 1.0 - cfg.clip_param, 1.0 + cfg.clip_param)
        unclipped = ratio * advantages
        clipped = clipped_ratio * advantages
        policy_loss = -float(np.minimum(unclipped, clipped).mean())
        kl = self.head.kl(logits_old, logits)
        kl_mean = float(kl.mean())
        clip_fraction = float((np.abs(ratio - 1.0) > cfg.clip_param).mean())

        active = unclipped <= clipped
        g_logp = np.where(active, ratio * advantages, 0.0) / n
        grad_logits = -g_logp[:, None] * self.head.log_prob_grad_logits(
            actions, logits
        )
        grad_logits += self.kl_coeff * self.head.kl_grad_logits_new(
            logits_old, logits
        ) / n
        grads = self.policy.backward(cache, grad_logits)
        grads, grad_norm = clip_grads_by_global_norm(grads, cfg.grad_clip)
        updates = self._policy_opt.step(grads)
        for key, delta in updates.items():
            self.policy.params[key] += delta
        entropy = float(self.head.entropy(logits).mean())
        return policy_loss, kl_mean, entropy, clip_fraction, grad_norm

    def _value_step(self, obs, targets):
        cfg = self.config
        n = obs.shape[0]
        values, cache = self.value.forward(obs)
        sq_err = (values - targets) ** 2
        value_loss = float(np.minimum(sq_err, cfg.value_clip_param).mean())
        active = sq_err < cfg.value_clip_param
        grad_v = cfg.value_loss_coeff * 2.0 * (values - targets) * active / n
        grads = self.value.backward(cache, grad_v)
        grads, _ = clip_grads_by_global_norm(grads, cfg.grad_clip)
        self.value.apply_update(self._value_opt.step(grads))
        return value_loss

    # ------------------------------------------------------------------
    def train_iteration(self) -> TrainIterationStats:
        cfg = self.config
        obs, actions, logp_old, adv, targets, ep_returns = self._collect(
            cfg.train_batch_size
        )
        self._return_history.extend(ep_returns)
        adv = (adv - adv.mean()) / (adv.std() + 1e-8)
        logits_old = self.policy(obs)

        p_losses, v_losses, kls, ents, clips, norms = [], [], [], [], [], []
        n = obs.shape[0]
        for _ in range(cfg.num_epochs):
            perm = self._shuffle_rng.permutation(n)
            for start in range(0, n, cfg.minibatch_size):
                idx = perm[start : start + cfg.minibatch_size]
                p, k, e, c, g = self._policy_step(
                    obs[idx], actions[idx], logp_old[idx], adv[idx],
                    logits_old[idx],
                )
                v = self._value_step(obs[idx], targets[idx])
                p_losses.append(p)
                v_losses.append(v)
                kls.append(k)
                ents.append(e)
                clips.append(c)
                norms.append(g)

        final_kl = float(self.head.kl(logits_old, self.policy(obs)).mean())
        if final_kl > 2.0 * cfg.kl_target:
            self.kl_coeff *= 1.5
        elif final_kl < 0.5 * cfg.kl_target:
            self.kl_coeff *= 0.5

        self.iteration += 1
        recent = self._return_history[-20:]
        return TrainIterationStats(
            iteration=self.iteration,
            env_steps=self.total_env_steps,
            mean_episode_return=float(np.mean(recent)) if recent else float("nan"),
            policy_loss=float(np.mean(p_losses)),
            value_loss=float(np.mean(v_losses)),
            kl=final_kl,
            kl_coeff=self.kl_coeff,
            entropy=float(np.mean(ents)),
            clip_fraction=float(np.mean(clips)),
            grad_norm=float(np.mean(norms)),
            explained_variance=_explained_variance(targets, self.value(obs)),
            episode_returns=list(ep_returns),
        )

    def train(self, num_iterations: int, callback=None) -> list[TrainIterationStats]:
        history = []
        for _ in range(num_iterations):
            stats = self.train_iteration()
            history.append(stats)
            if callback is not None:
                callback(stats)
        return history

    def mean_rule_policy(self, num_states: int, d: int, num_modes: int = 2):
        """Deterministic policy from the per-block Dirichlet means."""
        from repro.meanfield.decision_rule import DecisionRule
        from repro.policies.base import UpperLevelPolicy

        trainer = self

        class _DirichletMeanPolicy(UpperLevelPolicy):
            @property
            def name(self) -> str:
                return "MF-Dirichlet"

            def decision_rule(self, nu, lam_mode, rng=None):
                one_hot = np.zeros(num_modes)
                one_hot[lam_mode] = 1.0
                obs = np.concatenate([np.asarray(nu), one_hot])
                logits = trainer.policy(obs[None, :])
                mean = trainer.head.mean_action(logits)[0]
                return DecisionRule.from_flat(
                    mean, num_states, d
                )

        return _DirichletMeanPolicy()
