"""Cross-entropy-method optimization of stationary decision rules.

The MFC MDP admits an optimal *stationary deterministic* upper-level
policy (paper Proposition 1). A cheap, gradient-free way to obtain a
strong stationary baseline is to restrict attention to *constant* rules
``h`` (state-independent upper policy) and optimize the ``S^d · d`` raw
parameters directly against the mean-field return with CEM. The result
interpolates between MF-JSQ and MF-RND as ``Δt`` grows and serves as

* a fast stand-in for the learned policy in quick-running benches, and
* the ablation A4 reference ("how much does state feedback buy over the
  best constant rule?").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.policies.static import ConstantRulePolicy
from repro.utils.rng import as_generator

__all__ = ["CEMResult", "optimize_constant_rule"]


@dataclass
class CEMResult:
    """Outcome of a CEM run."""

    rule: DecisionRule
    best_return: float
    history: list[float]
    generations: int

    @property
    def policy(self) -> ConstantRulePolicy:
        return ConstantRulePolicy(self.rule, name="CEM")


def _evaluate_raw(
    env: MeanFieldEnv,
    raw: np.ndarray,
    episodes: int,
    steps: int,
    rng: np.random.Generator,
) -> float:
    """Mean undiscounted return of the constant rule encoded by ``raw``."""
    rule = DecisionRule.from_raw(raw, env.num_queue_states, env.config.d)
    policy = ConstantRulePolicy(rule)
    total = 0.0
    for _ in range(episodes):
        total += env.rollout_return(policy, num_steps=steps, seed=rng)
    return total / episodes


def optimize_constant_rule(
    env: MeanFieldEnv,
    generations: int = 20,
    population: int = 32,
    elite_fraction: float = 0.25,
    episodes_per_candidate: int = 2,
    eval_steps: int | None = None,
    init_std: float = 0.3,
    min_std: float = 0.02,
    symmetrize: bool = True,
    seed: int | np.random.Generator | None = None,
) -> CEMResult:
    """Optimize a constant decision rule on the mean-field MDP with CEM.

    The search distribution is a diagonal Gaussian over raw parameters in
    ``[0, 1]`` (mapped to the simplex by
    :meth:`repro.meanfield.decision_rule.DecisionRule.from_raw`), refit
    to the elite set each generation with a std floor to avoid premature
    collapse. Initialized at the MF-JSQ table, whose basin is close to
    optimal for small ``Δt``.
    """
    if generations < 1 or population < 2:
        raise ValueError("need generations >= 1 and population >= 2")
    if not 0.0 < elite_fraction <= 1.0:
        raise ValueError("elite_fraction must lie in (0, 1]")
    rng = as_generator(seed)
    steps = int(eval_steps if eval_steps is not None else env.horizon)
    dim = env.action_size
    # Start around a JSQ/RND blend so both basins are reachable.
    jsq = DecisionRule.join_shortest(env.num_queue_states, env.config.d)
    rnd = DecisionRule.uniform(env.num_queue_states, env.config.d)
    mean = 0.5 * (jsq.flat() + rnd.flat())
    std = np.full(dim, init_std)

    n_elite = max(1, int(round(population * elite_fraction)))
    best_raw = mean.copy()
    best_return = -np.inf
    history: list[float] = []

    for _gen in range(generations):
        candidates = mean[None, :] + std[None, :] * rng.standard_normal(
            (population, dim)
        )
        returns = np.empty(population)
        for i in range(population):
            returns[i] = _evaluate_raw(
                env, candidates[i], episodes_per_candidate, steps, rng
            )
        order = np.argsort(returns)[::-1]
        elites = candidates[order[:n_elite]]
        mean = elites.mean(axis=0)
        std = np.maximum(elites.std(axis=0), min_std)
        gen_best = float(returns[order[0]])
        history.append(gen_best)
        if gen_best > best_return:
            best_return = gen_best
            best_raw = candidates[order[0]].copy()

    rule = DecisionRule.from_raw(best_raw, env.num_queue_states, env.config.d)
    if symmetrize:
        rule = rule.symmetrized()
    return CEMResult(
        rule=rule,
        best_return=best_return,
        history=history,
        generations=generations,
    )
