"""Multi-layer perceptrons with manual backpropagation (NumPy only).

The paper's policy network (Figure 2) is a 2x256 tanh MLP with a
Gaussian head (mean + log standard deviation); the value function uses
the same trunk architecture. Since no autodiff framework is available
offline we implement forward/backward passes by hand; the gradients are
verified against central finite differences in the test suite.

Initialization follows RLlib's ``normc`` scheme: weights are sampled
standard normal and rescaled so each output column has a fixed L2 norm
(1.0 for hidden layers, 0.01 for output heads), biases start at zero.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "MLP",
    "GaussianPolicyNetwork",
    "ValueNetwork",
    "widen_input_weights",
]

# Module-level named functions (not lambdas) so that networks — and the
# policies wrapping them — stay picklable across process boundaries
# (the sharded sweep executor ships policies to worker processes).
def _tanh_grad(y: np.ndarray) -> np.ndarray:
    # Derivative expressed through the activation output: 1 - tanh².
    return 1.0 - y**2


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_grad(y: np.ndarray) -> np.ndarray:
    return (y > 0).astype(y.dtype)


_ACTIVATIONS = {
    "tanh": (np.tanh, _tanh_grad),
    "relu": (_relu, _relu_grad),
}


def _normc_init(
    rng: np.random.Generator, fan_in: int, fan_out: int, std: float
) -> np.ndarray:
    w = rng.standard_normal((fan_in, fan_out))
    w *= std / np.sqrt(np.square(w).sum(axis=0, keepdims=True))
    return w


class MLP:
    """Fully connected network ``in_dim -> hidden_sizes -> out_dim``.

    Parameters are stored in a flat ``dict[str, np.ndarray]`` (keys
    ``W0, b0, W1, b1, ...``) so optimizers and checkpoints can treat any
    network uniformly.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_sizes: tuple[int, ...],
        out_dim: int,
        activation: str = "tanh",
        out_std: float = 0.01,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if in_dim < 1 or out_dim < 1:
            raise ValueError("in_dim and out_dim must be >= 1")
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; have {sorted(_ACTIVATIONS)}"
            )
        rng = as_generator(rng)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.hidden_sizes = tuple(hidden_sizes)
        self.activation = activation
        self._act, self._act_grad = _ACTIVATIONS[activation]
        self.params: dict[str, np.ndarray] = {}
        sizes = [in_dim, *self.hidden_sizes, out_dim]
        self.num_layers = len(sizes) - 1
        for layer in range(self.num_layers):
            is_output = layer == self.num_layers - 1
            std = out_std if is_output else 1.0
            self.params[f"W{layer}"] = _normc_init(
                rng, sizes[layer], sizes[layer + 1], std
            )
            self.params[f"b{layer}"] = np.zeros(sizes[layer + 1])

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Forward pass; returns ``(output, cache)`` for backprop.

        ``x`` has shape ``(n, in_dim)``; the cache holds the input and
        every post-activation hidden output.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.in_dim:
            raise ValueError(f"input dim {x.shape[1]} != {self.in_dim}")
        cache = [x]
        h = x
        for layer in range(self.num_layers - 1):
            pre = h @ self.params[f"W{layer}"] + self.params[f"b{layer}"]
            h = self._act(pre)
            cache.append(h)
        out = h @ self.params[f"W{self.num_layers - 1}"] + self.params[
            f"b{self.num_layers - 1}"
        ]
        return out, cache

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)[0]

    def backward(
        self, cache: list[np.ndarray], grad_out: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Gradients of ``sum(grad_out * output)`` w.r.t. all parameters.

        ``grad_out`` has shape ``(n, out_dim)`` — the upstream gradient.
        Returns a dict matching :attr:`params`. (Summed over the batch;
        divide upstream by ``n`` for a mean loss.)
        """
        grad_out = np.asarray(grad_out, dtype=np.float64)
        if grad_out.ndim == 1:
            grad_out = grad_out[None, :]
        grads: dict[str, np.ndarray] = {}
        delta = grad_out
        for layer in range(self.num_layers - 1, -1, -1):
            inputs = cache[layer]
            grads[f"W{layer}"] = inputs.T @ delta
            grads[f"b{layer}"] = delta.sum(axis=0)
            if layer > 0:
                delta = delta @ self.params[f"W{layer}"].T
                delta = delta * self._act_grad(cache[layer])
        return grads

    # ------------------------------------------------------------------
    def get_flat(self) -> np.ndarray:
        return np.concatenate([self.params[k].ravel() for k in sorted(self.params)])

    def set_flat(self, flat: np.ndarray) -> None:
        flat = np.asarray(flat, dtype=np.float64)
        offset = 0
        for key in sorted(self.params):
            size = self.params[key].size
            self.params[key] = flat[offset : offset + size].reshape(
                self.params[key].shape
            )
            offset += size
        if offset != flat.size:
            raise ValueError(f"flat vector has {flat.size} entries, need {offset}")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.params.values())


def widen_input_weights(
    state: dict[str, np.ndarray], extra_dims: int
) -> dict[str, np.ndarray]:
    """Adapt a network state dict to ``extra_dims`` appended inputs.

    Pads the first-layer weight matrix (``trunk/W0`` for the networks in
    this module) with zero rows for the new trailing observation
    dimensions. A network loaded from the widened state is *functionally
    identical* to the original on any observation whose appended
    features it ignores — which makes this the exact warm start for
    fine-tuning a paper-input checkpoint on a feature-augmented
    observation: training starts from the transplanted policy and can
    only move away from it where the new context helps.
    """
    if extra_dims < 0:
        raise ValueError(f"extra_dims must be >= 0, got {extra_dims}")
    out = {k: np.asarray(v, dtype=np.float64).copy() for k, v in state.items()}
    if extra_dims == 0:
        return out
    for key in ("trunk/W0", "W0"):
        if key in out:
            w0 = out[key]
            out[key] = np.vstack(
                [w0, np.zeros((extra_dims, w0.shape[1]))]
            )
            return out
    raise ValueError("state dict has no first-layer weights (trunk/W0 or W0)")


class GaussianPolicyNetwork:
    """Diagonal-Gaussian policy: MLP mean head + free (state-independent)
    log standard deviation, as in RLlib's default continuous-action
    model. Parameter keys are the trunk's plus ``log_std``."""

    def __init__(
        self,
        obs_dim: int,
        action_dim: int,
        hidden_sizes: tuple[int, ...] = (256, 256),
        initial_log_std: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        rng = as_generator(rng)
        self.obs_dim = obs_dim
        self.action_dim = action_dim
        self.trunk = MLP(obs_dim, hidden_sizes, action_dim, rng=rng)
        self.log_std = np.full(action_dim, float(initial_log_std))

    def forward(
        self, obs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
        """Returns ``(mu, log_std_batch, cache)`` with shapes
        ``(n, A)``, ``(n, A)``."""
        mu, cache = self.trunk.forward(obs)
        log_std = np.broadcast_to(self.log_std, mu.shape)
        return mu, log_std, cache

    def backward(
        self,
        cache: list[np.ndarray],
        grad_mu: np.ndarray,
        grad_log_std: np.ndarray,
    ) -> dict[str, np.ndarray]:
        grads = self.trunk.backward(cache, grad_mu)
        grads["log_std"] = np.asarray(grad_log_std, dtype=np.float64).sum(axis=0)
        return grads

    @property
    def params(self) -> dict[str, np.ndarray]:
        merged = dict(self.trunk.params)
        merged["log_std"] = self.log_std
        return merged

    def apply_update(self, updates: dict[str, np.ndarray]) -> None:
        """Add ``updates[k]`` to parameter ``k`` in place."""
        for key, delta in updates.items():
            if key == "log_std":
                self.log_std += delta
            else:
                self.trunk.params[key] += delta

    def state_dict(self) -> dict[str, np.ndarray]:
        out = {f"trunk/{k}": v.copy() for k, v in self.trunk.params.items()}
        out["log_std"] = self.log_std.copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for key, value in state.items():
            if key == "log_std":
                if value.shape != self.log_std.shape:
                    raise ValueError("log_std shape mismatch")
                self.log_std = np.asarray(value, dtype=np.float64).copy()
            elif key.startswith("trunk/"):
                name = key[len("trunk/") :]
                if name not in self.trunk.params:
                    raise ValueError(f"unknown trunk parameter {name!r}")
                if self.trunk.params[name].shape != value.shape:
                    raise ValueError(f"shape mismatch for {name!r}")
                self.trunk.params[name] = np.asarray(value, dtype=np.float64).copy()
            else:
                raise ValueError(f"unknown parameter key {key!r}")


class ValueNetwork:
    """State-value function: MLP with a scalar output head."""

    def __init__(
        self,
        obs_dim: int,
        hidden_sizes: tuple[int, ...] = (256, 256),
        rng: int | np.random.Generator | None = None,
    ) -> None:
        rng = as_generator(rng)
        self.obs_dim = obs_dim
        self.trunk = MLP(obs_dim, hidden_sizes, 1, rng=rng)

    def forward(self, obs: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        out, cache = self.trunk.forward(obs)
        return out[:, 0], cache

    def __call__(self, obs: np.ndarray) -> np.ndarray:
        return self.forward(obs)[0]

    def backward(
        self, cache: list[np.ndarray], grad_value: np.ndarray
    ) -> dict[str, np.ndarray]:
        return self.trunk.backward(cache, np.asarray(grad_value)[:, None])

    @property
    def params(self) -> dict[str, np.ndarray]:
        return self.trunk.params

    def apply_update(self, updates: dict[str, np.ndarray]) -> None:
        for key, delta in updates.items():
            self.trunk.params[key] += delta

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"trunk/{k}": v.copy() for k, v in self.trunk.params.items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for key, value in state.items():
            if not key.startswith("trunk/"):
                raise ValueError(f"unknown parameter key {key!r}")
            name = key[len("trunk/") :]
            if name not in self.trunk.params:
                raise ValueError(f"unknown trunk parameter {name!r}")
            if self.trunk.params[name].shape != value.shape:
                raise ValueError(f"shape mismatch for {name!r}")
            self.trunk.params[name] = np.asarray(value, dtype=np.float64).copy()
