"""Reinforcement-learning stack (pure NumPy).

Re-implements everything the paper takes from RLlib/PyTorch: multi-layer
perceptrons with manual backpropagation, a diagonal-Gaussian policy head
with free log-std (plus a Dirichlet head for the paper's negative
ablation), Adam, generalized advantage estimation and proximal policy
optimization with clipped surrogate + adaptive KL penalty — the exact
loss family of RLlib's PPO with the Table 2 hyperparameters. A
cross-entropy-method solver for stationary decision rules is provided as
a cheap direct optimizer / ablation.
"""

from repro.rl.nn import (
    MLP,
    GaussianPolicyNetwork,
    ValueNetwork,
    widen_input_weights,
)
from repro.rl.distributions import DiagGaussian, DirichletBlocks
from repro.rl.optim import Adam, clip_grads_by_global_norm, global_norm
from repro.rl.gae import compute_gae
from repro.rl.rollout import RolloutBatch, RolloutCollector
from repro.rl.vector_rollout import VectorRolloutCollector
from repro.rl.ppo import PPOTrainer, TrainIterationStats
from repro.rl.ppo_dirichlet import DirichletPPOTrainer
from repro.rl.imitation import clone_rule, collect_visited_observations
from repro.rl.cem import CEMResult, optimize_constant_rule
from repro.rl.evaluation import (
    evaluate_policies_mfc,
    evaluate_policy_mfc,
    rollout_returns_lockstep,
)

__all__ = [
    "MLP",
    "GaussianPolicyNetwork",
    "ValueNetwork",
    "widen_input_weights",
    "DiagGaussian",
    "DirichletBlocks",
    "Adam",
    "clip_grads_by_global_norm",
    "global_norm",
    "compute_gae",
    "RolloutBatch",
    "RolloutCollector",
    "VectorRolloutCollector",
    "PPOTrainer",
    "TrainIterationStats",
    "DirichletPPOTrainer",
    "clone_rule",
    "collect_visited_observations",
    "CEMResult",
    "optimize_constant_rule",
    "evaluate_policy_mfc",
    "evaluate_policies_mfc",
    "rollout_returns_lockstep",
]
