"""Experience collection from the MFC MDP (or any gym-like env).

The collector owns the environment, keeps episodes running across
batch boundaries (bootstrapping truncated segments with the value
network) and records completed-episode undiscounted returns — the
quantity plotted on the paper's Figure 3 training curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rl.distributions import DiagGaussian
from repro.rl.gae import compute_gae
from repro.rl.nn import GaussianPolicyNetwork, ValueNetwork
from repro.utils.rng import as_generator

__all__ = ["RolloutBatch", "RolloutCollector"]


@dataclass
class RolloutBatch:
    """One training batch of transitions plus derived targets."""

    obs: np.ndarray
    actions: np.ndarray
    log_probs: np.ndarray
    rewards: np.ndarray
    dones: np.ndarray
    values: np.ndarray
    advantages: np.ndarray
    value_targets: np.ndarray
    episode_returns: list[float]

    def __len__(self) -> int:
        return self.obs.shape[0]

    def minibatch_indices(
        self, minibatch_size: int, rng: np.random.Generator
    ) -> list[np.ndarray]:
        """Shuffled index blocks covering the batch once."""
        perm = rng.permutation(len(self))
        return [
            perm[start : start + minibatch_size]
            for start in range(0, len(self), minibatch_size)
        ]


class RolloutCollector:
    """Collects fixed-size batches with a Gaussian policy.

    Parameters
    ----------
    env:
        Environment with ``reset() -> obs`` and
        ``step_raw(action) -> (obs, reward, done, info)``.
    policy, value:
        The actor and critic networks being trained.
    gamma, gae_lambda:
        Discounting parameters for advantage estimation.
    """

    def __init__(
        self,
        env,
        policy: GaussianPolicyNetwork,
        value: ValueNetwork,
        gamma: float,
        gae_lambda: float,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.env = env
        self.policy = policy
        self.value = value
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self._rng = as_generator(seed)
        self._obs: np.ndarray | None = None
        self._episode_return = 0.0
        self.total_env_steps = 0

    def collect(self, batch_size: int) -> RolloutBatch:
        """Roll the policy for ``batch_size`` environment steps.

        Episodes that end on the environment's *time limit* (the env
        signals ``info["truncated"]``) are bootstrapped with the value of
        the final state: the GAE pass sees ``r + γ·V(s_final)`` at the
        truncated step. Without this, the critic of an infinite-horizon
        problem would have to model the remaining episode time, which the
        observation deliberately does not contain.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self._obs is None:
            self._obs = self.env.reset(self._rng)
            self._episode_return = 0.0

        obs_dim = self.policy.obs_dim
        act_dim = self.policy.action_dim
        obs_buf = np.empty((batch_size, obs_dim))
        act_buf = np.empty((batch_size, act_dim))
        logp_buf = np.empty(batch_size)
        rew_buf = np.empty(batch_size)
        gae_rew_buf = np.empty(batch_size)
        done_buf = np.zeros(batch_size, dtype=bool)
        val_buf = np.empty(batch_size)
        episode_returns: list[float] = []

        for t in range(batch_size):
            obs = np.asarray(self._obs, dtype=np.float64)
            mu, log_std, _ = self.policy.forward(obs[None, :])
            action = DiagGaussian.sample(mu, log_std, self._rng)
            logp = DiagGaussian.log_prob(action, mu, log_std)
            value = self.value(obs[None, :])

            next_obs, reward, done, info = self.env.step_raw(action[0])

            obs_buf[t] = obs
            act_buf[t] = action[0]
            logp_buf[t] = logp[0]
            rew_buf[t] = reward
            gae_rew_buf[t] = reward
            done_buf[t] = done
            val_buf[t] = value[0]
            self._episode_return += reward
            self.total_env_steps += 1

            if done:
                if info.get("truncated", True):
                    # Time-limit end: fold the bootstrap into the reward so
                    # the GAE recursion can treat the step as terminal.
                    final_value = float(
                        self.value(np.asarray(next_obs)[None, :])[0]
                    )
                    gae_rew_buf[t] += self.gamma * final_value
                episode_returns.append(self._episode_return)
                self._episode_return = 0.0
                self._obs = self.env.reset(self._rng)
            else:
                self._obs = next_obs

        if done_buf[-1]:
            bootstrap = 0.0
        else:
            bootstrap = float(self.value(np.asarray(self._obs)[None, :])[0])
        advantages, targets = compute_gae(
            gae_rew_buf, val_buf, done_buf, bootstrap, self.gamma, self.gae_lambda
        )
        return RolloutBatch(
            obs=obs_buf,
            actions=act_buf,
            log_probs=logp_buf,
            rewards=rew_buf,
            dones=done_buf,
            values=val_buf,
            advantages=advantages,
            value_targets=targets,
            episode_returns=episode_returns,
        )
