"""Proximal policy optimization with adaptive KL penalty (RLlib semantics).

The training loss mirrors RLlib's PPO (the implementation the paper
uses, Table 2 hyperparameters):

    L = -E[min(ρ·A, clip(ρ, 1±ε)·A)]            (clipped surrogate)
        + β · E[KL(π_old ‖ π_new)]              (adaptive KL penalty)
        + c_v · E[min((V-R)², clip)]            (clamped value loss)
        - c_e · E[H(π_new)]                     (entropy bonus, 0 here)

with advantages standardized per batch, minibatch Adam for
``num_epochs`` passes, global-norm gradient clipping, and the classic
adaptive-β rule: β ×= 1.5 if KL > 2·target, β ×= 0.5 if KL < target/2.

Four optional *hardening knobs* (``PPOConfig``, all default off; off is
bit-identical to the paper's update, golden-pinned) wrap that loss for
long training campaigns: bounds on the adaptive β
(:func:`adapted_kl_coeff`), KL early stopping of the SGD epochs, a
linear clip-ε decay schedule (:func:`clip_param_at`) and a
pessimism-free value clamp (:func:`clamped_value_sq_error`).

All gradients are assembled analytically (distribution parameter
gradients chained through the manual MLP backward pass) — there is no
autodiff anywhere in this repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import PPOConfig
from repro.rl.distributions import DiagGaussian
from repro.rl.nn import GaussianPolicyNetwork, ValueNetwork
from repro.rl.optim import Adam, clip_grads_by_global_norm
from repro.rl.rollout import RolloutCollector
from repro.rl.vector_rollout import VectorRolloutCollector
from repro.utils.rng import as_generator

__all__ = [
    "PPOTrainer",
    "TrainIterationStats",
    "adapted_kl_coeff",
    "clip_param_at",
    "clamped_value_sq_error",
]


def adapted_kl_coeff(kl_coeff: float, kl: float, config: PPOConfig) -> float:
    """RLlib's adaptive-β rule, optionally clamped to the config bounds.

    ``β ×= 1.5`` when the post-update KL overshoots twice the target,
    ``β ×= 0.5`` when it undershoots half of it; with
    ``config.kl_coeff_bounds = (lo, hi)`` the result is clamped into
    ``[lo, hi]`` so a long campaign cannot run the penalty to zero or
    infinity (property-tested in ``tests/test_ppo_hardening.py``).
    """
    if kl > 2.0 * config.kl_target:
        kl_coeff *= 1.5
    elif kl < 0.5 * config.kl_target:
        kl_coeff *= 0.5
    if config.kl_coeff_bounds is not None:
        lo, hi = config.kl_coeff_bounds
        kl_coeff = min(max(kl_coeff, lo), hi)
    return kl_coeff


def clip_param_at(config: PPOConfig, iteration: int) -> float:
    """Surrogate clip ``ε`` in effect at a (0-based) training iteration.

    Without a decay schedule this is ``config.clip_param`` exactly; with
    one, ``ε`` decays linearly to ``clip_param_final`` over
    ``clip_decay_iters`` iterations and stays there — monotone
    non-increasing in ``iteration`` (property-tested).
    """
    if config.clip_param_final is None:
        return config.clip_param
    frac = min(1.0, max(0.0, iteration / config.clip_decay_iters))
    # clip - frac*(clip-final), clamped below at final: every step is a
    # correctly-rounded monotone map of ``frac``, so the schedule is
    # exactly non-increasing (not just up to float noise) and lands
    # within one ulp of ``clip_param_final`` at the end of the decay.
    decayed = config.clip_param - frac * (
        config.clip_param - config.clip_param_final
    )
    return max(config.clip_param_final, decayed)


def clamped_value_sq_error(
    values: np.ndarray,
    values_old: np.ndarray,
    targets: np.ndarray,
    clamp: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Value-clipped squared error that never exceeds the unclipped one.

    The critic prediction is clipped to the ``±clamp`` band around its
    pre-update prediction and the elementwise *minimum* of the clamped
    and unclamped squared errors is taken — unlike the pessimistic
    ``max`` form, the clamp can limit an update but never widen the
    loss. Returns ``(sq_error, active)`` where ``active`` marks entries
    whose gradient flows through the live prediction (the clamped
    branch, when strictly smaller, has zero gradient: it only wins when
    the prediction already left the band).
    """
    sq_unclamped = (values - targets) ** 2
    delta = values - values_old
    # In-band predictions keep their exact value (``old + (v - old)``
    # would round); only out-of-band ones are pulled to the band edge.
    clipped = np.where(
        np.abs(delta) <= clamp,
        values,
        values_old + np.clip(delta, -clamp, clamp),
    )
    sq_clamped = (clipped - targets) ** 2
    active = sq_unclamped <= sq_clamped
    return np.minimum(sq_unclamped, sq_clamped), active


@dataclass
class TrainIterationStats:
    """Diagnostics of one PPO training iteration."""

    iteration: int
    env_steps: int
    mean_episode_return: float
    policy_loss: float
    value_loss: float
    kl: float
    kl_coeff: float
    entropy: float
    clip_fraction: float
    grad_norm: float
    explained_variance: float
    episode_returns: list[float] = field(default_factory=list)
    # SGD epochs actually performed (< num_epochs when KL early stopping
    # triggered) and the clip-ε in effect this iteration.
    epochs_run: int = 0
    clip_param: float = 0.0


def _explained_variance(targets: np.ndarray, predictions: np.ndarray) -> float:
    var_t = float(np.var(targets))
    if var_t < 1e-12:
        return 0.0
    return float(1.0 - np.var(targets - predictions) / var_t)


class PPOTrainer:
    """PPO on a gym-like env with flat Box observations/actions.

    Parameters
    ----------
    env:
        Environment exposing ``reset(seed) -> obs``,
        ``step_raw(action) -> (obs, reward, done, info)``,
        ``observation_size`` and ``action_size``.
    config:
        :class:`repro.config.PPOConfig` (Table 2 defaults).
    num_envs:
        Collect experience from this many environments in lock-step via
        :class:`repro.rl.vector_rollout.VectorRolloutCollector` (one
        policy/value forward per time slice instead of per step). The
        extra environments come from ``env_factory`` if given, else from
        ``env.clone()``. ``train_batch_size`` must be divisible by
        ``num_envs``.
    independent_streams:
        With ``num_envs > 1``, give every environment its own spawned
        generator and per-environment network forwards so the collected
        batch is invariant to how a fleet is chunked across collectors
        (see :class:`repro.rl.vector_rollout.VectorRolloutCollector`).
        The training campaign uses this; the default (``False``) keeps
        the faster shared-stream collection and its historical streams.
    """

    def __init__(
        self,
        env,
        config: PPOConfig | None = None,
        seed: int | np.random.Generator | None = None,
        num_envs: int = 1,
        env_factory=None,
        independent_streams: bool = False,
    ) -> None:
        self.config = config if config is not None else PPOConfig()
        if num_envs < 1:
            raise ValueError(f"num_envs must be >= 1, got {num_envs}")
        if self.config.train_batch_size % num_envs != 0:
            raise ValueError(
                f"train_batch_size {self.config.train_batch_size} must be "
                f"divisible by num_envs {num_envs}"
            )
        root = as_generator(seed if seed is not None else self.config.seed)
        init_rng, rollout_rng, self._shuffle_rng = (
            as_generator(int(root.integers(2**63))) for _ in range(3)
        )
        obs_dim = int(env.observation_size)
        act_dim = int(env.action_size)
        self.policy = GaussianPolicyNetwork(
            obs_dim,
            act_dim,
            hidden_sizes=self.config.hidden_sizes,
            initial_log_std=self.config.initial_log_std,
            rng=init_rng,
        )
        self.value = ValueNetwork(
            obs_dim, hidden_sizes=self.config.hidden_sizes, rng=init_rng
        )
        if num_envs == 1:
            self.collector = RolloutCollector(
                env,
                self.policy,
                self.value,
                gamma=self.config.gamma,
                gae_lambda=self.config.gae_lambda,
                seed=rollout_rng,
            )
        else:
            if env_factory is None:
                if not hasattr(env, "clone"):
                    raise ValueError(
                        "num_envs > 1 needs env.clone() or an env_factory"
                    )
                env_factory = env.clone
            envs = [env] + [env_factory() for _ in range(num_envs - 1)]
            self.collector = VectorRolloutCollector(
                envs,
                self.policy,
                self.value,
                gamma=self.config.gamma,
                gae_lambda=self.config.gae_lambda,
                seed=rollout_rng,
                independent_streams=independent_streams,
            )
        self.kl_coeff = self.config.kl_coeff
        self._policy_opt = Adam.for_params(
            self.policy.params, self.config.learning_rate
        )
        self._value_opt = Adam.for_params(
            self.value.params, self.config.learning_rate
        )
        self.iteration = 0
        self._return_history: list[float] = []

    # ------------------------------------------------------------------
    # Loss gradients
    # ------------------------------------------------------------------
    def _policy_minibatch_step(
        self,
        obs: np.ndarray,
        actions: np.ndarray,
        logp_old: np.ndarray,
        advantages: np.ndarray,
        mu_old: np.ndarray,
        log_std_old: np.ndarray,
    ) -> tuple[float, float, float, float, float]:
        """One Adam step on the policy; returns loss diagnostics."""
        cfg = self.config
        eps = clip_param_at(cfg, self.iteration)
        n = obs.shape[0]
        mu, log_std, cache = self.policy.forward(obs)
        logp = DiagGaussian.log_prob(actions, mu, log_std)
        ratio = np.exp(logp - logp_old)
        clipped_ratio = np.clip(ratio, 1.0 - eps, 1.0 + eps)
        unclipped = ratio * advantages
        clipped = clipped_ratio * advantages
        surrogate = np.minimum(unclipped, clipped)
        policy_loss = -float(surrogate.mean())

        kl = DiagGaussian.kl(mu_old, log_std_old, mu, log_std)
        kl_mean = float(kl.mean())
        entropy = DiagGaussian.entropy(log_std)
        entropy_mean = float(entropy.mean())
        clip_fraction = float((np.abs(ratio - 1.0) > eps).mean())

        # --- gradient wrt log-prob of the surrogate term ---------------
        # d surrogate / d logp = ratio * A where the unclipped branch is
        # active, else 0; loss is the negative mean.
        active = unclipped <= clipped
        g_logp = np.where(active, ratio * advantages, 0.0) / n  # d(mean surr)
        d_mu_logp, d_ls_logp = DiagGaussian.log_prob_grads(actions, mu, log_std)
        grad_mu = -g_logp[:, None] * d_mu_logp
        grad_ls = -g_logp[:, None] * d_ls_logp

        # --- KL penalty -------------------------------------------------
        d_mu_kl, d_ls_kl = DiagGaussian.kl_grads_new(
            mu_old, log_std_old, mu, log_std
        )
        grad_mu += self.kl_coeff * d_mu_kl / n
        grad_ls += self.kl_coeff * d_ls_kl / n

        # --- entropy bonus ----------------------------------------------
        if cfg.entropy_coeff > 0.0:
            grad_ls -= (
                cfg.entropy_coeff
                * DiagGaussian.entropy_grad_log_std(log_std)
                / n
            )

        grads = self.policy.backward(cache, grad_mu, grad_ls)
        grads, grad_norm = clip_grads_by_global_norm(grads, cfg.grad_clip)
        self.policy.apply_update(self._policy_opt.step(grads))
        return policy_loss, kl_mean, entropy_mean, clip_fraction, grad_norm

    def _value_minibatch_step(
        self,
        obs: np.ndarray,
        targets: np.ndarray,
        values_old: np.ndarray | None = None,
    ) -> float:
        cfg = self.config
        n = obs.shape[0]
        values, cache = self.value.forward(obs)
        if cfg.value_clamp_param is not None and values_old is not None:
            sq_err, in_band = clamped_value_sq_error(
                values, values_old, targets, cfg.value_clamp_param
            )
        else:
            sq_err = (values - targets) ** 2
            in_band = True
        clamped = np.minimum(sq_err, cfg.value_clip_param)
        value_loss = float(clamped.mean())
        # Gradient is zero where the squared error is clamped (by the
        # absolute clip or by the value-clamp band).
        active = (sq_err < cfg.value_clip_param) & in_band
        grad_v = cfg.value_loss_coeff * 2.0 * (values - targets) * active / n
        grads = self.value.backward(cache, grad_v)
        grads, _ = clip_grads_by_global_norm(grads, cfg.grad_clip)
        self.value.apply_update(self._value_opt.step(grads))
        return value_loss

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def train_iteration(self, update_policy: bool = True) -> TrainIterationStats:
        """One PPO iteration. ``update_policy=False`` runs a critic-only
        iteration (used to warm up the value function after a behavior-
        cloning initialization, so early advantage estimates don't knock
        the policy off its warm start)."""
        cfg = self.config
        batch = self.collector.collect(cfg.train_batch_size)
        self._return_history.extend(batch.episode_returns)

        advantages = batch.advantages
        std = advantages.std()
        advantages = (advantages - advantages.mean()) / (std + 1e-8)

        # Snapshot the old distribution for ratios and KL.
        mu_old_all, log_std_old_all, _ = self.policy.forward(batch.obs)
        logp_old_all = DiagGaussian.log_prob(
            batch.actions, mu_old_all, log_std_old_all
        )

        policy_losses: list[float] = []
        value_losses: list[float] = []
        kls: list[float] = []
        entropies: list[float] = []
        clip_fracs: list[float] = []
        grad_norms: list[float] = []

        epochs_run = 0
        for _epoch in range(cfg.num_epochs):
            epochs_run += 1
            for idx in batch.minibatch_indices(cfg.minibatch_size, self._shuffle_rng):
                if update_policy:
                    p_loss, kl, ent, clip_frac, g_norm = (
                        self._policy_minibatch_step(
                            batch.obs[idx],
                            batch.actions[idx],
                            logp_old_all[idx],
                            advantages[idx],
                            mu_old_all[idx],
                            log_std_old_all[idx],
                        )
                    )
                    policy_losses.append(p_loss)
                    kls.append(kl)
                    entropies.append(ent)
                    clip_fracs.append(clip_frac)
                    grad_norms.append(g_norm)
                v_loss = self._value_minibatch_step(
                    batch.obs[idx],
                    batch.value_targets[idx],
                    values_old=batch.values[idx],
                )
                value_losses.append(v_loss)
            if (
                update_policy
                and cfg.kl_early_stop_factor is not None
                and _epoch + 1 < cfg.num_epochs
            ):
                # KL early stopping: once the full-batch divergence has
                # left the trust region, further epochs on the same batch
                # only push it further out (torchrl's ESS-style guard).
                mu_e, log_std_e, _ = self.policy.forward(batch.obs)
                epoch_kl = float(
                    DiagGaussian.kl(
                        mu_old_all, log_std_old_all, mu_e, log_std_e
                    ).mean()
                )
                if epoch_kl > cfg.kl_early_stop_factor * cfg.kl_target:
                    break

        # Adaptive KL coefficient (RLlib's update_kl rule) based on the
        # post-update divergence over the full batch.
        mu_new, log_std_new, _ = self.policy.forward(batch.obs)
        final_kl = float(
            DiagGaussian.kl(mu_old_all, log_std_old_all, mu_new, log_std_new).mean()
        )
        self.kl_coeff = adapted_kl_coeff(self.kl_coeff, final_kl, cfg)

        values_pred = self.value(batch.obs)
        self.iteration += 1
        recent = self._return_history[-20:]

        def _mean(xs: list[float]) -> float:
            return float(np.mean(xs)) if xs else 0.0

        stats = TrainIterationStats(
            iteration=self.iteration,
            env_steps=self.collector.total_env_steps,
            mean_episode_return=float(np.mean(recent)) if recent else float("nan"),
            policy_loss=_mean(policy_losses),
            value_loss=_mean(value_losses),
            kl=final_kl,
            kl_coeff=self.kl_coeff,
            entropy=_mean(entropies),
            clip_fraction=_mean(clip_fracs),
            grad_norm=_mean(grad_norms),
            explained_variance=_explained_variance(
                batch.value_targets, values_pred
            ),
            episode_returns=list(batch.episode_returns),
            epochs_run=epochs_run,
            clip_param=clip_param_at(cfg, self.iteration - 1),
        )
        return stats

    def train(self, num_iterations: int, callback=None) -> list[TrainIterationStats]:
        """Run ``num_iterations`` PPO iterations; optional per-iteration
        ``callback(stats)``."""
        history = []
        for _ in range(num_iterations):
            stats = self.train_iteration()
            history.append(stats)
            if callback is not None:
                callback(stats)
        return history

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        out = {f"policy/{k}": v for k, v in self.policy.state_dict().items()}
        out.update({f"value/{k}": v for k, v in self.value.state_dict().items()})
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        policy_state = {
            k[len("policy/") :]: v for k, v in state.items() if k.startswith("policy/")
        }
        value_state = {
            k[len("value/") :]: v for k, v in state.items() if k.startswith("value/")
        }
        self.policy.load_state_dict(policy_state)
        self.value.load_state_dict(value_state)
