"""Policy evaluation helpers for the mean-field MDP.

The only stochasticity in the MFC MDP is the arrival-mode chain, so a
modest number of rollouts gives tight estimates of the expected
undiscounted episode return (the paper's Figure 3 y-axis).
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.meanfield.mfc_env import MeanFieldEnv
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.stats import ConfidenceInterval, mean_confidence_interval

if TYPE_CHECKING:  # import cycle: policies build on top of the RL stack
    from repro.policies.base import UpperLevelPolicy

__all__ = ["evaluate_policy_mfc", "evaluate_policies_mfc"]


def evaluate_policy_mfc(
    env: MeanFieldEnv,
    policy: "UpperLevelPolicy",
    episodes: int = 20,
    num_steps: int | None = None,
    discount: float | None = None,
    seed: int | np.random.Generator | None = None,
    level: float = 0.95,
) -> ConfidenceInterval:
    """Mean (un)discounted return of ``policy`` over fresh MFC episodes."""
    if episodes < 1:
        raise ValueError("episodes must be >= 1")
    rngs = spawn_generators(seed, episodes)
    returns = [
        env.rollout_return(policy, num_steps=num_steps, discount=discount, seed=rng)
        for rng in rngs
    ]
    return mean_confidence_interval(returns, level=level)


def evaluate_policies_mfc(
    env: MeanFieldEnv,
    policies: dict[str, "UpperLevelPolicy"],
    episodes: int = 20,
    num_steps: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> dict[str, ConfidenceInterval]:
    """Evaluate several policies on a *common* set of arrival-mode seeds
    (common random numbers sharpen the comparison)."""
    root = as_generator(seed)
    episode_seeds = [int(root.integers(2**62)) for _ in range(episodes)]
    results: dict[str, ConfidenceInterval] = {}
    for name, policy in policies.items():
        returns = [
            env.rollout_return(policy, num_steps=num_steps, seed=s)
            for s in episode_seeds
        ]
        results[name] = mean_confidence_interval(returns)
    return results
