"""Policy evaluation helpers for the mean-field MDP.

The only stochasticity in the MFC MDP is the arrival-mode chain, so a
modest number of rollouts gives tight estimates of the expected
undiscounted episode return (the paper's Figure 3 y-axis).

Evaluation episodes are independent, so they run in *lock-step*: all
``E`` episode environments advance together and the upper-level policy
is queried once per epoch for the whole ensemble
(``decision_rules_batch`` — one network forward pass for neural
policies). Each episode keeps its own spawned generator, so the
lock-step mode trajectories match the historical one-episode-at-a-time
loop exactly and, for deterministic policies, the returns agree up to
floating-point association in the batched forward pass (tested); pass
``lockstep=False`` to force the sequential path, e.g. for policies that
consume the per-episode generator.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.meanfield.mfc_env import MeanFieldEnv
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.stats import ConfidenceInterval, mean_confidence_interval

if TYPE_CHECKING:  # import cycle: policies build on top of the RL stack
    from repro.policies.base import UpperLevelPolicy

__all__ = [
    "evaluate_policy_mfc",
    "evaluate_policies_mfc",
    "rollout_returns_lockstep",
]


def rollout_returns_lockstep(
    env: MeanFieldEnv,
    policy: "UpperLevelPolicy",
    episode_seeds,
    num_steps: int | None = None,
    discount: float | None = None,
    policy_rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Per-episode returns of ``E`` lock-step MFC episodes.

    ``episode_seeds`` is a sequence of per-episode seeds/generators (one
    clone of ``env`` each). Every epoch issues a single batched policy
    query over the ``(E, S)`` stacked mean fields, consuming
    ``policy_rng`` — stochastic policies need one (the per-episode
    generators only drive the environments). Stationary policies are
    queried once in total.
    """
    seeds = list(episode_seeds)
    if not seeds:
        raise ValueError("need at least one episode seed")
    envs = [env.clone(seed=as_generator(s)) for s in seeds]
    for clone in envs:
        clone.reset()
    steps = int(num_steps if num_steps is not None else env.horizon)
    totals = np.zeros(len(envs))
    weight = 1.0
    # Live-age policies get each episode's current delay-regime context
    # (a deterministic function of the regime index — no extra draws);
    # environments without the hook fall back to the frozen context.
    live_age = bool(
        getattr(getattr(policy, "features", None), "live_age", False)
    ) and all(hasattr(clone, "live_age_context") for clone in envs)
    if policy.is_stationary():
        shared_rule = policy.decision_rule(
            envs[0].state.nu, envs[0].state.lam_mode, policy_rng
        )
    for _ in range(steps):
        if policy.is_stationary():
            rules = [shared_rule] * len(envs)
        else:
            nus = np.stack([clone.state.nu for clone in envs])
            modes = np.asarray([clone.state.lam_mode for clone in envs])
            if live_age:
                contexts = np.asarray(
                    [clone.live_age_context() for clone in envs]
                )
                rules = policy.decision_rules_batch(
                    nus, modes, policy_rng, age_contexts=contexts
                )
            else:
                rules = policy.decision_rules_batch(nus, modes, policy_rng)
        done = False
        for i, (clone, rule) in enumerate(zip(envs, rules)):
            _, reward, done, _ = clone.step(rule)
            totals[i] += weight * reward
        if discount is not None:
            weight *= discount
        if done:  # shared horizon: all replicas truncate together
            break
    return totals


def evaluate_policy_mfc(
    env: MeanFieldEnv,
    policy: "UpperLevelPolicy",
    episodes: int = 20,
    num_steps: int | None = None,
    discount: float | None = None,
    seed: int | np.random.Generator | None = None,
    level: float = 0.95,
    lockstep: bool = True,
) -> ConfidenceInterval:
    """Mean (un)discounted return of ``policy`` over fresh MFC episodes."""
    if episodes < 1:
        raise ValueError("episodes must be >= 1")
    # episodes env generators + one policy-query generator; the first
    # `episodes` children match a plain spawn_generators(seed, episodes).
    rngs = spawn_generators(seed, episodes + 1)
    if lockstep:
        returns = rollout_returns_lockstep(
            env,
            policy,
            rngs[:episodes],
            num_steps=num_steps,
            discount=discount,
            policy_rng=rngs[episodes],
        )
    else:
        returns = [
            env.rollout_return(
                policy, num_steps=num_steps, discount=discount, seed=rng
            )
            for rng in rngs[:episodes]
        ]
    return mean_confidence_interval(returns, level=level)


def evaluate_policies_mfc(
    env: MeanFieldEnv,
    policies: dict[str, "UpperLevelPolicy"],
    episodes: int = 20,
    num_steps: int | None = None,
    seed: int | np.random.Generator | None = None,
    lockstep: bool = True,
) -> dict[str, ConfidenceInterval]:
    """Evaluate several policies on a *common* set of arrival-mode seeds
    (common random numbers sharpen the comparison)."""
    root = as_generator(seed)
    episode_seeds = [int(root.integers(2**62)) for _ in range(episodes)]
    results: dict[str, ConfidenceInterval] = {}
    for name, policy in policies.items():
        if lockstep:
            returns = rollout_returns_lockstep(
                env, policy, episode_seeds, num_steps=num_steps,
                policy_rng=root,
            )
        else:
            returns = [
                env.rollout_return(policy, num_steps=num_steps, seed=s)
                for s in episode_seeds
            ]
        results[name] = mean_confidence_interval(returns)
    return results
