"""Behavior cloning of decision rules into the Gaussian policy network.

Used as a warm start for PPO fine-tuning in the scaled-down training
pipeline: a strong *constant* decision rule (e.g. found by CEM on the
mean-field MDP) is distilled into the network by regressing the Gaussian
mean onto the rule's raw table over a set of observations visited by the
rule itself. PPO then adds state feedback on top. The full-budget paper
pipeline (pure PPO from scratch) remains available — the warm start is a
compute trade-off, not a modelling change, and is ablated in the
benches.
"""

from __future__ import annotations

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.policies.static import ConstantRulePolicy
from repro.rl.nn import GaussianPolicyNetwork
from repro.rl.optim import Adam
from repro.utils.rng import as_generator

__all__ = ["collect_visited_observations", "clone_rule"]


def collect_visited_observations(
    env: MeanFieldEnv,
    rule: DecisionRule,
    episodes: int = 5,
    num_steps: int | None = None,
    seed=None,
) -> np.ndarray:
    """Observations visited by the constant-rule policy (cloning inputs)."""
    rng = as_generator(seed)
    policy = ConstantRulePolicy(rule)
    steps = int(num_steps if num_steps is not None else env.horizon)
    rows = []
    for _ in range(episodes):
        env.reset(rng)
        rows.append(env.observation())
        for _ in range(steps):
            r = policy.decision_rule(env.state.nu, env.state.lam_mode, rng)
            _, _, done, _ = env.step(r)
            rows.append(env.observation())
            if done:
                break
    return np.asarray(rows)


def clone_rule(
    network: GaussianPolicyNetwork,
    rule: DecisionRule,
    observations: np.ndarray,
    epochs: int = 200,
    learning_rate: float = 1e-3,
    batch_size: int = 256,
    seed=None,
) -> float:
    """Regress the network mean onto ``rule``'s raw table; returns final MSE.

    The Gaussian mean is trained so that
    ``DecisionRule.from_raw(mu(obs)) ≈ rule`` at every observation. Since
    ``from_raw`` renormalizes, matching the table entries directly is
    sufficient (the table is already on the simplex, and ``from_raw`` is
    the identity on it up to the probability floor).
    """
    rng = as_generator(seed)
    observations = np.asarray(observations, dtype=np.float64)
    if observations.ndim != 2 or observations.shape[1] != network.obs_dim:
        raise ValueError(
            f"observations must be (n, {network.obs_dim}), got "
            f"{observations.shape}"
        )
    target = rule.flat()
    if target.size != network.action_dim:
        raise ValueError(
            f"rule has {target.size} parameters, network expects "
            f"{network.action_dim}"
        )
    optimizer = Adam.for_params(network.trunk.params, learning_rate)
    n = observations.shape[0]
    final_mse = np.inf
    for _ in range(epochs):
        idx = rng.permutation(n)[: min(batch_size, n)]
        batch = observations[idx]
        mu, cache = network.trunk.forward(batch)
        err = mu - target[None, :]
        final_mse = float(np.mean(err**2))
        grad_mu = 2.0 * err / err.size
        grads = network.trunk.backward(cache, grad_mu)
        updates = optimizer.step(grads)
        for key, delta in updates.items():
            network.trunk.params[key] += delta
    return final_mse
