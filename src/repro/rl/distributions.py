"""Action distributions with analytic gradients.

:class:`DiagGaussian` implements the diagonal Gaussian used by the
paper's PPO policy (mean from the network, free log-std). All quantities
PPO needs — log-probabilities, entropy, KL divergence — are provided
together with their partial derivatives w.r.t. the distribution
parameters, so the trainer can chain them through the network backward
pass.

:class:`DirichletBlocks` implements the paper's *negative ablation*: an
upper-level policy that outputs simplex-valued actions directly through
per-state Dirichlet distributions ("we found that performance was
significantly worse"). The action vector is a concatenation of ``S^d``
independent Dirichlet(d) blocks, one per sampled-state combination.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma, gammaln, polygamma

from repro.utils.rng import as_generator

__all__ = ["DiagGaussian", "DirichletBlocks"]

_LOG_2PI = float(np.log(2.0 * np.pi))


class DiagGaussian:
    """Stateless helpers for factorized Gaussian policies.

    All methods take batched parameters ``mu, log_std`` of shape
    ``(n, A)`` and return per-sample values of shape ``(n,)`` (or
    parameter-shaped gradients).
    """

    @staticmethod
    def sample(
        mu: np.ndarray, log_std: np.ndarray, rng=None
    ) -> np.ndarray:
        rng = as_generator(rng)
        eps = rng.standard_normal(mu.shape)
        return mu + np.exp(log_std) * eps

    @staticmethod
    def log_prob(
        actions: np.ndarray, mu: np.ndarray, log_std: np.ndarray
    ) -> np.ndarray:
        z = (actions - mu) / np.exp(log_std)
        return -0.5 * (z**2 + _LOG_2PI).sum(axis=-1) - log_std.sum(axis=-1)

    @staticmethod
    def log_prob_grads(
        actions: np.ndarray, mu: np.ndarray, log_std: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(d logp / d mu, d logp / d log_std)``, each ``(n, A)``."""
        inv_var = np.exp(-2.0 * log_std)
        diff = actions - mu
        d_mu = diff * inv_var
        d_log_std = diff**2 * inv_var - 1.0
        return d_mu, d_log_std

    @staticmethod
    def entropy(log_std: np.ndarray) -> np.ndarray:
        return (log_std + 0.5 * (_LOG_2PI + 1.0)).sum(axis=-1)

    @staticmethod
    def entropy_grad_log_std(log_std: np.ndarray) -> np.ndarray:
        """``d entropy / d log_std`` — identically one."""
        return np.ones_like(log_std)

    @staticmethod
    def kl(
        mu_old: np.ndarray,
        log_std_old: np.ndarray,
        mu_new: np.ndarray,
        log_std_new: np.ndarray,
    ) -> np.ndarray:
        """``KL(old || new)`` per sample (the direction RLlib penalizes)."""
        var_old = np.exp(2.0 * log_std_old)
        var_new = np.exp(2.0 * log_std_new)
        term = (
            log_std_new
            - log_std_old
            + (var_old + (mu_old - mu_new) ** 2) / (2.0 * var_new)
            - 0.5
        )
        return term.sum(axis=-1)

    @staticmethod
    def kl_grads_new(
        mu_old: np.ndarray,
        log_std_old: np.ndarray,
        mu_new: np.ndarray,
        log_std_new: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gradients of ``KL(old || new)`` w.r.t. the *new* parameters."""
        var_old = np.exp(2.0 * log_std_old)
        var_new = np.exp(2.0 * log_std_new)
        d_mu_new = (mu_new - mu_old) / var_new
        d_log_std_new = 1.0 - (var_old + (mu_old - mu_new) ** 2) / var_new
        return d_mu_new, d_log_std_new


class DirichletBlocks:
    """Concatenated independent Dirichlet blocks (paper's ablation head).

    The network emits one concentration logit per action component; the
    concentrations are ``alpha = softplus(logit) + 1`` (the ``+1`` keeps
    the density bounded, mirroring common practice and RLlib's Dirichlet
    action distribution). The action is the concatenation of
    ``num_blocks`` independent draws ``x_b ~ Dir(alpha_b)``, each of size
    ``block_size`` — i.e. already a valid decision-rule table.
    """

    def __init__(self, num_blocks: int, block_size: int) -> None:
        if num_blocks < 1 or block_size < 2:
            raise ValueError("need num_blocks >= 1 and block_size >= 2")
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.flat_dim = num_blocks * block_size

    # -- parameterization ------------------------------------------------
    @staticmethod
    def softplus(x: np.ndarray) -> np.ndarray:
        # Numerically stable softplus.
        return np.logaddexp(x, 0.0)

    def concentrations(self, logits: np.ndarray) -> np.ndarray:
        if logits.shape[-1] != self.flat_dim:
            raise ValueError(
                f"logits must end with dim {self.flat_dim}, got {logits.shape}"
            )
        return self.softplus(logits) + 1.0

    def _blocked(self, flat: np.ndarray) -> np.ndarray:
        return flat.reshape(*flat.shape[:-1], self.num_blocks, self.block_size)

    # -- sampling / densities ---------------------------------------------
    def sample(self, logits: np.ndarray, rng=None, floor: float = 1e-8) -> np.ndarray:
        rng = as_generator(rng)
        alpha = self._blocked(self.concentrations(logits))
        gamma_draws = rng.gamma(shape=alpha)
        gamma_draws = np.maximum(gamma_draws, floor)
        x = gamma_draws / gamma_draws.sum(axis=-1, keepdims=True)
        return x.reshape(*logits.shape[:-1], self.flat_dim)

    def log_prob(self, actions: np.ndarray, logits: np.ndarray) -> np.ndarray:
        alpha = self._blocked(self.concentrations(logits))
        x = np.clip(self._blocked(actions), 1e-12, 1.0)
        per_block = (
            gammaln(alpha.sum(axis=-1))
            - gammaln(alpha).sum(axis=-1)
            + ((alpha - 1.0) * np.log(x)).sum(axis=-1)
        )
        return per_block.sum(axis=-1)

    def log_prob_grad_logits(
        self, actions: np.ndarray, logits: np.ndarray
    ) -> np.ndarray:
        """``d logp / d logits`` (chain rule through softplus)."""
        alpha = self._blocked(self.concentrations(logits))
        x = np.clip(self._blocked(actions), 1e-12, 1.0)
        alpha0 = alpha.sum(axis=-1, keepdims=True)
        d_alpha = digamma(alpha0) - digamma(alpha) + np.log(x)
        # softplus'(logit) = sigmoid(logit)
        sig = 1.0 / (1.0 + np.exp(-self._blocked(logits)))
        grad = d_alpha * sig
        return grad.reshape(*logits.shape[:-1], self.flat_dim)

    def entropy(self, logits: np.ndarray) -> np.ndarray:
        alpha = self._blocked(self.concentrations(logits))
        alpha0 = alpha.sum(axis=-1)
        k = self.block_size
        log_beta = gammaln(alpha).sum(axis=-1) - gammaln(alpha0)
        ent = (
            log_beta
            + (alpha0 - k) * digamma(alpha0)
            - ((alpha - 1.0) * digamma(alpha)).sum(axis=-1)
        )
        return ent.sum(axis=-1)

    def kl(self, logits_old: np.ndarray, logits_new: np.ndarray) -> np.ndarray:
        """``KL(old || new)`` summed over blocks."""
        a = self._blocked(self.concentrations(logits_old))
        b = self._blocked(self.concentrations(logits_new))
        a0 = a.sum(axis=-1, keepdims=True)
        term = (
            gammaln(a0[..., 0])
            - gammaln(a).sum(axis=-1)
            - gammaln(b.sum(axis=-1))
            + gammaln(b).sum(axis=-1)
            + ((a - b) * (digamma(a) - digamma(a0))).sum(axis=-1)
        )
        return term.sum(axis=-1)

    def kl_grad_logits_new(
        self, logits_old: np.ndarray, logits_new: np.ndarray
    ) -> np.ndarray:
        """``d KL(old || new) / d logits_new``."""
        a = self._blocked(self.concentrations(logits_old))
        b = self._blocked(self.concentrations(logits_new))
        a0 = a.sum(axis=-1, keepdims=True)
        b0 = b.sum(axis=-1, keepdims=True)
        # d/db_i [ -lgamma(b0) + sum lgamma(b_j) - (a_i - b_i)(psi(a_i)-psi(a0)) ]
        d_b = -digamma(b0) + digamma(b) - (digamma(a) - digamma(a0))
        sig = 1.0 / (1.0 + np.exp(-self._blocked(logits_new)))
        grad = d_b * sig
        return grad.reshape(*logits_new.shape[:-1], self.flat_dim)

    def mean_action(self, logits: np.ndarray) -> np.ndarray:
        """Deterministic action: per-block Dirichlet mean ``alpha / alpha0``."""
        alpha = self._blocked(self.concentrations(logits))
        mean = alpha / alpha.sum(axis=-1, keepdims=True)
        return mean.reshape(*logits.shape[:-1], self.flat_dim)

    def fisher_diag(self, logits: np.ndarray) -> np.ndarray:  # pragma: no cover
        """Diagonal of the per-block Fisher information (diagnostics)."""
        alpha = self._blocked(self.concentrations(logits))
        alpha0 = alpha.sum(axis=-1, keepdims=True)
        diag = polygamma(1, alpha) - polygamma(1, alpha0)
        return diag.reshape(*logits.shape[:-1], self.flat_dim)
