"""Markov-modulated arrival intensity (paper Eq. 1 and Eq. 32-33).

The per-queue arrival intensity ``λ_t`` follows an exogenous
discrete-time Markov chain over a finite set of levels (the paper uses
two: high 0.9 and low 0.6 with switching probabilities 0.2 and 0.5),
modelling e.g. diurnal load variation. The chain is shared by the
mean-field MDP and the finite system; the *system-wide* job arrival rate
is ``M · λ_t``.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.analytic import mmpp_stationary_distribution
from repro.utils.rng import as_generator

__all__ = ["MarkovModulatedRate", "ScriptedRate"]


class MarkovModulatedRate:
    """Finite-level modulating chain for the arrival intensity.

    Parameters
    ----------
    levels : array_like
        Arrival-intensity value of each mode, length ``K``; all
        positive.
    transition_matrix : array_like
        Row-stochastic ``K x K`` matrix ``P_λ``; ``P[i, j]`` is the
        probability of switching from mode ``i`` to mode ``j`` at the
        next decision epoch.
    initial_distribution : array_like, optional
        Distribution of the initial mode; defaults to uniform, matching
        the paper's ``λ_0 ~ Unif({λ_h, λ_l})``.

    See Also
    --------
    repro.queueing.workloads : deterministic non-stationary profiles
        (diurnal, flash crowd, trace replay) behind the same interface.
    """

    def __init__(
        self,
        levels,
        transition_matrix,
        initial_distribution=None,
    ) -> None:
        self.levels = np.asarray(levels, dtype=np.float64)
        if self.levels.ndim != 1 or self.levels.size < 1:
            raise ValueError("levels must be a non-empty 1-D array")
        if np.any(self.levels <= 0):
            raise ValueError("arrival levels must be positive")
        self.transition_matrix = np.asarray(transition_matrix, dtype=np.float64)
        k = self.levels.size
        if self.transition_matrix.shape != (k, k):
            raise ValueError(
                f"transition matrix must be ({k}, {k}), "
                f"got {self.transition_matrix.shape}"
            )
        if np.any(self.transition_matrix < 0) or not np.allclose(
            self.transition_matrix.sum(axis=1), 1.0
        ):
            raise ValueError("transition matrix rows must be distributions")
        if initial_distribution is None:
            initial_distribution = np.full(k, 1.0 / k)
        self.initial_distribution = np.asarray(initial_distribution, dtype=np.float64)
        if self.initial_distribution.shape != (k,):
            raise ValueError("initial distribution has wrong shape")
        if np.any(self.initial_distribution < 0) or not np.isclose(
            self.initial_distribution.sum(), 1.0
        ):
            raise ValueError("initial distribution must be a distribution")

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: SystemConfig) -> "MarkovModulatedRate":
        """Two-level chain of Eq. (32)-(33): levels ``(λ_h, λ_l)``.

        Mode 0 is *high*, mode 1 is *low*; ``P(h→l) = p_high_to_low`` and
        ``P(l→h) = p_low_to_high``.
        """
        p_hl = config.p_high_to_low
        p_lh = config.p_low_to_high
        return cls(
            levels=[config.arrival_rate_high, config.arrival_rate_low],
            transition_matrix=[[1.0 - p_hl, p_hl], [p_lh, 1.0 - p_lh]],
        )

    @classmethod
    def constant(cls, level: float) -> "MarkovModulatedRate":
        """Degenerate single-mode chain (useful for analytic checks)."""
        return cls(levels=[level], transition_matrix=[[1.0]])

    # ------------------------------------------------------------------
    @property
    def num_modes(self) -> int:
        """Number of modes ``K`` of the modulating chain."""
        return int(self.levels.size)

    def rate(self, mode: int) -> float:
        """Arrival intensity ``λ`` carried by ``mode``."""
        return float(self.levels[mode])

    def sample_initial_mode(self, rng=None) -> int:
        """Draw the initial mode from the initial distribution.

        Parameters
        ----------
        rng : optional
            Seed or :class:`numpy.random.Generator`.

        Returns
        -------
        int
            Mode index in ``[0, K)``.
        """
        rng = as_generator(rng)
        return int(rng.choice(self.num_modes, p=self.initial_distribution))

    def step_mode(self, mode: int, rng=None) -> int:
        """Advance the chain one decision epoch from ``mode``.

        Parameters
        ----------
        mode : int
            Current mode index (range-checked).
        rng : optional
            Seed or :class:`numpy.random.Generator`.

        Returns
        -------
        int
            The next mode, drawn from row ``mode`` of the transition
            matrix.
        """
        if not 0 <= mode < self.num_modes:
            raise ValueError(f"mode {mode} out of range [0, {self.num_modes})")
        rng = as_generator(rng)
        return int(rng.choice(self.num_modes, p=self.transition_matrix[mode]))

    # -- batched interface (replica-vectorized environments) -----------
    def sample_initial_modes_batch(self, count: int, rng=None) -> np.ndarray:
        """Independent initial modes for ``count`` replicas (``(E,)``).

        One uniform draw per replica against the initial-distribution
        CDF — the batched environments use this instead of ``count``
        :meth:`sample_initial_mode` calls.

        Parameters
        ----------
        count : int
            Replica count ``E`` (>= 1).
        rng : optional
            Seed or :class:`numpy.random.Generator`.

        Returns
        -------
        ndarray
            Mode indices, shape ``(E,)``.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        rng = as_generator(rng)
        cum = np.cumsum(self.initial_distribution)
        cum[-1] = 1.0
        return (rng.random(count)[:, None] > cum[None, :]).sum(axis=1)

    def step_modes_batch(self, modes: np.ndarray, rng=None) -> np.ndarray:
        """Advance every replica's mode chain independently.

        Parameters
        ----------
        modes : ndarray
            Current per-replica modes, shape ``(E,)`` (range-checked).
        rng : optional
            Seed or :class:`numpy.random.Generator`.

        Returns
        -------
        ndarray
            Next modes, shape ``(E,)`` — one inverse-CDF draw per
            replica.
        """
        modes = np.asarray(modes)
        if modes.min(initial=0) < 0 or modes.max(initial=0) >= self.num_modes:
            raise ValueError(f"modes out of range [0, {self.num_modes})")
        rng = as_generator(rng)
        cum = np.cumsum(self.transition_matrix, axis=1)
        cum[:, -1] = 1.0
        return (rng.random(modes.size)[:, None] > cum[modes]).sum(axis=1)

    def replica(self) -> "MarkovModulatedRate":
        """Arrival process for an independent environment clone.

        The base chain is memoryless, so clones can safely share one
        instance; stateful subclasses (e.g. :class:`ScriptedRate`'s
        replay cursor) override this to return a fresh copy.
        """
        return self

    def stationary_distribution(self) -> np.ndarray:
        """Stationary mode distribution of the modulating chain."""
        return mmpp_stationary_distribution(self.transition_matrix)

    def stationary_mean_rate(self) -> float:
        """Long-run mean intensity ``E[λ_t]`` (sets the offered load ρ)."""
        return float(self.stationary_distribution() @ self.levels)

    def max_rate(self) -> float:
        """Largest level — the propagator tabulation bound."""
        return float(self.levels.max())

    def simulate_modes(self, num_steps: int, rng=None) -> np.ndarray:
        """Sample a mode trajectory of length ``num_steps`` (incl. t=0).

        Parameters
        ----------
        num_steps : int
            Trajectory length; 0 returns an empty array.
        rng : optional
            Seed or :class:`numpy.random.Generator`.

        Returns
        -------
        ndarray
            Mode indices, shape ``(num_steps,)`` — the scripted input
            for :class:`ScriptedRate` / Theorem-1 replays.
        """
        rng = as_generator(rng)
        modes = np.empty(num_steps, dtype=np.intp)
        if num_steps == 0:
            return modes
        modes[0] = self.sample_initial_mode(rng)
        for t in range(1, num_steps):
            modes[t] = self.step_mode(int(modes[t - 1]), rng)
        return modes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MarkovModulatedRate(levels={self.levels.tolist()}, "
            f"modes={self.num_modes})"
        )


class ScriptedRate(MarkovModulatedRate):
    """Arrival process that replays a fixed mode sequence.

    Theorem 1 conditions on the arrival-rate sequence ("non-random
    ``λ^{N,M}_t = λ^M_t = λ_t``"); the convergence analysis therefore
    needs the mean-field and finite systems to see *identical* mode
    trajectories. This subclass replays a given sequence (repeating the
    final mode beyond its end) while keeping the full
    :class:`MarkovModulatedRate` interface.

    Parameters
    ----------
    levels : array_like
        Arrival-intensity value of each mode, length ``K``.
    mode_sequence : array_like
        Mode indices to replay, in ``[0, K)``; the final mode repeats
        past the end.
    """

    #: Replay-irrelevant mutable state: environments reset the cursor
    #: before use, so it stays out of the experiment-store fingerprint.
    __fingerprint_exclude__ = ("_cursor",)

    def __init__(self, levels, mode_sequence) -> None:
        levels = np.asarray(levels, dtype=np.float64)
        k = levels.size
        # The transition matrix is irrelevant for a scripted chain, but the
        # base class requires a valid one.
        super().__init__(levels, np.eye(k))
        self._sequence = np.asarray(mode_sequence, dtype=np.intp)
        if self._sequence.ndim != 1 or self._sequence.size < 1:
            raise ValueError("mode_sequence must be a non-empty 1-D array")
        if self._sequence.min() < 0 or self._sequence.max() >= k:
            raise ValueError("mode_sequence entries out of range")
        self._cursor = 0

    @classmethod
    def from_process(
        cls, process: MarkovModulatedRate, num_steps: int, rng=None
    ) -> "ScriptedRate":
        """Freeze one random trajectory of ``process``.

        Parameters
        ----------
        process : MarkovModulatedRate
            Chain to sample the trajectory from.
        num_steps : int
            Trajectory length.
        rng : optional
            Seed or :class:`numpy.random.Generator`.
        """
        modes = process.simulate_modes(num_steps, rng)
        return cls(process.levels, modes)

    def sample_initial_mode(self, rng=None) -> int:
        self._cursor = 0
        return int(self._sequence[0])

    def step_mode(self, mode: int, rng=None) -> int:
        self._cursor = min(self._cursor + 1, self._sequence.size - 1)
        return int(self._sequence[self._cursor])

    # A scripted chain replays ONE trajectory (Theorem 1 conditions on
    # the arrival sequence), so every replica of a batched environment
    # sees the same mode and the cursor advances once per epoch.
    def sample_initial_modes_batch(self, count: int, rng=None) -> np.ndarray:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return np.full(count, self.sample_initial_mode(rng), dtype=np.intp)

    def step_modes_batch(self, modes: np.ndarray, rng=None) -> np.ndarray:
        modes = np.asarray(modes)
        return np.full(
            modes.size, self.step_mode(int(modes[0]), rng), dtype=np.intp
        )

    def replica(self) -> "ScriptedRate":
        """Fresh replay of the same trajectory (own cursor)."""
        return ScriptedRate(self.levels, self._sequence)

    @property
    def mode_sequence(self) -> np.ndarray:
        """Copy of the scripted mode trajectory."""
        return self._sequence.copy()
