"""Non-stationary workload generators for streaming horizons.

The paper's arrival process is a two-level Markov-modulated chain
(Eq. 32-33). Production traffic adds *structured* non-stationarity on
top: diurnal ramps, flash crowds, and recorded traces — the regimes
"Learning and balancing unknown loads in large-scale systems"
(Goldsztajn et al.) motivates. This module layers those shapes on the
:class:`repro.queueing.arrivals.MarkovModulatedRate` interface, so every
environment (dense, graph, heterogeneous, delayed) and the streaming
engine consume them unchanged:

* :class:`DiurnalRate` — a sinusoidal day/night cycle, quantized onto a
  per-epoch level grid (piecewise-constant within epochs, exactly
  periodic, O(period) memory for any horizon).
* :class:`FlashCrowdRate` — baseline traffic with one spike: a linear
  ramp to a peak followed by a geometric decay back to baseline.
* :class:`TraceReplayRate` — replay a measured per-epoch rate series
  from a CSV or NPZ file, optionally looping.

All three are *deterministic profiles*: like
:class:`repro.queueing.arrivals.ScriptedRate` they advance one cursor
per epoch and broadcast the same level to every replica (the
non-stationarity is an exogenous, shared signal, not per-replica
noise). Memory is O(profile length), independent of the simulated
horizon — the property the streaming engine's O(1)-memory guarantee
builds on. See ``docs/workloads.md`` for the catalog and knobs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.queueing.arrivals import MarkovModulatedRate

__all__ = ["ProfileRate", "DiurnalRate", "FlashCrowdRate", "TraceReplayRate"]


class ProfileRate(MarkovModulatedRate):
    """Deterministic per-epoch rate profile behind the arrival-chain API.

    Parameters
    ----------
    levels : array_like
        Distinct positive rate values, length ``L``. Mode ``m`` carries
        rate ``levels[m]``.
    cyclic : bool
        Whether :meth:`mode_at` wraps past the profile end (periodic
        profiles) or clamps at the final entry (one-shot profiles that
        settle into a terminal level).

    Notes
    -----
    Subclasses implement :meth:`mode_at`, mapping an epoch index to a
    mode; the class supplies the cursor bookkeeping that makes the
    profile drop into any environment in place of a random chain. The
    mode is *shared* across replicas of a batched environment (one
    cursor advanced once per epoch), mirroring
    :class:`~repro.queueing.arrivals.ScriptedRate`.
    """

    #: The playback cursor is reset by every environment ``reset()``,
    #: so it never affects a run's random streams — keep it out of the
    #: experiment-store fingerprint (a shared instance mutated by one
    #: run must resolve the same cached shards on the next).
    __fingerprint_exclude__ = ("_cursor",)

    def __init__(self, levels, cyclic: bool) -> None:
        levels = np.asarray(levels, dtype=np.float64)
        # The base class requires a valid transition matrix; the profile
        # never consults it (modes are a function of the epoch index).
        super().__init__(levels, np.eye(levels.size))
        self.cyclic = bool(cyclic)
        self._cursor = 0

    # -- deterministic profile interface --------------------------------
    def mode_at(self, t: int) -> int:
        """Mode index at epoch ``t`` (deterministic)."""
        raise NotImplementedError

    def profile_length(self) -> int:
        """Epochs before the profile repeats (cyclic) or settles."""
        return self.num_modes

    def rate_at(self, t: int) -> float:
        """Arrival intensity at epoch ``t`` — the profile being replayed."""
        return float(self.levels[self.mode_at(int(t))])

    # -- arrival-chain API (cursor semantics like ScriptedRate) ---------
    def sample_initial_mode(self, rng=None) -> int:
        self._cursor = 0
        return self.mode_at(0)

    def step_mode(self, mode: int, rng=None) -> int:
        self._cursor += 1
        return self.mode_at(self._cursor)

    def sample_initial_modes_batch(self, count: int, rng=None) -> np.ndarray:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return np.full(count, self.sample_initial_mode(rng), dtype=np.intp)

    def step_modes_batch(self, modes: np.ndarray, rng=None) -> np.ndarray:
        modes = np.asarray(modes)
        return np.full(
            modes.size, self.step_mode(int(modes[0]), rng), dtype=np.intp
        )

    def simulate_modes(self, num_steps: int, rng=None) -> np.ndarray:
        """The (deterministic) mode trajectory of length ``num_steps``."""
        return np.asarray(
            [self.mode_at(t) for t in range(int(num_steps))], dtype=np.intp
        )

    def replica(self) -> "ProfileRate":
        """Fresh replay of the same profile (own cursor)."""
        import copy

        clone = copy.copy(self)
        clone._cursor = 0
        return clone

    # -- long-run statistics --------------------------------------------
    def stationary_distribution(self) -> np.ndarray:
        """Time-average mode occupancy over one profile period.

        Cyclic profiles average over one period; one-shot profiles are
        eventually constant, so all long-run mass sits on the terminal
        mode.
        """
        if not self.cyclic:
            weights = np.zeros(self.num_modes)
            weights[self.mode_at(self.profile_length() - 1)] = 1.0
            return weights
        modes = [self.mode_at(t) for t in range(self.profile_length())]
        return np.bincount(modes, minlength=self.num_modes) / len(modes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(levels={self.num_modes}, "
            f"cyclic={self.cyclic})"
        )


class DiurnalRate(ProfileRate):
    """Sinusoidal day/night arrival cycle.

    The intensity at epoch ``t`` is the sinusoid
    ``mean + amplitude * sin(2π (t + phase) / period)`` sampled at epoch
    starts (piecewise-constant within epochs, matching the
    frozen-rate epoch model).

    Parameters
    ----------
    mean : float
        Cycle-average per-queue arrival intensity.
    amplitude : float
        Peak deviation from the mean; must leave the trough positive.
    period : int
        Cycle length in epochs (one simulated "day").
    phase : float, optional
        Epoch offset of the cycle start (fractions allowed).
    """

    def __init__(
        self,
        mean: float,
        amplitude: float,
        period: int,
        phase: float = 0.0,
    ) -> None:
        period = int(period)
        if period < 2:
            raise ValueError(f"period must be >= 2 epochs, got {period}")
        if mean <= 0:
            raise ValueError(f"mean rate must be > 0, got {mean}")
        if not 0 <= amplitude < mean:
            raise ValueError(
                "amplitude must satisfy 0 <= amplitude < mean "
                f"(got amplitude={amplitude}, mean={mean})"
            )
        t = np.arange(period, dtype=np.float64)
        levels = mean + amplitude * np.sin(2.0 * np.pi * (t + phase) / period)
        super().__init__(levels, cyclic=True)
        self.mean = float(mean)
        self.amplitude = float(amplitude)
        self.period = period
        self.phase = float(phase)

    def mode_at(self, t: int) -> int:
        return int(t % self.period)

    def profile_length(self) -> int:
        return self.period


class FlashCrowdRate(ProfileRate):
    """Baseline traffic with one flash-crowd spike.

    The intensity holds at ``base_rate``, ramps linearly to
    ``peak_rate`` over ``ramp_epochs`` starting at ``spike_epoch``, then
    decays geometrically back toward baseline with per-epoch factor
    ``decay`` (clamped to baseline once within 1% of it). After the
    spike the profile is constant at baseline for any horizon.

    Parameters
    ----------
    base_rate : float
        Pre- and post-spike per-queue intensity.
    peak_rate : float
        Intensity at the top of the spike (may exceed the service rate —
        transient overload is the point of the scenario).
    spike_epoch : int
        Epoch at which the ramp starts.
    ramp_epochs : int
        Ramp duration; the peak is reached at ``spike_epoch + ramp_epochs``.
    decay : float, optional
        Per-epoch geometric decay factor of the excess over baseline.
    """

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        spike_epoch: int,
        ramp_epochs: int = 5,
        decay: float = 0.9,
    ) -> None:
        if base_rate <= 0:
            raise ValueError(f"base_rate must be > 0, got {base_rate}")
        if peak_rate <= base_rate:
            raise ValueError(
                f"peak_rate must exceed base_rate "
                f"(got {peak_rate} <= {base_rate})"
            )
        spike_epoch = int(spike_epoch)
        ramp_epochs = int(ramp_epochs)
        if spike_epoch < 0 or ramp_epochs < 1:
            raise ValueError("spike_epoch must be >= 0 and ramp_epochs >= 1")
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must lie in (0, 1), got {decay}")
        profile = [base_rate] * (spike_epoch + 1)
        for i in range(1, ramp_epochs + 1):
            profile.append(
                base_rate + (peak_rate - base_rate) * i / ramp_epochs
            )
        excess = peak_rate - base_rate
        while excess > 0.01 * base_rate:
            excess *= decay
            profile.append(base_rate + excess)
        profile.append(base_rate)  # terminal level: back to baseline
        super().__init__(np.asarray(profile), cyclic=False)
        self.base_rate = float(base_rate)
        self.peak_rate = float(peak_rate)
        self.spike_epoch = spike_epoch
        self.ramp_epochs = ramp_epochs
        self.decay = float(decay)

    def mode_at(self, t: int) -> int:
        return int(min(t, self.num_modes - 1))


class TraceReplayRate(ProfileRate):
    """Replay a measured per-epoch arrival-rate series.

    Parameters
    ----------
    rates : array_like
        One positive per-queue intensity per epoch.
    loop : bool, optional
        Wrap past the trace end (default) or hold the final value.

    Notes
    -----
    Memory is the trace length — bounded by the input file, independent
    of the simulated horizon. Build from files with :meth:`from_csv`
    (one column of rates, ``#`` comments and a non-numeric header row
    skipped) or :meth:`from_npz`.
    """

    def __init__(self, rates, loop: bool = True) -> None:
        rates = np.asarray(rates, dtype=np.float64).ravel()
        if rates.size < 1:
            raise ValueError("trace must contain at least one rate")
        super().__init__(rates, cyclic=bool(loop))
        self.loop = bool(loop)

    def mode_at(self, t: int) -> int:
        if self.loop:
            return int(t % self.num_modes)
        return int(min(t, self.num_modes - 1))

    @classmethod
    def from_csv(
        cls, path: str | Path, column: int = 0, loop: bool = True
    ) -> "TraceReplayRate":
        """Load a trace from a CSV file (one rate per row).

        Parameters
        ----------
        path : str or Path
            CSV file; ``#`` comment lines are skipped, and a single
            non-numeric header row is tolerated.
        column : int, optional
            Zero-based column holding the rates.
        """
        rates = []
        data_rows = 0
        for lineno, line in enumerate(
            Path(path).read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            data_rows += 1
            fields = line.split(",")
            if column >= len(fields):
                raise ValueError(
                    f"{path}:{lineno}: no column {column} in {line!r}"
                )
            try:
                rates.append(float(fields[column]))
            except ValueError:
                if data_rows == 1:  # header row
                    continue
                raise ValueError(
                    f"{path}:{lineno}: non-numeric rate {fields[column]!r}"
                ) from None
        if not rates:
            raise ValueError(f"{path}: no rates found in column {column}")
        return cls(np.asarray(rates), loop=loop)

    @classmethod
    def from_npz(
        cls, path: str | Path, key: str = "rates", loop: bool = True
    ) -> "TraceReplayRate":
        """Load a trace from an NPZ archive entry ``key``."""
        with np.load(path) as payload:
            if key not in payload:
                raise ValueError(
                    f"{path}: no array {key!r}; "
                    f"available: {sorted(payload.files)}"
                )
            rates = np.asarray(payload[key], dtype=np.float64)
        return cls(rates, loop=loop)
