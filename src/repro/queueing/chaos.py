"""Composable, deterministic degradation events for batched environments.

The paper's Figure-6 experiment violates one modeling assumption
(``N >> M``) and watches the policies cope; this module generalizes
that to "the world changed under you": a
:class:`DegradationSchedule` is a frozen list of epoch-anchored events
— server outages/restarts, capacity flaps, link failures — applied to
any batched environment (dense, graph, heterogeneous, delayed) under
any registered simulation backend.

Determinism contract
--------------------
Events are a pure function of the epoch index: applying a schedule
consumes **no random draws**, so the random streams of a chaos run are
the streams of the undisturbed run's layout — shard results remain
bit-identical for any worker count, and an **empty** schedule is
bit-identical to no schedule at all (benchmarked by
``benchmarks/bench_chaos.py``). Both facts follow from where the layer
hooks in: events mutate environment state *between* the kernel calls,
and the outage mask zeroes already-drawn frozen rates instead of
changing any draw shapes.

Failure semantics (see ``docs/serving.md``)
-------------------------------------------
* **Server outage** (:class:`ServerOutage`): the failed queues leave
  the ``active`` mask. Jobs queued there are either dropped
  (*queue-loss*, ``preserve_jobs=False`` — counted in the epoch's
  drop metrics) or water-filled into the least-loaded surviving
  queues (*queue-preservation*, reusing
  :func:`repro.serving.control.resize_queue_fleet`'s drain rule via
  :func:`water_fill`; jobs that find every surviving buffer full are
  counted as drops). Dispatchers are **not** told: the failed queue
  reads as empty in every snapshot, so routing keeps sending traffic
  there and that expected arrival mass is accounted as *blackholed*
  drops — stale-information herding into dead capacity is exactly the
  effect the chaos scenarios measure. A restart re-admits the queues,
  empty.
* **Capacity flap** (:class:`CapacityFlap`, :class:`CapacityProfile`):
  per-queue service rates are modulated multiplicatively — either a
  constant factor over an epoch interval, or an arbitrary
  :class:`repro.queueing.workloads.ProfileRate` replayed as a
  multiplier (the arrival-side machinery of arXiv:2012.10142 applied
  to the service side). Factors compose; rates are always rebuilt from
  the pristine base, so flap stacks never accumulate rounding drift.
* **Link failure / rewiring** (:class:`LinkFailure`,
  :class:`TopologyRewire`): on the graph backend the
  :class:`repro.queueing.topology.TopologySpec` neighbor array is
  swapped mid-stream. :func:`reroute_away` keeps the degree constant
  by deterministically re-pointing severed slots at the nearest
  surviving queues (arXiv:2312.12973's local-topology setting under
  partial link loss). The queues themselves stay up and drain their
  backlog; no mass is lost.

Mass conservation
-----------------
The layer never silently deletes work: every job removed from the
queue states by an event is either relocated within the states
(preservation) or reported through the step's ``info`` dict
(``chaos_event_drops`` for event-time losses, ``chaos_blackholed``
for arrival mass routed at inactive queues, ``chaos_drops`` for their
sum — which is included in ``drops_total``). The identity
``drops_total == drops_kernel + chaos_drops`` is property-tested in
``tests/test_chaos.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.queueing.topology import TopologySpec

if TYPE_CHECKING:
    from repro.queueing.arrivals import MarkovModulatedRate

__all__ = [
    "ServerOutage",
    "CapacityFlap",
    "CapacityProfile",
    "LinkFailure",
    "TopologyRewire",
    "DegradationSchedule",
    "ChaosState",
    "water_fill",
    "reroute_away",
    "parse_chaos_spec",
    "CHAOS_SPEC_GRAMMAR",
]


def water_fill(
    states: np.ndarray,
    jobs: np.ndarray,
    buffer_size: int,
    eligible: np.ndarray | None = None,
) -> np.ndarray:
    """Distribute ``jobs[r]`` units into the least-loaded eligible queues.

    The deterministic drain rule shared by
    :func:`repro.serving.control.resize_queue_fleet` and the
    queue-preservation outage path: replica by replica, one unit goes to
    every currently-lowest eligible queue (ties filled left to right)
    until the jobs run out or every eligible buffer is full. Mutates
    ``states`` in place and returns the per-replica overflow ``(E,)`` —
    total mass is conserved up to exactly that overflow.

    Parameters
    ----------
    states : ndarray
        Queue fillings ``(E, M)``, mutated in place.
    jobs : ndarray
        Units to place per replica, shape ``(E,)``.
    buffer_size : int
        Per-queue capacity ``B``.
    eligible : ndarray, optional
        Boolean mask ``(M,)`` of queues allowed to receive jobs;
        ``None`` admits every queue.
    """
    e = states.shape[0]
    overflow = np.zeros(e)
    if eligible is None:
        cols = np.arange(states.shape[1])
    else:
        cols = np.flatnonzero(eligible)
    if cols.size == 0:
        overflow[:] = np.asarray(jobs, dtype=np.float64)
        return overflow
    for r in range(e):
        row = states[r]
        remaining = int(jobs[r])
        while remaining > 0:
            open_idx = cols[row[cols] < buffer_size]
            if open_idx.size == 0:
                overflow[r] = float(remaining)
                break
            fill = row[open_idx]
            lowest = open_idx[fill == fill.min()]
            take = min(remaining, lowest.size)
            row[lowest[:take]] += 1
            remaining -= take
    return overflow


def reroute_away(
    topology: TopologySpec, queues: np.ndarray
) -> TopologySpec:
    """A same-degree topology with every link to ``queues`` re-pointed.

    Each severed neighbor slot is deterministically replaced by the
    surviving queue closest (circular index distance, ties to the lower
    index) to the row's surviving neighborhood — dispatchers keep local
    routing where possible and fall back to the nearest reachable
    capacity otherwise. Requires at least ``degree`` surviving queues so
    rows can stay duplicate-free.
    """
    failed = np.unique(np.asarray(queues, dtype=np.int64))
    if failed.size == 0:
        return topology
    m = topology.num_queues
    if failed.min() < 0 or failed.max() >= m:
        raise ValueError(f"queue indices must lie in [0, {m - 1}]")
    surviving = np.setdiff1d(np.arange(m, dtype=np.int64), failed)
    if surviving.size < topology.degree:
        raise ValueError(
            f"cannot reroute: only {surviving.size} queues survive but "
            f"every dispatcher needs {topology.degree} distinct neighbors"
        )
    failed_set = set(int(q) for q in failed)
    neighbors = topology.neighbors.copy()
    for row in neighbors:
        bad = [i for i, q in enumerate(row) if int(q) in failed_set]
        if not bad:
            continue
        kept = [int(q) for q in row if int(q) not in failed_set]
        anchors = kept if kept else [int(row[0])]
        # Candidates ranked by circular distance to the nearest kept
        # neighbor (or the original first slot when nothing survives
        # locally); ties break toward the lower queue index.
        diff = np.abs(surviving[:, None] - np.asarray(anchors)[None, :])
        dist = np.minimum(diff, m - diff).min(axis=1)
        order = surviving[np.lexsort((surviving, dist))]
        taken = set(kept)
        fresh = (int(q) for q in order if int(q) not in taken)
        for i in bad:
            row[i] = next(fresh)
    return TopologySpec(
        kind=f"{topology.kind}-rerouted", num_queues=m, neighbors=neighbors
    )


def _check_epoch(epoch: int, what: str) -> None:
    if int(epoch) < 0:
        raise ValueError(f"{what} must be >= 0, got {epoch}")


def _check_selection(queues, fraction, what: str) -> None:
    if queues is not None and fraction is not None:
        raise ValueError(f"{what}: pass queues or fraction, not both")
    if queues is not None:
        sel = tuple(int(q) for q in queues)
        if not sel:
            raise ValueError(f"{what}: queues must be non-empty")
        if len(set(sel)) != len(sel):
            raise ValueError(f"{what}: queues must be unique")
        if min(sel) < 0:
            raise ValueError(f"{what}: queue indices must be >= 0")
    if fraction is not None and not 0.0 < float(fraction) <= 1.0:
        raise ValueError(
            f"{what}: fraction must lie in (0, 1], got {fraction}"
        )


def _resolve_queues(
    queues: tuple[int, ...] | None,
    fraction: float | None,
    num_queues: int,
    what: str,
) -> np.ndarray:
    """Concrete sorted queue indices for one event at fleet size ``M``."""
    if queues is not None:
        sel = np.unique(np.asarray(queues, dtype=np.intp))
        if sel.max() >= num_queues:
            raise ValueError(
                f"{what} names queue {int(sel.max())} but the fleet has "
                f"{num_queues} queues"
            )
        return sel
    count = max(1, round(float(fraction) * num_queues))
    return np.arange(min(count, num_queues), dtype=np.intp)


@dataclass(frozen=True)
class ServerOutage:
    """Queues fail at ``epoch`` and (optionally) restart empty later.

    Exactly one of ``queues`` (explicit indices) or ``fraction`` (the
    first ``max(1, round(f·M))`` queues, resolved at bind time so
    ``--queues`` overrides stay valid) selects the victims.
    ``preserve_jobs`` picks queue-preservation over queue-loss.
    """

    epoch: int
    queues: tuple[int, ...] | None = None
    fraction: float | None = None
    restart_epoch: int | None = None
    preserve_jobs: bool = False

    def __post_init__(self) -> None:
        _check_epoch(self.epoch, "outage epoch")
        if self.queues is None and self.fraction is None:
            raise ValueError("ServerOutage needs queues or fraction")
        _check_selection(self.queues, self.fraction, "ServerOutage")
        if (
            self.restart_epoch is not None
            and self.restart_epoch <= self.epoch
        ):
            raise ValueError(
                f"restart_epoch {self.restart_epoch} must come after the "
                f"outage epoch {self.epoch}"
            )


@dataclass(frozen=True)
class CapacityFlap:
    """Service rates of the selected queues scale by ``factor`` over
    ``[epoch, end_epoch)`` (``end_epoch=None`` holds it forever).

    ``queues=None`` with ``fraction=None`` flaps the whole fleet.
    Overlapping flaps multiply; rates are rebuilt from the pristine
    base every epoch, so stacking never drifts.
    """

    epoch: int
    factor: float
    queues: tuple[int, ...] | None = None
    fraction: float | None = None
    end_epoch: int | None = None

    def __post_init__(self) -> None:
        _check_epoch(self.epoch, "flap epoch")
        if not self.factor > 0.0:
            raise ValueError(
                f"flap factor must be > 0 (rates stay positive), got "
                f"{self.factor}"
            )
        _check_selection(self.queues, self.fraction, "CapacityFlap")
        if self.end_epoch is not None and self.end_epoch <= self.epoch:
            raise ValueError(
                f"end_epoch {self.end_epoch} must come after epoch "
                f"{self.epoch}"
            )


@dataclass(frozen=True)
class CapacityProfile:
    """Replay a :class:`~repro.queueing.workloads.ProfileRate` as a
    service-rate *multiplier* from ``epoch`` on.

    The multiplier at epoch ``t >= epoch`` is
    ``profile.rate_at(t - epoch)`` — the existing deterministic
    arrival-profile interface applied to the service side; levels must
    be positive.
    """

    profile: "MarkovModulatedRate"
    queues: tuple[int, ...] | None = None
    fraction: float | None = None
    epoch: int = 0

    def __post_init__(self) -> None:
        _check_epoch(self.epoch, "profile epoch")
        if not hasattr(self.profile, "rate_at"):
            raise ValueError(
                "CapacityProfile needs a deterministic profile exposing "
                f"rate_at(t) (a ProfileRate), got {self.profile!r}"
            )
        levels = np.asarray(self.profile.levels, dtype=np.float64)
        if levels.min() <= 0.0:
            raise ValueError(
                "capacity multipliers must stay > 0; the profile has "
                f"min level {levels.min()}"
            )
        _check_selection(self.queues, self.fraction, "CapacityProfile")


@dataclass(frozen=True)
class LinkFailure:
    """All dispatcher links to the selected queues fail at ``epoch``
    (and are restored at ``restore_epoch``); graph backend only.

    Severed neighbor slots are re-pointed via :func:`reroute_away`;
    the queues keep serving their backlog.
    """

    epoch: int
    queues: tuple[int, ...] | None = None
    fraction: float | None = None
    restore_epoch: int | None = None

    def __post_init__(self) -> None:
        _check_epoch(self.epoch, "link-failure epoch")
        if self.queues is None and self.fraction is None:
            raise ValueError("LinkFailure needs queues or fraction")
        _check_selection(self.queues, self.fraction, "LinkFailure")
        if (
            self.restore_epoch is not None
            and self.restore_epoch <= self.epoch
        ):
            raise ValueError(
                f"restore_epoch {self.restore_epoch} must come after the "
                f"failure epoch {self.epoch}"
            )


@dataclass(frozen=True)
class TopologyRewire:
    """Swap the access graph for an explicit topology at ``epoch``;
    graph backend only. Degree may change (the slot draw adapts)."""

    epoch: int
    topology: TopologySpec

    def __post_init__(self) -> None:
        _check_epoch(self.epoch, "rewire epoch")
        if not isinstance(self.topology, TopologySpec):
            raise ValueError(
                f"TopologyRewire needs a TopologySpec, got "
                f"{self.topology!r}"
            )


_TOPOLOGY_EVENTS = (LinkFailure, TopologyRewire)
_CAPACITY_EVENTS = (CapacityFlap, CapacityProfile)
_EVENT_TYPES = (ServerOutage, *_CAPACITY_EVENTS, *_TOPOLOGY_EVENTS)


@dataclass(frozen=True)
class DegradationSchedule:
    """An immutable, epoch-anchored list of degradation events.

    The schedule is part of the environment's construction kwargs, so
    it fingerprints into :mod:`repro.store` shard keys exactly like an
    arrival process or a topology — chaos sweeps cache and resume
    bit-identically.
    """

    events: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for ev in events:
            if not isinstance(ev, _EVENT_TYPES):
                names = ", ".join(t.__name__ for t in _EVENT_TYPES)
                raise ValueError(
                    f"unknown degradation event {ev!r}; expected one of "
                    f"{names}"
                )
        object.__setattr__(self, "events", events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def validate_for(
        self, num_queues: int | None = None, supports_topology: bool = False
    ) -> None:
        """Fail fast — before any simulation — on schedules that cannot
        bind: topology events on a non-graph environment, queue indices
        or outage timelines that do not fit a fleet of ``num_queues``.
        """
        if not supports_topology:
            for ev in self.events:
                if isinstance(ev, _TOPOLOGY_EVENTS):
                    raise ValueError(
                        f"{type(ev).__name__} events need the graph "
                        "environment (a scenario with a topology); this "
                        "environment has none"
                    )
        if num_queues is not None:
            self._resolved_events(int(num_queues))

    # -- bind-time resolution -------------------------------------------
    def _resolved_events(self, m: int) -> list[tuple]:
        """``(event, resolved queue indices | None)`` pairs, validating
        selections and the outage timeline against fleet size ``m``."""
        resolved: list[tuple] = []
        for ev in self.events:
            idx = None
            if isinstance(ev, TopologyRewire):
                if ev.topology.num_queues != m:
                    raise ValueError(
                        f"rewire topology covers {ev.topology.num_queues} "
                        f"queues, the fleet has {m}"
                    )
            elif ev.queues is not None or ev.fraction is not None:
                idx = _resolve_queues(
                    ev.queues, ev.fraction, m, type(ev).__name__
                )
            resolved.append((ev, idx))
        # Replay the outage timeline: the fleet must never go fully dark
        # (the frozen-rate model needs somewhere for service to happen).
        timeline: dict[int, list[tuple[str, np.ndarray]]] = {}
        for ev, idx in resolved:
            if not isinstance(ev, ServerOutage):
                continue
            timeline.setdefault(ev.epoch, []).append(("fail", idx))
            if ev.restart_epoch is not None:
                timeline.setdefault(ev.restart_epoch, []).append(
                    ("restart", idx)
                )
        active = np.ones(m, dtype=bool)
        for t in sorted(timeline):
            for kind, idx in timeline[t]:
                active[idx] = kind == "restart"
            if not active.any():
                raise ValueError(
                    f"outage schedule kills the whole fleet at epoch {t}; "
                    "at least one queue must stay active"
                )
        return resolved

    def bind(self, env) -> "ChaosState":
        """Per-environment runtime state (called by ``env.reset``)."""
        return ChaosState(self, env)


class ChaosState:
    """Mutable per-run state of one bound :class:`DegradationSchedule`.

    Holds the ``active`` mask, the pristine service rates and topology,
    and the epoch-indexed discrete-event table. Rebuilt on every
    ``env.reset`` — never shared across environments and never part of
    a store key (the immutable schedule is what fingerprints).
    """

    def __init__(self, schedule: DegradationSchedule, env) -> None:
        m = env.config.num_queues
        self.schedule = schedule
        self.active = np.ones(m, dtype=bool)
        self.base_service_rates = np.asarray(
            env.service_rates, dtype=np.float64
        ).copy()
        self._all_active = True
        self._mult = np.ones(m)
        self._pristine_topology = getattr(env, "topology", None)
        self._link_mask = np.zeros(m, dtype=bool)
        self._capacity: list[tuple] = []
        self._discrete: dict[int, list[tuple[str, object, object]]] = {}
        resolved = schedule._resolved_events(m)
        for ev, idx in resolved:
            if isinstance(ev, _TOPOLOGY_EVENTS) and (
                self._pristine_topology is None
            ):
                raise ValueError(
                    f"{type(ev).__name__} events need the graph "
                    f"environment, got {type(env).__name__}"
                )
            if isinstance(ev, ServerOutage):
                self._discrete.setdefault(ev.epoch, []).append(
                    ("fail", ev, idx)
                )
                if ev.restart_epoch is not None:
                    self._discrete.setdefault(ev.restart_epoch, []).append(
                        ("restart", ev, idx)
                    )
            elif isinstance(ev, LinkFailure):
                self._discrete.setdefault(ev.epoch, []).append(
                    ("links-fail", ev, idx)
                )
                if ev.restore_epoch is not None:
                    self._discrete.setdefault(ev.restore_epoch, []).append(
                        ("links-restore", ev, idx)
                    )
            elif isinstance(ev, TopologyRewire):
                self._discrete.setdefault(ev.epoch, []).append(
                    ("rewire", ev, None)
                )
            else:  # capacity modulation, evaluated every epoch
                self._capacity.append((ev, idx))

    # -- per-epoch hooks -------------------------------------------------
    def begin_epoch(self, env, t: int) -> tuple[np.ndarray, bool]:
        """Apply every event anchored at epoch ``t``.

        Mutates the environment in place (states, service rates,
        topology) and returns ``(event_drops, rates_changed)``:
        per-replica job mass lost *at* the events (queue-loss mass plus
        preservation overflow) and whether ``env.service_rates``
        changed this epoch.
        """
        event_drops = np.zeros(env.num_replicas)
        for kind, ev, idx in self._discrete.get(t, ()):
            if kind == "fail":
                newly = idx[self.active[idx]]
                if newly.size:
                    self.active[newly] = False
                    self._all_active = False
                    moved = env._states[:, newly].sum(axis=1)
                    env._states[:, newly] = 0
                    if ev.preserve_jobs:
                        event_drops += water_fill(
                            env._states,
                            moved,
                            env.config.buffer_size,
                            eligible=self.active,
                        )
                    else:
                        event_drops += moved.astype(np.float64)
            elif kind == "restart":
                self.active[idx] = True
                self._all_active = bool(self.active.all())
            elif kind == "links-fail":
                self._link_mask[idx] = True
                env.topology = reroute_away(
                    self._pristine_topology, np.flatnonzero(self._link_mask)
                )
            elif kind == "links-restore":
                self._link_mask[idx] = False
                failed = np.flatnonzero(self._link_mask)
                env.topology = (
                    reroute_away(self._pristine_topology, failed)
                    if failed.size
                    else self._pristine_topology
                )
            else:  # rewire
                env.topology = ev.topology
        rates_changed = False
        if self._capacity:
            mult = np.ones(self._mult.size)
            for ev, idx in self._capacity:
                if isinstance(ev, CapacityFlap):
                    if ev.epoch <= t and (
                        ev.end_epoch is None or t < ev.end_epoch
                    ):
                        factor = ev.factor
                    else:
                        continue
                else:  # CapacityProfile
                    if t < ev.epoch:
                        continue
                    factor = float(ev.profile.rate_at(t - ev.epoch))
                if idx is None:
                    mult *= factor
                else:
                    mult[idx] *= factor
            if not np.array_equal(mult, self._mult):
                self._mult = mult
                env.service_rates = self.base_service_rates * mult
                rates_changed = True
        return event_drops, rates_changed

    def mask_rates(
        self, rates: np.ndarray, delta_t: float
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Zero the frozen rates at inactive queues for the serve stage.

        Returns ``(rates_for_serve, blackholed)`` where ``blackholed``
        is the per-replica expected arrival mass ``(E,)`` routed at
        inactive queues this epoch (``None`` when the fleet is whole) —
        the frozen-rate model counts arrivals in expectation, so the
        blackholed mass is accounted the same way.
        """
        if self._all_active:
            return rates, None
        inactive = ~self.active
        blackholed = rates[:, inactive].sum(axis=1) * delta_t
        masked = rates.copy()
        masked[:, inactive] = 0.0
        return masked, blackholed


# ---------------------------------------------------------------------------
# The CLI mini-grammar (``--chaos``)
# ---------------------------------------------------------------------------
CHAOS_SPEC_GRAMMAR = """\
events are ';'-separated:  KIND@START[-END][:key=value,...]
  outage@40-80:frac=0.1,mode=loss     fail queues at 40, restart at 80
  outage@40:queues=0..4+9,mode=preserve
  flap@20-60:factor=0.5,frac=0.5      halve service rates over [20, 60)
  links@30-90:frac=0.1                sever links (graph scenarios only)
keys: queues=A..B+C (index set), frac=F (first round(F*M) queues),
      mode=loss|preserve (outage), factor=X (flap; > 0)\
"""


def _parse_queue_set(text: str, what: str) -> tuple[int, ...]:
    out: list[int] = []
    for part in text.split("+"):
        part = part.strip()
        if ".." in part:
            lo, _, hi = part.partition("..")
            try:
                lo_i, hi_i = int(lo), int(hi)
            except ValueError:
                raise ValueError(
                    f"{what}: bad queue range {part!r} (want A..B)"
                ) from None
            if hi_i < lo_i:
                raise ValueError(
                    f"{what}: empty queue range {part!r}"
                )
            out.extend(range(lo_i, hi_i + 1))
        else:
            try:
                out.append(int(part))
            except ValueError:
                raise ValueError(
                    f"{what}: bad queue index {part!r}"
                ) from None
    return tuple(out)


def _parse_event(text: str) -> object:
    head, _, tail = text.partition(":")
    kind, _, span = head.partition("@")
    kind = kind.strip().lower()
    if not span:
        raise ValueError(
            f"event {text!r} is missing its '@EPOCH' anchor "
            f"(grammar:\n{CHAOS_SPEC_GRAMMAR})"
        )
    start_s, dash, end_s = span.partition("-")
    try:
        start = int(start_s)
        end = int(end_s) if dash else None
    except ValueError:
        raise ValueError(
            f"event {text!r}: epochs must be integers, got {span!r}"
        ) from None
    opts: dict[str, str] = {}
    if tail.strip():
        for pair in tail.split(","):
            key, eq, value = pair.partition("=")
            if not eq or not value.strip():
                raise ValueError(
                    f"event {text!r}: malformed option {pair!r} "
                    "(want key=value)"
                )
            opts[key.strip().lower()] = value.strip()
    queues = fraction = None
    if "queues" in opts and "frac" in opts:
        raise ValueError(f"event {text!r}: pass queues or frac, not both")
    if "queues" in opts:
        queues = _parse_queue_set(opts.pop("queues"), text)
    if "frac" in opts:
        try:
            fraction = float(opts.pop("frac"))
        except ValueError:
            raise ValueError(
                f"event {text!r}: frac must be a number"
            ) from None
    if kind == "outage":
        mode = opts.pop("mode", "loss")
        if mode not in ("loss", "preserve"):
            raise ValueError(
                f"event {text!r}: mode must be 'loss' or 'preserve', "
                f"got {mode!r}"
            )
        if opts:
            raise ValueError(
                f"event {text!r}: unknown option(s) {', '.join(opts)}"
            )
        if queues is None and fraction is None:
            raise ValueError(
                f"event {text!r}: an outage needs queues=... or frac=..."
            )
        return ServerOutage(
            epoch=start,
            queues=queues,
            fraction=fraction,
            restart_epoch=end,
            preserve_jobs=(mode == "preserve"),
        )
    if kind == "flap":
        if "factor" not in opts:
            raise ValueError(f"event {text!r}: a flap needs factor=...")
        try:
            factor = float(opts.pop("factor"))
        except ValueError:
            raise ValueError(
                f"event {text!r}: factor must be a number"
            ) from None
        if opts:
            raise ValueError(
                f"event {text!r}: unknown option(s) {', '.join(opts)}"
            )
        return CapacityFlap(
            epoch=start,
            factor=factor,
            queues=queues,
            fraction=fraction,
            end_epoch=end,
        )
    if kind == "links":
        if opts:
            raise ValueError(
                f"event {text!r}: unknown option(s) {', '.join(opts)}"
            )
        if queues is None and fraction is None:
            raise ValueError(
                f"event {text!r}: a link failure needs queues=... or "
                "frac=..."
            )
        return LinkFailure(
            epoch=start, queues=queues, fraction=fraction, restore_epoch=end
        )
    raise ValueError(
        f"unknown event kind {kind!r} in {text!r}; expected outage, flap "
        f"or links (grammar:\n{CHAOS_SPEC_GRAMMAR})"
    )


def parse_chaos_spec(text: str) -> DegradationSchedule:
    """Parse the ``--chaos`` mini-grammar into a schedule.

    Raises :class:`ValueError` with a pointed message (including the
    grammar) on any malformed input — the CLI surfaces that as a usage
    error (exit 2) before any simulation starts.
    """
    events = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if chunk:
            events.append(_parse_event(chunk))
    if not events:
        raise ValueError(
            f"empty chaos spec {text!r} (grammar:\n{CHAOS_SPEC_GRAMMAR})"
        )
    return DegradationSchedule(tuple(events))
