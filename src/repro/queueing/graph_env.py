"""Batched finite-system simulation on sparse dispatcher→server graphs.

:class:`BatchedGraphFiniteEnv` is the locality-constrained counterpart
of :class:`repro.queueing.batched_env.BatchedFiniteSystemEnv`: every
client lives at a dispatcher node of a
:class:`repro.queueing.topology.TopologySpec` and samples its ``d``
queues uniformly *from that node's neighborhood* instead of from all
``M`` queues (the setting of arXiv:2312.12973). Everything else —
decision rules on the sampled states, frozen per-queue Poisson rates,
the lock-step uniformization kernel, per-replica arrival-mode chains —
is inherited unchanged from the dense batched machinery.

The hot path stays a vectorized NumPy gather: clients draw *slot*
indices ``u ~ Unif{0..degree-1}`` in one ``(E, N, d)`` call and the
sampled queue indices are one flat ``take`` into the precomputed
``(num_dispatchers, degree)`` neighbor array. No per-node Python loops.

Determinism contract: on a full-mesh topology the slot draw is
``rng.integers(0, M, size=(E, N, d))`` — the *same call with the same
arguments* the dense backend makes — and the identity neighbor gather
maps slots to themselves, so a full-mesh graph simulation is
bit-identical to :class:`BatchedFiniteSystemEnv` under a shared seed
(property-tested in ``tests/test_properties.py``). Environments are
plain NumPy-holding objects and pickle through the multiprocess
:class:`repro.experiments.parallel.SweepExecutor` unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.batched_env import _BatchedQueueSystemBase, RulesLike
from repro.queueing.clients import (
    _batched_rule_rows,
    _batched_sample_slots,
    committed_counts_from_samples,
    packet_fractions_from_samples,
    stack_rules,
)
from repro.queueing.topology import TopologySpec
from repro.utils.rng import as_generator

__all__ = [
    "BatchedGraphFiniteEnv",
    "sample_neighborhood_choices_batched",
    "neighborhood_choice_counts_batched",
    "neighborhood_rate_fractions_batched",
]


def _sample_queue_indices(
    topology: TopologySpec,
    dispatcher_offsets: np.ndarray,
    num_replicas: int,
    d: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Neighborhood-restricted queue samples, shape ``(E, N, d)``.

    ``dispatcher_offsets`` is ``client_dispatchers(N) * degree`` — the
    per-client row offsets into the flattened neighbor array. The slot
    draw is the single ``rng.integers`` call of the dense backend with
    ``M`` replaced by ``degree``; for a full mesh (one dispatcher, the
    identity neighborhood) the gather returns the slots themselves, so
    the stream *and* the values match the dense path exactly.
    """
    slots = rng.integers(
        0, topology.degree, size=(num_replicas, dispatcher_offsets.size, d)
    )
    return topology.neighbors.take(
        (slots + dispatcher_offsets[None, :, None]).ravel()
    ).reshape(slots.shape)


def sample_neighborhood_choices_batched(
    queue_states: np.ndarray,
    topology: TopologySpec,
    num_clients: int,
    rules: RulesLike,
    rng=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Graph-restricted analogue of
    :func:`repro.queueing.clients.sample_client_choices_batched`.

    Returns ``(sampled, slots, committed)`` shaped ``(E, N, d)`` /
    ``(E, N)`` / ``(E, N)`` where every client's ``d`` samples come from
    its dispatcher's neighborhood.
    """
    rng = as_generator(rng)
    queue_states = np.asarray(queue_states)
    if queue_states.ndim != 2:
        raise ValueError("queue_states must have shape (replicas, queues)")
    e, m = queue_states.shape
    if m != topology.num_queues:
        raise ValueError(
            f"topology covers {topology.num_queues} queues, states have {m}"
        )
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    probs = stack_rules(rules, e)
    d = probs.ndim - 2
    offsets = topology.client_dispatchers(num_clients) * topology.degree
    sampled = _sample_queue_indices(topology, offsets, e, d, rng)
    replica_offsets = (np.arange(e, dtype=sampled.dtype) * m)[:, None, None]
    zbar = queue_states.take(
        (sampled + replica_offsets).ravel()
    ).reshape(sampled.shape)
    rows = _batched_rule_rows(probs, zbar)
    slots = _batched_sample_slots(rows, rng)
    committed = np.take_along_axis(sampled, slots[..., None], axis=-1)[..., 0]
    return sampled, slots, committed


def neighborhood_choice_counts_batched(
    queue_states: np.ndarray,
    topology: TopologySpec,
    num_clients: int,
    rules: RulesLike,
    rng=None,
) -> np.ndarray:
    """Per-replica committed-client counts on the graph, shape ``(E, M)``."""
    rng = as_generator(rng)
    queue_states = np.asarray(queue_states)
    if queue_states.ndim != 2:
        raise ValueError("queue_states must have shape (replicas, queues)")
    e, m = queue_states.shape
    if m != topology.num_queues:
        raise ValueError(
            f"topology covers {topology.num_queues} queues, states have {m}"
        )
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    probs = stack_rules(rules, e)
    d = probs.ndim - 2
    offsets = topology.client_dispatchers(num_clients) * topology.degree
    sampled = _sample_queue_indices(topology, offsets, e, d, rng)
    return committed_counts_from_samples(queue_states, sampled, probs, rng)


def neighborhood_rate_fractions_batched(
    queue_states: np.ndarray,
    topology: TopologySpec,
    num_clients: int,
    rules: RulesLike,
    rng=None,
) -> np.ndarray:
    """Per-replica arrival-rate fractions under per-packet randomization.

    The graph-restricted analogue of
    :func:`repro.queueing.clients.per_packet_rate_fractions_batched`:
    every packet re-samples its slot, so queue ``j`` accumulates the
    routing probabilities of every client slot that sampled it. Rows sum
    to 1.
    """
    rng = as_generator(rng)
    queue_states = np.asarray(queue_states)
    if queue_states.ndim != 2:
        raise ValueError("queue_states must have shape (replicas, queues)")
    e, m = queue_states.shape
    if m != topology.num_queues:
        raise ValueError(
            f"topology covers {topology.num_queues} queues, states have {m}"
        )
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    probs = stack_rules(rules, e)
    d = probs.ndim - 2
    offsets = topology.client_dispatchers(num_clients) * topology.degree
    sampled = _sample_queue_indices(topology, offsets, e, d, rng)
    return packet_fractions_from_samples(
        queue_states, sampled, probs, num_clients
    )


class BatchedGraphFiniteEnv(_BatchedQueueSystemBase):
    """``E`` replicas of the finite system on a sparse access graph.

    Clients are assigned round-robin to the topology's dispatcher nodes
    and sample their ``d`` queues from the node's neighborhood; queue
    ``j`` then receives Poisson arrivals at the frozen rate
    ``λ_j = M λ_t · count_j / N`` (committed-choice mode) or the
    per-packet thinned analogue, exactly as in the dense system. Accepts
    per-queue ``service_rates`` for heterogeneous-capacity variants
    (arXiv:2012.10142) riding the same topology machinery.
    """

    def __init__(
        self,
        config: SystemConfig,
        topology: TopologySpec,
        num_replicas: int = 1,
        arrival_process: MarkovModulatedRate | None = None,
        service_rates: np.ndarray | None = None,
        per_packet_randomization: bool = False,
        seed=None,
        backend: str | None = None,
        chaos=None,
    ) -> None:
        if topology.num_queues != config.num_queues:
            raise ValueError(
                f"topology covers {topology.num_queues} queues, config has "
                f"{config.num_queues}"
            )
        unreachable = int((topology.in_degrees() == 0).sum())
        if unreachable:
            raise ValueError(
                f"{unreachable} queue(s) are unreachable from every "
                "dispatcher — they would idle forever"
            )
        super().__init__(
            config,
            num_replicas=num_replicas,
            arrival_process=arrival_process,
            service_rates=service_rates,
            per_packet_randomization=per_packet_randomization,
            seed=seed,
            backend=backend,
            chaos=chaos,
        )
        self.topology = topology

    def _frozen_rates(self, rules: RulesLike) -> np.ndarray:
        lam = self.current_rates[:, None]
        probs = stack_rules(rules, self.num_replicas)
        offsets = (
            self.topology.client_dispatchers(self.config.num_clients)
            * self.topology.degree
        )
        sampled = _sample_queue_indices(
            self.topology, offsets, self.num_replicas, probs.ndim - 2, self._rng
        )
        if self.per_packet_randomization:
            fractions = self.kernel.packet_fractions(
                self._states, sampled, probs, self.config.num_clients
            )
            return self.config.num_queues * lam * fractions
        counts = self.kernel.committed_counts(
            self._states, sampled, probs, self._rng
        )
        return (
            self.config.num_queues
            * lam
            * counts.astype(np.float64)
            / self.config.num_clients
        )
