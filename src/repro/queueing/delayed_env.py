"""Batched finite system with stochastic per-dispatcher observation delays.

:class:`BatchedDelayedFiniteEnv` generalizes
:class:`repro.queueing.batched_env.BatchedFiniteSystemEnv` from the
paper's synchronous broadcast (every dispatcher routes against the
epoch-start states) to a :class:`repro.queueing.delays.DelayModel`:
each epoch, a fraction of the dispatcher population holds the snapshot
broadcast ``k`` epochs ago, for ``k = 0..K``.

Mechanically the environment keeps a ring buffer of the last ``K + 1``
queue-state snapshots per replica. Under per-packet randomization
(the paper's experimental setting and the only mode supported here),
each arriving packet's dispatcher has snapshot age ``k`` with the
epoch's population fraction ``w_k``, so by Poisson thinning queue ``j``
receives the frozen rate

    λ_j = M λ_t · Σ_k w_k · f_k[j]

where ``f_k`` are the per-queue routing fractions computed against the
age-``k`` snapshot (one call into the standard client kernel per age
with positive mass). When the delay model is a point mass at age 0 the
single kernel call consumes the generator stream exactly like the
undelayed environment — the two are **bit-identical** under a shared
seed (tested in ``tests/test_delays.py``).

The upper-level policy is still queried on the *current* broadcast
(``H_t``): the generalization targets the dispatchers' queue-state
observations, which is where the paper's delay sensitivity lives; with
the stationary policies used by the stochastic-delay scenarios the
distinction is moot. Policies trained with **live age features**
(``features.live_age``, the campaign's delayed regimes) additionally
receive each replica's current delay-regime context through the
``age_contexts`` channel of ``decision_rules_batch`` — computed
deterministically from the regime indices, so feeding it never perturbs
the generator stream. The matching mean-field propagator is
:mod:`repro.meanfield.delayed`.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.config import SystemConfig
from repro.queueing.backends import draw_uniform_queue_samples
from repro.queueing.batched_env import _BatchedQueueSystemBase, RulesLike
from repro.queueing.clients import stack_rules
from repro.queueing.delays import DelayModel, DeterministicDelay

__all__ = ["BatchedDelayedFiniteEnv"]


class BatchedDelayedFiniteEnv(_BatchedQueueSystemBase):
    """``E`` replicas of the finite system under stochastic observation delays.

    Parameters
    ----------
    config : SystemConfig
        System parameters; ``config.delta_t`` remains the broadcast
        period (snapshot ages are multiples of it).
    num_replicas : int
        Lock-step replica count ``E``.
    delay_model : DelayModel, optional
        Snapshot-age distribution; defaults to
        :class:`~repro.queueing.delays.DeterministicDelay` (age 0), the
        paper's model.
    arrival_process, service_rates, seed :
        As in the batched base environment.
    per_packet_randomization : bool, optional
        Must remain ``True``: committed-choice routing would tie one
        epoch-long commitment to a single snapshot age per client,
        which is a different (and less interesting) model than the
        per-packet population mixture implemented here.
    """

    def __init__(
        self,
        config: SystemConfig,
        num_replicas: int,
        delay_model: DelayModel | None = None,
        arrival_process=None,
        service_rates: np.ndarray | None = None,
        per_packet_randomization: bool = True,
        seed=None,
        backend: str | None = None,
        chaos=None,
    ) -> None:
        if not per_packet_randomization:
            raise ValueError(
                "BatchedDelayedFiniteEnv models per-packet snapshot-age "
                "mixtures; committed-choice routing is not supported"
            )
        super().__init__(
            config,
            num_replicas,
            arrival_process=arrival_process,
            service_rates=service_rates,
            per_packet_randomization=True,
            seed=seed,
            backend=backend,
            chaos=chaos,
        )
        self.delay_model = (
            delay_model if delay_model is not None else DeterministicDelay(0)
        )
        self._regimes = np.zeros(self.num_replicas, dtype=np.intp)
        # Ring buffer of the last K+1 snapshots, newest last; appended
        # after every epoch so element -1-k is the age-k snapshot.
        self._snapshots: deque[np.ndarray] = deque(
            maxlen=self.delay_model.max_delay + 1
        )

    @property
    def delay_regimes(self) -> np.ndarray:
        """Per-replica delay-regime indices, shape ``(E,)``."""
        return self._regimes.copy()

    def snapshot(self, age: int) -> np.ndarray:
        """The age-``age`` queue-state snapshot, shape ``(E, M)``.

        Before ``age`` epochs have elapsed the oldest available snapshot
        (the initial state) is returned — the system starts synced.
        """
        if not 0 <= age <= self.delay_model.max_delay:
            raise ValueError(
                f"age must lie in [0, {self.delay_model.max_delay}]"
            )
        if not self._snapshots:
            raise RuntimeError("environment must be reset before use")
        snap = self._snapshots[max(len(self._snapshots) - 1 - age, 0)]
        if snap.shape[1] != self.config.num_queues:
            # The ring still holds snapshots taken before the fleet was
            # mutated (e.g. resize_queue_fleet changed M) — routing
            # against a stale-shaped view would corrupt the gather.
            raise RuntimeError(
                f"snapshot ring holds {snap.shape[1]}-queue snapshots but "
                f"the fleet now has {self.config.num_queues} queues; call "
                "rebuild_snapshots() after mutating the fleet geometry"
            )
        return snap

    def rebuild_snapshots(self) -> None:
        """Restart snapshot history from the current state.

        Fleet-geometry mutations (a queue-count resize) invalidate every
        buffered ``(E, M)`` snapshot; this drops them and re-seeds the
        ring with the current state, as if the system had just synced.
        Delay history (regimes) is untouched.
        """
        if self._states is None:
            raise RuntimeError("environment must be reset before use")
        self._snapshots.clear()
        self._snapshots.append(self._states.copy())

    def reset(self, seed=None) -> np.ndarray:
        hist = super().reset(seed)
        self._snapshots.clear()
        self._snapshots.append(self._states.copy())
        self._regimes = self.delay_model.sample_initial_regimes_batch(
            self.num_replicas,
            self._rng if self.delay_model.num_regimes > 1 else None,
        )
        return hist

    def _sampled_fractions(self, observed: np.ndarray, probs) -> np.ndarray:
        """One sample-stage draw plus the kernel's per-packet choose pass."""
        sampled = draw_uniform_queue_samples(
            self._rng,
            self.num_replicas,
            self.config.num_clients,
            probs.ndim - 2,
            self.config.num_queues,
        )
        return self.kernel.packet_fractions(
            observed, sampled, probs, self.config.num_clients
        )

    def _frozen_rates(self, rules: RulesLike) -> np.ndarray:
        lam = self.current_rates[:, None]
        probs = stack_rules(rules, self.num_replicas)
        if self.delay_model.is_point_mass_at_zero:
            # Paper fast path: one kernel call on the current snapshot,
            # no extra draws — bit-identical to the undelayed env.
            fractions = self._sampled_fractions(self._states, probs)
            return self.config.num_queues * lam * fractions
        weights = self.delay_model.sample_fractions_batch(
            self._regimes, self.config.num_clients, self._rng
        )
        mixed = np.zeros((self.num_replicas, self.config.num_queues))
        for age in range(self.delay_model.max_delay + 1):
            w = weights[:, age]
            if not np.any(w > 0.0):
                continue
            fractions = self._sampled_fractions(self.snapshot(age), probs)
            mixed += w[:, None] * fractions
        return self.config.num_queues * lam * mixed

    def step_with_policy(self, policy):
        """Algorithm 1 with the live-age channel for delay-aware policies.

        Policies trained on live regime context (``features.live_age``)
        are queried with each replica's current delay-regime age context
        alongside ``H_t``; everything else takes the parent's exact
        code path (and the parent's exact generator stream — the
        contexts are a deterministic function of the regime indices).
        """
        features = getattr(policy, "features", None)
        if (
            features is not None
            and getattr(features, "live_age", False)
            and not policy.is_stationary()
        ):
            from repro.meanfield.features import regime_age_contexts_batch

            hists = self.empirical_distributions()
            contexts = regime_age_contexts_batch(
                self.delay_model, self._regimes
            )
            rules = policy.decision_rules_batch(
                hists, self._lam_modes, self._rng, age_contexts=contexts
            )
            return self.step(rules)
        return super().step_with_policy(policy)

    def step(self, rules: RulesLike):
        hist, rewards, info = super().step(rules)
        self._snapshots.append(self._states.copy())
        info["delay_regimes"] = self._regimes
        if self.delay_model.num_regimes > 1:
            self._regimes = self.delay_model.step_regimes_batch(
                self._regimes, self._rng
            )
        return hist, rewards, info
