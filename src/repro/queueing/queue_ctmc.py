"""Exact stochastic simulation of the per-queue epoch CTMCs (vectorized).

Within a decision epoch each queue ``j`` is an independent birth-death
chain with *frozen* arrival rate ``λ_j`` and service rate ``α_j``
(paper Algorithm 1, line 16): arrivals occur at rate ``λ_j`` in every
state (an arrival at the buffer limit ``B`` is dropped), departures at
rate ``α_j`` in every state (a departure at ``0`` is a no-op). The total
event rate ``R_j = λ_j + α_j`` is therefore state-independent, so the
number of events in ``[0, Δt]`` is ``Poisson(R_j Δt)`` and each event is
independently an arrival with probability ``λ_j / R_j`` — the classic
uniformization construction, which we exploit to simulate all queues in
lock-step NumPy passes instead of one Gillespie loop per queue. The
construction is *exact*, not an approximation; the test suite verifies
the resulting transition law against the matrix exponential of the
generator.

The lock-step pass generalizes for free from one ``M``-queue system to
``E`` independent replicas (queue states shaped ``(E, M)``):
:func:`simulate_queues_epoch_batched` advances all ``E·M`` queues with
the same handful of array operations per event round, which is what the
batched environments of :mod:`repro.queueing.batched_env` build on.
:func:`simulate_queues_epoch` is the ``E = 1`` view of the same kernel
and consumes the generator stream identically, so scalar and batched
simulations with a shared seed are bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "simulate_queues_epoch",
    "simulate_queues_epoch_batched",
    "simulate_queue_trajectory",
    "validate_epoch_inputs",
]


def validate_epoch_inputs(
    states: np.ndarray,
    arrival_rates: np.ndarray,
    service_rates: np.ndarray | float,
    delta_t: float,
    buffer_size: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonicalize and validate one epoch's serve-stage inputs.

    Shared by every serve-stage backend (see
    :mod:`repro.queueing.backends`) so NumPy and compiled kernels reject
    exactly the same inputs. Returns ``(states, arrival, service)`` with
    ``states`` left in its input dtype and the rates broadcast to
    ``(E, M)`` float64 arrays.
    """
    states = np.asarray(states)
    if states.ndim != 2:
        raise ValueError("states must be a 2-D (replicas, queues) integer array")
    if states.min(initial=0) < 0 or states.max(initial=0) > buffer_size:
        raise ValueError(f"states must lie in [0, {buffer_size}]")
    e, m = states.shape
    arrival = np.asarray(arrival_rates, dtype=np.float64)
    if arrival.shape != (e, m):
        raise ValueError(f"arrival_rates must have shape ({e}, {m})")
    if arrival.min(initial=0.0) < 0:
        raise ValueError("arrival rates must be >= 0")
    service = np.broadcast_to(
        np.asarray(service_rates, dtype=np.float64), (e, m)
    ).copy()
    if service.min(initial=np.inf) <= 0:
        raise ValueError("service rates must be > 0")
    if delta_t <= 0:
        raise ValueError(f"delta_t must be > 0, got {delta_t}")
    return states, arrival, service


def simulate_queues_epoch_batched(
    states: np.ndarray,
    arrival_rates: np.ndarray,
    service_rates: np.ndarray | float,
    delta_t: float,
    buffer_size: int,
    rng=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Advance ``E`` independent ``M``-queue replicas by one epoch.

    Parameters
    ----------
    states:
        Integer array ``(E, M)`` of current queue fillings in
        ``{0, ..., buffer_size}``; row ``e`` is replica ``e``.
    arrival_rates:
        Per-queue frozen arrival rates ``λ_{e,j} >= 0``, shape ``(E, M)``.
    service_rates:
        Scalar, ``(M,)`` or ``(E, M)`` service rates ``α_j > 0``.
    delta_t:
        Epoch length ``Δt > 0``.

    Returns
    -------
    ``(new_states, drops)`` — both ``(E, M)`` integer arrays;
    ``drops[e, j]`` counts packets that arrived at queue ``j`` of replica
    ``e`` while it was full.
    """
    rng = as_generator(rng)
    states, arrival, service = validate_epoch_inputs(
        states, arrival_rates, service_rates, delta_t, buffer_size
    )
    e, m = states.shape

    total_rate = arrival + service
    num_events = rng.poisson(total_rate * delta_t)
    p_arrival = arrival / total_rate

    z = states.astype(np.int64).copy()
    drops = np.zeros((e, m), dtype=np.int64)
    max_events = int(num_events.max(initial=0))
    for k in range(max_events):
        active = num_events > k
        is_arrival = rng.random((e, m)) < p_arrival
        arrivals = active & is_arrival
        departures = active & ~is_arrival
        drops += arrivals & (z >= buffer_size)
        z += arrivals & (z < buffer_size)
        z -= departures & (z > 0)
    return z, drops


def simulate_queues_epoch(
    states: np.ndarray,
    arrival_rates: np.ndarray,
    service_rates: np.ndarray | float,
    delta_t: float,
    buffer_size: int,
    rng=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Advance every queue by one epoch of length ``delta_t``.

    The single-replica (``E = 1``) view of
    :func:`simulate_queues_epoch_batched`; both consume the generator
    stream identically, so the two paths are interchangeable under a
    shared seed.

    Parameters
    ----------
    states:
        Integer array ``(M,)`` of current queue fillings in
        ``{0, ..., buffer_size}``.
    arrival_rates:
        Per-queue frozen arrival rates ``λ_j >= 0`` of shape ``(M,)``.
    service_rates:
        Scalar or per-queue service rates ``α_j > 0``.
    delta_t:
        Epoch length ``Δt > 0``.

    Returns
    -------
    ``(new_states, drops)`` — both ``(M,)`` integer arrays; ``drops[j]``
    counts packets that arrived at queue ``j`` while it was full.
    """
    states = np.asarray(states)
    if states.ndim != 1:
        raise ValueError("states must be a 1-D integer array")
    arrival = np.asarray(arrival_rates, dtype=np.float64)
    if arrival.shape != (states.size,):
        raise ValueError(f"arrival_rates must have shape ({states.size},)")
    new_states, drops = simulate_queues_epoch_batched(
        states[None, :],
        arrival[None, :],
        service_rates,
        delta_t,
        buffer_size,
        rng,
    )
    return new_states[0], drops[0]


def simulate_queue_trajectory(
    initial_state: int,
    arrival_rate: float,
    service_rate: float,
    horizon: float,
    buffer_size: int,
    rng=None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Single-queue event-time trajectory (Gillespie; diagnostics/tests).

    Returns ``(event_times, states_after_events, drops)`` where the state
    arrays include the initial state at time 0. Used to cross-check the
    lock-step simulator and for time-resolved examples.
    """
    rng = as_generator(rng)
    if not 0 <= initial_state <= buffer_size:
        raise ValueError("initial_state out of range")
    if arrival_rate < 0 or service_rate <= 0 or horizon <= 0:
        raise ValueError("invalid rates or horizon")
    total = arrival_rate + service_rate
    p_arrival = arrival_rate / total
    times = [0.0]
    states = [initial_state]
    drops = 0
    t = 0.0
    z = initial_state
    while True:
        t += rng.exponential(1.0 / total)
        if t > horizon:
            break
        if rng.random() < p_arrival:
            if z >= buffer_size:
                drops += 1
            else:
                z += 1
        else:
            if z > 0:
                z -= 1
        times.append(t)
        states.append(z)
    return np.asarray(times), np.asarray(states), drops
