"""Heterogeneous-server extension (paper §5: future-work item).

Servers come in ``C`` classes with per-class service rates; clients
observe, for each sampled queue, the pair ``(z, c)`` of queue filling
and server class. We encode the pair as a single *observed state*
``o = z · C + c`` so the entire homogeneous machinery — decision rules,
per-state arrival rates, client sampling, the lock-step CTMC simulator —
is reused unchanged with ``S·C`` observed states. Only the service rate
consumed by the queue CTMC depends on the class.

The natural baseline in this setting is SED(d)
(Shortest-Expected-Delay): route to the sampled queue minimizing
``(z + 1) / α_c``, which reduces to JSQ(d) for homogeneous rates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.decision_rule import DecisionRule
from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.clients import client_choice_counts, infinite_client_rates
from repro.queueing.queue_ctmc import simulate_queues_epoch
from repro.utils.rng import as_generator

__all__ = [
    "ServerClassSpec",
    "sed_rule",
    "jsq_rule_heterogeneous",
    "rnd_rule_heterogeneous",
    "HeterogeneousFiniteEnv",
]


@dataclass(frozen=True)
class ServerClassSpec:
    """Server classes: rates and population fractions.

    ``service_rates[c]`` is class ``c``'s rate; ``fractions[c]`` the
    fraction of the ``M`` queues in that class (must sum to 1).
    """

    service_rates: tuple[float, ...]
    fractions: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.service_rates) != len(self.fractions):
            raise ValueError("need one fraction per service rate")
        if len(self.service_rates) < 1:
            raise ValueError("need at least one server class")
        if any(r <= 0 for r in self.service_rates):
            raise ValueError("service rates must be > 0")
        if any(f < 0 for f in self.fractions) or not np.isclose(
            sum(self.fractions), 1.0
        ):
            raise ValueError("fractions must form a probability vector")

    @property
    def num_classes(self) -> int:
        return len(self.service_rates)

    # -- observed-state encoding -----------------------------------------
    def num_observed_states(self, buffer_size: int) -> int:
        return (buffer_size + 1) * self.num_classes

    def encode(self, z: np.ndarray, c: np.ndarray) -> np.ndarray:
        """Pack ``(filling, class)`` into the flat observed state."""
        return np.asarray(z) * self.num_classes + np.asarray(c)

    def decode(self, observed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        observed = np.asarray(observed)
        return observed // self.num_classes, observed % self.num_classes

    def assign_classes(self, num_queues: int) -> np.ndarray:
        """Deterministic class assignment matching the fractions as
        closely as integer counts allow (largest-remainder rounding)."""
        raw = np.asarray(self.fractions) * num_queues
        counts = np.floor(raw).astype(int)
        remainder = num_queues - counts.sum()
        if remainder > 0:
            order = np.argsort(-(raw - counts))
            counts[order[:remainder]] += 1
        classes = np.repeat(np.arange(self.num_classes), counts)
        return classes

    def mean_service_rate(self) -> float:
        return float(
            np.asarray(self.fractions) @ np.asarray(self.service_rates)
        )


def _rule_from_scorer(
    spec: ServerClassSpec, buffer_size: int, d: int, scorer
) -> DecisionRule:
    """Build a deterministic rule minimizing ``scorer(z, c)`` per slot."""
    s_obs = spec.num_observed_states(buffer_size)
    shape = (s_obs,) * d + (d,)
    probs = np.zeros(shape)
    for obar in itertools.product(range(s_obs), repeat=d):
        z, c = spec.decode(np.asarray(obar))
        scores = np.asarray([scorer(int(zi), int(ci)) for zi, ci in zip(z, c)])
        minimal = scores == scores.min()
        probs[obar] = minimal / minimal.sum()
    return DecisionRule(probs)


def sed_rule(spec: ServerClassSpec, buffer_size: int, d: int) -> DecisionRule:
    """SED(d): minimize expected delay ``(z + 1) / α_c`` over the samples."""
    return _rule_from_scorer(
        spec, buffer_size, d, lambda z, c: (z + 1) / spec.service_rates[c]
    )


def jsq_rule_heterogeneous(
    spec: ServerClassSpec, buffer_size: int, d: int
) -> DecisionRule:
    """JSQ(d) on the observed states (class-blind: minimizes ``z``)."""
    return _rule_from_scorer(spec, buffer_size, d, lambda z, c: float(z))


def rnd_rule_heterogeneous(
    spec: ServerClassSpec, buffer_size: int, d: int
) -> DecisionRule:
    """Uniform routing on the observed states."""
    return DecisionRule.uniform(spec.num_observed_states(buffer_size), d)


class HeterogeneousFiniteEnv:
    """Finite ``N, M`` system with ``C`` server classes.

    The API mirrors :class:`repro.queueing.env.FiniteSystemEnv`, but the
    decision rule operates on observed states ``o = z·C + c`` and the
    empirical distribution lives on ``Z × C``.
    """

    def __init__(
        self,
        config: SystemConfig,
        spec: ServerClassSpec,
        arrival_process: MarkovModulatedRate | None = None,
        infinite_clients: bool = False,
        seed=None,
    ) -> None:
        self.config = config
        self.spec = spec
        self.arrivals = (
            arrival_process
            if arrival_process is not None
            else MarkovModulatedRate.from_config(config)
        )
        self.infinite_clients = infinite_clients
        self.classes = spec.assign_classes(config.num_queues)
        self.service_rates = np.asarray(spec.service_rates)[self.classes]
        self._rng = as_generator(seed)
        self._fillings: np.ndarray | None = None
        self._lam_mode = 0
        self._t = 0

    @property
    def num_observed_states(self) -> int:
        return self.spec.num_observed_states(self.config.buffer_size)

    @property
    def queue_fillings(self) -> np.ndarray:
        if self._fillings is None:
            raise RuntimeError("environment must be reset before use")
        return self._fillings.copy()

    @property
    def lam_mode(self) -> int:
        return self._lam_mode

    @property
    def current_rate(self) -> float:
        return self.arrivals.rate(self._lam_mode)

    def observed_states(self) -> np.ndarray:
        if self._fillings is None:
            raise RuntimeError("environment must be reset before use")
        return self.spec.encode(self._fillings, self.classes)

    def empirical_distribution(self) -> np.ndarray:
        """Distribution over the flat ``Z × C`` observed states."""
        counts = np.bincount(
            self.observed_states(), minlength=self.num_observed_states
        )
        return counts.astype(np.float64) / self.config.num_queues

    def reset(self, seed=None) -> np.ndarray:
        if seed is not None:
            self._rng = as_generator(seed)
        self._fillings = np.full(
            self.config.num_queues, self.config.initial_state, dtype=np.int64
        )
        self._lam_mode = self.arrivals.sample_initial_mode(self._rng)
        self._t = 0
        return self.empirical_distribution()

    def step(self, rule: DecisionRule) -> tuple[np.ndarray, float, dict]:
        if self._fillings is None:
            raise RuntimeError("environment must be reset before use")
        if rule.num_states != self.num_observed_states or rule.d != self.config.d:
            raise ValueError(
                "rule geometry does not match the heterogeneous system "
                f"(expected S={self.num_observed_states}, d={self.config.d})"
            )
        observed = self.observed_states()
        if self.infinite_clients:
            rates = infinite_client_rates(observed, rule, self.current_rate)
        else:
            counts = client_choice_counts(
                observed, self.config.num_clients, rule, self._rng
            )
            rates = (
                self.config.num_queues
                * self.current_rate
                * counts.astype(np.float64)
                / self.config.num_clients
            )
        new_fillings, drops = simulate_queues_epoch(
            self._fillings,
            rates,
            self.service_rates,
            self.config.delta_t,
            self.config.buffer_size,
            self._rng,
        )
        total = int(drops.sum())
        per_queue = total / self.config.num_queues
        self._fillings = new_fillings
        self._lam_mode = self.arrivals.step_mode(self._lam_mode, self._rng)
        self._t += 1
        info = {
            "drops_total": total,
            "drops_per_queue": per_queue,
            "arrival_rates": rates,
            "t": self._t,
        }
        return (
            self.empirical_distribution(),
            -self.config.drop_penalty * per_queue,
            info,
        )

    def run_episode(self, rule: DecisionRule, num_epochs: int, seed=None) -> float:
        """Cumulative per-queue drops under a constant rule."""
        self.reset(seed)
        total = 0.0
        for _ in range(num_epochs):
            _, _, info = self.step(rule)
            total += info["drops_per_queue"]
        return total
