"""Heterogeneous-server extension (paper §5: future-work item).

Servers come in ``C`` classes with per-class service rates; clients
observe, for each sampled queue, the pair ``(z, c)`` of queue filling
and server class. We encode the pair as a single *observed state*
``o = z · C + c`` so the entire homogeneous machinery — decision rules,
per-state arrival rates, client sampling, the lock-step CTMC simulator —
is reused unchanged with ``S·C`` observed states. Only the service rate
consumed by the queue CTMC depends on the class.

The natural baseline in this setting is SED(d)
(Shortest-Expected-Delay): route to the sampled queue minimizing
``(z + 1) / α_c``, which reduces to JSQ(d) for homogeneous rates.

Simulation runs through the replica-batched backend:
:class:`BatchedHeterogeneousFiniteEnv` is the ``E``-replica system
(queue states ``(E, M)``, one kernel pass per epoch — a drop-in
``env_cls`` for :func:`repro.experiments.runner.evaluate_policy_finite`
and the sharded :class:`repro.experiments.parallel.SweepExecutor`), and
the scalar :class:`HeterogeneousFiniteEnv` is its ``E = 1`` view, the
same arrangement as :mod:`repro.queueing.env` over
:mod:`repro.queueing.batched_env`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.decision_rule import DecisionRule
from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.backends import draw_uniform_queue_samples
from repro.queueing.batched_env import _BatchedQueueSystemBase
from repro.queueing.clients import (
    infinite_client_rates_batched,
    stack_rules,
)

__all__ = [
    "ServerClassSpec",
    "sed_rule",
    "jsq_rule_heterogeneous",
    "rnd_rule_heterogeneous",
    "sed_policy_suite",
    "BatchedHeterogeneousFiniteEnv",
    "HeterogeneousFiniteEnv",
]


@dataclass(frozen=True)
class ServerClassSpec:
    """Server classes: rates and population fractions.

    ``service_rates[c]`` is class ``c``'s rate; ``fractions[c]`` the
    fraction of the ``M`` queues in that class (must sum to 1).
    """

    service_rates: tuple[float, ...]
    fractions: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.service_rates) != len(self.fractions):
            raise ValueError("need one fraction per service rate")
        if len(self.service_rates) < 1:
            raise ValueError("need at least one server class")
        if any(r <= 0 for r in self.service_rates):
            raise ValueError("service rates must be > 0")
        if any(f < 0 for f in self.fractions) or not np.isclose(
            sum(self.fractions), 1.0
        ):
            raise ValueError("fractions must form a probability vector")

    @property
    def num_classes(self) -> int:
        return len(self.service_rates)

    # -- observed-state encoding -----------------------------------------
    def num_observed_states(self, buffer_size: int) -> int:
        return (buffer_size + 1) * self.num_classes

    def encode(self, z: np.ndarray, c: np.ndarray) -> np.ndarray:
        """Pack ``(filling, class)`` into the flat observed state."""
        return np.asarray(z) * self.num_classes + np.asarray(c)

    def decode(self, observed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        observed = np.asarray(observed)
        return observed // self.num_classes, observed % self.num_classes

    def assign_classes(self, num_queues: int) -> np.ndarray:
        """Deterministic class assignment matching the fractions as
        closely as integer counts allow (largest-remainder rounding)."""
        raw = np.asarray(self.fractions) * num_queues
        counts = np.floor(raw).astype(int)
        remainder = num_queues - counts.sum()
        if remainder > 0:
            order = np.argsort(-(raw - counts))
            counts[order[:remainder]] += 1
        classes = np.repeat(np.arange(self.num_classes), counts)
        return classes

    def mean_service_rate(self) -> float:
        return float(
            np.asarray(self.fractions) @ np.asarray(self.service_rates)
        )


def _rule_from_scorer(
    spec: ServerClassSpec, buffer_size: int, d: int, scorer
) -> DecisionRule:
    """Build a deterministic rule minimizing ``scorer(z, c)`` per slot."""
    s_obs = spec.num_observed_states(buffer_size)
    shape = (s_obs,) * d + (d,)
    probs = np.zeros(shape)
    for obar in itertools.product(range(s_obs), repeat=d):
        z, c = spec.decode(np.asarray(obar))
        scores = np.asarray([scorer(int(zi), int(ci)) for zi, ci in zip(z, c)])
        minimal = scores == scores.min()
        probs[obar] = minimal / minimal.sum()
    return DecisionRule(probs)


def sed_rule(spec: ServerClassSpec, buffer_size: int, d: int) -> DecisionRule:
    """SED(d): minimize expected delay ``(z + 1) / α_c`` over the samples."""
    return _rule_from_scorer(
        spec, buffer_size, d, lambda z, c: (z + 1) / spec.service_rates[c]
    )


def jsq_rule_heterogeneous(
    spec: ServerClassSpec, buffer_size: int, d: int
) -> DecisionRule:
    """JSQ(d) on the observed states (class-blind: minimizes ``z``)."""
    return _rule_from_scorer(spec, buffer_size, d, lambda z, c: float(z))


def rnd_rule_heterogeneous(
    spec: ServerClassSpec, buffer_size: int, d: int
) -> DecisionRule:
    """Uniform routing on the observed states."""
    return DecisionRule.uniform(spec.num_observed_states(buffer_size), d)


def sed_policy_suite(
    spec: ServerClassSpec, buffer_size: int, d: int
) -> dict[str, "object"]:
    """The heterogeneous comparison set: SED(d), class-blind JSQ(d), RND.

    Each rule is wrapped in a stationary
    :class:`repro.policies.static.ConstantRulePolicy` operating on the
    flat ``Z × C`` observed states, ready for
    :func:`repro.experiments.runner.evaluate_policy_finite` with
    ``env_cls=BatchedHeterogeneousFiniteEnv``.
    """
    from repro.policies.static import ConstantRulePolicy

    return {
        f"SED({d})": ConstantRulePolicy(
            sed_rule(spec, buffer_size, d), name=f"SED({d})"
        ),
        f"JSQ({d})": ConstantRulePolicy(
            jsq_rule_heterogeneous(spec, buffer_size, d), name=f"JSQ({d})"
        ),
        "RND": ConstantRulePolicy(
            rnd_rule_heterogeneous(spec, buffer_size, d), name="RND"
        ),
    }


class BatchedHeterogeneousFiniteEnv(_BatchedQueueSystemBase):
    """``E`` replicas of the finite ``N, M`` system with ``C`` server classes.

    Decision rules operate on observed states ``o = z·C + c`` and the
    empirical distribution lives on ``Z × C``; otherwise the lock-step
    mechanics are exactly those of
    :class:`repro.queueing.batched_env.BatchedFiniteSystemEnv` — every
    replica shares the deterministic class assignment (largest-remainder
    rounding of the spec's fractions) and its induced per-queue service
    rates.
    """

    def __init__(
        self,
        config: SystemConfig,
        spec: ServerClassSpec,
        num_replicas: int = 1,
        arrival_process: MarkovModulatedRate | None = None,
        infinite_clients: bool = False,
        per_packet_randomization: bool = False,
        seed=None,
        backend: str | None = None,
        chaos=None,
    ) -> None:
        classes = spec.assign_classes(config.num_queues)
        super().__init__(
            config,
            num_replicas=num_replicas,
            arrival_process=arrival_process,
            service_rates=np.asarray(spec.service_rates)[classes],
            per_packet_randomization=per_packet_randomization,
            seed=seed,
            backend=backend,
            chaos=chaos,
        )
        self.spec = spec
        self.classes = classes
        self.infinite_clients = infinite_clients

    @property
    def num_observed_states(self) -> int:
        return self.spec.num_observed_states(self.config.buffer_size)

    def observed_states(self) -> np.ndarray:
        """Flat ``(E, M)`` observed states ``o = z·C + c``."""
        if self._states is None:
            raise RuntimeError("environment must be reset before use")
        return self.spec.encode(self._states, self.classes[None, :])

    def empirical_distributions(self) -> np.ndarray:
        """Per-replica distribution over ``Z × C``, shape ``(E, S·C)``."""
        s_obs = self.num_observed_states
        observed = self.observed_states()
        offsets = np.arange(self.num_replicas, dtype=np.int64)[:, None] * s_obs
        counts = np.bincount(
            (observed + offsets).ravel(),
            minlength=self.num_replicas * s_obs,
        ).reshape(self.num_replicas, s_obs)
        return counts.astype(np.float64) / self.config.num_queues

    def _check_rules(self, rules) -> None:
        first = rules if isinstance(rules, DecisionRule) else rules[0]
        if first.num_states != self.num_observed_states or first.d != self.config.d:
            raise ValueError(
                "rule geometry does not match the heterogeneous system "
                f"(expected S={self.num_observed_states}, d={self.config.d}, "
                f"got S={first.num_states}, d={first.d})"
            )

    def _frozen_rates(self, rules) -> np.ndarray:
        observed = self.observed_states()
        if self.infinite_clients:
            return infinite_client_rates_batched(
                observed, rules, self.current_rates
            )
        lam = self.current_rates[:, None]
        probs = stack_rules(rules, self.num_replicas)
        sampled = draw_uniform_queue_samples(
            self._rng,
            self.num_replicas,
            self.config.num_clients,
            probs.ndim - 2,
            self.config.num_queues,
        )
        if self.per_packet_randomization:
            fractions = self.kernel.packet_fractions(
                observed, sampled, probs, self.config.num_clients
            )
            return self.config.num_queues * lam * fractions
        counts = self.kernel.committed_counts(
            observed, sampled, probs, self._rng
        )
        return (
            self.config.num_queues
            * lam
            * counts.astype(np.float64)
            / self.config.num_clients
        )


class HeterogeneousFiniteEnv:
    """Finite ``N, M`` system with ``C`` server classes (``E = 1`` view).

    The API mirrors :class:`repro.queueing.env.FiniteSystemEnv`, but the
    decision rule operates on observed states ``o = z·C + c`` and the
    empirical distribution lives on ``Z × C``. All simulation happens in
    an underlying single-replica :class:`BatchedHeterogeneousFiniteEnv`,
    so scalar and batched heterogeneous runs with a shared seed are
    bit-identical.
    """

    def __init__(
        self,
        config: SystemConfig,
        spec: ServerClassSpec,
        arrival_process: MarkovModulatedRate | None = None,
        infinite_clients: bool = False,
        per_packet_randomization: bool = False,
        seed=None,
        backend: str | None = None,
    ) -> None:
        self._core = BatchedHeterogeneousFiniteEnv(
            config,
            spec,
            num_replicas=1,
            arrival_process=arrival_process,
            infinite_clients=infinite_clients,
            per_packet_randomization=per_packet_randomization,
            seed=seed,
            backend=backend,
        )

    # -- configuration access -------------------------------------------
    @property
    def config(self) -> SystemConfig:
        return self._core.config

    @property
    def spec(self) -> ServerClassSpec:
        return self._core.spec

    @property
    def arrivals(self) -> MarkovModulatedRate:
        return self._core.arrivals

    @property
    def classes(self) -> np.ndarray:
        return self._core.classes

    @property
    def service_rates(self) -> np.ndarray:
        return self._core.service_rates

    @property
    def infinite_clients(self) -> bool:
        return self._core.infinite_clients

    @property
    def batched_core(self) -> BatchedHeterogeneousFiniteEnv:
        """The underlying ``E = 1`` batched environment."""
        return self._core

    @property
    def num_observed_states(self) -> int:
        return self._core.num_observed_states

    # -- state access ---------------------------------------------------
    @property
    def queue_fillings(self) -> np.ndarray:
        return self._core.queue_states[0]

    @property
    def lam_mode(self) -> int:
        return int(self._core.lam_modes[0])

    @property
    def current_rate(self) -> float:
        return float(self._core.current_rates[0])

    def observed_states(self) -> np.ndarray:
        return self._core.observed_states()[0]

    def empirical_distribution(self) -> np.ndarray:
        """Distribution over the flat ``Z × C`` observed states."""
        return self._core.empirical_distributions()[0]

    def reset(self, seed=None) -> np.ndarray:
        return self._core.reset(seed)[0]

    def step(self, rule: DecisionRule) -> tuple[np.ndarray, float, dict]:
        hists, rewards, info = self._core.step(rule)
        return (
            hists[0],
            float(rewards[0]),
            {
                "drops_total": int(info["drops_total"][0]),
                "drops_per_queue": float(info["drops_per_queue"][0]),
                "arrival_rates": info["arrival_rates"][0],
                "t": info["t"],
            },
        )

    def step_with_policy(self, policy) -> tuple[np.ndarray, float, dict]:
        """Compute ``H_t`` on ``Z × C``, query the policy, apply the rule.

        Mirrors :meth:`repro.queueing.env._QueueSystemBase.step_with_policy`
        so the scalar heterogeneous system is drivable by the generic
        :func:`repro.queueing.env.run_episode` loop.
        """
        hists, rewards, info = self._core.step_with_policy(policy)
        return (
            hists[0],
            float(rewards[0]),
            {
                "drops_total": int(info["drops_total"][0]),
                "drops_per_queue": float(info["drops_per_queue"][0]),
                "arrival_rates": info["arrival_rates"][0],
                "t": info["t"],
            },
        )

    def run_episode(self, rule: DecisionRule, num_epochs: int, seed=None) -> float:
        """Cumulative per-queue drops under a constant rule."""
        self.reset(seed)
        total = 0.0
        for _ in range(num_epochs):
            _, _, info = self.step(rule)
            total += info["drops_per_queue"]
        return total
