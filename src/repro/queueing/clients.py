"""Client/dispatcher layer: power-of-d sampling and rule application.

At each decision epoch every client ``i`` samples ``d`` queue indices
``x_i ~ Unif({1..M})^d`` (Eq. 3), observes the epoch-start states of its
sampled queues (the *anonymous state* ``z̄_i``), draws a slot
``u_i ~ h(·|z̄_i)`` (Eq. 4) and commits its jobs to queue ``x_i[u_i]``
for the epoch. The per-queue frozen arrival rates then follow Eq. (5):
``λ_j = M λ_t · count_j / N``.

Everything is vectorized over clients; for the paper's largest setting
(``N = 10^6``, ``d = 2``) a full epoch of client decisions is three
array operations. The ``*_batched`` variants additionally vectorize over
``E`` independent system replicas (queue states shaped ``(E, M)``, one
decision rule per replica) so that a whole Monte-Carlo sweep shares the
same handful of array operations; the scalar functions are the ``E = 1``
views and consume the generator stream identically.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.discretization import per_state_arrival_rates
from repro.utils.rng import as_generator

__all__ = [
    "sample_client_choices",
    "client_choice_counts",
    "per_packet_rate_fractions",
    "expected_choice_counts",
    "infinite_client_rates",
    "stack_rules",
    "sample_client_choices_batched",
    "client_choice_counts_batched",
    "per_packet_rate_fractions_batched",
    "infinite_client_rates_batched",
    "committed_counts_from_samples",
    "packet_fractions_from_samples",
]


def stack_rules(
    rules: "DecisionRule | Sequence[DecisionRule]", num_replicas: int
) -> np.ndarray:
    """Stack per-replica decision rules into one ``(E, S, ..., S, d)`` table.

    ``rules`` is either a single rule (broadcast to every replica — the
    stationary-policy fast path, a view with no copy) or a sequence of
    exactly ``num_replicas`` rules sharing ``(S, d)`` geometry.
    """
    if isinstance(rules, DecisionRule):
        return np.broadcast_to(
            rules.probs, (num_replicas, *rules.probs.shape)
        )
    rules = list(rules)
    if len(rules) != num_replicas:
        raise ValueError(
            f"need {num_replicas} rules (one per replica), got {len(rules)}"
        )
    shape = rules[0].probs.shape
    if any(r.probs.shape != shape for r in rules):
        raise ValueError("all per-replica rules must share (S, d) geometry")
    return np.stack([r.probs for r in rules])


def _batched_rule_rows(probs: np.ndarray, zbar: np.ndarray) -> np.ndarray:
    """Rows ``h_e(· | z̄)`` for per-replica sampled states.

    ``probs`` is a stacked rule table ``(E, S, ..., S, d)`` and ``zbar``
    an integer array ``(E, N, d)``; returns ``(E, N, d)``. The joint
    sampled state is flattened to one index per client so the lookup is
    a single flat :func:`numpy.take` (much faster than a ``d + 1``-axis
    fancy-indexing pass on large ``E·N``).
    """
    e = probs.shape[0]
    s = probs.shape[1]
    d = probs.ndim - 2
    flat = zbar[..., 0]
    for k in range(1, d):
        flat = flat * s + zbar[..., k]
    if probs.strides[0] == 0:
        # Stationary fast path: one shared table, no replica offsets.
        return probs[0].reshape(s**d, d).take(flat, axis=0)
    flat = flat + (np.arange(e) * s**d)[:, None]
    table = np.ascontiguousarray(probs).reshape(e * s**d, d)
    return table.take(flat, axis=0)


def _batched_sample_slots(
    rows: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``u ~ h(· | z̄)`` from per-client probability rows ``(E, N, d)``."""
    cdf = np.cumsum(rows, axis=-1)
    # Guard against round-off: the final cumulative value is exactly 1.
    cdf[..., -1] = 1.0
    uniforms = rng.random(rows.shape[:-1])
    return (uniforms[..., None] > cdf).sum(axis=-1)


def committed_counts_from_samples(
    observed: np.ndarray,
    sampled: np.ndarray,
    probs: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Committed-choice counts given already-sampled queue indices.

    The *choose* stage of the epoch-kernel contract (see
    :mod:`repro.queueing.backends.protocol`): each client observes the
    states of its ``d`` sampled queues, draws one slot from its rule row
    (one ``rng.random((E, N))`` call — the only stream consumption of
    this stage) and commits to the chosen queue.

    Parameters
    ----------
    observed : numpy.ndarray
        Per-queue observed states, shape ``(E, M)`` (queue fillings, or
        the flat ``z·C + c`` encoding of the heterogeneous system).
    sampled : numpy.ndarray
        Sampled queue indices, shape ``(E, N, d)``.
    probs : numpy.ndarray
        Stacked rule table from :func:`stack_rules`,
        shape ``(E, S, ..., S, d)``.
    rng : numpy.random.Generator
        Slot-selection stream.

    Returns
    -------
    numpy.ndarray
        Integer committed-client counts per queue, shape ``(E, M)``.
    """
    e, m = observed.shape
    offsets = (np.arange(e, dtype=sampled.dtype) * m)[:, None, None]
    zbar = observed.take((sampled + offsets).ravel()).reshape(sampled.shape)
    rows = _batched_rule_rows(probs, zbar)
    slots = _batched_sample_slots(rows, rng)
    committed = np.take_along_axis(sampled, slots[..., None], axis=-1)[..., 0]
    row_offsets = np.arange(e, dtype=committed.dtype)[:, None] * m
    return np.bincount(
        (committed + row_offsets).ravel(), minlength=e * m
    ).reshape(e, m)


def packet_fractions_from_samples(
    observed: np.ndarray,
    sampled: np.ndarray,
    probs: np.ndarray,
    num_clients: int,
) -> np.ndarray:
    """Per-packet routing fractions given already-sampled queue indices.

    The deterministic *choose* stage under per-packet randomization:
    every queue accumulates the routing probabilities of every client
    slot that sampled it (Poisson thinning — no stream consumption).
    Rows sum to 1.

    Parameters
    ----------
    observed : numpy.ndarray
        Per-queue observed states, shape ``(E, M)``.
    sampled : numpy.ndarray
        Sampled queue indices, shape ``(E, N, d)``.
    probs : numpy.ndarray
        Stacked rule table from :func:`stack_rules`.
    num_clients : int
        ``N`` — the normalizer of the accumulated weights.

    Returns
    -------
    numpy.ndarray
        Arrival-rate fractions per queue, shape ``(E, M)``.
    """
    e, m = observed.shape
    offsets = (np.arange(e, dtype=sampled.dtype) * m)[:, None, None]
    flat = (sampled + offsets).ravel()
    zbar = observed.take(flat).reshape(sampled.shape)
    rows = _batched_rule_rows(probs, zbar)
    fractions = np.bincount(
        flat, weights=rows.ravel(), minlength=e * m
    ).reshape(e, m)
    return fractions / num_clients


def sample_client_choices(
    queue_states: np.ndarray,
    num_clients: int,
    rule: DecisionRule,
    rng=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample every client's queue selection and committed choice.

    Returns
    -------
    sampled:
        ``(N, d)`` array of sampled queue indices (``x`` in the paper;
        sampling is with replacement, as in Eq. 3 — for ``d ≪ M`` the
        collision probability is negligible and the paper argues it
        "makes no difference in sufficiently large systems").
    slots:
        ``(N,)`` chosen slot per client (``u``).
    committed:
        ``(N,)`` committed queue index per client (``x[u]``).
    """
    queue_states = np.asarray(queue_states)
    sampled, slots, committed = sample_client_choices_batched(
        queue_states[None, :], num_clients, rule, rng
    )
    return sampled[0], slots[0], committed[0]


def sample_client_choices_batched(
    queue_states: np.ndarray,
    num_clients: int,
    rules: "DecisionRule | Sequence[DecisionRule]",
    rng=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample every client's selection and choice in ``E`` replicas at once.

    ``queue_states`` has shape ``(E, M)``; ``rules`` is one rule shared by
    all replicas or a sequence of ``E`` per-replica rules. Returns
    ``(sampled, slots, committed)`` shaped ``(E, N, d)`` / ``(E, N)`` /
    ``(E, N)`` — the per-replica analogues of
    :func:`sample_client_choices`.
    """
    rng = as_generator(rng)
    queue_states = np.asarray(queue_states)
    if queue_states.ndim != 2:
        raise ValueError("queue_states must have shape (replicas, queues)")
    e, m = queue_states.shape
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    probs = stack_rules(rules, e)
    d = probs.ndim - 2
    sampled = rng.integers(0, m, size=(e, num_clients, d))
    offsets = (np.arange(e, dtype=sampled.dtype) * m)[:, None, None]
    zbar = queue_states.take((sampled + offsets).ravel()).reshape(sampled.shape)
    rows = _batched_rule_rows(probs, zbar)
    slots = _batched_sample_slots(rows, rng)
    committed = np.take_along_axis(sampled, slots[..., None], axis=-1)[..., 0]
    return sampled, slots, committed


def client_choice_counts(
    queue_states: np.ndarray,
    num_clients: int,
    rule: DecisionRule,
    rng=None,
) -> np.ndarray:
    """Number of clients committed to each queue this epoch (``(M,)``)."""
    queue_states = np.asarray(queue_states)
    return client_choice_counts_batched(
        queue_states[None, :], num_clients, rule, rng
    )[0]


def client_choice_counts_batched(
    queue_states: np.ndarray,
    num_clients: int,
    rules: "DecisionRule | Sequence[DecisionRule]",
    rng=None,
) -> np.ndarray:
    """Per-replica committed-client counts, shape ``(E, M)``."""
    rng = as_generator(rng)
    queue_states = np.asarray(queue_states)
    if queue_states.ndim != 2:
        raise ValueError("queue_states must have shape (replicas, queues)")
    e, m = queue_states.shape
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    probs = stack_rules(rules, e)
    d = probs.ndim - 2
    sampled = rng.integers(0, m, size=(e, num_clients, d))
    return committed_counts_from_samples(queue_states, sampled, probs, rng)


def per_packet_rate_fractions(
    queue_states: np.ndarray,
    num_clients: int,
    rule: DecisionRule,
    rng=None,
) -> np.ndarray:
    """Per-queue arrival-rate fractions under per-packet randomization.

    The paper's experiments "allow randomization for each packet"
    (remark below Eq. 4): every packet that reaches client ``i``
    re-samples its slot ``u ~ h(·|z̄_i)`` instead of using one committed
    choice for the whole epoch. By Poisson thinning, queue ``j`` then
    receives rate ``(M λ_t / N) Σ_i Σ_k 1{x_{i,k}=j} h(k|z̄_i)`` — this
    function returns the fractions ``(1/N) Σ_i Σ_k 1{x_{i,k}=j} h(k|z̄_i)``
    (which sum to 1 over queues). Compared to the committed-choice
    counts this removes the per-client multinomial noise, which matters
    when ``N`` is *not* much larger than ``M`` (paper Figure 6).
    """
    queue_states = np.asarray(queue_states)
    return per_packet_rate_fractions_batched(
        queue_states[None, :], num_clients, rule, rng
    )[0]


def per_packet_rate_fractions_batched(
    queue_states: np.ndarray,
    num_clients: int,
    rules: "DecisionRule | Sequence[DecisionRule]",
    rng=None,
) -> np.ndarray:
    """Per-replica arrival-rate fractions under per-packet randomization.

    The ``(E, M)`` analogue of :func:`per_packet_rate_fractions`: each
    replica samples its own ``(N, d)`` queue selections and accumulates
    its clients' routing probabilities; each row sums to 1.
    """
    rng = as_generator(rng)
    queue_states = np.asarray(queue_states)
    if queue_states.ndim != 2:
        raise ValueError("queue_states must have shape (replicas, queues)")
    e, m = queue_states.shape
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    probs = stack_rules(rules, e)
    d = probs.ndim - 2
    sampled = rng.integers(0, m, size=(e, num_clients, d))
    return packet_fractions_from_samples(
        queue_states, sampled, probs, num_clients
    )


def expected_choice_counts(
    queue_states: np.ndarray,
    num_clients: int,
    rule: DecisionRule,
) -> np.ndarray:
    """Expected per-queue client counts ``N · P(client commits to j)``.

    By the computation in the proof of Theorem 1,
    ``P(client -> j) = λ_t(H, z_j) / (M λ_t)`` where ``H`` is the
    empirical state distribution — so the expected counts are independent
    of the arrival intensity. Used for variance-reduction checks and the
    infinite-client system.
    """
    queue_states = np.asarray(queue_states)
    m = queue_states.size
    hist = np.bincount(queue_states, minlength=rule.num_states).astype(float) / m
    per_state = per_state_arrival_rates(hist, rule, lam=1.0)
    probs = per_state[queue_states] / m
    return num_clients * probs


def infinite_client_rates(
    queue_states: np.ndarray,
    rule: DecisionRule,
    lam: float,
) -> np.ndarray:
    """Frozen arrival rates in the ``N → ∞`` (infinite-client) system.

    Eq. (14)-(15): conditional on the queue states, the empirical
    agent state-action distribution concentrates and queue ``j`` receives
    ``λ_j = λ_t(H^M_t, z_j)`` — the mean-field rate function evaluated at
    the *empirical* distribution.
    """
    queue_states = np.asarray(queue_states)
    m = queue_states.size
    hist = np.bincount(queue_states, minlength=rule.num_states).astype(float) / m
    per_state = per_state_arrival_rates(hist, rule, lam)
    return per_state[queue_states]


def infinite_client_rates_batched(
    queue_states: np.ndarray,
    rules: "DecisionRule | Sequence[DecisionRule]",
    lams: np.ndarray,
) -> np.ndarray:
    """Frozen ``N → ∞`` arrival rates for ``E`` replicas, shape ``(E, M)``.

    ``lams`` holds each replica's current arrival intensity. The
    per-state rate function (a handful of ``S``-sized tensor
    contractions) is evaluated per replica; the per-queue gather is
    vectorized.
    """
    queue_states = np.asarray(queue_states)
    if queue_states.ndim != 2:
        raise ValueError("queue_states must have shape (replicas, queues)")
    e, m = queue_states.shape
    lams = np.asarray(lams, dtype=np.float64)
    if lams.shape != (e,):
        raise ValueError(f"lams must have shape ({e},)")
    rule_list = [rules] * e if isinstance(rules, DecisionRule) else list(rules)
    if len(rule_list) != e:
        raise ValueError(f"need {e} rules (one per replica), got {len(rule_list)}")
    num_states = rule_list[0].num_states
    offsets = np.arange(e, dtype=queue_states.dtype)[:, None] * num_states
    hists = np.bincount(
        (queue_states + offsets).ravel(), minlength=e * num_states
    ).reshape(e, num_states) / m
    rates = np.empty((e, m))
    for i, (rule, lam) in enumerate(zip(rule_list, lams)):
        per_state = per_state_arrival_rates(hists[i], rule, float(lam))
        rates[i] = per_state[queue_states[i]]
    return rates
