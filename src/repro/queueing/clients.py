"""Client/dispatcher layer: power-of-d sampling and rule application.

At each decision epoch every client ``i`` samples ``d`` queue indices
``x_i ~ Unif({1..M})^d`` (Eq. 3), observes the epoch-start states of its
sampled queues (the *anonymous state* ``z̄_i``), draws a slot
``u_i ~ h(·|z̄_i)`` (Eq. 4) and commits its jobs to queue ``x_i[u_i]``
for the epoch. The per-queue frozen arrival rates then follow Eq. (5):
``λ_j = M λ_t · count_j / N``.

Everything is vectorized over clients; for the paper's largest setting
(``N = 10^6``, ``d = 2``) a full epoch of client decisions is three
array operations.
"""

from __future__ import annotations

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.discretization import per_state_arrival_rates
from repro.utils.rng import as_generator

__all__ = [
    "sample_client_choices",
    "client_choice_counts",
    "per_packet_rate_fractions",
    "expected_choice_counts",
    "infinite_client_rates",
]


def sample_client_choices(
    queue_states: np.ndarray,
    num_clients: int,
    rule: DecisionRule,
    rng=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample every client's queue selection and committed choice.

    Returns
    -------
    sampled:
        ``(N, d)`` array of sampled queue indices (``x`` in the paper;
        sampling is with replacement, as in Eq. 3 — for ``d ≪ M`` the
        collision probability is negligible and the paper argues it
        "makes no difference in sufficiently large systems").
    slots:
        ``(N,)`` chosen slot per client (``u``).
    committed:
        ``(N,)`` committed queue index per client (``x[u]``).
    """
    rng = as_generator(rng)
    queue_states = np.asarray(queue_states)
    m = queue_states.size
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    sampled = rng.integers(0, m, size=(num_clients, rule.d))
    zbar = queue_states[sampled]
    slots = rule.sample_actions(zbar, rng)
    committed = sampled[np.arange(num_clients), slots]
    return sampled, slots, committed


def client_choice_counts(
    queue_states: np.ndarray,
    num_clients: int,
    rule: DecisionRule,
    rng=None,
) -> np.ndarray:
    """Number of clients committed to each queue this epoch (``(M,)``)."""
    queue_states = np.asarray(queue_states)
    _, _, committed = sample_client_choices(queue_states, num_clients, rule, rng)
    return np.bincount(committed, minlength=queue_states.size)


def per_packet_rate_fractions(
    queue_states: np.ndarray,
    num_clients: int,
    rule: DecisionRule,
    rng=None,
) -> np.ndarray:
    """Per-queue arrival-rate fractions under per-packet randomization.

    The paper's experiments "allow randomization for each packet"
    (remark below Eq. 4): every packet that reaches client ``i``
    re-samples its slot ``u ~ h(·|z̄_i)`` instead of using one committed
    choice for the whole epoch. By Poisson thinning, queue ``j`` then
    receives rate ``(M λ_t / N) Σ_i Σ_k 1{x_{i,k}=j} h(k|z̄_i)`` — this
    function returns the fractions ``(1/N) Σ_i Σ_k 1{x_{i,k}=j} h(k|z̄_i)``
    (which sum to 1 over queues). Compared to the committed-choice
    counts this removes the per-client multinomial noise, which matters
    when ``N`` is *not* much larger than ``M`` (paper Figure 6).
    """
    rng = as_generator(rng)
    queue_states = np.asarray(queue_states)
    m = queue_states.size
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    sampled = rng.integers(0, m, size=(num_clients, rule.d))
    zbar = queue_states[sampled]
    probs = rule.action_probs(zbar)
    fractions = np.zeros(m)
    for k in range(rule.d):
        np.add.at(fractions, sampled[:, k], probs[:, k])
    return fractions / num_clients


def expected_choice_counts(
    queue_states: np.ndarray,
    num_clients: int,
    rule: DecisionRule,
) -> np.ndarray:
    """Expected per-queue client counts ``N · P(client commits to j)``.

    By the computation in the proof of Theorem 1,
    ``P(client -> j) = λ_t(H, z_j) / (M λ_t)`` where ``H`` is the
    empirical state distribution — so the expected counts are independent
    of the arrival intensity. Used for variance-reduction checks and the
    infinite-client system.
    """
    queue_states = np.asarray(queue_states)
    m = queue_states.size
    hist = np.bincount(queue_states, minlength=rule.num_states).astype(float) / m
    per_state = per_state_arrival_rates(hist, rule, lam=1.0)
    probs = per_state[queue_states] / m
    return num_clients * probs


def infinite_client_rates(
    queue_states: np.ndarray,
    rule: DecisionRule,
    lam: float,
) -> np.ndarray:
    """Frozen arrival rates in the ``N → ∞`` (infinite-client) system.

    Eq. (14)-(15): conditional on the queue states, the empirical
    agent state-action distribution concentrates and queue ``j`` receives
    ``λ_j = λ_t(H^M_t, z_j)`` — the mean-field rate function evaluated at
    the *empirical* distribution.
    """
    queue_states = np.asarray(queue_states)
    m = queue_states.size
    hist = np.bincount(queue_states, minlength=rule.num_states).astype(float) / m
    per_state = per_state_arrival_rates(hist, rule, lam)
    return per_state[queue_states]
