"""Stochastic observation-delay models for dispatchers.

The paper's dispatchers act on queue-state information that is *exactly*
``Δt`` old: states are broadcast synchronously at every epoch start, so
within an epoch every routing decision uses the same, uniformly aged
snapshot. Real clusters are messier — gossip rounds are lost, regional
links degrade, monitoring pipelines back up — and the observation age
becomes a random variable that differs across dispatchers and drifts
over time. "Mean Field Queues with Delayed Information" (Doldo &
Pender) analyzes exactly this regime for fluid limits.

This module generalizes the fixed-``Δt`` information structure to a
*delay distribution* over snapshot ages measured in whole epochs:

* :class:`DeterministicDelay` — every dispatcher reads the snapshot from
  ``k`` epochs back. ``k = 0`` is the paper's model (observations are at
  most ``Δt`` old), and is recognized as a fast path that is
  bit-identical to the undelayed environments.
* :class:`IIDDelay` — each epoch, each dispatcher's snapshot age is an
  independent draw from a fixed probability mass function on
  ``{0, ..., K}``.
* :class:`MarkovModulatedDelay` — the delay pmf itself switches between
  regimes (e.g. *synced* vs *degraded*) following an exogenous Markov
  chain, one regime chain per simulated replica.

The finite-system counterpart is
:class:`repro.queueing.delayed_env.BatchedDelayedFiniteEnv`; the
mean-field counterpart is the delay-mixture propagator in
:mod:`repro.meanfield.delayed`. Both consume the same model objects, so
a scenario definition fixes the information structure for simulation
and limit analysis at once. See ``docs/serving.md`` for the modeling
assumptions.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "DelayModel",
    "DeterministicDelay",
    "IIDDelay",
    "MarkovModulatedDelay",
]


def _validate_pmf(pmf) -> np.ndarray:
    pmf = np.asarray(pmf, dtype=np.float64)
    if pmf.ndim != 1 or pmf.size < 1:
        raise ValueError("delay pmf must be a non-empty 1-D array")
    if np.any(pmf < 0) or not np.isclose(pmf.sum(), 1.0):
        raise ValueError("delay pmf must be a probability distribution")
    return pmf / pmf.sum()


class DelayModel:
    """Distribution of per-dispatcher snapshot ages, in whole epochs.

    A delay model answers two questions every epoch:

    1. Which *regime* is each replica's information system in
       (:meth:`step_regimes_batch`)? Regimes evolve exogenously, like
       the arrival-mode chain of
       :class:`repro.queueing.arrivals.MarkovModulatedRate`.
    2. What fraction of each replica's dispatcher population holds a
       snapshot of age ``k`` (:meth:`sample_fractions_batch`)?

    Parameters
    ----------
    pmfs : array_like
        Delay distributions per regime, shape ``(R, K + 1)``; entry
        ``[r, k]`` is the probability that a dispatcher's snapshot is
        ``k`` epochs old in regime ``r``.
    transition_matrix : array_like
        Row-stochastic ``(R, R)`` regime-switching matrix.
    initial_distribution : array_like, optional
        Initial regime distribution; defaults to uniform.

    Notes
    -----
    A snapshot of age ``k`` means the dispatcher routes against the
    queue states broadcast ``k`` epochs before the current one; ``k = 0``
    is the paper's synchronous broadcast. The model is *exchangeable*
    across dispatchers — only the population fractions per age matter
    for the frozen-rate thinning, which is what
    :meth:`sample_fractions_batch` returns.
    """

    def __init__(
        self,
        pmfs,
        transition_matrix,
        initial_distribution=None,
    ) -> None:
        pmfs = np.asarray(pmfs, dtype=np.float64)
        if pmfs.ndim != 2 or pmfs.size < 1:
            raise ValueError("pmfs must have shape (num_regimes, K + 1)")
        self.pmfs = np.stack([_validate_pmf(row) for row in pmfs])
        r = self.pmfs.shape[0]
        self.transition_matrix = np.asarray(
            transition_matrix, dtype=np.float64
        )
        if self.transition_matrix.shape != (r, r):
            raise ValueError(
                f"transition matrix must be ({r}, {r}), "
                f"got {self.transition_matrix.shape}"
            )
        if np.any(self.transition_matrix < 0) or not np.allclose(
            self.transition_matrix.sum(axis=1), 1.0
        ):
            raise ValueError("transition matrix rows must be distributions")
        if initial_distribution is None:
            initial_distribution = np.full(r, 1.0 / r)
        self.initial_distribution = _validate_pmf(initial_distribution)
        if self.initial_distribution.size != r:
            raise ValueError("initial distribution has wrong length")

    # ------------------------------------------------------------------
    @property
    def num_regimes(self) -> int:
        """Number of delay regimes ``R``."""
        return int(self.pmfs.shape[0])

    @property
    def max_delay(self) -> int:
        """Largest supported snapshot age ``K`` (epochs)."""
        return int(self.pmfs.shape[1] - 1)

    @property
    def is_point_mass_at_zero(self) -> bool:
        """``True`` iff every regime puts all mass on age 0.

        This is the paper's fixed-``Δt`` information structure; callers
        use it to select code paths that are bit-identical to the
        undelayed environments (no extra random draws).
        """
        return bool(np.all(self.pmfs[:, 0] == 1.0))

    def pmf(self, regime: int = 0) -> np.ndarray:
        """Delay pmf of one regime, shape ``(K + 1,)``."""
        if not 0 <= regime < self.num_regimes:
            raise ValueError(
                f"regime {regime} out of range [0, {self.num_regimes})"
            )
        return self.pmfs[regime].copy()

    def mean_delay(self, regime: int = 0) -> float:
        """Expected snapshot age (in epochs) within one regime."""
        ages = np.arange(self.max_delay + 1)
        return float(self.pmf(regime) @ ages)

    def stationary_pmf(self) -> np.ndarray:
        """Delay pmf under the regime chain's stationary distribution."""
        from repro.meanfield.analytic import mmpp_stationary_distribution

        pi = mmpp_stationary_distribution(self.transition_matrix)
        return pi @ self.pmfs

    # -- regime chain (mirrors MarkovModulatedRate's batched API) -------
    def sample_initial_regimes_batch(self, count: int, rng=None) -> np.ndarray:
        """Independent initial regimes for ``count`` replicas, ``(E,)``."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if self.num_regimes == 1:
            return np.zeros(count, dtype=np.intp)
        rng = as_generator(rng)
        cum = np.cumsum(self.initial_distribution)
        cum[-1] = 1.0
        return (rng.random(count)[:, None] > cum[None, :]).sum(axis=1)

    def step_regimes_batch(self, regimes: np.ndarray, rng=None) -> np.ndarray:
        """Advance every replica's regime chain independently, ``(E,)``."""
        regimes = np.asarray(regimes)
        if (
            regimes.min(initial=0) < 0
            or regimes.max(initial=0) >= self.num_regimes
        ):
            raise ValueError(f"regimes out of range [0, {self.num_regimes})")
        if self.num_regimes == 1:
            return np.zeros(regimes.size, dtype=np.intp)
        rng = as_generator(rng)
        cum = np.cumsum(self.transition_matrix, axis=1)
        cum[:, -1] = 1.0
        return (rng.random(regimes.size)[:, None] > cum[regimes]).sum(axis=1)

    # -- dispatcher-population split ------------------------------------
    def sample_fractions_batch(
        self, regimes: np.ndarray, num_clients: int, rng=None
    ) -> np.ndarray:
        """Per-replica dispatcher fractions per snapshot age, ``(E, K+1)``.

        Each replica's ``N`` dispatchers are split over the ages by one
        multinomial draw against its regime's pmf — the finite-``N``
        fluctuation of the information population. Degenerate pmfs
        (point masses) skip the draw entirely, which keeps the
        fixed-delay model bit-identical to the undelayed stream.
        """
        regimes = np.asarray(regimes)
        if num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        pmfs = self.pmfs[regimes]
        if np.all((pmfs == 0.0) | (pmfs == 1.0)):
            return pmfs.copy()
        rng = as_generator(rng)
        counts = np.stack(
            [rng.multinomial(num_clients, row) for row in pmfs]
        )
        return counts.astype(np.float64) / num_clients

    def replica(self) -> "DelayModel":
        """Model instance for an independent environment clone.

        The base model is memoryless (regime state lives in the
        environment, not the model), so clones share one instance.
        """
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(K={self.max_delay}, "
            f"regimes={self.num_regimes})"
        )


class DeterministicDelay(DelayModel):
    """Every dispatcher's snapshot is exactly ``k`` epochs old.

    Parameters
    ----------
    k : int
        Fixed snapshot age in epochs. ``k = 0`` reproduces the paper's
        synchronous-broadcast model exactly (and the delayed
        environment/propagator are bit-identical to / within 1e-10 of
        their undelayed counterparts in that case).
    """

    def __init__(self, k: int = 0) -> None:
        k = int(k)
        if k < 0:
            raise ValueError(f"delay must be >= 0 epochs, got {k}")
        pmf = np.zeros(k + 1)
        pmf[k] = 1.0
        super().__init__(pmf[None, :], np.ones((1, 1)))
        self.k = k


class IIDDelay(DelayModel):
    """Per-dispatcher i.i.d. snapshot ages with a fixed pmf.

    Parameters
    ----------
    pmf : array_like
        Probability of each snapshot age ``0..K``, length ``K + 1``.
    """

    def __init__(self, pmf) -> None:
        pmf = _validate_pmf(pmf)
        super().__init__(pmf[None, :], np.ones((1, 1)))


class MarkovModulatedDelay(DelayModel):
    """Delay pmf switching between regimes via an exogenous Markov chain.

    The canonical instance models a monitoring plane that is usually
    *synced* (most dispatchers at age 0) but occasionally enters a
    *degraded* regime where snapshot ages spread out — see
    :meth:`synced_degraded`.
    """

    @classmethod
    def synced_degraded(
        cls,
        degraded_pmf=(0.2, 0.3, 0.3, 0.2),
        p_degrade: float = 0.05,
        p_recover: float = 0.25,
    ) -> "MarkovModulatedDelay":
        """Two-regime model: synced (age 0) vs degraded (spread ages).

        Parameters
        ----------
        degraded_pmf : array_like
            Snapshot-age distribution while degraded.
        p_degrade, p_recover : float
            Per-epoch switching probabilities synced→degraded and
            degraded→synced.
        """
        degraded = _validate_pmf(degraded_pmf)
        synced = np.zeros_like(degraded)
        synced[0] = 1.0
        if not 0.0 <= p_degrade <= 1.0 or not 0.0 <= p_recover <= 1.0:
            raise ValueError("switching probabilities must lie in [0, 1]")
        return cls(
            pmfs=np.stack([synced, degraded]),
            transition_matrix=[
                [1.0 - p_degrade, p_degrade],
                [p_recover, 1.0 - p_recover],
            ],
            initial_distribution=[1.0, 0.0],
        )
