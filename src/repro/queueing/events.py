"""Event-driven job-level Gillespie simulator (validation substrate).

The frozen-rate epoch model of :mod:`repro.queueing.queue_ctmc` treats
each queue's epoch as an independent birth-death chain. This module
simulates the *same* epoch at the individual-job level with a single
global clock: jobs arrive in one system-wide Poisson stream of rate
``M·λ_t``, each job lands on a uniformly random client and is forwarded
to that client's committed queue (or to a freshly sampled slot when
per-packet randomization is enabled, cf. the remark below Eq. 4);
services complete one at a time at the busy queues. By Poisson thinning
and superposition the two simulators agree *in distribution* — the
integration tests check exactly that, which guards both implementations
against modelling drift.
"""

from __future__ import annotations

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.utils.rng import as_generator

__all__ = ["simulate_epoch_event_driven"]


def simulate_epoch_event_driven(
    states: np.ndarray,
    committed: np.ndarray,
    lam: float,
    service_rates: np.ndarray | float,
    delta_t: float,
    buffer_size: int,
    rng=None,
    sampled: np.ndarray | None = None,
    rule: DecisionRule | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulate one epoch event by event (single global clock).

    Parameters
    ----------
    states : ndarray
        Epoch-start queue states, shape ``(M,)``, entries in
        ``[0, buffer_size]``.
    committed : ndarray
        Per-client committed queue index, shape ``(N,)`` — output of
        :func:`repro.queueing.clients.sample_client_choices`.
    lam : float
        Per-queue arrival intensity ``λ_t`` (system rate is ``M λ_t``).
    service_rates : ndarray or float
        Exponential service rate per queue (scalars broadcast); must be
        positive.
    delta_t : float
        Epoch length: the simulated time span.
    buffer_size : int
        Queue capacity ``B``; arrivals at a full queue are dropped.
    rng : optional
        Seed or :class:`numpy.random.Generator` driving the event
        clock.
    sampled, rule : ndarray, DecisionRule, optional
        When both are given, per-packet randomization is used: each
        arriving packet re-samples its slot ``u ~ h(·|z̄_i)`` from the
        client's epoch-start observation instead of using the committed
        choice. ``sampled`` is the ``(N, d)`` matrix of sampled queues.

    Returns
    -------
    (ndarray, ndarray)
        ``(new_states, drops)``: epoch-end states and dropped-packet
        counts, each shape ``(M,)``.

    Raises
    ------
    ValueError
        On out-of-range states/indices, non-positive rates or epoch
        length, or a half-specified per-packet mode.
    """
    rng = as_generator(rng)
    states = np.asarray(states)
    committed = np.asarray(committed)
    m = states.size
    n = committed.size
    if states.min(initial=0) < 0 or states.max(initial=0) > buffer_size:
        raise ValueError("states out of range")
    if committed.min(initial=0) < 0 or committed.max(initial=0) >= m:
        raise ValueError("committed queue indices out of range")
    if lam < 0 or delta_t <= 0:
        raise ValueError("invalid lam or delta_t")
    per_packet = sampled is not None or rule is not None
    if per_packet and (sampled is None or rule is None):
        raise ValueError("per-packet mode needs both `sampled` and `rule`")
    if per_packet and sampled.shape[0] != n:
        raise ValueError("sampled must have one row per client")
    service = np.broadcast_to(
        np.asarray(service_rates, dtype=np.float64), (m,)
    ).copy()
    if service.min() <= 0:
        raise ValueError("service rates must be > 0")
    # Epoch-start snapshot used for per-packet routing decisions: clients
    # only ever see the synchronously broadcast states.
    snapshot = states.copy()

    z = states.astype(np.int64).copy()
    drops = np.zeros(m, dtype=np.int64)
    arrival_rate_total = m * lam
    t = 0.0
    while True:
        busy_service = float(service[z > 0].sum())
        total_rate = arrival_rate_total + busy_service
        if total_rate <= 0:
            break
        t += rng.exponential(1.0 / total_rate)
        if t > delta_t:
            break
        if rng.random() < arrival_rate_total / total_rate:
            client = int(rng.integers(n))
            if per_packet:
                zbar = snapshot[sampled[client]]
                slot = int(rule.sample_actions(zbar[None, :], rng)[0])
                queue = int(sampled[client, slot])
            else:
                queue = int(committed[client])
            if z[queue] >= buffer_size:
                drops[queue] += 1
            else:
                z[queue] += 1
        else:
            busy = np.flatnonzero(z > 0)
            weights = service[busy]
            queue = int(rng.choice(busy, p=weights / weights.sum()))
            z[queue] -= 1
    return z, drops
