"""Finite-system substrate: arrivals, queues, clients, environments.

Implements the ``N``-client ``M``-queue system of Section 2 and the
evaluation procedure of Algorithm 1, plus an event-driven job-level
simulator used to cross-validate the frozen-rate epoch model and a
heterogeneous-server extension.
"""

from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.queue_ctmc import (
    simulate_queues_epoch,
    simulate_queues_epoch_batched,
)
from repro.queueing.clients import (
    expected_choice_counts,
    sample_client_choices,
    sample_client_choices_batched,
)
from repro.queueing.env import FiniteSystemEnv, InfiniteClientEnv, run_episode
from repro.queueing.batched_env import (
    BatchedEpisodeResult,
    BatchedFiniteSystemEnv,
    BatchedInfiniteClientEnv,
    run_episodes_batched,
)
from repro.queueing.events import simulate_epoch_event_driven
from repro.queueing.heterogeneous import (
    BatchedHeterogeneousFiniteEnv,
    HeterogeneousFiniteEnv,
    ServerClassSpec,
)
from repro.queueing.topology import TopologySpec
from repro.queueing.graph_env import BatchedGraphFiniteEnv

__all__ = [
    "TopologySpec",
    "BatchedGraphFiniteEnv",
    "BatchedHeterogeneousFiniteEnv",
    "HeterogeneousFiniteEnv",
    "ServerClassSpec",
    "MarkovModulatedRate",
    "simulate_queues_epoch",
    "simulate_queues_epoch_batched",
    "sample_client_choices",
    "sample_client_choices_batched",
    "expected_choice_counts",
    "FiniteSystemEnv",
    "InfiniteClientEnv",
    "run_episode",
    "BatchedFiniteSystemEnv",
    "BatchedInfiniteClientEnv",
    "BatchedEpisodeResult",
    "run_episodes_batched",
    "simulate_epoch_event_driven",
]
