"""Finite-system substrate: arrivals, queues, clients, environments.

Implements the ``N``-client ``M``-queue system of Section 2 and the
evaluation procedure of Algorithm 1, plus an event-driven job-level
simulator used to cross-validate the frozen-rate epoch model, a
heterogeneous-server extension, sparse dispatcher topologies,
non-stationary workload generators (``workloads``), stochastic
observation-delay models (``delays``, ``delayed_env``), and an RL
adapter exposing the finite delayed system as a training MDP
(``finite_mdp``).
"""

from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.backends import (
    available_backends,
    get_backend,
    runnable_backends,
)
from repro.queueing.queue_ctmc import (
    simulate_queues_epoch,
    simulate_queues_epoch_batched,
)
from repro.queueing.clients import (
    expected_choice_counts,
    sample_client_choices,
    sample_client_choices_batched,
)
from repro.queueing.env import FiniteSystemEnv, InfiniteClientEnv, run_episode
from repro.queueing.batched_env import (
    BatchedEpisodeResult,
    BatchedFiniteSystemEnv,
    BatchedInfiniteClientEnv,
    run_episodes_batched,
)
from repro.queueing.events import simulate_epoch_event_driven
from repro.queueing.heterogeneous import (
    BatchedHeterogeneousFiniteEnv,
    HeterogeneousFiniteEnv,
    ServerClassSpec,
)
from repro.queueing.topology import TopologySpec
from repro.queueing.graph_env import BatchedGraphFiniteEnv
from repro.queueing.delays import (
    DelayModel,
    DeterministicDelay,
    IIDDelay,
    MarkovModulatedDelay,
)
from repro.queueing.delayed_env import BatchedDelayedFiniteEnv
from repro.queueing.finite_mdp import FiniteRegimeEnv
from repro.queueing.hybrid_env import BatchedHybridFleetEnv
from repro.queueing.workloads import (
    DiurnalRate,
    FlashCrowdRate,
    ProfileRate,
    TraceReplayRate,
)
from repro.queueing.chaos import (
    CapacityFlap,
    CapacityProfile,
    DegradationSchedule,
    LinkFailure,
    ServerOutage,
    TopologyRewire,
    parse_chaos_spec,
    reroute_away,
    water_fill,
)

__all__ = [
    "DegradationSchedule",
    "ServerOutage",
    "CapacityFlap",
    "CapacityProfile",
    "LinkFailure",
    "TopologyRewire",
    "parse_chaos_spec",
    "reroute_away",
    "water_fill",
    "TopologySpec",
    "BatchedGraphFiniteEnv",
    "DelayModel",
    "DeterministicDelay",
    "IIDDelay",
    "MarkovModulatedDelay",
    "BatchedDelayedFiniteEnv",
    "FiniteRegimeEnv",
    "BatchedHybridFleetEnv",
    "ProfileRate",
    "DiurnalRate",
    "FlashCrowdRate",
    "TraceReplayRate",
    "BatchedHeterogeneousFiniteEnv",
    "HeterogeneousFiniteEnv",
    "ServerClassSpec",
    "MarkovModulatedRate",
    "available_backends",
    "get_backend",
    "runnable_backends",
    "simulate_queues_epoch",
    "simulate_queues_epoch_batched",
    "sample_client_choices",
    "sample_client_choices_batched",
    "expected_choice_counts",
    "FiniteSystemEnv",
    "InfiniteClientEnv",
    "run_episode",
    "BatchedFiniteSystemEnv",
    "BatchedInfiniteClientEnv",
    "BatchedEpisodeResult",
    "run_episodes_batched",
    "simulate_epoch_event_driven",
]
