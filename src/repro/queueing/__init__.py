"""Finite-system substrate: arrivals, queues, clients, environments.

Implements the ``N``-client ``M``-queue system of Section 2 and the
evaluation procedure of Algorithm 1, plus an event-driven job-level
simulator used to cross-validate the frozen-rate epoch model and a
heterogeneous-server extension.
"""

from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.queue_ctmc import simulate_queues_epoch
from repro.queueing.clients import (
    expected_choice_counts,
    sample_client_choices,
)
from repro.queueing.env import FiniteSystemEnv, InfiniteClientEnv, run_episode
from repro.queueing.events import simulate_epoch_event_driven

__all__ = [
    "MarkovModulatedRate",
    "simulate_queues_epoch",
    "sample_client_choices",
    "expected_choice_counts",
    "FiniteSystemEnv",
    "InfiniteClientEnv",
    "run_episode",
    "simulate_epoch_event_driven",
]
