"""RL adapter: the finite delayed system as a single-trajectory MDP.

The training campaign's mean-field proxy (``DelayedMeanFieldEnv``) is
cheap and exact in the ``M -> ∞`` limit — but that limit is also its
blind spot. In the mean field the queue-state law drifts smoothly, so a
snapshot from ``k`` epochs ago barely differs from the current law and
the cost of routing on stale information nearly vanishes from the
training signal. On the *finite* deployment system the delay cost is
driven by exactly what the limit integrates out: fluctuations of the
empirical state, and dispatcher herding onto queues that looked short
``k`` epochs ago. A policy fine-tuned on the proxy therefore optimizes
a quantity that is almost flat in the direction the leaderboard
measures.

:class:`FiniteRegimeEnv` closes that gap by exposing one replica of
:class:`repro.queueing.delayed_env.BatchedDelayedFiniteEnv` through the
MFC environment protocol (``reset`` / ``step_raw`` / ``observation`` /
``clone``), so :class:`repro.rl.ppo.PPOTrainer` and the chunk-invariant
:class:`repro.rl.vector_rollout.VectorRolloutCollector` train on the
deployment dynamics themselves:

* the observation is the **empirical** distribution ``H_t`` — the same
  quantity the deployed policy is queried on — plus the arrival-mode
  one-hot and the regime's context features (live age context when
  ``features.live_age`` is set, matching the live channel of
  ``step_with_policy``);
* the reward is the realized ``-drop_penalty * drops_per_queue`` of the
  epoch, putting finite-``M`` fluctuation costs into the gradient;
* episodes truncate at ``horizon`` epochs and reset through the batched
  environment's own seeding discipline, so collection remains a pure
  function of the seeds (the campaign's resumability contract).
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.features import (
    ObservationFeatures,
    age_context,
    regime_age_context,
)
from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.delayed_env import BatchedDelayedFiniteEnv
from repro.queueing.delays import DelayModel

__all__ = ["FiniteRegimeEnv"]


class FiniteRegimeEnv:
    """One finite-system replica behind the MFC training protocol.

    Parameters
    ----------
    config : SystemConfig
        Deployment system parameters (``num_queues`` is the *finite*
        fleet size the policy is tuned for).
    horizon : int, optional
        Episode length in epochs; defaults to ``config.episode_length``.
    delay_model : DelayModel, optional
        Snapshot-age model of the regime (default: synchronous).
    arrival_process : MarkovModulatedRate, optional
        As in the batched environment.
    features : ObservationFeatures, optional
        Context features appended to ``[H_t, one_hot(λ mode)]``.
    seed :
        Seed or generator for the underlying batched environment.
    """

    def __init__(
        self,
        config: SystemConfig,
        horizon: int | None = None,
        delay_model: DelayModel | None = None,
        arrival_process: MarkovModulatedRate | None = None,
        features: ObservationFeatures | None = None,
        seed=None,
    ) -> None:
        self.config = config
        self.horizon = int(
            horizon if horizon is not None else config.episode_length
        )
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        self.features = (
            features if features is not None else ObservationFeatures()
        )
        self._env = BatchedDelayedFiniteEnv(
            config,
            num_replicas=1,
            delay_model=delay_model,
            arrival_process=arrival_process,
            seed=seed,
        )
        self._age_context = (
            age_context(self._env.delay_model) if self.features.age else None
        )
        self._t = 0

    # ------------------------------------------------------------------
    @property
    def num_queue_states(self) -> int:
        return self.config.num_queue_states

    @property
    def num_modes(self) -> int:
        return self._env.arrivals.num_modes

    @property
    def observation_size(self) -> int:
        return (
            self.num_queue_states + self.num_modes + self.features.extra_dims
        )

    @property
    def action_size(self) -> int:
        return self.num_queue_states ** self.config.d * self.config.d

    @property
    def delay_regime(self) -> int:
        """Current delay regime of the single replica."""
        return int(self._env.delay_regimes[0])

    def live_age_context(self) -> tuple[float, float]:
        """Age context of the replica's current delay regime."""
        return regime_age_context(self._env.delay_model, self.delay_regime)

    # ------------------------------------------------------------------
    def observation(self) -> np.ndarray:
        """``[H_t, one_hot(λ mode), features]`` for the single replica —
        exactly what the deployed policy computes from the same state."""
        nu = self._env.empirical_distributions()[0]
        one_hot = np.zeros(self.num_modes)
        one_hot[int(self._env.lam_modes[0])] = 1.0
        base = np.concatenate([nu, one_hot])
        if not self.features.extra_dims:
            return base
        age = (
            self.live_age_context()
            if self.features.live_age
            else self._age_context
        )
        return np.concatenate([base, self.features.vector(nu, age=age)])

    def reset(self, seed=None) -> np.ndarray:
        self._env.reset(seed)
        self._t = 0
        return self.observation()

    def step_raw(
        self, raw_action: np.ndarray
    ) -> tuple[np.ndarray, float, bool, dict]:
        """Step with an unconstrained action vector (RL interface)."""
        rule = DecisionRule.from_raw(
            raw_action, self.num_queue_states, self.config.d
        )
        _, rewards, info = self._env.step([rule])
        self._t += 1
        done = self._t >= self.horizon
        step_info = {
            "drops": float(info["drops_per_queue"][0]),
            "lam": float(self._env.current_rates[0]),
            "t": self._t,
            "truncated": done,
            "delay_regime": int(info["delay_regimes"][0]),
        }
        return self.observation(), float(rewards[0]), done, step_info

    def clone(self, seed=None) -> "FiniteRegimeEnv":
        """Fresh environment with the same regime (lock-step ensembles)."""
        delay = self._env.delay_model
        arrivals = self._env.arrivals
        return FiniteRegimeEnv(
            self.config,
            horizon=self.horizon,
            delay_model=delay.replica() if delay is not None else None,
            arrival_process=(
                arrivals.replica() if arrivals is not None else None
            ),
            features=self.features,
            seed=seed,
        )
