"""Batched finite-system environments: ``E`` replicas in lock-step.

The Monte-Carlo procedure of Section 4 (and every Figure 4-6 sweep)
repeats the *same* Algorithm 1 episode over ``n`` independent replicas
of the ``N``-client ``M``-queue system. Stepping those replicas one at a
time leaves NumPy dispatch overhead as the dominant cost for the paper's
``M ≤ 1000``-queue systems, so this module runs all replicas through the
same array operations: queue states are shaped ``(E, M)``, every replica
carries its own arrival-mode chain state, and one call into the batched
client/queue kernels (:mod:`repro.queueing.clients`,
:mod:`repro.queueing.queue_ctmc`) advances the whole ensemble by one
decision epoch.

:class:`BatchedFiniteSystemEnv` is the ``E``-replica ``N``-client system
of Section 2.1; :class:`BatchedInfiniteClientEnv` the ``N → ∞`` system
of Section 2.2. Both are driven by an
:class:`repro.policies.base.UpperLevelPolicy` exactly as Figure 2
prescribes, queried once per replica per epoch (policies that implement
``decision_rules_batch`` answer all replicas with one forward pass;
stationary policies are queried once in total). The scalar environments
in :mod:`repro.queueing.env` are thin ``E = 1`` wrappers around these
classes and consume the generator stream identically, so a scalar and an
``E = 1`` batched simulation with a shared seed are bit-identical.

See ``docs/scaling.md`` for when to prefer the batched path and the
expected speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.decision_rule import DecisionRule
from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.backends import draw_uniform_queue_samples, get_backend
from repro.queueing.clients import (
    infinite_client_rates_batched,
    stack_rules,
)
from repro.utils.rng import as_generator

if TYPE_CHECKING:  # import cycle: policies build on top of the queue substrate
    from repro.policies.base import UpperLevelPolicy
    from repro.queueing.chaos import DegradationSchedule

__all__ = [
    "BatchedFiniteSystemEnv",
    "BatchedInfiniteClientEnv",
    "BatchedEpisodeResult",
    "run_episodes_batched",
]

RulesLike = "DecisionRule | Sequence[DecisionRule]"


class _BatchedQueueSystemBase:
    """State/bookkeeping shared by the batched finite/infinite systems."""

    def __init__(
        self,
        config: SystemConfig,
        num_replicas: int,
        arrival_process: MarkovModulatedRate | None = None,
        service_rates: np.ndarray | None = None,
        per_packet_randomization: bool = False,
        seed=None,
        backend: str | None = None,
        chaos: "DegradationSchedule | None" = None,
    ) -> None:
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        # ``backend`` names an epoch kernel from the simulation-backend
        # registry ("numpy", "numba", "auto", or a kernel instance);
        # every kernel honoring the RNG-draw contract leaves the random
        # streams — and therefore all results — bit-identical.
        self.kernel = get_backend(backend)
        self.config = config
        self.num_replicas = int(num_replicas)
        self.per_packet_randomization = per_packet_randomization
        self.arrivals = (
            arrival_process
            if arrival_process is not None
            else MarkovModulatedRate.from_config(config)
        )
        if service_rates is None:
            self.service_rates = np.full(config.num_queues, config.service_rate)
        else:
            self.service_rates = np.asarray(service_rates, dtype=np.float64)
            if self.service_rates.shape != (config.num_queues,):
                raise ValueError(
                    f"service_rates must have shape ({config.num_queues},)"
                )
            if self.service_rates.min() <= 0:
                raise ValueError("service rates must be > 0")
        if chaos is not None:
            from repro.queueing.chaos import DegradationSchedule

            if not isinstance(chaos, DegradationSchedule):
                raise ValueError(
                    f"chaos must be a DegradationSchedule, got {chaos!r}"
                )
            # Queue indices and the outage timeline are checked here so
            # a bad schedule fails at construction; whether the
            # environment supports topology events is only known at
            # bind time (subclasses attach ``topology`` after this).
            chaos._resolved_events(config.num_queues)
        self.chaos = chaos
        self._chaos_state = None
        self._rng = as_generator(seed)
        self._states: np.ndarray | None = None
        self._lam_modes = np.zeros(self.num_replicas, dtype=np.intp)
        self._t = 0

    # -- state access ---------------------------------------------------
    @property
    def queue_states(self) -> np.ndarray:
        """Current queue fillings, shape ``(E, M)``."""
        if self._states is None:
            raise RuntimeError("environment must be reset before use")
        return self._states.copy()

    @property
    def lam_modes(self) -> np.ndarray:
        """Per-replica arrival-mode indices, shape ``(E,)``."""
        return self._lam_modes.copy()

    @property
    def current_rates(self) -> np.ndarray:
        """Per-replica arrival intensities ``λ_t``, shape ``(E,)``."""
        return self.arrivals.levels[self._lam_modes]

    @property
    def t(self) -> int:
        return self._t

    def empirical_distributions(self) -> np.ndarray:
        """``H_t`` per replica (Eq. 2), shape ``(E, S)``."""
        if self._states is None:
            raise RuntimeError("environment must be reset before use")
        s = self.config.num_queue_states
        offsets = np.arange(self.num_replicas, dtype=np.int64)[:, None] * s
        counts = np.bincount(
            (self._states + offsets).ravel(), minlength=self.num_replicas * s
        ).reshape(self.num_replicas, s)
        return counts.astype(np.float64) / self.config.num_queues

    def reset(self, seed=None) -> np.ndarray:
        """Fresh queue states and per-replica arrival modes; returns ``H_0``."""
        if seed is not None:
            self._rng = as_generator(seed)
        if self._chaos_state is not None:
            # Undo whatever the previous run's events left behind before
            # rebinding, so back-to-back runs see the pristine world.
            self.service_rates = self._chaos_state.base_service_rates.copy()
            if self._chaos_state._pristine_topology is not None:
                self.topology = self._chaos_state._pristine_topology
            self._chaos_state = None
        self._states = np.full(
            (self.num_replicas, self.config.num_queues),
            self.config.initial_state,
            dtype=np.int64,
        )
        self._lam_modes = self.arrivals.sample_initial_modes_batch(
            self.num_replicas, self._rng
        )
        self._t = 0
        if self.chaos is not None and not self.chaos.is_empty:
            self._chaos_state = self.chaos.bind(self)
        return self.empirical_distributions()

    # -- template step ----------------------------------------------------
    def _frozen_rates(self, rules: RulesLike) -> np.ndarray:
        raise NotImplementedError

    def _check_rules(self, rules: RulesLike) -> None:
        first = rules if isinstance(rules, DecisionRule) else rules[0]
        if (
            first.num_states != self.config.num_queue_states
            or first.d != self.config.d
        ):
            raise ValueError(
                f"rule geometry (S={first.num_states}, d={first.d}) does not "
                f"match config (S={self.config.num_queue_states}, "
                f"d={self.config.d})"
            )

    def step(self, rules: RulesLike) -> tuple[np.ndarray, np.ndarray, dict]:
        """Apply one decision rule per replica for one epoch.

        ``rules`` is a single :class:`DecisionRule` (shared by all
        replicas) or a sequence of ``E`` per-replica rules. Returns
        ``(H_next, rewards, info)`` where ``H_next`` is ``(E, S)``,
        ``rewards = -drop_penalty * D_t`` is ``(E,)`` and the info arrays
        are per replica.
        """
        if self._states is None:
            raise RuntimeError("environment must be reset before use")
        self._check_rules(rules)
        chaos = self._chaos_state
        if chaos is not None:
            # Degradation events anchored at this epoch fire before the
            # dispatchers look at the world: a queue failing at t is
            # already gone when epoch t's traffic routes. The chaos
            # layer consumes no random draws, so the streams below are
            # those of the undisturbed run's layout.
            event_drops, rates_changed = chaos.begin_epoch(self, self._t)
        rates = self._frozen_rates(rules)
        served_rates = rates
        blackholed = None
        if chaos is not None:
            # Dispatchers are not told about outages — they route by the
            # (possibly stale) snapshots, and arrival mass sent to an
            # inactive queue is lost. Masking after the routing draw
            # keeps every draw shape identical across backends.
            served_rates, blackholed = chaos.mask_rates(
                rates, self.config.delta_t
            )
        new_states, drops = self.kernel.serve_epoch(
            self._states,
            served_rates,
            self.service_rates,
            self.config.delta_t,
            self.config.buffer_size,
            self._rng,
        )
        kernel_drops = drops.sum(axis=1)
        total_drops = kernel_drops
        self._states = new_states
        self._lam_modes = self.arrivals.step_modes_batch(
            self._lam_modes, self._rng
        )
        self._t += 1
        info = {
            "arrival_rates": rates,
            "t": self._t,
        }
        if chaos is not None:
            chaos_drops = event_drops.copy()
            if blackholed is not None:
                chaos_drops += blackholed
            total_drops = kernel_drops + chaos_drops
            info["drops_kernel"] = kernel_drops
            info["chaos_drops"] = chaos_drops
            info["chaos_event_drops"] = event_drops
            info["chaos_blackholed"] = (
                blackholed
                if blackholed is not None
                else np.zeros(self.num_replicas)
            )
            info["chaos_active"] = chaos.active.copy()
            if rates_changed:
                info["chaos_rates_changed"] = True
        per_queue_drops = total_drops / self.config.num_queues
        info["drops_total"] = total_drops
        info["drops_per_queue"] = per_queue_drops
        rewards = -self.config.drop_penalty * per_queue_drops
        return self.empirical_distributions(), rewards, info

    def step_with_policy(
        self, policy: "UpperLevelPolicy"
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Algorithm 1 lines 8-19 for every replica: compute ``H_t``,
        query the policy per replica, apply the resulting rules.

        Stationary policies are queried once; others go through
        ``policy.decision_rules_batch`` (one batched forward pass for
        neural policies, a per-replica loop otherwise).
        """
        hists = self.empirical_distributions()
        if policy.is_stationary():
            rules: RulesLike = policy.decision_rule(
                hists[0], int(self._lam_modes[0]), self._rng
            )
        else:
            rules = policy.decision_rules_batch(
                hists, self._lam_modes, self._rng
            )
        return self.step(rules)


class BatchedFiniteSystemEnv(_BatchedQueueSystemBase):
    """``E`` replicas of the ``N``-client, ``M``-queue system.

    Every epoch, each replica's ``N`` clients sample ``d`` queues, commit
    a choice via that replica's decision rule, and queue ``j`` receives
    Poisson arrivals at the frozen rate ``λ_j = M λ_t · count_j / N``
    (Eq. 5) for ``Δt`` time units; all replicas advance in one batched
    kernel call.
    """

    def _frozen_rates(self, rules: RulesLike) -> np.ndarray:
        lam = self.current_rates[:, None]
        probs = stack_rules(rules, self.num_replicas)
        sampled = draw_uniform_queue_samples(
            self._rng,
            self.num_replicas,
            self.config.num_clients,
            probs.ndim - 2,
            self.config.num_queues,
        )
        if self.per_packet_randomization:
            # Paper remark below Eq. (4): in the experiments every packet
            # re-samples its slot, so the frozen rate thins over the
            # clients' full routing distributions instead of commitments.
            fractions = self.kernel.packet_fractions(
                self._states, sampled, probs, self.config.num_clients
            )
            return self.config.num_queues * lam * fractions
        counts = self.kernel.committed_counts(
            self._states, sampled, probs, self._rng
        )
        return (
            self.config.num_queues
            * lam
            * counts.astype(np.float64)
            / self.config.num_clients
        )


class BatchedInfiniteClientEnv(_BatchedQueueSystemBase):
    """``E`` replicas of the ``N → ∞`` system of Section 2.2.

    Client randomness averages out (conditional LLN): queue ``j`` of
    replica ``e`` receives the deterministic frozen rate
    ``λ_j = λ_t(H^e_t, z_j)`` (Eq. 14-15). Queue-side randomness remains
    and is simulated batched.
    """

    def _frozen_rates(self, rules: RulesLike) -> np.ndarray:
        return infinite_client_rates_batched(
            self._states, rules, self.current_rates
        )


@dataclass
class BatchedEpisodeResult:
    """Summary of ``E`` lock-step finite-system evaluation episodes."""

    total_drops_per_queue: np.ndarray  # (E,)
    per_epoch_drops: np.ndarray  # (E, T)
    num_epochs: int
    empirical_distributions: np.ndarray | None = None  # (E, T+1, S)
    extras: dict = field(default_factory=dict)

    @property
    def num_replicas(self) -> int:
        return int(self.total_drops_per_queue.size)

    @property
    def mean_total_drops(self) -> float:
        return float(self.total_drops_per_queue.mean())


def run_episodes_batched(
    env: _BatchedQueueSystemBase,
    policy: "UpperLevelPolicy",
    num_epochs: int | None = None,
    seed=None,
    record_distributions: bool = False,
) -> BatchedEpisodeResult:
    """Run Algorithm 1 for ``num_epochs`` epochs in all replicas at once.

    The batched counterpart of :func:`repro.queueing.env.run_episode`:
    returns the cumulative per-queue packet drops of every replica (the
    quantity on the y-axes of Figures 4-6) and the per-epoch series.
    """
    steps = (
        int(num_epochs)
        if num_epochs is not None
        else env.config.resolved_eval_length()
    )
    if steps < 1:
        raise ValueError("num_epochs must be >= 1")
    env.reset(seed)
    e = env.num_replicas
    drops = np.empty((e, steps))
    dists = None
    if record_distributions:
        # Width follows the environment, not the config: heterogeneous
        # envs distribute over the Z x C observed states, not Z.
        initial = env.empirical_distributions()
        dists = np.empty((e, steps + 1, initial.shape[1]))
        dists[:, 0] = initial
    for t in range(steps):
        _, _, info = env.step_with_policy(policy)
        drops[:, t] = info["drops_per_queue"]
        if dists is not None:
            dists[:, t + 1] = env.empirical_distributions()
    return BatchedEpisodeResult(
        total_drops_per_queue=drops.sum(axis=1),
        per_epoch_drops=drops,
        num_epochs=steps,
        empirical_distributions=dists,
    )
