"""Hybrid fleet environment: exact tracked subsystem, mean-field remainder.

Theorem 1 bounds the finite-system/mean-field gap as ``N, M → ∞``, but
simulating every queue caps brute force near ``E × M ≲ 10⁵``.
:class:`BatchedHybridFleetEnv` splits the fleet: the first ``M_track``
queues evolve with the exact batched kernels (the same
:class:`~repro.queueing.backends.protocol.EpochKernel` calls as
:class:`~repro.queueing.batched_env.BatchedFiniteSystemEnv`, so numpy
and numba backends both work), while the remaining
``M_field = M - M_track`` queues are closed by the exact mean-field
propagators (:class:`repro.meanfield.hybrid.HybridFieldClosure`) — the
finite-window-plus-field construction of Sparse Mean-Field Load
Balancing (arXiv:2312.12973), with the delay-mixture generality of
Doldo & Pender (arXiv:2112.05899) when a
:class:`~repro.queueing.delays.DelayModel` is attached.

Coupling
--------
Clients sample over the *full* fleet index space ``[0, M)``. Field
queues are represented by virtual states drawn i.i.d. from the field law
(one inverse-CDF draw per epoch and snapshot age), so the tracked
half's frozen rates carry the same sampling fluctuations as a fully
simulated fleet. Arrival mass is exchanged exactly: the field absorbs
``M λ_t`` minus the tracked half's sampled rates (surfaced as
``info["field_arrival_mass"]``), so

    tracked offered + field offered == M λ_t   (every epoch, exactly).

Limits
------
* ``M_field = 0`` — every code path, draw shape and operation matches
  :class:`BatchedFiniteSystemEnv` (or
  :class:`~repro.queueing.delayed_env.BatchedDelayedFiniteEnv` when a
  delay model is attached): the two are **bit-identical** under a
  shared seed.
* ``M_track = 0`` — no client sampling happens at all and the closure
  performs the identical operations as
  :func:`repro.meanfield.convergence.mean_field_trajectory` /
  :func:`repro.meanfield.delayed.delayed_mean_field_trajectory`.

The observation handed to policies (and returned by
:meth:`empirical_distributions`) is the mixture law
``(M_track/M) H_t + (M_field/M) ν_t``. Graph-topology (local) closures
are not supported — sparse dispatch needs per-queue laws; see
``docs/scaling.md``. Degradation schedules (chaos) are rejected: events
address physical queue indices, which the field half does not have.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.hybrid import HybridFieldClosure
from repro.queueing.backends import draw_uniform_queue_samples
from repro.queueing.batched_env import RulesLike, _BatchedQueueSystemBase
from repro.queueing.clients import stack_rules
from repro.queueing.delays import DelayModel
from repro.utils.rng import as_generator

__all__ = ["BatchedHybridFleetEnv"]


class BatchedHybridFleetEnv(_BatchedQueueSystemBase):
    """``E`` replicas of an ``M``-queue fleet with ``M_track`` exact queues.

    Parameters
    ----------
    config : SystemConfig
        System parameters; ``config.num_queues`` is the *full* fleet
        size ``M``.
    num_replicas : int
        Lock-step replica count ``E``.
    num_tracked : int
        Exactly simulated queue count ``M_track``, in ``[0, M]``.
    delay_model : DelayModel, optional
        Snapshot-age distribution for dispatchers; ``None`` is the
        paper's synchronous broadcast. Requires per-packet
        randomization, as in
        :class:`~repro.queueing.delayed_env.BatchedDelayedFiniteEnv`.
    arrival_process, per_packet_randomization, seed, backend :
        As in the batched base environment.
    """

    def __init__(
        self,
        config: SystemConfig,
        num_replicas: int,
        num_tracked: int,
        delay_model: DelayModel | None = None,
        arrival_process=None,
        per_packet_randomization: bool = False,
        seed=None,
        backend: str | None = None,
        chaos=None,
    ) -> None:
        if chaos is not None:
            raise ValueError(
                "BatchedHybridFleetEnv does not support degradation "
                "schedules; chaos events address physical queue indices, "
                "which the mean-field half does not have"
            )
        num_tracked = int(num_tracked)
        if not 0 <= num_tracked <= config.num_queues:
            raise ValueError(
                f"num_tracked must lie in [0, {config.num_queues}], "
                f"got {num_tracked}"
            )
        if delay_model is not None:
            if not isinstance(delay_model, DelayModel):
                raise ValueError(
                    f"delay_model must be a DelayModel, got {delay_model!r}"
                )
            if not per_packet_randomization:
                raise ValueError(
                    "delayed hybrid fleets model per-packet snapshot-age "
                    "mixtures; committed-choice routing is not supported"
                )
        super().__init__(
            config,
            num_replicas,
            arrival_process=arrival_process,
            per_packet_randomization=per_packet_randomization,
            seed=seed,
            backend=backend,
        )
        self.num_tracked = num_tracked
        self.num_field = config.num_queues - num_tracked
        # The serve-stage kernel only ever sees the tracked subsystem.
        self.service_rates = np.full(num_tracked, config.service_rate)
        self.delay_model = delay_model
        self._max_delay = 0 if delay_model is None else delay_model.max_delay
        self._closure: HybridFieldClosure | None = None
        self._regimes = np.zeros(self.num_replicas, dtype=np.intp)
        # Ring buffer of tracked-state snapshots, newest last (only
        # maintained when a delay model is attached).
        self._snapshots: deque[np.ndarray] = deque(maxlen=self._max_delay + 1)

    # -- state access ---------------------------------------------------
    @property
    def tracked_fraction(self) -> float:
        """Mixture weight ``M_track / M`` of the exact subsystem."""
        return self.num_tracked / self.config.num_queues

    @property
    def field_laws(self) -> np.ndarray | None:
        """Current field laws ``ν_t`` per replica, ``(E, S)`` (or None)."""
        return None if self._closure is None else self._closure.nu

    @property
    def delay_regimes(self) -> np.ndarray:
        """Per-replica delay-regime indices, shape ``(E,)``."""
        return self._regimes.copy()

    def snapshot(self, age: int) -> np.ndarray:
        """The age-``age`` tracked-state snapshot, ``(E, M_track)``."""
        if not 0 <= age <= self._max_delay:
            raise ValueError(f"age must lie in [0, {self._max_delay}]")
        if not self._snapshots:
            raise RuntimeError("environment must be reset before use")
        return self._snapshots[max(len(self._snapshots) - 1 - age, 0)]

    def _tracked_histograms(self, states: np.ndarray) -> np.ndarray:
        """Histogram of a tracked snapshot as per-replica laws, ``(E, S)``."""
        s = self.config.num_queue_states
        offsets = np.arange(self.num_replicas, dtype=np.int64)[:, None] * s
        counts = np.bincount(
            (states + offsets).ravel(), minlength=self.num_replicas * s
        ).reshape(self.num_replicas, s)
        return counts.astype(np.float64) / self.num_tracked

    def empirical_distributions(self) -> np.ndarray:
        """Mixture law ``(M_track/M) H_t + (M_field/M) ν_t``, ``(E, S)``."""
        if self._states is None:
            raise RuntimeError("environment must be reset before use")
        if self.num_field == 0:
            return super().empirical_distributions()
        field = self._closure.nu
        if self.num_tracked == 0:
            return field
        w = self.tracked_fraction
        return w * self._tracked_histograms(self._states) + (1.0 - w) * field

    def reset(self, seed=None) -> np.ndarray:
        if seed is not None:
            self._rng = as_generator(seed)
        self._states = np.full(
            (self.num_replicas, self.num_tracked),
            self.config.initial_state,
            dtype=np.int64,
        )
        self._lam_modes = self.arrivals.sample_initial_modes_batch(
            self.num_replicas, self._rng
        )
        self._t = 0
        if self.num_field > 0:
            nu0 = np.zeros(self.config.num_queue_states)
            nu0[self.config.initial_state] = 1.0
            self._closure = HybridFieldClosure(
                nu0,
                self.num_replicas,
                self._max_delay,
                self.config.service_rate,
                self.config.delta_t,
            )
        else:
            self._closure = None
        if self.delay_model is not None:
            self._snapshots.clear()
            self._snapshots.append(self._states.copy())
            self._regimes = self.delay_model.sample_initial_regimes_batch(
                self.num_replicas,
                self._rng if self.delay_model.num_regimes > 1 else None,
            )
        return self.empirical_distributions()

    # -- coupling -------------------------------------------------------
    def _observed_states(self, tracked: np.ndarray, age: int) -> np.ndarray:
        """Full-fleet observed states: tracked snapshot + virtual field."""
        if self.num_field == 0:
            return tracked
        virtual = self._closure.sample_states(age, self.num_field, self._rng)
        return np.concatenate([tracked, virtual], axis=1)

    def _frozen_rates(self, rules: RulesLike) -> np.ndarray:
        """Tracked-subsystem frozen rates, shape ``(E, M_track)``.

        Clients sample over the full fleet index space; the slice keeps
        every elementwise operation bit-identical to the dense (or
        delayed) environment when ``M_field = 0``.
        """
        if self.num_tracked == 0:
            return np.zeros((self.num_replicas, 0))
        lam = self.current_rates[:, None]
        probs = stack_rules(rules, self.num_replicas)
        m = self.config.num_queues
        if self.delay_model is None or self.delay_model.is_point_mass_at_zero:
            observed = self._observed_states(self._states, 0)
            sampled = draw_uniform_queue_samples(
                self._rng,
                self.num_replicas,
                self.config.num_clients,
                probs.ndim - 2,
                m,
            )
            if self.per_packet_randomization:
                fractions = self.kernel.packet_fractions(
                    observed, sampled, probs, self.config.num_clients
                )
                return m * lam * fractions[:, : self.num_tracked]
            counts = self.kernel.committed_counts(
                observed, sampled, probs, self._rng
            )
            return (
                m
                * lam
                * counts[:, : self.num_tracked].astype(np.float64)
                / self.config.num_clients
            )
        weights = self.delay_model.sample_fractions_batch(
            self._regimes, self.config.num_clients, self._rng
        )
        mixed = np.zeros((self.num_replicas, m))
        for age in range(self._max_delay + 1):
            w = weights[:, age]
            if not np.any(w > 0.0):
                continue
            observed = self._observed_states(self.snapshot(age), age)
            sampled = draw_uniform_queue_samples(
                self._rng,
                self.num_replicas,
                self.config.num_clients,
                probs.ndim - 2,
                m,
            )
            fractions = self.kernel.packet_fractions(
                observed, sampled, probs, self.config.num_clients
            )
            mixed += w[:, None] * fractions
        return m * lam * mixed[:, : self.num_tracked]

    def _closure_pmfs(self) -> np.ndarray | None:
        if self.delay_model is None or self._max_delay == 0:
            return None
        return self.delay_model.pmfs[self._regimes]

    def _closure_tracked_hists(self) -> "list[np.ndarray] | None":
        """Age-indexed epoch-start tracked histograms for the closure."""
        if self.num_tracked == 0:
            return None
        if self.delay_model is None or self._max_delay == 0:
            return [self._tracked_histograms(self._states)]
        return [
            self._tracked_histograms(self.snapshot(age))
            for age in range(self._max_delay + 1)
        ]

    def step(self, rules: RulesLike) -> tuple[np.ndarray, np.ndarray, dict]:
        if self._states is None:
            raise RuntimeError("environment must be reset before use")
        self._check_rules(rules)
        m = self.config.num_queues
        lam = self.current_rates
        rates = self._frozen_rates(rules)
        if self.num_field > 0:
            # Exact remainder of the offered mass M·λ — the conservation
            # invariant is enforced here by construction.
            field_mass = m * lam - rates.sum(axis=1)
            field_drops = self.num_field * self._closure.step(
                rules,
                lam,
                pmfs=self._closure_pmfs(),
                tracked_hists=self._closure_tracked_hists(),
                tracked_weight=self.tracked_fraction,
                field_targets=(
                    field_mass / self.num_field
                    if self.num_tracked > 0
                    else None
                ),
            )
        else:
            field_mass = np.zeros(self.num_replicas)
            field_drops = np.zeros(self.num_replicas)
        if self.num_tracked > 0:
            new_states, drops = self.kernel.serve_epoch(
                self._states,
                rates,
                self.service_rates,
                self.config.delta_t,
                self.config.buffer_size,
                self._rng,
            )
            tracked_drops = drops.sum(axis=1)
            self._states = new_states
        else:
            tracked_drops = np.zeros(self.num_replicas)
        # Integer drop counts survive the M_field = 0 reduction; mixing
        # in the field's expected drops promotes to float.
        total_drops = (
            tracked_drops if self.num_field == 0 else tracked_drops + field_drops
        )
        self._lam_modes = self.arrivals.step_modes_batch(
            self._lam_modes, self._rng
        )
        self._t += 1
        info = {
            "arrival_rates": rates,
            "t": self._t,
            "field_arrival_mass": field_mass,
            "field_drops": field_drops,
            "tracked_drops": tracked_drops,
        }
        per_queue_drops = total_drops / m
        info["drops_total"] = total_drops
        info["drops_per_queue"] = per_queue_drops
        rewards = -self.config.drop_penalty * per_queue_drops
        if self.delay_model is not None:
            self._snapshots.append(self._states.copy())
            info["delay_regimes"] = self._regimes
            if self.delay_model.num_regimes > 1:
                self._regimes = self.delay_model.step_regimes_batch(
                    self._regimes, self._rng
                )
        return self.empirical_distributions(), rewards, info
