"""Finite-system environments and the Algorithm 1 evaluation loop.

:class:`FiniteSystemEnv` is the ``N``-client ``M``-queue system of
Section 2.1; :class:`InfiniteClientEnv` is the intermediate
``N → ∞`` system of Section 2.2 (queues still finite, client choices
replaced by their conditional expectation). Both are driven by any
:class:`repro.policies.base.UpperLevelPolicy`, exactly as Figure 2
prescribes: the policy sees the *empirical* queue-state distribution
``H_t`` and the arrival mode, emits a decision rule, and the rule is
applied per client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.decision_rule import DecisionRule
from repro.queueing.arrivals import MarkovModulatedRate

if TYPE_CHECKING:  # import cycle: policies build on top of the queue substrate
    from repro.policies.base import UpperLevelPolicy
from repro.queueing.clients import (
    client_choice_counts,
    infinite_client_rates,
    per_packet_rate_fractions,
)
from repro.queueing.queue_ctmc import simulate_queues_epoch
from repro.utils.rng import as_generator

__all__ = ["FiniteSystemEnv", "InfiniteClientEnv", "EpisodeResult", "run_episode"]


class _QueueSystemBase:
    """State/bookkeeping shared by the finite- and infinite-client systems."""

    def __init__(
        self,
        config: SystemConfig,
        arrival_process: MarkovModulatedRate | None = None,
        service_rates: np.ndarray | None = None,
        per_packet_randomization: bool = False,
        seed=None,
    ) -> None:
        self.config = config
        self.per_packet_randomization = per_packet_randomization
        self.arrivals = (
            arrival_process
            if arrival_process is not None
            else MarkovModulatedRate.from_config(config)
        )
        if service_rates is None:
            self.service_rates = np.full(config.num_queues, config.service_rate)
        else:
            self.service_rates = np.asarray(service_rates, dtype=np.float64)
            if self.service_rates.shape != (config.num_queues,):
                raise ValueError(
                    f"service_rates must have shape ({config.num_queues},)"
                )
            if self.service_rates.min() <= 0:
                raise ValueError("service rates must be > 0")
        self._rng = as_generator(seed)
        self._states: np.ndarray | None = None
        self._lam_mode = 0
        self._t = 0

    # -- state access ---------------------------------------------------
    @property
    def queue_states(self) -> np.ndarray:
        if self._states is None:
            raise RuntimeError("environment must be reset before use")
        return self._states.copy()

    @property
    def lam_mode(self) -> int:
        return self._lam_mode

    @property
    def current_rate(self) -> float:
        return self.arrivals.rate(self._lam_mode)

    @property
    def t(self) -> int:
        return self._t

    def empirical_distribution(self) -> np.ndarray:
        """``H_t`` — fraction of queues in each state (Eq. 2)."""
        if self._states is None:
            raise RuntimeError("environment must be reset before use")
        counts = np.bincount(self._states, minlength=self.config.num_queue_states)
        return counts.astype(np.float64) / self.config.num_queues

    def reset(self, seed=None) -> np.ndarray:
        """Sample fresh queue states and arrival mode; returns ``H_0``."""
        if seed is not None:
            self._rng = as_generator(seed)
        self._states = np.full(
            self.config.num_queues, self.config.initial_state, dtype=np.int64
        )
        self._lam_mode = self.arrivals.sample_initial_mode(self._rng)
        self._t = 0
        return self.empirical_distribution()

    # -- template step ----------------------------------------------------
    def _frozen_rates(self, rule: DecisionRule) -> np.ndarray:
        raise NotImplementedError

    def step(self, rule: DecisionRule) -> tuple[np.ndarray, float, dict]:
        """Apply ``rule`` for one epoch; returns ``(H_next, reward, info)``.

        ``reward = -drop_penalty * D_t`` with ``D_t`` the *per-queue
        average* number of dropped packets during the epoch (Eq. 6).
        """
        if self._states is None:
            raise RuntimeError("environment must be reset before use")
        if (
            rule.num_states != self.config.num_queue_states
            or rule.d != self.config.d
        ):
            raise ValueError(
                f"rule geometry (S={rule.num_states}, d={rule.d}) does not "
                f"match config (S={self.config.num_queue_states}, "
                f"d={self.config.d})"
            )
        rates = self._frozen_rates(rule)
        new_states, drops = simulate_queues_epoch(
            self._states,
            rates,
            self.service_rates,
            self.config.delta_t,
            self.config.buffer_size,
            self._rng,
        )
        total_drops = int(drops.sum())
        per_queue_drops = total_drops / self.config.num_queues
        self._states = new_states
        self._lam_mode = self.arrivals.step_mode(self._lam_mode, self._rng)
        self._t += 1
        info = {
            "drops_total": total_drops,
            "drops_per_queue": per_queue_drops,
            "arrival_rates": rates,
            "t": self._t,
        }
        reward = -self.config.drop_penalty * per_queue_drops
        return self.empirical_distribution(), reward, info

    def step_with_policy(
        self, policy: "UpperLevelPolicy"
    ) -> tuple[np.ndarray, float, dict]:
        """Algorithm 1 lines 8-19: compute ``H_t``, query the policy,
        apply the resulting rule."""
        hist = self.empirical_distribution()
        rule = policy.decision_rule(hist, self._lam_mode, self._rng)
        return self.step(rule)


class FiniteSystemEnv(_QueueSystemBase):
    """The ``N``-client, ``M``-queue system (superscript ``N, M``).

    Every epoch, all ``N`` clients sample ``d`` queues, commit a choice
    via the decision rule, and queue ``j`` receives Poisson arrivals at
    the frozen rate ``λ_j = M λ_t · count_j / N`` (Eq. 5) for ``Δt``
    time units.
    """

    def _frozen_rates(self, rule: DecisionRule) -> np.ndarray:
        if self.per_packet_randomization:
            # Paper remark below Eq. (4): in the experiments every packet
            # re-samples its slot, so the frozen rate thins over the
            # clients' full routing distributions instead of commitments.
            fractions = per_packet_rate_fractions(
                self._states, self.config.num_clients, rule, self._rng
            )
            return self.config.num_queues * self.current_rate * fractions
        counts = client_choice_counts(
            self._states, self.config.num_clients, rule, self._rng
        )
        return (
            self.config.num_queues
            * self.current_rate
            * counts.astype(np.float64)
            / self.config.num_clients
        )


class InfiniteClientEnv(_QueueSystemBase):
    """The ``N → ∞`` system of Section 2.2 (superscript ``M``).

    Client randomness averages out (conditional LLN): queue ``j``
    receives the deterministic frozen rate ``λ_j = λ_t(H_t, z_j)``
    (Eq. 14-15). Queue-side randomness remains.
    """

    def _frozen_rates(self, rule: DecisionRule) -> np.ndarray:
        return infinite_client_rates(self._states, rule, self.current_rate)


@dataclass
class EpisodeResult:
    """Summary of one finite-system evaluation episode."""

    total_drops_per_queue: float
    per_epoch_drops: np.ndarray
    num_epochs: int
    empirical_distributions: np.ndarray | None = None
    extras: dict = field(default_factory=dict)

    @property
    def mean_epoch_drops(self) -> float:
        return float(self.per_epoch_drops.mean())


def run_episode(
    env: _QueueSystemBase,
    policy: "UpperLevelPolicy",
    num_epochs: int | None = None,
    seed=None,
    record_distributions: bool = False,
) -> EpisodeResult:
    """Run Algorithm 1 for ``num_epochs`` decision epochs.

    Returns the cumulative per-queue packet drops (the quantity on the
    y-axes of Figures 4-6) and the per-epoch series.
    """
    steps = (
        int(num_epochs)
        if num_epochs is not None
        else env.config.resolved_eval_length()
    )
    if steps < 1:
        raise ValueError("num_epochs must be >= 1")
    env.reset(seed)
    drops = np.empty(steps)
    dists = np.empty((steps + 1, env.config.num_queue_states)) if record_distributions else None
    if dists is not None:
        dists[0] = env.empirical_distribution()
    for t in range(steps):
        _, _, info = env.step_with_policy(policy)
        drops[t] = info["drops_per_queue"]
        if dists is not None:
            dists[t + 1] = env.empirical_distribution()
    return EpisodeResult(
        total_drops_per_queue=float(drops.sum()),
        per_epoch_drops=drops,
        num_epochs=steps,
        empirical_distributions=dists,
    )
