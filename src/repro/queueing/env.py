"""Finite-system environments and the Algorithm 1 evaluation loop.

:class:`FiniteSystemEnv` is the ``N``-client ``M``-queue system of
Section 2.1; :class:`InfiniteClientEnv` is the intermediate
``N → ∞`` system of Section 2.2 (queues still finite, client choices
replaced by their conditional expectation). Both are driven by any
:class:`repro.policies.base.UpperLevelPolicy`, exactly as Figure 2
prescribes: the policy sees the *empirical* queue-state distribution
``H_t`` and the arrival mode, emits a decision rule, and the rule is
applied per client.

Since the batched-backend refactor, both classes are thin ``E = 1``
views over the replica-vectorized environments of
:mod:`repro.queueing.batched_env` — same simulation code, same generator
stream, scalar shapes. Sweeps that run many independent replicas should
use the batched classes directly (see ``docs/scaling.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.decision_rule import DecisionRule
from repro.queueing.arrivals import MarkovModulatedRate
from repro.queueing.batched_env import (
    BatchedFiniteSystemEnv,
    BatchedInfiniteClientEnv,
    _BatchedQueueSystemBase,
)

if TYPE_CHECKING:  # import cycle: policies build on top of the queue substrate
    from repro.policies.base import UpperLevelPolicy

__all__ = ["FiniteSystemEnv", "InfiniteClientEnv", "EpisodeResult", "run_episode"]


class _QueueSystemBase:
    """Scalar (``E = 1``) view over a batched queue-system core.

    All simulation lives in the batched core; this wrapper squeezes the
    replica axis so existing single-system code keeps its ``(M,)`` /
    scalar shapes. Because the ``E = 1`` batched kernels consume the
    generator stream exactly like the historical scalar implementation,
    seeded runs are bit-identical across the two APIs (tested).
    """

    _CORE_CLS: type[_BatchedQueueSystemBase]

    def __init__(
        self,
        config: SystemConfig,
        arrival_process: MarkovModulatedRate | None = None,
        service_rates: np.ndarray | None = None,
        per_packet_randomization: bool = False,
        seed=None,
        backend: str | None = None,
    ) -> None:
        self._core = self._CORE_CLS(
            config,
            num_replicas=1,
            arrival_process=arrival_process,
            service_rates=service_rates,
            per_packet_randomization=per_packet_randomization,
            seed=seed,
            backend=backend,
        )

    # -- configuration access -------------------------------------------
    @property
    def config(self) -> SystemConfig:
        return self._core.config

    @property
    def arrivals(self) -> MarkovModulatedRate:
        return self._core.arrivals

    @property
    def service_rates(self) -> np.ndarray:
        return self._core.service_rates

    @property
    def per_packet_randomization(self) -> bool:
        return self._core.per_packet_randomization

    @property
    def batched_core(self) -> _BatchedQueueSystemBase:
        """The underlying ``E = 1`` batched environment."""
        return self._core

    # -- state access ---------------------------------------------------
    @property
    def queue_states(self) -> np.ndarray:
        return self._core.queue_states[0]

    @property
    def lam_mode(self) -> int:
        return int(self._core.lam_modes[0])

    @property
    def current_rate(self) -> float:
        return float(self._core.current_rates[0])

    @property
    def t(self) -> int:
        return self._core.t

    def empirical_distribution(self) -> np.ndarray:
        """``H_t`` — fraction of queues in each state (Eq. 2)."""
        return self._core.empirical_distributions()[0]

    def reset(self, seed=None) -> np.ndarray:
        """Sample fresh queue states and arrival mode; returns ``H_0``."""
        return self._core.reset(seed)[0]

    def step(self, rule: DecisionRule) -> tuple[np.ndarray, float, dict]:
        """Apply ``rule`` for one epoch; returns ``(H_next, reward, info)``.

        ``reward = -drop_penalty * D_t`` with ``D_t`` the *per-queue
        average* number of dropped packets during the epoch (Eq. 6).
        """
        hists, rewards, info = self._core.step(rule)
        return hists[0], float(rewards[0]), self._squeeze_info(info)

    def step_with_policy(
        self, policy: "UpperLevelPolicy"
    ) -> tuple[np.ndarray, float, dict]:
        """Algorithm 1 lines 8-19: compute ``H_t``, query the policy,
        apply the resulting rule."""
        hists, rewards, info = self._core.step_with_policy(policy)
        return hists[0], float(rewards[0]), self._squeeze_info(info)

    @staticmethod
    def _squeeze_info(info: dict) -> dict:
        return {
            "drops_total": int(info["drops_total"][0]),
            "drops_per_queue": float(info["drops_per_queue"][0]),
            "arrival_rates": info["arrival_rates"][0],
            "t": info["t"],
        }


class FiniteSystemEnv(_QueueSystemBase):
    """The ``N``-client, ``M``-queue system (superscript ``N, M``).

    Every epoch, all ``N`` clients sample ``d`` queues, commit a choice
    via the decision rule, and queue ``j`` receives Poisson arrivals at
    the frozen rate ``λ_j = M λ_t · count_j / N`` (Eq. 5) for ``Δt``
    time units.
    """

    _CORE_CLS = BatchedFiniteSystemEnv


class InfiniteClientEnv(_QueueSystemBase):
    """The ``N → ∞`` system of Section 2.2 (superscript ``M``).

    Client randomness averages out (conditional LLN): queue ``j``
    receives the deterministic frozen rate ``λ_j = λ_t(H_t, z_j)``
    (Eq. 14-15). Queue-side randomness remains.
    """

    _CORE_CLS = BatchedInfiniteClientEnv


@dataclass
class EpisodeResult:
    """Summary of one finite-system evaluation episode."""

    total_drops_per_queue: float
    per_epoch_drops: np.ndarray
    num_epochs: int
    empirical_distributions: np.ndarray | None = None
    extras: dict = field(default_factory=dict)

    @property
    def mean_epoch_drops(self) -> float:
        return float(self.per_epoch_drops.mean())


def run_episode(
    env: _QueueSystemBase,
    policy: "UpperLevelPolicy",
    num_epochs: int | None = None,
    seed=None,
    record_distributions: bool = False,
) -> EpisodeResult:
    """Run Algorithm 1 for ``num_epochs`` decision epochs.

    Returns the cumulative per-queue packet drops (the quantity on the
    y-axes of Figures 4-6) and the per-epoch series.
    """
    steps = (
        int(num_epochs)
        if num_epochs is not None
        else env.config.resolved_eval_length()
    )
    if steps < 1:
        raise ValueError("num_epochs must be >= 1")
    env.reset(seed)
    drops = np.empty(steps)
    dists = None
    if record_distributions:
        # Width follows the environment, not the config: heterogeneous
        # envs distribute over the Z x C observed states, not Z.
        initial = env.empirical_distribution()
        dists = np.empty((steps + 1, initial.size))
        dists[0] = initial
    for t in range(steps):
        _, _, info = env.step_with_policy(policy)
        drops[t] = info["drops_per_queue"]
        if dists is not None:
            dists[t + 1] = env.empirical_distribution()
    return EpisodeResult(
        total_drops_per_queue=float(drops.sum()),
        per_epoch_drops=drops,
        num_epochs=steps,
        empirical_distributions=dists,
    )
