"""Sparse dispatcher→server topologies for locality-constrained routing.

The paper's model lets every dispatcher sample any of the ``M`` queues
(Eq. 3) — a complete bipartite graph. The follow-up *Sparse Mean Field
Load Balancing in Large Localized Queueing Systems* (arXiv:2312.12973)
studies the practically relevant regime where each dispatcher only
reaches a bounded-degree neighborhood of servers: rack-local routing,
edge gateways, geographically constrained clusters.

A :class:`TopologySpec` captures one such access structure as a dense
*neighbor index array* of shape ``(num_dispatchers, degree)``: row ``i``
lists the queue indices dispatcher ``i`` may sample from. Dense
rectangular storage (every dispatcher has the same degree) is what keeps
the simulation hot path a single vectorized NumPy gather — sampling a
queue is ``neighbors[dispatcher, slot]`` with ``slot ~ Unif{0..degree-1}``,
no per-node Python loops and no ragged adjacency lists.

Shipped families:

* :meth:`TopologySpec.full_mesh` — the degenerate complete graph. One
  dispatcher node whose neighborhood is the identity permutation of all
  ``M`` queues, so slot indices *are* queue indices and the graph
  environment consumes the random stream exactly like the dense
  :class:`repro.queueing.batched_env.BatchedFiniteSystemEnv` (tested
  bit-for-bit).
* :meth:`TopologySpec.ring` — ``M`` co-located dispatchers on a cycle,
  each reaching the queues within ring distance ``radius``.
* :meth:`TopologySpec.torus` — a ``rows × cols`` wrap-around grid with
  Chebyshev (Moore) neighborhoods of a given radius.
* :meth:`TopologySpec.random_regular` — every dispatcher reaches
  ``degree`` distinct uniformly random queues (a random regular
  bipartite access graph; seeded, so a spec is reproducible).
* :meth:`TopologySpec.bipartite` — ``K ≠ M`` dispatcher nodes, each
  wired to ``degree`` distinct random queues: the general
  dispatcher→server form of the random family.

Specs are plain data (frozen dataclass holding one integer array), so
they pickle unchanged through the multiprocess sweep executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["TopologySpec", "near_square_factors"]


def _repair_coverage(neighbors: np.ndarray, num_queues: int) -> None:
    """Rewire (in place) so every queue has in-degree >= 1 when possible.

    Random without-replacement rows occasionally leave a queue unwired
    (likely for small ``M·degree``); an unreachable queue idles forever,
    so each uncovered queue steals one edge from the currently
    best-covered queue, picked from a row that does not already contain
    the orphan. Deterministic given the drawn array, preserves row
    degrees and distinctness, and is a no-op when coverage already
    holds. Impossible repairs (fewer edges than queues) are left to the
    environment's reachability check.
    """
    if neighbors.size < num_queues:
        return
    counts = np.bincount(neighbors.ravel(), minlength=num_queues)
    for orphan in np.flatnonzero(counts == 0):
        donor = int(np.argmax(counts))
        if counts[donor] <= 1:
            return  # cannot rewire without orphaning the donor
        rows, cols = np.nonzero(neighbors == donor)
        for row, col in zip(rows, cols):
            if orphan not in neighbors[row]:
                neighbors[row, col] = orphan
                counts[donor] -= 1
                counts[orphan] += 1
                break


def near_square_factors(m: int) -> tuple[int, int]:
    """Factor ``m = rows * cols`` with the most square split available.

    Public so callers that must adapt other parameters to the grid shape
    (e.g. clamping a torus radius to the short side for overridden queue
    counts) see exactly the factorization :meth:`TopologySpec.torus`
    will use.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    root = int(np.sqrt(m))
    for rows in range(root, 0, -1):
        if m % rows == 0:
            return rows, m // rows
    raise AssertionError("unreachable: 1 divides every m")  # pragma: no cover


@dataclass(frozen=True, eq=False)
class TopologySpec:
    """A dispatcher→server access graph as a dense neighbor index array.

    Attributes
    ----------
    kind:
        Family label (``"full-mesh"``, ``"ring"``, ``"torus"``,
        ``"random-regular"``, ``"bipartite"``); purely descriptive.
    num_queues:
        ``M`` — number of servers/queues the indices refer to.
    neighbors:
        Integer array ``(num_dispatchers, degree)``; row ``i`` holds the
        queue indices dispatcher node ``i`` may sample. Rows need not be
        sorted; duplicates within a row are rejected (they would silently
        bias the sampling weights).
    """

    kind: str
    num_queues: int
    neighbors: np.ndarray

    def __post_init__(self) -> None:
        neighbors = np.ascontiguousarray(self.neighbors, dtype=np.int64)
        if neighbors.ndim != 2 or neighbors.size == 0:
            raise ValueError(
                "neighbors must be a non-empty (num_dispatchers, degree) "
                f"array, got shape {np.shape(self.neighbors)}"
            )
        if self.num_queues < 1:
            raise ValueError("num_queues must be >= 1")
        if neighbors.min() < 0 or neighbors.max() >= self.num_queues:
            raise ValueError(
                f"neighbor indices must lie in [0, {self.num_queues - 1}]"
            )
        sorted_rows = np.sort(neighbors, axis=1)
        if bool((sorted_rows[:, 1:] == sorted_rows[:, :-1]).any()):
            raise ValueError(
                "neighborhoods must not repeat a queue (duplicate entries "
                "would silently bias the uniform slot sampling)"
            )
        object.__setattr__(self, "neighbors", neighbors)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_dispatchers(self) -> int:
        return int(self.neighbors.shape[0])

    @property
    def degree(self) -> int:
        """Out-degree: queues reachable from every dispatcher."""
        return int(self.neighbors.shape[1])

    def is_full_mesh(self) -> bool:
        """True when every dispatcher reaches every queue."""
        if self.degree != self.num_queues:
            return False
        expected = np.arange(self.num_queues)
        return bool((np.sort(self.neighbors, axis=1) == expected).all())

    def in_degrees(self) -> np.ndarray:
        """Number of dispatchers reaching each queue, shape ``(M,)``.

        A queue with in-degree 0 is unreachable and will never receive
        traffic — usually a misconfigured topology.
        """
        return np.bincount(self.neighbors.ravel(), minlength=self.num_queues)

    def client_dispatchers(self, num_clients: int) -> np.ndarray:
        """Round-robin assignment of ``N`` clients to dispatcher nodes.

        Deterministic (client ``i`` lives at node ``i mod K``) so the
        assignment never consumes random state and node loads differ by
        at most one client.
        """
        if num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        return np.arange(num_clients, dtype=np.int64) % self.num_dispatchers

    def memory_bytes(self) -> int:
        """Size of the neighbor array (the only O(K·degree) state)."""
        return int(self.neighbors.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TopologySpec(kind={self.kind!r}, K={self.num_dispatchers}, "
            f"M={self.num_queues}, degree={self.degree})"
        )

    # ------------------------------------------------------------------
    # Families
    # ------------------------------------------------------------------
    @classmethod
    def full_mesh(cls, num_queues: int) -> "TopologySpec":
        """The complete access graph as one dispatcher node seeing all
        queues *in index order*.

        The identity neighborhood makes the graph environment's
        ``neighbors[0, slot] == slot`` gather a no-op, which is what
        guarantees bit-identical streams against the dense backend.
        """
        return cls(
            kind="full-mesh",
            num_queues=num_queues,
            neighbors=np.arange(num_queues, dtype=np.int64)[None, :],
        )

    @classmethod
    def ring(cls, num_queues: int, radius: int = 1) -> "TopologySpec":
        """``M`` dispatchers on a cycle, each seeing queues within
        ``radius`` hops (its own queue included): degree ``2·radius + 1``.
        """
        if radius < 0:
            raise ValueError("radius must be >= 0")
        if 2 * radius + 1 > num_queues:
            raise ValueError(
                f"ring radius {radius} wraps past the whole cycle of "
                f"{num_queues} queues"
            )
        base = np.arange(num_queues, dtype=np.int64)[:, None]
        offsets = np.arange(-radius, radius + 1, dtype=np.int64)[None, :]
        return cls(
            kind="ring",
            num_queues=num_queues,
            neighbors=(base + offsets) % num_queues,
        )

    @classmethod
    def torus(
        cls,
        rows: int,
        cols: int | None = None,
        radius: "int | tuple[int, int]" = 1,
    ) -> "TopologySpec":
        """A ``rows × cols`` wrap-around grid; each dispatcher sees the
        Moore (Chebyshev) neighborhood of ``radius``: degree
        ``(2·r_rows + 1) · (2·r_cols + 1)``.

        ``cols=None`` treats ``rows`` as the total queue count and picks
        the most square factorization. ``radius`` may be a per-axis pair
        so narrow grids (a 2 × 5 factorization of ``M = 10``) can keep a
        long-axis neighborhood instead of degenerating or wrapping onto
        themselves.
        """
        if cols is None:
            rows, cols = near_square_factors(rows)
        if rows < 1 or cols < 1:
            raise ValueError("torus needs rows >= 1 and cols >= 1")
        r_radius, c_radius = (
            (radius, radius) if isinstance(radius, int) else radius
        )
        if r_radius < 0 or c_radius < 0:
            raise ValueError("radius must be >= 0")
        if 2 * r_radius + 1 > rows or 2 * c_radius + 1 > cols:
            raise ValueError(
                f"torus radius ({r_radius}, {c_radius}) wraps around a "
                f"{rows}x{cols} grid"
            )
        r = np.arange(rows, dtype=np.int64)
        c = np.arange(cols, dtype=np.int64)
        offs_r = np.arange(-r_radius, r_radius + 1, dtype=np.int64)
        offs_c = np.arange(-c_radius, c_radius + 1, dtype=np.int64)
        # Row/column coordinates of every (dispatcher, neighbor) pair.
        nr = (r[:, None, None, None] + offs_r[None, None, :, None]) % rows
        nc = (c[None, :, None, None] + offs_c[None, None, None, :]) % cols
        neighbors = (nr * cols + nc).reshape(
            rows * cols, offs_r.size * offs_c.size
        )
        return cls(kind="torus", num_queues=rows * cols, neighbors=neighbors)

    @classmethod
    def random_regular(
        cls,
        num_queues: int,
        degree: int,
        seed: int | np.random.Generator | None = 0,
        num_dispatchers: int | None = None,
        kind: str = "random-regular",
    ) -> "TopologySpec":
        """Every dispatcher reaches ``degree`` distinct uniform queues.

        One dispatcher per queue by default (``num_dispatchers=M``). The
        draw is seeded, so a spec is a pure function of its arguments —
        re-registering a scenario always rebuilds the same graph.
        """
        if num_dispatchers is None:
            num_dispatchers = num_queues
        if num_dispatchers < 1:
            raise ValueError("num_dispatchers must be >= 1")
        if not 1 <= degree <= num_queues:
            raise ValueError(
                f"degree must lie in [1, {num_queues}], got {degree}"
            )
        rng = as_generator(seed)
        # Row-wise sampling without replacement: permute rows of a tiled
        # arange and keep the first `degree` columns. Rows are processed
        # in chunks so the O(rows x M) permutation scratch stays bounded
        # (~32 MB) while the stored result remains O(K x degree); small
        # graphs fit one chunk, so their draw is unchanged by chunking.
        chunk_rows = max(1, (1 << 22) // num_queues)
        parts = []
        for start in range(0, num_dispatchers, chunk_rows):
            count = min(chunk_rows, num_dispatchers - start)
            tiled = np.tile(np.arange(num_queues, dtype=np.int64), (count, 1))
            parts.append(rng.permuted(tiled, axis=1)[:, :degree])
        neighbors = parts[0] if len(parts) == 1 else np.vstack(parts)
        _repair_coverage(neighbors, num_queues)
        return cls(kind=kind, num_queues=num_queues, neighbors=neighbors)

    @classmethod
    def bipartite(
        cls,
        num_dispatchers: int,
        num_queues: int,
        degree: int,
        seed: int | np.random.Generator | None = 0,
    ) -> "TopologySpec":
        """General dispatcher→server graph: ``K`` dispatcher nodes, each
        wired to ``degree`` distinct random queues (``K`` free of ``M``).
        """
        return cls.random_regular(
            num_queues,
            degree,
            seed=seed,
            num_dispatchers=num_dispatchers,
            kind="bipartite",
        )
