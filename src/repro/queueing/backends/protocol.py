"""The epoch-kernel protocol: the contract every simulation backend obeys.

One decision epoch of every batched environment decomposes into three
stages over ``E`` replicas, ``N`` clients and ``d`` samples per client
(paper Algorithm 1, lines 8-19):

1. **sample** — each client draws ``d`` queue indices. Sampling stays
   *environment-specific host code* (dense envs draw uniformly over all
   ``M`` queues, graph envs over per-dispatcher neighborhoods) so that
   a full-mesh graph simulation keeps making the exact ``rng.integers``
   call of the dense system.
2. **choose** — each client looks up its decision-rule row on the
   observed states of its samples and either commits one choice for the
   epoch (:meth:`EpochKernel.committed_counts`) or contributes its full
   routing distribution under per-packet randomization
   (:meth:`EpochKernel.packet_fractions`).
3. **serve** — every queue runs its frozen-rate birth-death chain for
   ``Δt`` time units via uniformization
   (:meth:`EpochKernel.serve_epoch`).

Backends implement the **choose** and **serve** stages; they receive the
sample-stage output as input.

RNG-draw contract
-----------------
All randomness is drawn from the *host-side*
:class:`numpy.random.Generator` in one canonical per-epoch order:

(a) one ``rng.integers(0, high, size=(E, N, d))`` queue-sample draw
    (``high = M`` dense, ``high = degree`` on graphs) — made by the
    environment, per decision-rule application;
(b) one ``rng.random((E, N))`` slot-selection draw inside
    ``committed_counts`` (skipped entirely under per-packet
    randomization, which consumes no stream);
(c) one ``rng.poisson(total_rate · Δt)`` draw of shape ``(E, M)``
    inside ``serve_epoch``;
(d) ``max_events`` rounds of ``rng.random((E, M))`` event-type draws
    inside ``serve_epoch`` — equivalently one ``(max_events, E, M)``
    draw, which yields the identical byte stream because NumPy fills
    uniform doubles sequentially in C order.

A backend that keeps this call sequence — same methods, same argument
shapes, same order — and computes everything between draws with exact
IEEE-754 double semantics (no fast-math reassociation) is **bit
identical** to the NumPy reference backend: same queue trajectories,
same drop counts, same downstream figures. The bundled numba backend is
such a backend. Backends that cannot preserve the sequence (e.g. a
future GPU backend drawing on-device) must declare
``preserves_rng_contract = False`` and are held to the statistical
equivalence bands of :mod:`repro.queueing.backends.conformance`
instead, and the experiment store keys their shards separately (see
:func:`repro.store.keys.shard_key`).

Floating-point contract
-----------------------
Two reductions in the choose stage are order-sensitive and therefore
normative:

* slot selection computes the cdf by *sequential left-to-right
  addition* over the ``d`` slots with the final cumulative value forced
  to exactly ``1.0`` (the round-off guard of the reference
  implementation), then counts strict exceedances of one uniform;
* per-packet accumulation adds each client-slot weight into its queue
  cell in ``(e, n, k)`` row-major order — the accumulation order of
  ``numpy.bincount`` with weights.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["EpochKernel", "draw_uniform_queue_samples"]


@runtime_checkable
class EpochKernel(Protocol):
    """Choose/serve-stage implementation of one decision epoch.

    Implementations are stateless value objects: constructing two
    kernels of the same backend yields interchangeable objects, and
    kernels pickle by name so environments cross process boundaries
    cheaply. Register implementations with
    :func:`repro.queueing.backends.register_backend` to expose them to
    environments, the experiment runner and the CLI — registration also
    enrolls the backend in the conformance gauntlet of
    ``tests/test_backend_conformance.py``.

    Attributes
    ----------
    name : str
        Registry name (``"numpy"``, ``"numba"``, ...).
    compiled : bool
        Whether the kernel JIT-compiles its inner loops (first call pays
        a warmup; see ``docs/scaling.md``).
    preserves_rng_contract : bool
        Whether the kernel keeps the host-side RNG call sequence of the
        module docstring and is therefore held to *bit identity* with
        the NumPy reference (else: statistical equivalence bands).
    """

    name: str
    compiled: bool
    preserves_rng_contract: bool

    def committed_counts(
        self,
        observed: np.ndarray,
        sampled: np.ndarray,
        probs: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Choose stage, committed mode: per-queue committed-client counts.

        Parameters
        ----------
        observed : numpy.ndarray
            Observed per-queue states, shape ``(E, M)`` — raw fillings,
            or the flat ``z·C + c`` heterogeneous encoding.
        sampled : numpy.ndarray
            Sample-stage output, integer queue indices ``(E, N, d)``.
        probs : numpy.ndarray
            Stacked decision-rule table ``(E, S, ..., S, d)`` from
            :func:`repro.queueing.clients.stack_rules`; a zero replica
            stride marks the shared-rule (stationary) fast path.
        rng : numpy.random.Generator
            Consumes exactly one ``rng.random((E, N))`` draw (contract
            item *b*).

        Returns
        -------
        numpy.ndarray
            Integer counts, shape ``(E, M)``, summing to ``N`` per row.
        """
        ...

    def packet_fractions(
        self,
        observed: np.ndarray,
        sampled: np.ndarray,
        probs: np.ndarray,
        num_clients: int,
    ) -> np.ndarray:
        """Choose stage, per-packet mode: arrival-rate fractions.

        Deterministic (consumes no stream). Returns float fractions of
        shape ``(E, M)`` summing to 1 per row, accumulated in the
        normative ``(e, n, k)`` order of the module docstring.
        """
        ...

    def serve_epoch(
        self,
        states: np.ndarray,
        arrival_rates: np.ndarray,
        service_rates: np.ndarray | float,
        delta_t: float,
        buffer_size: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve stage: advance all ``E·M`` frozen-rate queues by ``Δt``.

        Consumes one ``rng.poisson`` draw of shape ``(E, M)`` followed
        by ``max_events`` rounds of ``rng.random((E, M))`` (contract
        items *c* and *d*). Input validation is shared across backends
        via :func:`repro.queueing.queue_ctmc.validate_epoch_inputs`.

        Returns
        -------
        tuple of numpy.ndarray
            ``(new_states, drops)``, both integer ``(E, M)`` arrays.
        """
        ...


def draw_uniform_queue_samples(
    rng: np.random.Generator,
    num_replicas: int,
    num_clients: int,
    d: int,
    num_queues: int,
) -> np.ndarray:
    """Sample stage of the dense environments (RNG-contract item *a*).

    One ``rng.integers(0, M, size=(E, N, d))`` call — uniform with
    replacement, exactly Eq. (3) of the paper. Graph environments
    replace this with a neighborhood-restricted draw of the same shape
    (see :func:`repro.queueing.graph_env._sample_queue_indices`).

    Returns
    -------
    numpy.ndarray
        Integer queue indices, shape ``(E, N, d)``.
    """
    return rng.integers(0, num_queues, size=(num_replicas, num_clients, d))
