"""Reference NumPy epoch kernel — the bit-identity point of truth.

The choose stage delegates to the shared sampled-state primitives of
:mod:`repro.queueing.clients` and the serve stage to the vectorized
uniformization pass of :mod:`repro.queueing.queue_ctmc` — exactly the
code paths the environments ran before the backend protocol existed, so
adopting the protocol changed no random stream and no golden trace.
Every other backend is gated against this kernel by the conformance
harness (:mod:`repro.queueing.backends.conformance`).
"""

from __future__ import annotations

import numpy as np

from repro.queueing.clients import (
    committed_counts_from_samples,
    packet_fractions_from_samples,
)
from repro.queueing.queue_ctmc import simulate_queues_epoch_batched

__all__ = ["NumpyEpochKernel"]


class NumpyEpochKernel:
    """Pure-NumPy :class:`~repro.queueing.backends.protocol.EpochKernel`.

    Always available; the fallback target of every optional backend.
    The serve stage runs ``max_events`` full ``(E, M)`` array rounds
    (cheap per round, but rounds scale with the busiest queue's event
    count — the head-room the compiled backend reclaims).
    """

    name = "numpy"
    compiled = False
    preserves_rng_contract = True

    def committed_counts(
        self,
        observed: np.ndarray,
        sampled: np.ndarray,
        probs: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return committed_counts_from_samples(observed, sampled, probs, rng)

    def packet_fractions(
        self,
        observed: np.ndarray,
        sampled: np.ndarray,
        probs: np.ndarray,
        num_clients: int,
    ) -> np.ndarray:
        return packet_fractions_from_samples(
            observed, sampled, probs, num_clients
        )

    def serve_epoch(
        self,
        states: np.ndarray,
        arrival_rates: np.ndarray,
        service_rates: np.ndarray | float,
        delta_t: float,
        buffer_size: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        return simulate_queues_epoch_batched(
            states, arrival_rates, service_rates, delta_t, buffer_size, rng
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def __reduce__(self):
        # Pickle by registry name: environments holding a kernel cross
        # process boundaries without serializing kernel internals.
        from repro.queueing.backends.registry import get_backend

        return (get_backend, (self.name,))
