"""Pluggable simulation backends for the batched epoch hot path.

Every batched environment advances one decision epoch through an
:class:`~repro.queueing.backends.protocol.EpochKernel` — the
sample-choose-serve contract extracted from the four batched
environment families. Two kernels ship built in:

* ``"numpy"`` — the vectorized reference implementation (always
  available; the bit-identity point of truth);
* ``"numba"`` — JIT-compiled fused loops with host-side RNG, bit
  identical to the reference and ≥5× faster at bench scale; falls back
  to ``"numpy"`` with a ``RuntimeWarning`` when numba is not installed.

Select a backend per environment (``backend="numba"``), per evaluation
(``evaluate_policy_finite(..., sim_backend="numba")``), per scenario or
stream run, or on the CLI (``--sim-backend numba``); ``"auto"`` picks
the fastest backend runnable on the host. The conformance harness that
gates all of this lives in
:mod:`repro.queueing.backends.conformance`.
"""

from repro.queueing.backends.protocol import (
    EpochKernel,
    draw_uniform_queue_samples,
)
from repro.queueing.backends.registry import (
    BackendSpec,
    available_backends,
    get_backend,
    preserves_rng_contract,
    register_backend,
    runnable_backends,
)

__all__ = [
    "EpochKernel",
    "draw_uniform_queue_samples",
    "BackendSpec",
    "available_backends",
    "get_backend",
    "preserves_rng_contract",
    "register_backend",
    "runnable_backends",
]
