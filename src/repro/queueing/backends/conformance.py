"""Reusable backend-conformance harness.

Any simulation backend — current or future — is held to the same
gauntlet: run each environment family under the candidate backend and
compare against the NumPy reference. Contract-preserving backends
(``preserves_rng_contract = True``) must match **bit for bit**
(:func:`assert_traces_equal` on :func:`episode_trace` output); backends
that replace the host RNG sequence are held to the statistical
equivalence band of :func:`drops_z_score` instead. The parametrized
suite in ``tests/test_backend_conformance.py`` and the backend
comparison in ``benchmarks/bench_batched_backend.py`` both drive these
helpers, so registering a backend
(:func:`repro.queueing.backends.register_backend`) is all it takes to
enroll in the full test battery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

if TYPE_CHECKING:
    from repro.config import SystemConfig

__all__ = [
    "ConformanceFamily",
    "episode_trace",
    "assert_traces_equal",
    "drops_z_score",
    "CountingGenerator",
    "rng_call_log",
    "default_family_builders",
]


@dataclass(frozen=True)
class ConformanceFamily:
    """One environment family of the conformance gauntlet.

    ``build`` maps a backend name (or kernel instance) to a fresh
    environment; ``policy`` is a stationary policy matching the
    family's observed-state geometry.
    """

    name: str
    build: "Callable[[Any], Any]"
    policy: Any


def episode_trace(env, policy, num_epochs: int, seed) -> "dict[str, Any]":
    """One deterministic episode as a comparable array bundle.

    Runs ``num_epochs`` epochs from ``reset(seed)`` and records, per
    epoch, everything a backend could plausibly perturb: queue states,
    arrival modes, empirical distributions, frozen arrival rates, drop
    counts and rewards.
    """
    trace: "dict[str, Any]" = {
        "initial_hist": env.reset(seed),
        "queue_states": [],
        "lam_modes": [],
        "hists": [],
        "arrival_rates": [],
        "drops_total": [],
        "rewards": [],
    }
    for _ in range(num_epochs):
        hist, rewards, info = env.step_with_policy(policy)
        trace["queue_states"].append(env.queue_states)
        trace["lam_modes"].append(env.lam_modes)
        trace["hists"].append(hist)
        trace["arrival_rates"].append(info["arrival_rates"])
        trace["drops_total"].append(info["drops_total"])
        trace["rewards"].append(rewards)
    return {key: np.asarray(value) for key, value in trace.items()}


def assert_traces_equal(actual: dict, expected: dict) -> None:
    """Exact (bit-for-bit) equality of two :func:`episode_trace` bundles."""
    assert actual.keys() == expected.keys()
    for key in expected:
        a, b = np.asarray(actual[key]), np.asarray(expected[key])
        assert a.shape == b.shape, f"{key}: {a.shape} != {b.shape}"
        assert np.array_equal(a, b), f"{key} diverged between backends"


def drops_z_score(drops_a: np.ndarray, drops_b: np.ndarray) -> float:
    """Welch z-statistic between two per-replica total-drop samples.

    The statistical-equivalence band for backends that do not preserve
    the RNG call sequence: under the null (same drop distribution),
    ``|z|`` beyond ~4 flags a real behavioral difference rather than
    Monte-Carlo noise. Degenerate zero-variance pairs compare means
    exactly (``0.0`` when equal, ``inf`` otherwise).
    """
    a = np.asarray(drops_a, dtype=np.float64)
    b = np.asarray(drops_b, dtype=np.float64)
    var = a.var(ddof=1) / a.size + b.var(ddof=1) / b.size
    gap = float(a.mean() - b.mean())
    if var == 0.0:
        return 0.0 if gap == 0.0 else float("inf")
    return gap / float(np.sqrt(var))


class CountingGenerator(np.random.Generator):
    """A :class:`numpy.random.Generator` that logs its draws.

    Records one ``(method, count)`` entry per RNG call, where ``count``
    is the number of sampled values — the observable surface of the
    RNG-draw contract. Subclassing (rather than proxying) keeps
    ``isinstance(..., np.random.Generator)`` checks — e.g. in
    :func:`repro.utils.rng.as_generator` — working, and sharing the
    wrapped generator's bit generator continues its exact stream.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__(rng.bit_generator)
        self.calls: "list[tuple[str, int]]" = []

    def _log(self, method: str, result) -> Any:
        self.calls.append((method, int(np.asarray(result).size)))
        return result

    def integers(self, *args, **kwargs):
        return self._log("integers", super().integers(*args, **kwargs))

    def random(self, *args, **kwargs):
        return self._log("random", super().random(*args, **kwargs))

    def poisson(self, *args, **kwargs):
        return self._log("poisson", super().poisson(*args, **kwargs))

    def exponential(self, *args, **kwargs):
        return self._log(
            "exponential", super().exponential(*args, **kwargs)
        )


def rng_call_log(
    env, policy, num_epochs: int, seed: int
) -> "list[tuple[str, int]]":
    """The environment's RNG call sequence over one episode.

    Resets with a plain generator (so initial-state draws match normal
    runs), then swaps in a :class:`CountingGenerator` and steps
    ``num_epochs`` epochs. Two backends honoring the RNG-draw contract
    must produce identical logs.
    """
    env.reset(seed)
    original = env._rng
    counting = CountingGenerator(original)
    env._rng = counting
    try:
        for _ in range(num_epochs):
            env.step_with_policy(policy)
    finally:
        env._rng = original
    return counting.calls


def default_family_builders(
    config: "SystemConfig", num_replicas: int = 2, seed: int = 0
) -> "dict[str, ConformanceFamily]":
    """Every batched environment family, keyed by name.

    The parametrization surface of the conformance suite: families
    cover both choose-stage modes (committed and per-packet), the
    graph/heterogeneous/delayed variants, the infinite-client system
    (serve stage only) and the hybrid finite/mean-field fleet (half
    tracked, half closed by the mean-field propagator), each paired
    with a stationary policy of matching observed-state geometry.
    """
    from repro.policies.static import JoinShortestQueuePolicy
    from repro.queueing.batched_env import (
        BatchedFiniteSystemEnv,
        BatchedInfiniteClientEnv,
    )
    from repro.queueing.delayed_env import BatchedDelayedFiniteEnv
    from repro.queueing.delays import IIDDelay
    from repro.queueing.graph_env import BatchedGraphFiniteEnv
    from repro.queueing.hybrid_env import BatchedHybridFleetEnv
    from repro.queueing.heterogeneous import (
        BatchedHeterogeneousFiniteEnv,
        ServerClassSpec,
        sed_policy_suite,
    )
    from repro.queueing.topology import TopologySpec

    spec = ServerClassSpec(service_rates=(0.5, 2.0), fractions=(0.5, 0.5))
    jsq = JoinShortestQueuePolicy(config.num_queue_states, config.d)
    sed = sed_policy_suite(spec, config.buffer_size, config.d)[
        f"SED({config.d})"
    ]

    families = [
        ConformanceFamily(
            "dense-per-packet",
            lambda backend: BatchedFiniteSystemEnv(
                config,
                num_replicas=num_replicas,
                per_packet_randomization=True,
                seed=seed,
                backend=backend,
            ),
            jsq,
        ),
        ConformanceFamily(
            "dense-committed",
            lambda backend: BatchedFiniteSystemEnv(
                config,
                num_replicas=num_replicas,
                per_packet_randomization=False,
                seed=seed,
                backend=backend,
            ),
            jsq,
        ),
        ConformanceFamily(
            "graph",
            lambda backend: BatchedGraphFiniteEnv(
                config,
                TopologySpec.ring(config.num_queues, radius=2),
                num_replicas=num_replicas,
                per_packet_randomization=True,
                seed=seed,
                backend=backend,
            ),
            jsq,
        ),
        ConformanceFamily(
            "heterogeneous",
            lambda backend: BatchedHeterogeneousFiniteEnv(
                config,
                spec,
                num_replicas=num_replicas,
                per_packet_randomization=True,
                seed=seed,
                backend=backend,
            ),
            sed,
        ),
        ConformanceFamily(
            "delayed",
            lambda backend: BatchedDelayedFiniteEnv(
                config,
                num_replicas=num_replicas,
                delay_model=IIDDelay((0.5, 0.3, 0.2)),
                seed=seed,
                backend=backend,
            ),
            jsq,
        ),
        ConformanceFamily(
            "infinite-client",
            lambda backend: BatchedInfiniteClientEnv(
                config,
                num_replicas=num_replicas,
                seed=seed,
                backend=backend,
            ),
            jsq,
        ),
        ConformanceFamily(
            "hybrid",
            lambda backend: BatchedHybridFleetEnv(
                config,
                num_replicas=num_replicas,
                num_tracked=max(1, config.num_queues // 2),
                per_packet_randomization=True,
                seed=seed,
                backend=backend,
            ),
            jsq,
        ),
    ]
    return {family.name: family for family in families}
