"""Numba-compiled epoch kernel: fused per-cell loops, host-side RNG.

The compiled kernel keeps every random draw on the host
:class:`numpy.random.Generator` in the canonical order of
:mod:`repro.queueing.backends.protocol` and compiles only the
deterministic compute between draws. Because numba (without fastmath,
which is never enabled here) preserves exact IEEE-754 double semantics
and the loops below replicate the reference reductions in the same
order, the kernel is **bit-identical** to the NumPy backend — a claim
enforced by golden traces and the conformance suite, not just asserted.

What the fusion buys (see ``docs/scaling.md`` for measurements):

* the serve stage visits each queue cell once and performs only its
  *actual* ``num_events[e, m]`` events, instead of ``max_events`` full
  ``(E, M)`` array rounds with their ~8 temporaries each;
* the choose stage walks clients in one pass with no ``(E, N, d)``
  gather/cdf/one-hot temporaries.

The one buffer the serve stage still allocates is the pre-drawn
``(max_events, E, M)`` uniform block — drawing it in one host call
produces the identical byte stream as the reference backend's
``max_events`` successive ``(E, M)`` draws (NumPy fills uniform doubles
sequentially in C order), which is what keeps inactive cells consuming
their draws exactly like the vectorized rounds do.

When numba is not installed this module still imports (the kernels stay
plain Python — used by the conformance tests to pin the algorithm), but
the registry falls back to the NumPy kernel with a ``RuntimeWarning``
instead of handing out an uncompiled Python-loop kernel.
"""

from __future__ import annotations

import numpy as np

from repro.queueing.queue_ctmc import validate_epoch_inputs

__all__ = ["NUMBA_AVAILABLE", "NumbaEpochKernel", "numba_available"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - trivial
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """No-op stand-in so the kernels below stay importable/testable."""

        def wrap(fn):
            return fn

        if args and callable(args[0]):
            return args[0]
        return wrap


def numba_available() -> bool:
    """Whether the compiled backend can actually JIT on this host."""
    return NUMBA_AVAILABLE


def _rule_tables(probs: np.ndarray) -> np.ndarray:
    """Flatten a stacked rule table to ``(R, S**d, d)`` with ``R ∈ {1, E}``.

    ``R = 1`` is the stationary shared-rule fast path (zero replica
    stride — no copy beyond the reshape); kernels index replica ``e``
    with ``table[e % R]``.
    """
    s = probs.shape[1]
    d = probs.ndim - 2
    if probs.strides[0] == 0:
        return np.ascontiguousarray(probs[0]).reshape(1, s**d, d)
    return np.ascontiguousarray(probs).reshape(probs.shape[0], s**d, d)


@njit(cache=True)
def _committed_counts_loop(observed, sampled, table, num_states, uniforms, counts):
    num_replicas, num_clients, d = sampled.shape
    num_tables = table.shape[0]
    for e in range(num_replicas):
        rows = table[e % num_tables]
        for n in range(num_clients):
            flat = observed[e, sampled[e, n, 0]]
            for k in range(1, d):
                flat = flat * num_states + observed[e, sampled[e, n, k]]
            # Sequential cdf with the final value forced to exactly 1.0
            # (the reference backend's round-off guard), then count
            # strict exceedances of the uniform — replicates
            # np.cumsum + (u > cdf).sum() bit-for-bit.
            u = uniforms[e, n]
            cumulative = 0.0
            slot = 0
            for k in range(d):
                if k == d - 1:
                    edge = 1.0
                else:
                    cumulative += rows[flat, k]
                    edge = cumulative
                if u > edge:
                    slot += 1
            counts[e, sampled[e, n, slot]] += 1


@njit(cache=True)
def _packet_fractions_loop(observed, sampled, table, num_states, fractions):
    num_replicas, num_clients, d = sampled.shape
    num_tables = table.shape[0]
    for e in range(num_replicas):
        rows = table[e % num_tables]
        for n in range(num_clients):
            flat = observed[e, sampled[e, n, 0]]
            for k in range(1, d):
                flat = flat * num_states + observed[e, sampled[e, n, k]]
            # (e, n, k)-ordered accumulation — the add order of
            # np.bincount(flat, weights=rows.ravel()).
            for k in range(d):
                fractions[e, sampled[e, n, k]] += rows[flat, k]


@njit(cache=True)
def _serve_epoch_loop(
    states, p_arrival, num_events, uniforms, buffer_size, new_states, drops
):
    num_replicas, num_queues = states.shape
    for e in range(num_replicas):
        for m in range(num_queues):
            z = states[e, m]
            dropped = 0
            p = p_arrival[e, m]
            for k in range(num_events[e, m]):
                if uniforms[k, e, m] < p:
                    if z >= buffer_size:
                        dropped += 1
                    else:
                        z += 1
                elif z > 0:
                    z -= 1
            new_states[e, m] = z
            drops[e, m] = dropped


class NumbaEpochKernel:
    """JIT-compiled :class:`~repro.queueing.backends.protocol.EpochKernel`.

    Parameters
    ----------
    require_numba : bool
        When true (the registry default), refuse to construct without a
        working numba import — plain-Python execution of the loops above
        would be drastically slower than the NumPy kernel. The
        conformance tests pass ``False`` to pin the loop *algorithm*
        against the reference backend even on hosts without numba.
    """

    name = "numba"
    compiled = True
    preserves_rng_contract = True

    def __init__(self, require_numba: bool = True) -> None:
        if require_numba and not NUMBA_AVAILABLE:
            raise ModuleNotFoundError(
                "the 'numba' backend needs the numba package "
                "(pip install 'mfc-load-balancing-repro[compiled]')"
            )

    def committed_counts(
        self,
        observed: np.ndarray,
        sampled: np.ndarray,
        probs: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        e, m = observed.shape
        # Contract item (b): the slot draw happens at the same stream
        # position as the reference backend's _batched_sample_slots.
        uniforms = rng.random(sampled.shape[:-1])
        counts = np.zeros((e, m), dtype=np.int64)
        _committed_counts_loop(
            np.ascontiguousarray(observed, dtype=np.int64),
            np.ascontiguousarray(sampled, dtype=np.int64),
            _rule_tables(probs),
            np.int64(probs.shape[1]),
            uniforms,
            counts,
        )
        return counts

    def packet_fractions(
        self,
        observed: np.ndarray,
        sampled: np.ndarray,
        probs: np.ndarray,
        num_clients: int,
    ) -> np.ndarray:
        e, m = observed.shape
        fractions = np.zeros((e, m), dtype=np.float64)
        _packet_fractions_loop(
            np.ascontiguousarray(observed, dtype=np.int64),
            np.ascontiguousarray(sampled, dtype=np.int64),
            _rule_tables(probs),
            np.int64(probs.shape[1]),
            fractions,
        )
        return fractions / num_clients

    def serve_epoch(
        self,
        states: np.ndarray,
        arrival_rates: np.ndarray,
        service_rates: np.ndarray | float,
        delta_t: float,
        buffer_size: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        states, arrival, service = validate_epoch_inputs(
            states, arrival_rates, service_rates, delta_t, buffer_size
        )
        e, m = states.shape
        total_rate = arrival + service
        # Contract items (c) and (d): same poisson call as the reference
        # backend, then all event uniforms in one (K, E, M) block —
        # byte-identical to K successive (E, M) draws.
        num_events = rng.poisson(total_rate * delta_t)
        p_arrival = arrival / total_rate
        max_events = int(num_events.max(initial=0))
        uniforms = rng.random((max_events, e, m))
        new_states = np.empty((e, m), dtype=np.int64)
        drops = np.empty((e, m), dtype=np.int64)
        _serve_epoch_loop(
            states.astype(np.int64),
            p_arrival,
            num_events.astype(np.int64),
            uniforms,
            np.int64(buffer_size),
            new_states,
            drops,
        )
        return new_states, drops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def __reduce__(self):
        from repro.queueing.backends.registry import get_backend

        return (get_backend, (self.name,))
