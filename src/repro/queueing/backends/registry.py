"""Backend registry: name → epoch kernel, with availability fallbacks.

``get_backend`` is the single resolution point used by environment
constructors, the experiment runner's ``sim_backend=`` threading and the
CLI ``--sim-backend`` flags. Registering a backend here also enrolls it
in the conformance gauntlet of ``tests/test_backend_conformance.py``,
which parametrizes over :func:`available_backends`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.queueing.backends.protocol import EpochKernel

__all__ = [
    "BackendSpec",
    "register_backend",
    "get_backend",
    "available_backends",
    "runnable_backends",
    "preserves_rng_contract",
]

#: Pseudo-name resolving to the fastest runnable registered backend.
AUTO = "auto"


@dataclass(frozen=True)
class BackendSpec:
    """One registered simulation backend.

    Parameters
    ----------
    name : str
        Registry key (also the kernel's ``name`` attribute).
    factory : callable
        Zero-argument constructor of the kernel.
    preserves_rng_contract : bool
        See :class:`repro.queueing.backends.protocol.EpochKernel`.
    runnable : callable
        Zero-argument availability probe; when false,
        :func:`get_backend` falls back to ``fallback`` with a
        ``RuntimeWarning`` instead of raising.
    fallback : str or None
        Name of the backend substituted when not runnable.
    priority : int
        ``"auto"`` resolves to the runnable backend with the highest
        priority.
    """

    name: str
    factory: "Callable[[], EpochKernel]"
    preserves_rng_contract: bool = True
    runnable: Callable[[], bool] = lambda: True
    fallback: str | None = None
    priority: int = 0


_REGISTRY: "dict[str, BackendSpec]" = {}
_INSTANCES: "dict[str, EpochKernel]" = {}


def register_backend(spec: BackendSpec) -> None:
    """Register (or replace) a backend under ``spec.name``."""
    if spec.name == AUTO:
        raise ValueError(f"{AUTO!r} is reserved")
    _REGISTRY[spec.name] = spec
    _INSTANCES.pop(spec.name, None)


def available_backends() -> tuple[str, ...]:
    """All registered backend names, in registration order.

    Every name is *resolvable* by :func:`get_backend` (unavailable ones
    resolve to their fallback with a warning); use
    :func:`runnable_backends` for the names that run natively here.
    """
    return tuple(_REGISTRY)


def runnable_backends() -> tuple[str, ...]:
    """Registered backends that run natively on this host."""
    return tuple(
        name for name, spec in _REGISTRY.items() if spec.runnable()
    )


def preserves_rng_contract(name: str) -> bool:
    """Whether ``name`` is held to bit identity with the NumPy kernel.

    ``"auto"`` and unavailable-but-falling-back names count as
    contract-preserving whenever every backend they can resolve to is;
    used by :func:`repro.store.keys.shard_key` to decide whether two
    backends may share cached shards.
    """
    if name == AUTO:
        return all(
            spec.preserves_rng_contract
            for spec in _REGISTRY.values()
            if spec.runnable()
        )
    spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown simulation backend {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        )
    return spec.preserves_rng_contract


def _instance(spec: BackendSpec) -> "EpochKernel":
    kernel = _INSTANCES.get(spec.name)
    if kernel is None:
        kernel = spec.factory()
        _INSTANCES[spec.name] = kernel
    return kernel


def get_backend(backend: "str | EpochKernel | None" = None) -> "EpochKernel":
    """Resolve a backend name (or pass through a kernel instance).

    Parameters
    ----------
    backend : str or EpochKernel or None
        ``None`` defaults to ``"numpy"``; ``"auto"`` picks the fastest
        backend runnable on this host; a kernel instance is returned
        unchanged. A registered but unrunnable name (e.g. ``"numba"``
        without numba installed) resolves to its declared fallback with
        a ``RuntimeWarning`` — the stream-preserving degradation that
        keeps sweeps reproducible on minimal hosts.

    Raises
    ------
    KeyError
        Unknown name (the message lists the registry).
    """
    if backend is None:
        backend = "numpy"
    if not isinstance(backend, str):
        return backend
    if backend == AUTO:
        candidates = [s for s in _REGISTRY.values() if s.runnable()]
        if not candidates:  # pragma: no cover - numpy is always runnable
            raise RuntimeError("no runnable simulation backend registered")
        return _instance(max(candidates, key=lambda s: s.priority))
    spec = _REGISTRY.get(backend)
    if spec is None:
        raise KeyError(
            f"unknown simulation backend {backend!r}; "
            f"registered: {sorted(_REGISTRY)}"
        )
    if not spec.runnable():
        if spec.fallback is None:  # pragma: no cover - not used today
            raise RuntimeError(f"backend {backend!r} is not runnable here")
        warnings.warn(
            f"simulation backend {backend!r} is unavailable "
            f"(missing optional dependency); falling back to "
            f"{spec.fallback!r} — identical streams, uncompiled speed",
            RuntimeWarning,
            stacklevel=2,
        )
        return get_backend(spec.fallback)
    return _instance(spec)


def _register_builtin_backends() -> None:
    from repro.queueing.backends.numba_backend import (
        NumbaEpochKernel,
        numba_available,
    )
    from repro.queueing.backends.numpy_backend import NumpyEpochKernel

    register_backend(BackendSpec(name="numpy", factory=NumpyEpochKernel))
    register_backend(
        BackendSpec(
            name="numba",
            factory=NumbaEpochKernel,
            runnable=numba_available,
            fallback="numpy",
            priority=10,
        )
    )


_register_builtin_backends()
