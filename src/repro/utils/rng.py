"""Deterministic random-number management.

Monte-Carlo experiments in this repository follow one discipline: every
stochastic component receives its own :class:`numpy.random.Generator`,
derived from a single root seed through NumPy's ``SeedSequence`` spawning
mechanism. This makes runs reproducible bit-for-bit while keeping
independent components statistically independent — re-seeding with the
same root always yields the same experiment, and adding a new consumer
never perturbs the streams of existing ones (as long as spawn order is
stable).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["as_generator", "spawn_generators", "RngFactory"]

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed: int | np.random.Generator | np.random.SeedSequence | None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Accepts an existing generator (returned unchanged), an integer seed,
    a ``SeedSequence`` or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.Generator | np.random.SeedSequence | None,
    count: int,
) -> list[np.random.Generator]:
    """Spawn ``count`` independent generators from one root seed.

    If ``seed`` is already a generator, children are derived from its
    bit generator's seed sequence when available, else from integers it
    draws (still deterministic given the generator's state).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        seed_seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if seed_seq is None:  # pragma: no cover - exotic bit generators
            return [as_generator(int(seed.integers(2**63))) for _ in range(count)]
        return [np.random.default_rng(s) for s in seed_seq.spawn(count)]
    if isinstance(seed, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in seed.spawn(count)]
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(count)]


class RngFactory:
    """A reproducible stream of named generators.

    Example
    -------
    >>> factory = RngFactory(seed=7)
    >>> rng_env = factory.make("env")
    >>> rng_policy = factory.make("policy")

    The generator for a name is a pure function of ``(seed, name)``; the
    order in which names are requested does not matter. Requesting the
    same name twice returns *distinct* generators from consecutive
    children of that name's sequence so that repeated Monte-Carlo
    repetitions stay independent.
    """

    def __init__(self, seed: int | None = 0) -> None:
        self._root = np.random.SeedSequence(seed)
        self._counters: dict[str, int] = {}

    def make(self, name: str) -> np.random.Generator:
        """Return the next generator in the stream for ``name``."""
        index = self._counters.get(name, 0)
        self._counters[name] = index + 1
        # Derive entropy from the name deterministically, then spawn by
        # occurrence index so repeated calls differ but remain reproducible.
        name_entropy = [ord(c) for c in name] or [0]
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=(*self._root.spawn_key, *name_entropy, index),
        )
        return np.random.default_rng(child)

    def stream(self, name: str) -> Iterator[np.random.Generator]:
        """Infinite iterator of fresh generators for ``name``."""
        while True:
            yield self.make(name)
