"""Shared utilities: seeding, statistics, tables, serialization, logging."""

from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.stats import (
    ConfidenceInterval,
    RunningMeanStd,
    WelfordAccumulator,
    mean_confidence_interval,
)
from repro.utils.tables import format_table, series_to_csv
from repro.utils.serialization import load_npz_checkpoint, save_npz_checkpoint
from repro.utils.logging import ExperimentLogger

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "ConfidenceInterval",
    "RunningMeanStd",
    "WelfordAccumulator",
    "mean_confidence_interval",
    "format_table",
    "series_to_csv",
    "load_npz_checkpoint",
    "save_npz_checkpoint",
    "ExperimentLogger",
]
