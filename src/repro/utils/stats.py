"""Streaming statistics and confidence intervals for Monte-Carlo runs.

The paper reports estimated expected packet drops with 95% confidence
intervals over ``n`` Monte-Carlo simulations (Figures 4-6). This module
provides numerically stable accumulators (Welford) plus Student-t based
interval construction used by every experiment harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats

__all__ = [
    "WelfordAccumulator",
    "RunningMeanStd",
    "ConfidenceInterval",
    "mean_confidence_interval",
]


class WelfordAccumulator:
    """Numerically stable streaming mean/variance of scalar samples.

    Welford's online algorithm: one pass, O(1) memory, no catastrophic
    cancellation — the aggregation primitive behind the Monte-Carlo
    harness and the streaming engine's scalar accumulators.

    Examples
    --------
    >>> acc = WelfordAccumulator()
    >>> acc.extend([1.0, 2.0, 3.0])
    >>> acc.mean
    2.0
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the running moments.

        Parameters
        ----------
        value : float
            The sample; must be finite (``ValueError`` otherwise).
        """
        if not math.isfinite(value):
            raise ValueError(f"non-finite sample: {value!r}")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def extend(self, values) -> None:
        """Fold a batch of samples, in iteration order.

        Parameters
        ----------
        values : array_like
            Samples; flattened before folding.
        """
        for v in np.asarray(values, dtype=float).ravel():
            self.add(float(v))

    @property
    def count(self) -> int:
        """Number of samples folded so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Running sample mean (``ValueError`` with no samples)."""
        if self._count == 0:
            raise ValueError("no samples accumulated")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (requires >= 2 samples)."""
        if self._count < 2:
            raise ValueError("variance needs at least two samples")
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation ``sqrt(variance)``."""
        return math.sqrt(self.variance)

    def standard_error(self) -> float:
        """Standard error of the mean, ``std / sqrt(count)``.

        Returns
        -------
        float
            The half-width scale the t-based confidence intervals
            multiply.
        """
        return self.std / math.sqrt(self._count)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric ``level`` confidence interval around ``mean``.

    Attributes
    ----------
    mean : float
        Point estimate (the sample mean).
    lower, upper : float
        Interval endpoints.
    level : float
        Nominal coverage in ``(0, 1)`` (the paper reports 0.95).
    n : int
        Sample count behind the estimate.
    """

    mean: float
    lower: float
    upper: float
    level: float
    n: int

    @property
    def half_width(self) -> float:
        """Half the interval width (the ``±`` in the rendered tables)."""
        return (self.upper - self.lower) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the closed interval."""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.half_width:.2g} ({self.level:.0%}, n={self.n})"


def mean_confidence_interval(samples, level: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``samples``.

    Parameters
    ----------
    samples : array_like
        Monte-Carlo observations; flattened. Must be non-empty
        (``ValueError`` otherwise).
    level : float, optional
        Nominal coverage in ``(0, 1)``; the paper's figures use 0.95.

    Returns
    -------
    ConfidenceInterval
        ``mean ± t_{level, n-1} · SEM``. With a single sample (or zero
        spread) the interval degenerates to a point.
    """
    arr = np.asarray(samples, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot build a confidence interval from no samples")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0,1), got {level}")
    mean = float(arr.mean())
    if arr.size == 1:
        return ConfidenceInterval(mean, mean, mean, level, 1)
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    if sem == 0.0:
        return ConfidenceInterval(mean, mean, mean, level, int(arr.size))
    t_crit = float(sp_stats.t.ppf(0.5 + level / 2.0, df=arr.size - 1))
    half = t_crit * sem
    return ConfidenceInterval(mean, mean - half, mean + half, level, int(arr.size))


class RunningMeanStd:
    """Vector-valued running mean/std used for observation normalization.

    Matches the classic parallel-update formula (Chan et al.) used by
    most RL frameworks; updates accept batches of shape ``(n, dim)``.

    Parameters
    ----------
    dim : int
        Observation dimensionality.
    epsilon : float, optional
        Initial pseudo-count (also the variance floor inside
        :meth:`normalize`), keeping early normalizations finite.
    """

    def __init__(self, dim: int, epsilon: float = 1e-8) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self.epsilon = epsilon
        self.mean = np.zeros(dim, dtype=np.float64)
        self.var = np.ones(dim, dtype=np.float64)
        self.count = epsilon

    def update(self, batch: np.ndarray) -> None:
        """Fold a batch of observations into the running moments.

        Parameters
        ----------
        batch : ndarray
            Shape ``(n, dim)`` (a single ``(dim,)`` row is promoted).
        """
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.shape[1] != self.dim:
            raise ValueError(
                f"batch has dim {batch.shape[1]}, expected {self.dim}"
            )
        batch_mean = batch.mean(axis=0)
        batch_var = batch.var(axis=0)
        batch_count = batch.shape[0]

        delta = batch_mean - self.mean
        total = self.count + batch_count
        new_mean = self.mean + delta * batch_count / total
        m_a = self.var * self.count
        m_b = batch_var * batch_count
        m2 = m_a + m_b + delta**2 * self.count * batch_count / total
        self.mean = new_mean
        self.var = m2 / total
        self.count = total

    def normalize(self, x: np.ndarray, clip: float = 10.0) -> np.ndarray:
        """Standardize ``x`` by the running moments and clip to ``±clip``.

        Parameters
        ----------
        x : ndarray
            Observation(s) of trailing dimension ``dim``.
        clip : float, optional
            Symmetric clipping bound applied after standardization.

        Returns
        -------
        ndarray
            ``clip((x - mean) / sqrt(var + epsilon), ±clip)``.
        """
        x = np.asarray(x, dtype=np.float64)
        normed = (x - self.mean) / np.sqrt(self.var + self.epsilon)
        return np.clip(normed, -clip, clip)

    def state_dict(self) -> dict:
        """Checkpointable copy of the running moments."""
        return {
            "mean": self.mean.copy(),
            "var": self.var.copy(),
            "count": float(self.count),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore moments saved by :meth:`state_dict` (shape-checked)."""
        mean = np.asarray(state["mean"], dtype=np.float64)
        var = np.asarray(state["var"], dtype=np.float64)
        if mean.shape != (self.dim,) or var.shape != (self.dim,):
            raise ValueError("state dict shape mismatch")
        self.mean = mean.copy()
        self.var = var.copy()
        self.count = float(state["count"])
