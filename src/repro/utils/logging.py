"""Minimal structured experiment logger.

Collects scalar time series keyed by name (e.g. PPO iteration returns),
optionally echoing to stdout; serializes to CSV for the benchmark
harnesses. Avoids any dependency on the stdlib ``logging`` configuration
so library users keep full control of their own logging setup.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from repro.utils.tables import series_to_csv

__all__ = ["ExperimentLogger"]


class ExperimentLogger:
    """Append-only scalar series store with optional live echo."""

    def __init__(self, echo: bool = False, stream: TextIO | None = None) -> None:
        self._series: dict[str, list[tuple[int, float]]] = {}
        self._echo = echo
        self._stream = stream if stream is not None else sys.stdout
        self._t0 = time.perf_counter()

    def log(self, name: str, step: int, value: float) -> None:
        self._series.setdefault(name, []).append((int(step), float(value)))
        if self._echo:
            elapsed = time.perf_counter() - self._t0
            print(
                f"[{elapsed:8.1f}s] {name} step={step} value={value:.6g}",
                file=self._stream,
            )

    def log_many(self, step: int, values: dict[str, float]) -> None:
        for name, value in values.items():
            self.log(name, step, value)

    def series(self, name: str) -> list[tuple[int, float]]:
        if name not in self._series:
            raise KeyError(f"no series named {name!r}; have {sorted(self._series)}")
        return list(self._series[name])

    def names(self) -> list[str]:
        return sorted(self._series)

    def last(self, name: str) -> float:
        series = self.series(name)
        return series[-1][1]

    def to_csv(self, name: str) -> str:
        rows = self.series(name)
        return series_to_csv(["step", name], rows)

    def __contains__(self, name: str) -> bool:
        return name in self._series
