"""ASCII table / CSV rendering for experiment outputs.

No plotting library is available offline, so every figure of the paper
is regenerated as (a) a CSV series suitable for external plotting and
(b) an aligned ASCII table printed by the benchmark harnesses.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "series_to_csv"]


def _stringify(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[j]) for j, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def series_to_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render rows as simple CSV (no quoting — numeric payloads only)."""
    out_lines = [",".join(headers)]
    for row in rows:
        cells = []
        for cell in row:
            text = _stringify(cell)
            if "," in text:
                raise ValueError(f"cell {text!r} contains a comma; not supported")
            cells.append(text)
        out_lines.append(",".join(cells))
    return "\n".join(out_lines)
