"""Checkpoint IO: flat dictionaries of arrays + JSON metadata in ``.npz``.

Trained policies are persisted as a single ``.npz`` archive holding the
network parameter arrays (under namespaced keys such as
``policy/layer0/W``) plus a ``__meta__`` JSON blob with configuration
needed to rebuild the object (observation dimension, hidden sizes,
system parameters the policy was trained for, ...).
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

__all__ = ["save_npz_checkpoint", "load_npz_checkpoint"]

_META_KEY = "__meta__"


def save_npz_checkpoint(
    path: str | Path,
    arrays: Mapping[str, np.ndarray],
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Save ``arrays`` (+ optional JSON-serializable ``meta``) to ``path``."""
    path = Path(path)
    if _META_KEY in arrays:
        raise ValueError(f"array key {_META_KEY!r} is reserved")
    payload = {k: np.asarray(v) for k, v in arrays.items()}
    meta_blob = json.dumps(dict(meta or {}), sort_keys=True)
    payload[_META_KEY] = np.frombuffer(meta_blob.encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    with io.BytesIO() as buf:
        np.savez(buf, **payload)
        path.write_bytes(buf.getvalue())
    return path


def load_npz_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Load a checkpoint; returns ``(arrays, meta)``."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k].copy() for k in data.files if k != _META_KEY}
        meta: dict[str, Any] = {}
        if _META_KEY in data.files:
            blob = bytes(data[_META_KEY].tobytes())
            meta = json.loads(blob.decode("utf-8")) if blob else {}
    return arrays, meta
