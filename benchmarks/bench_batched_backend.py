#!/usr/bin/env python3
"""Batched vs scalar simulation backend: wall-clock and equivalence.

Runs a Figure-5-style synchronization-delay sweep (bench scale:
``M = 100`` queues, ``N = 4M`` clients, ``Δt ∈ {1..10}``, 32 Monte-Carlo
replicas, per-packet randomization) twice — once through the lock-step
:class:`repro.queueing.batched_env.BatchedFiniteSystemEnv` backend and
once by looping the scalar :class:`repro.queueing.env.FiniteSystemEnv`
per replica — and reports per-``Δt`` wall-clock plus a statistical
equivalence check of the drop estimates (both backends simulate the
same law; see ``docs/scaling.md`` for the scaling regime in which the
batched path wins and where the two converge).

With ``--backend NAME`` the comparison switches to epoch *kernels*: the
same batched sweep runs once under the NumPy reference kernel and once
under the named kernel (e.g. ``numba``), checks bit-identity when the
kernel preserves the RNG-draw contract (statistical equivalence
otherwise), and — when the kernel is genuinely JIT-compiled — asserts
the ≥ ``MIN_SPEEDUP``× wall-clock win. When numba is absent the
registry falls back to NumPy, the identity checks still run (trivially,
on identical streams) and the speedup assertion is skipped.

Runs standalone or under pytest-benchmark:

    PYTHONPATH=src python benchmarks/bench_batched_backend.py [--quick]
    PYTHONPATH=src python benchmarks/bench_batched_backend.py --quick --backend numba
    PYTHONPATH=src python -m pytest benchmarks/bench_batched_backend.py

The full sweep asserts the batched backend is at least ``MIN_SPEEDUP``×
faster; ``--quick`` shrinks the grid for CI smoke and only checks
equivalence (tiny timings are dominated by noise).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import paper_system_config
from repro.experiments.runner import evaluate_policy_finite
from repro.policies.static import JoinShortestQueuePolicy
from repro.utils.tables import format_table

MIN_SPEEDUP = 5.0
FULL_DELTA_TS = tuple(float(x) for x in range(1, 11))
QUICK_DELTA_TS = (2.0, 5.0)
DEFAULT_JSON = Path("BENCH_batched_backend.json")


def run_backend_sweep(
    backend: str,
    delta_ts=FULL_DELTA_TS,
    num_queues: int = 100,
    clients_per_queue: int = 4,
    num_runs: int = 32,
    seed: int = 0,
    sim_backend: str = "numpy",
) -> tuple[dict, float]:
    """Evaluate JSQ(2) over the delay sweep with one backend.

    ``backend`` selects the execution style (``"batched"``/``"scalar"``),
    ``sim_backend`` the epoch kernel simulating each shard. Returns
    ``(per-Δt MonteCarloResult dict, total wall-clock seconds)``.
    """
    results = {}
    total = 0.0
    for dt in delta_ts:
        cfg = paper_system_config(
            delta_t=dt,
            num_queues=num_queues,
            num_clients=clients_per_queue * num_queues,
        )
        policy = JoinShortestQueuePolicy(cfg.num_queue_states, cfg.d)
        num_epochs = max(1, round(500.0 / dt))
        start = time.perf_counter()
        results[dt] = evaluate_policy_finite(
            cfg,
            policy,
            num_runs=num_runs,
            num_epochs=num_epochs,
            seed=seed,
            backend=backend,
            max_batch_replicas=num_runs,
            env_kwargs={"per_packet_randomization": True},
            sim_backend=sim_backend,
        )
        total += time.perf_counter() - start
    return results, total


def equivalence_gaps(batched: dict, scalar: dict) -> dict[float, float]:
    """Per-Δt z-scores of the batched-vs-scalar mean-drop difference.

    Both backends sample the same distribution from different streams,
    so the standardized gap should look standard-normal per Δt.
    """
    gaps = {}
    for dt, rb in batched.items():
        rs = scalar[dt]
        se = np.hypot(
            rb.drops.std(ddof=1) / np.sqrt(rb.drops.size),
            rs.drops.std(ddof=1) / np.sqrt(rs.drops.size),
        )
        gaps[dt] = abs(rb.mean_drops - rs.mean_drops) / max(se, 1e-12)
    return gaps


def run_bench(
    quick: bool = False, seed: int = 0, json_path: Path | None = DEFAULT_JSON
) -> dict:
    delta_ts = QUICK_DELTA_TS if quick else FULL_DELTA_TS
    num_runs = 16 if quick else 32
    batched, t_batched = run_backend_sweep(
        "batched", delta_ts, num_runs=num_runs, seed=seed
    )
    scalar, t_scalar = run_backend_sweep(
        "scalar", delta_ts, num_runs=num_runs, seed=seed
    )
    gaps = equivalence_gaps(batched, scalar)

    rows = []
    for dt in delta_ts:
        rb, rs = batched[dt], scalar[dt]
        rows.append(
            [
                f"{dt:g}",
                f"{rb.mean_drops:.2f}±{rb.interval.half_width:.2f}",
                f"{rs.mean_drops:.2f}±{rs.interval.half_width:.2f}",
                f"{gaps[dt]:.2f}",
            ]
        )
    speedup = t_scalar / t_batched
    print(
        format_table(
            ["Δt", "batched drops", "scalar drops", "|z|"],
            rows,
            title=(
                f"Batched vs scalar backend — {num_runs} replicas, "
                "JSQ(2), per-packet randomization"
            ),
        )
    )
    print(
        f"\nwall-clock: batched {t_batched:.2f}s, scalar {t_scalar:.2f}s "
        f"-> {speedup:.1f}x speedup"
    )

    worst = max(gaps.values())
    stats = {
        "benchmark": "batched_backend",
        "mode": "quick" if quick else "full",
        "wall_clock_s": {
            "batched": round(t_batched, 4),
            "scalar": round(t_scalar, 4),
        },
        "speedup": round(speedup, 3),
        "worst_z": round(worst, 3),
        "scale": {
            "num_queues": 100,
            "num_clients": 400,
            "num_runs": num_runs,
            "delta_ts": list(delta_ts),
        },
        "min_speedup_asserted": MIN_SPEEDUP if not quick else None,
    }
    if json_path is not None:
        json_path.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"[json written to {json_path}]")

    # Statistical equivalence: with independent streams the worst |z|
    # over the grid stays small; 4 SEs is a generous, non-flaky bound.
    assert worst < 4.0, f"backends disagree: worst |z| = {worst:.2f}"
    if not quick:
        assert speedup >= MIN_SPEEDUP, (
            f"batched backend only {speedup:.1f}x faster "
            f"(expected >= {MIN_SPEEDUP}x)"
        )
    return stats


def run_kernel_bench(
    kernel_name: str,
    quick: bool = False,
    seed: int = 0,
    json_path: Path | None = DEFAULT_JSON,
) -> dict:
    """Epoch-kernel comparison: ``kernel_name`` vs the NumPy reference.

    Bit-identity is required whenever the resolved kernel preserves the
    RNG-draw contract (every builtin does); the ≥ ``MIN_SPEEDUP``×
    wall-clock assertion only arms on the full sweep when the kernel is
    genuinely compiled — under the NumPy fallback there is nothing to
    measure, but the identity gauntlet still runs.
    """
    import warnings

    from repro.queueing.backends import get_backend

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", RuntimeWarning)
        kernel = get_backend(kernel_name)
    for w in caught:
        print(f"[warning] {w.message}")

    delta_ts = QUICK_DELTA_TS if quick else FULL_DELTA_TS
    num_runs = 16 if quick else 32
    if kernel.compiled:
        # JIT warmup outside the timed region: one tiny sweep triggers
        # compilation of every njit loop so timings measure steady state.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            run_backend_sweep(
                "batched", (2.0,), num_queues=10, num_runs=2, seed=seed,
                sim_backend=kernel_name,
            )
    reference, t_numpy = run_backend_sweep(
        "batched", delta_ts, num_runs=num_runs, seed=seed
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        candidate, t_kernel = run_backend_sweep(
            "batched", delta_ts, num_runs=num_runs, seed=seed,
            sim_backend=kernel_name,
        )

    identical = all(
        np.array_equal(candidate[dt].drops, reference[dt].drops)
        for dt in delta_ts
    )
    gaps = equivalence_gaps(candidate, reference)
    worst = max(gaps.values())
    speedup = t_numpy / t_kernel

    rows = [
        [
            f"{dt:g}",
            f"{candidate[dt].mean_drops:.2f}",
            f"{reference[dt].mean_drops:.2f}",
            "yes" if np.array_equal(
                candidate[dt].drops, reference[dt].drops
            ) else f"|z|={gaps[dt]:.2f}",
        ]
        for dt in delta_ts
    ]
    print(
        format_table(
            ["Δt", f"{kernel.name} drops", "numpy drops", "bit-identical"],
            rows,
            title=(
                f"Epoch kernel '{kernel.name}' vs NumPy reference — "
                f"{num_runs} replicas, JSQ(2), "
                f"{'compiled' if kernel.compiled else 'fallback (no JIT)'}"
            ),
        )
    )
    print(
        f"\nwall-clock: numpy {t_numpy:.2f}s, {kernel.name} "
        f"{t_kernel:.2f}s -> {speedup:.1f}x speedup"
    )

    assert_speedup = bool(kernel.compiled and not quick)
    stats = {
        "benchmark": "batched_backend",
        "comparison": "kernel",
        "mode": "quick" if quick else "full",
        "requested_backend": kernel_name,
        "resolved_backend": kernel.name,
        "compiled": bool(kernel.compiled),
        "preserves_rng_contract": bool(kernel.preserves_rng_contract),
        "bit_identical": bool(identical),
        "wall_clock_s": {
            "numpy": round(t_numpy, 4),
            kernel.name: round(t_kernel, 4),
        },
        "speedup": round(speedup, 3),
        "worst_z": round(worst, 3),
        "scale": {
            "num_queues": 100,
            "num_clients": 400,
            "num_runs": num_runs,
            "delta_ts": list(delta_ts),
        },
        "min_speedup_asserted": MIN_SPEEDUP if assert_speedup else None,
    }
    if json_path is not None:
        json_path.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"[json written to {json_path}]")

    if kernel.preserves_rng_contract:
        assert identical, (
            f"kernel '{kernel.name}' claims to preserve the RNG-draw "
            "contract but diverged bitwise from the NumPy reference"
        )
    else:
        assert worst < 4.0, (
            f"kernel '{kernel.name}' disagrees statistically: "
            f"worst |z| = {worst:.2f}"
        )
    if assert_speedup:
        assert speedup >= MIN_SPEEDUP, (
            f"compiled kernel only {speedup:.1f}x faster than the NumPy "
            f"batched path (expected >= {MIN_SPEEDUP}x)"
        )
    elif kernel.compiled:
        print("[quick mode: speedup assertion skipped]")
    else:
        print("[kernel not compiled: speedup assertion skipped]")
    return stats


def test_batched_backend(benchmark, results_dir):
    """pytest-benchmark entry point (full sweep)."""
    from conftest import run_once

    stats = run_once(benchmark, run_bench, quick=False)
    (results_dir / "batched_backend.txt").write_text(
        f"speedup={stats['speedup']:.2f}x worst_z={stats['worst_z']:.2f}\n"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid, equivalence check only (CI smoke)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="compare this epoch kernel (e.g. 'numba') against the NumPy "
        "reference instead of the batched-vs-scalar execution styles",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_JSON,
        help=f"machine-readable output path (default {DEFAULT_JSON})",
    )
    args = parser.parse_args(argv)
    if args.backend is not None:
        run_kernel_bench(
            args.backend, quick=args.quick, seed=args.seed,
            json_path=args.json,
        )
    else:
        run_bench(quick=args.quick, seed=args.seed, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
