"""Figure 3: PPO training curve on the MFC MDP at Δt = 5.

The paper's plot shows (i) the episode return rising over training,
(ii) horizontal reference lines for MF-JSQ(2) ≈ −200 and MF-RND ≈ −228
at T_e = 500, with RND below JSQ, and (iii) the final learned return
above both. At bench scale we run a short PPO leg for the curve itself
and check the *final* learned level using the packaged checkpoint
(trained by ``scripts/pretrain_policies.py``); paper-vs-measured values
go to ``results/fig3.*``.
"""

import numpy as np

from repro.config import paper_ppo_config, paper_system_config
from repro.experiments.fig3_training import run_fig3
from repro.experiments.pretrained import get_mf_policy
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.rl.evaluation import evaluate_policies_mfc
from repro.policies.static import JoinShortestQueuePolicy, RandomPolicy
from repro.utils.tables import format_table

from conftest import run_once

DELTA_T = 5.0
HORIZON = 100  # scaled from the paper's T_e = 500 (returns scale linearly)


def test_fig3_training_curve(benchmark, results_dir):
    ppo = paper_ppo_config(seed=0).with_updates(
        learning_rate=3e-4,
        minibatch_size=512,
        num_epochs=10,
        gae_lambda=0.95,
        value_clip_param=5000.0,
        initial_log_std=-1.0,
    )
    result = run_once(
        benchmark,
        run_fig3,
        delta_t=DELTA_T,
        iterations=4,
        horizon=HORIZON,
        ppo_config=ppo,
        baseline_episodes=10,
        seed=0,
    )
    # Reference lines ordered as in the paper: RND below JSQ(2).
    assert result.baseline_returns["MF-RND"] < result.baseline_returns["MF-JSQ(2)"]
    # The curve is being recorded and is finite.
    assert len(result.mean_returns) == 4
    assert all(np.isfinite(r) for r in result.mean_returns)
    (results_dir / "fig3_curve.csv").write_text(result.to_csv() + "\n")
    (results_dir / "fig3_summary.txt").write_text(result.format_table() + "\n")
    print("\n" + result.format_table())


def test_fig3_final_level_beats_baselines(benchmark, results_dir):
    """The fully-trained policy (packaged checkpoint) reproduces the
    paper's final ordering: MF > MF-JSQ(2) > MF-RND at Δt = 5."""

    def evaluate():
        cfg = paper_system_config(delta_t=DELTA_T, num_queues=100)
        env = MeanFieldEnv(cfg, horizon=HORIZON, propagator="tabulated", seed=0)
        mf_policy, source = get_mf_policy(DELTA_T)
        evals = evaluate_policies_mfc(
            env,
            {
                "MF": mf_policy,
                "MF-JSQ(2)": JoinShortestQueuePolicy(6, 2),
                "MF-RND": RandomPolicy(6, 2),
            },
            episodes=20,
            seed=1,
        )
        return evals, source

    evals, source = run_once(benchmark, evaluate)
    assert evals["MF"].mean > evals["MF-JSQ(2)"].mean
    assert evals["MF"].mean > evals["MF-RND"].mean
    assert evals["MF-JSQ(2)"].mean > evals["MF-RND"].mean
    rows = [
        [name, f"{ci.mean:.2f}", f"±{ci.half_width:.2f}"]
        for name, ci in evals.items()
    ]
    table = format_table(
        ["Policy", f"return (T={HORIZON}, Δt={DELTA_T:g})", "95% CI"],
        rows,
        title=f"Figure 3 final levels (policy source: {source})",
    )
    (results_dir / "fig3_final_levels.txt").write_text(table + "\n")
    print("\n" + table)
