"""Figure 3: PPO training curve on the MFC MDP at Δt = 5.

The paper's plot shows (i) the episode return rising over training,
(ii) horizontal reference lines for MF-JSQ(2) ≈ −200 and MF-RND ≈ −228
at T_e = 500, with RND below JSQ, and (iii) the final learned return
above both. At bench scale we run a short PPO leg for the curve itself
and check the *final* learned level using the packaged checkpoint
(trained by ``scripts/pretrain_policies.py``); paper-vs-measured values
go to ``results/fig3.*``.

Runs standalone or under pytest-benchmark:

    PYTHONPATH=src python benchmarks/bench_fig3_training_curve.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_fig3_training_curve.py

The standalone entry emits ``BENCH_fig3_training_curve.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import paper_ppo_config, paper_system_config
from repro.experiments.fig3_training import run_fig3
from repro.experiments.pretrained import get_mf_policy
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.rl.evaluation import evaluate_policies_mfc
from repro.policies.static import JoinShortestQueuePolicy, RandomPolicy
from repro.utils.tables import format_table

DELTA_T = 5.0
HORIZON = 100  # scaled from the paper's T_e = 500 (returns scale linearly)
DEFAULT_JSON = Path("BENCH_fig3_training_curve.json")


def _curve_ppo_config():
    return paper_ppo_config(seed=0).with_updates(
        learning_rate=3e-4,
        minibatch_size=512,
        num_epochs=10,
        gae_lambda=0.95,
        value_clip_param=5000.0,
        initial_log_std=-1.0,
    )


def run_bench(
    quick: bool = False, seed: int = 0, json_path: Path | None = DEFAULT_JSON
) -> dict:
    """Standalone fig3 smoke: short PPO leg + reference-line ordering."""
    iterations = 2 if quick else 4
    horizon = 50 if quick else HORIZON
    ppo = _curve_ppo_config()
    if quick:
        ppo = ppo.with_updates(train_batch_size=1000, minibatch_size=250)
    start = time.perf_counter()
    result = run_fig3(
        delta_t=DELTA_T,
        iterations=iterations,
        horizon=horizon,
        ppo_config=ppo,
        baseline_episodes=4 if quick else 10,
        seed=seed,
    )
    elapsed = time.perf_counter() - start
    print(result.format_table())
    print(f"\nfig3 curve ({iterations} iterations) in {elapsed:.1f}s")

    stats = {
        "benchmark": "fig3_training_curve",
        "mode": "quick" if quick else "full",
        "scale": {
            "delta_t": DELTA_T,
            "iterations": iterations,
            "horizon": horizon,
            "seed": seed,
        },
        "wall_clock_s": round(elapsed, 3),
        "mean_returns": [float(r) for r in result.mean_returns],
        "baseline_returns": {
            name: float(v) for name, v in result.baseline_returns.items()
        },
    }
    if json_path is not None:
        json_path.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"[json written to {json_path}]")

    # Reference lines ordered as in the paper: RND below JSQ(2).
    assert (
        stats["baseline_returns"]["MF-RND"]
        < stats["baseline_returns"]["MF-JSQ(2)"]
    )
    assert len(result.mean_returns) == iterations
    assert all(np.isfinite(r) for r in result.mean_returns)
    return stats


def test_fig3_training_curve(benchmark, results_dir):
    from conftest import run_once

    ppo = _curve_ppo_config()
    result = run_once(
        benchmark,
        run_fig3,
        delta_t=DELTA_T,
        iterations=4,
        horizon=HORIZON,
        ppo_config=ppo,
        baseline_episodes=10,
        seed=0,
    )
    # Reference lines ordered as in the paper: RND below JSQ(2).
    assert result.baseline_returns["MF-RND"] < result.baseline_returns["MF-JSQ(2)"]
    # The curve is being recorded and is finite.
    assert len(result.mean_returns) == 4
    assert all(np.isfinite(r) for r in result.mean_returns)
    (results_dir / "fig3_curve.csv").write_text(result.to_csv() + "\n")
    (results_dir / "fig3_summary.txt").write_text(result.format_table() + "\n")
    print("\n" + result.format_table())


def test_fig3_final_level_beats_baselines(benchmark, results_dir):
    """The fully-trained policy (packaged checkpoint) reproduces the
    paper's final ordering: MF > MF-JSQ(2) > MF-RND at Δt = 5."""
    from conftest import run_once

    def evaluate():
        cfg = paper_system_config(delta_t=DELTA_T, num_queues=100)
        env = MeanFieldEnv(cfg, horizon=HORIZON, propagator="tabulated", seed=0)
        mf_policy, source = get_mf_policy(DELTA_T)
        evals = evaluate_policies_mfc(
            env,
            {
                "MF": mf_policy,
                "MF-JSQ(2)": JoinShortestQueuePolicy(6, 2),
                "MF-RND": RandomPolicy(6, 2),
            },
            episodes=20,
            seed=1,
        )
        return evals, source

    evals, source = run_once(benchmark, evaluate)
    assert evals["MF"].mean > evals["MF-JSQ(2)"].mean
    assert evals["MF"].mean > evals["MF-RND"].mean
    assert evals["MF-JSQ(2)"].mean > evals["MF-RND"].mean
    rows = [
        [name, f"{ci.mean:.2f}", f"±{ci.half_width:.2f}"]
        for name, ci in evals.items()
    ]
    table = format_table(
        ["Policy", f"return (T={HORIZON}, Δt={DELTA_T:g})", "95% CI"],
        rows,
        title=f"Figure 3 final levels (policy source: {source})",
    )
    (results_dir / "fig3_final_levels.txt").write_text(table + "\n")
    print("\n" + table)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="2 iterations at half horizon (CI smoke)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_JSON,
        help=f"machine-readable output path (default {DEFAULT_JSON})",
    )
    args = parser.parse_args(argv)
    run_bench(quick=args.quick, seed=args.seed, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
