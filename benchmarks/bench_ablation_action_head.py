"""Ablation A1: Gaussian+normalization vs Dirichlet action head.

The paper reports that Dirichlet-parameterized upper-level policies
(directly outputting simplex actions) performed "significantly worse"
than the Gaussian policy with manual normalization — a result observed
over its full 2.5e7-step training budget. At bench scale neither head
separates definitively, so this bench *characterizes* the two heads at
a strictly matched budget (same env, batch size, epochs, learning rate)
and records training curves and final deterministic evaluations to
``results/ablation_action_head.txt``; EXPERIMENTS.md discusses the
budget caveat. Hard assertions cover validity and comparability, not a
winner.
"""

import numpy as np

from repro.config import PPOConfig, paper_system_config
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.policies.learned import NeuralPolicy
from repro.rl.evaluation import evaluate_policy_mfc
from repro.rl.ppo import PPOTrainer
from repro.rl.ppo_dirichlet import DirichletPPOTrainer
from repro.utils.tables import format_table

from conftest import run_once

ITERATIONS = 4


def _common_config(**extra) -> PPOConfig:
    return PPOConfig(
        learning_rate=3e-4,
        train_batch_size=2000,
        minibatch_size=500,
        num_epochs=8,
        hidden_sizes=(64, 64),
        gae_lambda=0.95,
        value_clip_param=5000.0,
        **extra,
    )


def _run_both_heads():
    cfg = paper_system_config(delta_t=5.0, num_queues=100)

    env_g = MeanFieldEnv(cfg, horizon=100, propagator="tabulated", seed=0)
    gaussian = PPOTrainer(
        env_g, _common_config(initial_log_std=-1.0), seed=0
    )
    g_curve = [gaussian.train_iteration().mean_episode_return
               for _ in range(ITERATIONS)]
    g_policy = NeuralPolicy(
        gaussian.policy, cfg.num_queue_states, cfg.d, env_g.num_modes
    )
    g_final = evaluate_policy_mfc(env_g, g_policy, episodes=10, seed=7).mean

    env_d = MeanFieldEnv(cfg, horizon=100, propagator="tabulated", seed=0)
    dirichlet = DirichletPPOTrainer(
        env_d, block_size=cfg.d, config=_common_config(), seed=0
    )
    d_curve = [dirichlet.train_iteration().mean_episode_return
               for _ in range(ITERATIONS)]
    d_policy = dirichlet.mean_rule_policy(cfg.num_queue_states, cfg.d)
    d_final = evaluate_policy_mfc(env_d, d_policy, episodes=10, seed=7).mean
    return g_curve, g_final, d_curve, d_final


def test_action_head_ablation(benchmark, results_dir):
    g_curve, g_final, d_curve, d_final = run_once(benchmark, _run_both_heads)

    # Validity: both heads train and evaluate to finite returns.
    assert all(np.isfinite(x) for x in g_curve + d_curve)
    assert np.isfinite(g_final) and np.isfinite(d_final)
    # Both are in the sane band between catastrophic and perfect.
    for value in (g_final, d_final):
        assert -120.0 < value < 0.0

    rows = [
        ["Gaussian+norm (paper)", f"{g_curve[-1]:.1f}", f"{g_final:.2f}"],
        ["Dirichlet (ablation)", f"{d_curve[-1]:.1f}", f"{d_final:.2f}"],
    ]
    table = format_table(
        ["Action head", f"train return @ iter {ITERATIONS}", "deterministic eval"],
        rows,
        title=(
            "Ablation A1: action-head comparison at matched budget "
            f"({ITERATIONS} x 2000 steps, Δt=5, horizon 100)"
        ),
    )
    curves = "\n".join(
        f"iter {i}: gaussian {g:.2f} dirichlet {d:.2f}"
        for i, (g, d) in enumerate(zip(g_curve, d_curve))
    )
    (results_dir / "ablation_action_head.txt").write_text(
        table + "\n\n" + curves + "\n"
    )
    print("\n" + table)
