"""Ablation A6: exact vs tabulated mean-field propagator.

The exact discretization computes one stacked matrix exponential per
epoch; the tabulated propagator interpolates pre-computed exponentials
on an arrival-rate grid (the RL training fast path). This bench
measures the speedup and the induced error on full-episode returns and
on the interpolated rows themselves.
"""

import numpy as np

from repro.config import paper_system_config
from repro.meanfield.discretization import TabulatedPropagator
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.policies.static import JoinShortestQueuePolicy
from repro.queueing.arrivals import ScriptedRate
from repro.utils.tables import format_table

from conftest import run_once

DELTA_T = 5.0


def _episode_return(propagator: str, modes) -> float:
    cfg = paper_system_config(delta_t=DELTA_T, num_queues=100)
    env = MeanFieldEnv(
        cfg,
        horizon=len(modes),
        propagator=propagator,
        arrival_process=ScriptedRate([0.9, 0.6], modes),
        seed=0,
    )
    return env.rollout_return(JoinShortestQueuePolicy(6, 2), seed=0)


def test_propagator_accuracy(benchmark, results_dir):
    rng = np.random.default_rng(0)
    modes = rng.integers(0, 2, size=100)

    def compare():
        exact = _episode_return("exact", modes)
        tab = _episode_return("tabulated", modes)
        row_err = TabulatedPropagator(
            6, 1.0, DELTA_T, max_arrival=1.8, grid_size=257
        ).max_interpolation_error(50)
        return exact, tab, row_err

    exact, tab, row_err = run_once(benchmark, compare)
    assert abs(exact - tab) < 0.05  # episode-return error
    assert row_err < 1e-4  # per-row interpolation error at default grid

    table = format_table(
        ["quantity", "value"],
        [
            ["episode return (exact expm)", f"{exact:.4f}"],
            ["episode return (tabulated)", f"{tab:.4f}"],
            ["abs episode error", f"{abs(exact - tab):.2e}"],
            ["max row interpolation error", f"{row_err:.2e}"],
        ],
        title="Ablation A6: tabulated-propagator accuracy (100 epochs, Δt=5)",
    )
    (results_dir / "ablation_propagator.txt").write_text(table + "\n")
    print("\n" + table)


def test_exact_propagator_step_speed(benchmark):
    cfg = paper_system_config(delta_t=DELTA_T, num_queues=100)
    env = MeanFieldEnv(cfg, horizon=10**9, propagator="exact", seed=0)
    env.reset(seed=0)
    rule = JoinShortestQueuePolicy(6, 2).rule
    benchmark(lambda: env.step(rule))


def test_tabulated_propagator_step_speed(benchmark):
    cfg = paper_system_config(delta_t=DELTA_T, num_queues=100)
    env = MeanFieldEnv(cfg, horizon=10**9, propagator="tabulated", seed=0)
    env.reset(seed=0)
    rule = JoinShortestQueuePolicy(6, 2).rule
    benchmark(lambda: env.step(rule))
