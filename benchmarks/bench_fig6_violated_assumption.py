"""Figure 6: the Δt sweep with the N ≫ M assumption violated.

Paper: M = 1000 with (a) N = M and (b) N = M/2. Bench scale: M = 100.
Asserted shape: the MF policy still performs well at larger delays
("even when N ⋡ M"), and RND now degrades visibly with Δt because few
clients sample the queues unevenly within an epoch (the paper's
explanation for panel differences vs Figure 5).
"""

import numpy as np

from repro.experiments.fig6_small_n import run_fig6

from conftest import run_once

DELTA_TS = tuple(float(x) for x in range(1, 11))


def test_fig6_both_panels(benchmark, results_dir):
    result = run_once(
        benchmark,
        run_fig6,
        num_queues=100,
        delta_ts=DELTA_TS,
        num_runs=5,
        seed=0,
    )
    # Record artifacts before asserting so failures still leave data.
    (results_dir / "fig6.csv").write_text(result.to_csv() + "\n")
    (results_dir / "fig6.txt").write_text(result.format_table() + "\n")
    print("\n" + result.format_table())

    for panel in (result.panel_a, result.panel_b):
        mf = panel.mean_series("MF")
        jsq = panel.mean_series("JSQ(2)")
        rnd = panel.mean_series("RND")
        rnd_hw = [r.interval.half_width for r in panel.results["RND"]]
        large = [i for i, dt in enumerate(DELTA_TS) if dt >= 5]
        # MF keeps its advantage over JSQ(2) at larger delays.
        assert np.mean([mf[i] for i in large]) < np.mean([jsq[i] for i in large])
        # ... and stays competitive with RND (within CI noise pointwise).
        for i in large:
            assert mf[i] <= rnd[i] + 2 * rnd_hw[i]
        # RND degrades with Δt here (queues are sampled unequally often
        # and with few clients this no longer averages out; paper §4).
        assert rnd[-1] > rnd[0]
        # JSQ herding is the worst failure mode at the largest delay.
        assert jsq[-1] > mf[-1]
