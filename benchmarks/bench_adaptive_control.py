#!/usr/bin/env python3
"""Closed-loop control: hook overhead and regret-vs-oracle acceptance.

Two properties of :mod:`repro.serving.control` are checked and timed:

* **bounded hook overhead** — driving a stream through the full
  controller machinery with the always-``KEEP``
  :class:`~repro.serving.control.StaticController` must stay within
  1.3× of the uncontrolled loop's wall clock (the control path is a
  handful of float accumulations per epoch), and its merged metrics
  must be **bit-identical** to ``controller=None`` — the redesign's
  safety net.
* **regret band** — on both ``adaptive-*`` scenarios the
  :class:`~repro.serving.control.RateEstimatingController` (the
  CI-hysteresis estimator of arXiv:2012.10142), which sees only
  delayed windowed counts, must keep its regret vs the clairvoyant
  oracle at or below 50% of the *best static* policy's regret
  (:mod:`repro.serving.regret`): a selector that learns the regime
  from noisy observations has to recover most of what clairvoyance
  offers over the best fixed choice.

A machine-readable summary lands in ``BENCH_adaptive_control.json``
(CI uploads it as an artifact per commit). ``--quick`` shrinks the
grid for the CI smoke test and skips the regret-band assertion (the
band is a statement about the registered scenario scale).

Runs standalone or under pytest-benchmark:

    PYTHONPATH=src python benchmarks/bench_adaptive_control.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_adaptive_control.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.scenarios.registry import get_scenario
from repro.serving.control import StaticController
from repro.serving.engine import run_stream
from repro.serving.regret import evaluate_regret
from repro.utils.tables import format_table

DEFAULT_JSON = Path("BENCH_adaptive_control.json")
#: Controlled (StaticController) wall clock must stay within this
#: factor of the uncontrolled loop.
MAX_HOOK_OVERHEAD = 1.3
#: Estimator regret / best-static regret, per adaptive scenario.
MAX_REGRET_RATIO = 0.5
#: (scenario, full-mode horizon): the diurnal cycle needs three periods,
#: the flash crowd one spike + drain.
REGRET_HORIZONS = (("adaptive-diurnal", 360), ("adaptive-flash-crowd", 120))


def _hook_overhead(quick: bool, seed: int) -> dict:
    """Time the StaticController hook against the uncontrolled loop."""
    from repro.queueing.batched_env import BatchedFiniteSystemEnv

    spec = get_scenario("adaptive-flash-crowd")
    num_queues = 20 if quick else 50
    num_replicas = 2 if quick else 4
    horizon = 80 if quick else 240
    config = spec.config_for(spec.delta_ts[0], num_queues=num_queues)
    suite = spec.build_policies(config)
    policy = suite["JSQ(2)"]

    def make_env():
        return BatchedFiniteSystemEnv(
            config,
            num_replicas=num_replicas,
            seed=seed,
            **spec.env_kwargs_for(config),
        )

    # Interleaved best-of-N: both variants simulate the identical
    # stream, so per-variant minima give a noise-robust ratio.
    repeats = 2 if quick else 3
    t_plain = t_hooked = float("inf")
    plain = hooked = None
    for _ in range(repeats):
        env = make_env()
        start = time.perf_counter()
        plain = run_stream(env, policy, horizon, window=8, seed=seed)
        t_plain = min(t_plain, time.perf_counter() - start)

        env = make_env()
        start = time.perf_counter()
        hooked = run_stream(
            env,
            policy,
            horizon,
            window=8,
            seed=seed,
            controller=StaticController(),
            policies=suite,
        )
        t_hooked = min(t_hooked, time.perf_counter() - start)

    bit_identical = bool(
        np.array_equal(plain.summaries(), hooked.summaries())
        and np.array_equal(plain.windows.rows(), hooked.windows.rows())
    )
    overhead = t_hooked / max(t_plain, 1e-9)
    return {
        "num_queues": num_queues,
        "num_replicas": num_replicas,
        "horizon": horizon,
        "uncontrolled_wall_clock_s": round(t_plain, 4),
        "controlled_wall_clock_s": round(t_hooked, 4),
        "hook_overhead": round(overhead, 3),
        "static_bit_identical": bit_identical,
    }


def _regret_band(quick: bool, seed: int) -> list[dict]:
    """Regret of every contestant on both adaptive scenarios."""
    results = []
    for name, horizon in REGRET_HORIZONS:
        kwargs = {}
        if quick:
            horizon = horizon // 3
            kwargs = {"num_queues": 20, "num_replicas": 2}
        report = evaluate_regret(name, horizon, seed=seed, **kwargs)
        print(report.format_table())
        print()
        rate_regret = report.regret("rate")
        best_static = report.best_static_regret
        ratio = rate_regret / best_static if best_static > 0 else float("inf")
        results.append(
            {
                "scenario": name,
                "horizon": report.horizon,
                "num_queues": report.num_queues,
                "num_replicas": report.num_replicas,
                "oracle_drops": round(report.oracle_drops, 4),
                "rate_regret": round(rate_regret, 4),
                "static_regret": round(report.regret("static"), 4),
                "best_static_regret": round(best_static, 4),
                "regret_ratio": round(ratio, 4),
            }
        )
    return results


def run_bench(
    quick: bool = False, seed: int = 0, json_path: Path | None = DEFAULT_JSON
) -> dict:
    hook = _hook_overhead(quick, seed)
    regret = _regret_band(quick, seed)

    rows = [
        [
            r["scenario"],
            str(r["horizon"]),
            f"{r['rate_regret']:.4g}",
            f"{r['best_static_regret']:.4g}",
            f"{r['regret_ratio']:.3f}",
        ]
        for r in regret
    ]
    print(
        format_table(
            ["scenario", "horizon", "rate regret", "best static", "ratio"],
            rows,
            title=(
                "Closed-loop regret vs oracle "
                f"(acceptance: ratio <= {MAX_REGRET_RATIO:g})"
            ),
        )
    )
    print(
        f"\nhook overhead (StaticController vs none): "
        f"{hook['hook_overhead']:.2f}x "
        f"(bit-identical={hook['static_bit_identical']})"
    )

    stats = {
        "benchmark": "adaptive_control",
        "mode": "quick" if quick else "full",
        "seed": seed,
        "hook": hook,
        "regret": regret,
        "max_hook_overhead": MAX_HOOK_OVERHEAD,
        "max_regret_ratio": MAX_REGRET_RATIO,
    }
    if json_path is not None:
        json_path.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"[json written to {json_path}]")

    assert hook["static_bit_identical"], (
        "StaticController stream diverged from the uncontrolled loop: "
        "the hook machinery must not perturb the random streams"
    )
    if not quick:
        assert hook["hook_overhead"] <= MAX_HOOK_OVERHEAD, (
            f"controller hook costs {hook['hook_overhead']:.2f}x "
            f"(expected <= {MAX_HOOK_OVERHEAD}x: the control path is a "
            "few float accumulations per epoch)"
        )
        for r in regret:
            assert r["regret_ratio"] <= MAX_REGRET_RATIO, (
                f"{r['scenario']}: estimator regret {r['rate_regret']:.4g} "
                f"is {r['regret_ratio']:.2f}x the best static's "
                f"{r['best_static_regret']:.4g} "
                f"(acceptance: <= {MAX_REGRET_RATIO}x)"
            )
    return stats


def test_adaptive_control(benchmark, results_dir):
    """pytest-benchmark entry point (full run)."""
    from conftest import run_once

    stats = run_once(benchmark, run_bench, quick=False)
    assert stats["hook"]["static_bit_identical"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small grid for CI smoke (skips the regret-band assertion)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    args = parser.parse_args(argv)
    run_bench(quick=args.quick, seed=args.seed, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
