"""Ablation A3: event-driven vs lock-step frozen-rate simulation.

The finite system can be simulated two ways that are equal in
distribution (Poisson thinning/superposition): the vectorized lock-step
uniformization simulator used everywhere, and the job-level global-clock
Gillespie simulator. This bench measures their agreement on one epoch's
state law and their relative throughput — the lock-step path is the one
that makes the paper-scale sweeps (M = 1000, N = 10^6) tractable.
"""

import numpy as np

from repro.meanfield.decision_rule import DecisionRule
from repro.queueing.clients import sample_client_choices
from repro.queueing.events import simulate_epoch_event_driven
from repro.queueing.queue_ctmc import simulate_queues_epoch
from repro.utils.tables import format_table

from conftest import run_once

M, N, B, LAM, DT = 20, 400, 5, 0.9, 2.0
REPS = 150


def _epoch_pair(rng, base_states, rule):
    _, _, committed = sample_client_choices(base_states, N, rule, rng)
    counts = np.bincount(committed, minlength=M)
    rates = M * LAM * counts / N
    new_l, d_l = simulate_queues_epoch(base_states, rates, 1.0, DT, B, rng)
    new_e, d_e = simulate_epoch_event_driven(
        base_states, committed, LAM, 1.0, DT, B, rng
    )
    return new_l, d_l, new_e, d_e


def test_simulator_agreement(benchmark, results_dir):
    rng = np.random.default_rng(0)
    base_states = rng.integers(0, B + 1, size=M)
    rule = DecisionRule.join_shortest(B + 1, 2)

    def collect():
        lock_states = np.zeros(M)
        ev_states = np.zeros(M)
        lock_drops = 0.0
        ev_drops = 0.0
        for _ in range(REPS):
            new_l, d_l, new_e, d_e = _epoch_pair(rng, base_states, rule)
            lock_states += new_l
            ev_states += new_e
            lock_drops += d_l.sum()
            ev_drops += d_e.sum()
        return (
            lock_states / REPS,
            ev_states / REPS,
            lock_drops / REPS,
            ev_drops / REPS,
        )

    lock_mean, ev_mean, lock_drops, ev_drops = run_once(benchmark, collect)
    worst = float(np.abs(lock_mean - ev_mean).max())
    assert worst < 0.5  # Monte-Carlo agreement of per-queue mean states
    assert abs(lock_drops - ev_drops) < 1.0

    table = format_table(
        ["quantity", "lock-step", "event-driven"],
        [
            ["mean queue state (avg over queues)",
             f"{lock_mean.mean():.3f}", f"{ev_mean.mean():.3f}"],
            ["drops per epoch (total)", f"{lock_drops:.3f}", f"{ev_drops:.3f}"],
            ["max per-queue mean-state gap", f"{worst:.3f}", "—"],
        ],
        title=f"Ablation A3: simulator agreement ({REPS} epochs, M={M}, N={N})",
    )
    (results_dir / "ablation_simulators.txt").write_text(table + "\n")
    print("\n" + table)


def test_lockstep_throughput(benchmark):
    """Throughput of the production path at Figure-5 panel scale."""
    rng = np.random.default_rng(1)
    m = 1000
    states = rng.integers(0, B + 1, size=m)
    rates = rng.uniform(0, 1.8, size=m)

    def one_epoch():
        return simulate_queues_epoch(states, rates, 1.0, DT, B, rng)

    new, _ = benchmark(one_epoch)
    assert new.shape == (m,)
