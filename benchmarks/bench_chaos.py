#!/usr/bin/env python3
"""Chaos layer: empty-schedule overhead and mass-conservation acceptance.

Three properties of :mod:`repro.queueing.chaos` are checked and timed:

* **bounded overhead** — running a sweep cell with an *empty*
  :class:`~repro.queueing.chaos.DegradationSchedule` attached must stay
  within 1.3× of the schedule-free wall clock (the empty schedule
  short-circuits before binding any runtime state), and its trajectory
  must be **bit-identical** to ``chaos=None`` — the determinism
  contract's safety net.
* **mass conservation** — on the registered ``outage-recovery``
  scenario every epoch satisfies
  ``drops_total == drops_kernel + chaos_drops``: jobs removed by
  events (queue-loss mass, water-fill overflow, blackholed arrivals)
  are accounted as drops, never silently deleted.
* **degradation is visible** — the outage scenario must drop strictly
  more than the undisturbed baseline on the same stream; a chaos layer
  that does not hurt is a chaos layer that is not wired in.

A machine-readable summary lands in ``BENCH_chaos.json`` (CI uploads
it as an artifact per commit). ``--quick`` shrinks the grid for the CI
smoke test.

Runs standalone or under pytest-benchmark:

    PYTHONPATH=src python benchmarks/bench_chaos.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_chaos.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.queueing.batched_env import BatchedFiniteSystemEnv
from repro.queueing.chaos import DegradationSchedule, ServerOutage
from repro.scenarios.builtin import outage_recovery_schedule
from repro.scenarios.registry import get_scenario
from repro.utils.tables import format_table

DEFAULT_JSON = Path("BENCH_chaos.json")
#: An attached-but-empty schedule must stay within this factor of the
#: schedule-free loop's wall clock.
MAX_EMPTY_OVERHEAD = 1.3


def _trace(env, policy, horizon: int, seed: int) -> dict:
    """Drive one stream manually, folding the chaos accounting."""
    rng_seed = seed
    env.reset(rng_seed)
    totals = {
        "drops_total": 0.0,
        "drops_kernel": 0.0,
        "chaos_drops": 0.0,
        "identity_violation": 0.0,
    }
    states = []
    for _ in range(horizon):
        _, _, info = env.step_with_policy(policy)
        total = info["drops_total"]
        kernel = info.get("drops_kernel", total)
        chaos = info.get("chaos_drops", np.zeros_like(total))
        totals["drops_total"] += float(total.sum())
        totals["drops_kernel"] += float(kernel.sum())
        totals["chaos_drops"] += float(chaos.sum())
        totals["identity_violation"] = max(
            totals["identity_violation"],
            float(np.abs(total - kernel - chaos).max()),
        )
        states.append(env.queue_states)
    totals["final_states"] = np.stack(states)
    return totals


def _empty_schedule_overhead(quick: bool, seed: int) -> dict:
    """Time an attached empty schedule against no schedule at all."""
    spec = get_scenario("outage-recovery")
    num_queues = 20 if quick else 50
    num_replicas = 2 if quick else 4
    horizon = 80 if quick else 240
    config = spec.config_for(spec.delta_ts[0], num_queues=num_queues)
    policy = spec.build_policies(config)["JSQ(2)"]

    def make_env(chaos):
        return BatchedFiniteSystemEnv(
            config,
            num_replicas=num_replicas,
            seed=seed,
            per_packet_randomization=True,
            chaos=chaos,
        )

    # Interleaved best-of-N: both variants simulate the identical
    # stream, so per-variant minima give a noise-robust ratio.
    repeats = 2 if quick else 3
    t_plain = t_empty = float("inf")
    plain = empty = None
    for _ in range(repeats):
        start = time.perf_counter()
        plain = _trace(make_env(None), policy, horizon, seed)
        t_plain = min(t_plain, time.perf_counter() - start)

        start = time.perf_counter()
        empty = _trace(make_env(DegradationSchedule()), policy, horizon, seed)
        t_empty = min(t_empty, time.perf_counter() - start)

    bit_identical = bool(
        np.array_equal(plain["final_states"], empty["final_states"])
        and plain["drops_total"] == empty["drops_total"]
    )
    overhead = t_empty / max(t_plain, 1e-9)
    return {
        "num_queues": num_queues,
        "num_replicas": num_replicas,
        "horizon": horizon,
        "plain_wall_clock_s": round(t_plain, 4),
        "empty_schedule_wall_clock_s": round(t_empty, 4),
        "empty_overhead": round(overhead, 3),
        "empty_bit_identical": bit_identical,
    }


def _outage_conservation(quick: bool, seed: int) -> dict:
    """Mass accounting through the registered outage-recovery event."""
    spec = get_scenario("outage-recovery")
    num_queues = 20 if quick else 50
    num_replicas = 2 if quick else 4
    delta_t = spec.delta_ts[0]
    config = spec.config_for(delta_t, num_queues=num_queues)
    policy = spec.build_policies(config)["JSQ(2)"]
    schedule = outage_recovery_schedule(delta_t)
    # Past the restart with margin, so recovery is inside the window.
    restart = max(
        ev.restart_epoch
        for ev in schedule.events
        if isinstance(ev, ServerOutage)
    )
    horizon = restart + (10 if quick else 40)

    def run(chaos):
        env = BatchedFiniteSystemEnv(
            config,
            num_replicas=num_replicas,
            seed=seed,
            per_packet_randomization=True,
            chaos=chaos,
        )
        return _trace(env, policy, horizon, seed)

    start = time.perf_counter()
    degraded = run(schedule)
    wall = time.perf_counter() - start
    baseline = run(None)
    return {
        "num_queues": num_queues,
        "num_replicas": num_replicas,
        "horizon": horizon,
        "wall_clock_s": round(wall, 4),
        "baseline_drops": round(baseline["drops_total"], 4),
        "degraded_drops": round(degraded["drops_total"], 4),
        "kernel_drops": round(degraded["drops_kernel"], 4),
        "chaos_drops": round(degraded["chaos_drops"], 4),
        "identity_violation": degraded["identity_violation"],
    }


def run_bench(
    quick: bool = False, seed: int = 0, json_path: Path | None = DEFAULT_JSON
) -> dict:
    overhead = _empty_schedule_overhead(quick, seed)
    outage = _outage_conservation(quick, seed)

    print(
        format_table(
            ["variant", "wall clock (s)", "drops"],
            [
                ["baseline", f"{outage['wall_clock_s']:.3f}",
                 f"{outage['baseline_drops']:.4g}"],
                ["outage-recovery", f"{outage['wall_clock_s']:.3f}",
                 f"{outage['degraded_drops']:.4g}"],
            ],
            title=(
                f"Chaos outage-recovery (M={outage['num_queues']}, "
                f"E={outage['num_replicas']}, T={outage['horizon']})"
            ),
        )
    )
    print(
        f"\nempty-schedule overhead: {overhead['empty_overhead']:.2f}x "
        f"(bit-identical={overhead['empty_bit_identical']}); "
        f"mass identity violation: {outage['identity_violation']:.2e}"
    )

    stats = {
        "benchmark": "chaos",
        "mode": "quick" if quick else "full",
        "seed": seed,
        "empty_schedule": overhead,
        "outage_recovery": outage,
        "max_empty_overhead": MAX_EMPTY_OVERHEAD,
    }
    if json_path is not None:
        json_path.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"[json written to {json_path}]")

    assert overhead["empty_bit_identical"], (
        "an attached empty schedule diverged from chaos=None: the "
        "chaos layer must consume no random draws"
    )
    assert outage["identity_violation"] <= 1e-9, (
        "drops_total != drops_kernel + chaos_drops: event mass was "
        f"lost silently (max violation {outage['identity_violation']:.2e})"
    )
    assert outage["degraded_drops"] > outage["baseline_drops"], (
        "the outage scenario dropped no more than the undisturbed "
        "baseline — the degradation events are not reaching the kernel"
    )
    if not quick:
        assert overhead["empty_overhead"] <= MAX_EMPTY_OVERHEAD, (
            f"empty schedule costs {overhead['empty_overhead']:.2f}x "
            f"(expected <= {MAX_EMPTY_OVERHEAD}x: it short-circuits "
            "before binding any runtime state)"
        )
    return stats


def test_chaos(benchmark, results_dir):
    """pytest-benchmark entry point (full run)."""
    from conftest import run_once

    stats = run_once(benchmark, run_bench, quick=False)
    assert stats["empty_schedule"]["empty_bit_identical"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small grid for CI smoke (skips the overhead assertion)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    args = parser.parse_args(argv)
    run_bench(quick=args.quick, seed=args.seed, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
