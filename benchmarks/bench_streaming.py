#!/usr/bin/env python3
"""Streaming serving engine: O(1) memory vs horizon, bounded overhead.

Two properties of :mod:`repro.serving` are checked and timed on a
``diurnal-stream``-style workload (sinusoidal arrivals, JSQ(2),
per-packet randomization, lock-step replicas):

* **flat memory** — the peak traced allocation of
  :func:`repro.serving.engine.run_stream` is measured at horizon ``T``
  and ``4T``; the engine folds epochs into O(1) accumulators (P²
  sketches, count histograms, a bounded window series), so the peak
  must not grow with the horizon (asserted with a 1.3× + 1 MiB band —
  the batched figure path, by contrast, materializes ``(E, T)``
  trajectories). This is the guarantee behind
  ``python -m repro.experiments.cli stream diurnal-stream
  --horizon 100000``.
* **bounded overhead** — streaming adds per-epoch metric folding on top
  of the plain batched driver
  (:func:`repro.queueing.batched_env.run_episodes_batched`); its
  epochs/second must stay within 1.3× of the batched backend on the
  same environment.

A machine-readable summary lands in ``BENCH_streaming.json`` (CI
uploads it as an artifact per commit).

Runs standalone or under pytest-benchmark:

    PYTHONPATH=src python benchmarks/bench_streaming.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.config import paper_system_config
from repro.policies.static import JoinShortestQueuePolicy
from repro.queueing.batched_env import (
    BatchedFiniteSystemEnv,
    run_episodes_batched,
)
from repro.scenarios.builtin import diurnal_arrival_process
from repro.serving.engine import run_stream
from repro.utils.tables import format_table

DEFAULT_JSON = Path("BENCH_streaming.json")
#: Peak memory at 4x the horizon must stay within this factor (plus a
#: 1 MiB absolute band for allocator noise) of the base horizon's peak.
MAX_MEMORY_GROWTH = 1.3
MEMORY_SLACK_BYTES = 1 << 20
#: Streaming epochs/sec must be >= batched epochs/sec / this factor.
MAX_THROUGHPUT_OVERHEAD = 1.3


def _make_env(config, num_replicas: int, seed: int) -> BatchedFiniteSystemEnv:
    return BatchedFiniteSystemEnv(
        config,
        num_replicas=num_replicas,
        arrival_process=diurnal_arrival_process(),
        per_packet_randomization=True,
        seed=seed,
    )


def _stream_peak_bytes(config, num_replicas, horizon, window, seed) -> int:
    """Peak traced allocation of one streaming run (env included)."""
    gc.collect()
    tracemalloc.start()
    env = _make_env(config, num_replicas, seed)
    run_stream(env, _policy(config), horizon, window, max_windows=64, seed=seed)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return int(peak)


def _policy(config) -> JoinShortestQueuePolicy:
    return JoinShortestQueuePolicy(config.num_queue_states, config.d)


def run_bench(
    quick: bool = False, seed: int = 0, json_path: Path | None = DEFAULT_JSON
) -> dict:
    num_queues = 25 if quick else 100
    num_replicas = 4 if quick else 16
    horizon = 150 if quick else 400
    window = 25 if quick else 50
    config = paper_system_config(
        delta_t=5.0,
        num_queues=num_queues,
        num_clients=10 * num_queues,
    )
    policy = _policy(config)

    # -- memory: horizon T vs 4T ---------------------------------------
    peak_base = _stream_peak_bytes(config, num_replicas, horizon, window, seed)
    peak_long = _stream_peak_bytes(
        config, num_replicas, 4 * horizon, window, seed
    )
    memory_growth = peak_long / max(peak_base, 1)

    # -- throughput: streaming vs the plain batched driver -------------
    # Interleaved best-of-N timing: both drivers simulate the identical
    # stream, so the per-driver minimum is the noise-robust cost
    # estimate, and alternating the two keeps background-load spikes
    # from biasing one side of the ratio.
    repeats = 2 if quick else 3
    t_batched = float("inf")
    t_stream = float("inf")
    for _ in range(repeats):
        env = _make_env(config, num_replicas, seed)
        start = time.perf_counter()
        batched_result = run_episodes_batched(
            env, policy, num_epochs=horizon, seed=seed
        )
        t_batched = min(t_batched, time.perf_counter() - start)

        env = _make_env(config, num_replicas, seed)
        start = time.perf_counter()
        metrics = run_stream(env, policy, horizon, window, seed=seed)
        t_stream = min(t_stream, time.perf_counter() - start)

    eps_batched = horizon / max(t_batched, 1e-9)
    eps_stream = horizon / max(t_stream, 1e-9)
    overhead = t_stream / max(t_batched, 1e-9)

    # Same seed, same env construction, same per-epoch consumption of
    # the generator stream: the folded totals must match the batched
    # driver's trajectory sums (up to summation order — the fold sums
    # integer drops and divides once, the trajectory sums per-epoch
    # quotients).
    summaries = metrics.summaries()
    drops_match = bool(
        np.allclose(
            summaries[:, 0],
            batched_result.total_drops_per_queue,
            rtol=1e-12,
            atol=1e-9,
        )
    )

    rows = [
        [
            "batched driver",
            f"{t_batched:.3f}",
            f"{eps_batched:.1f}",
            "(E, T) trajectory",
        ],
        [
            "streaming engine",
            f"{t_stream:.3f}",
            f"{eps_stream:.1f}",
            "O(1) accumulators",
        ],
    ]
    print(
        format_table(
            ["driver", "wall-clock (s)", "epochs/s", "memory model"],
            rows,
            title=(
                f"Streaming engine — M={num_queues}, N={10 * num_queues}, "
                f"E={num_replicas}, T={horizon}, diurnal arrivals, JSQ(2)"
            ),
        )
    )
    print(
        f"\npeak traced memory: {peak_base / 1e6:.2f} MB @ T={horizon} vs "
        f"{peak_long / 1e6:.2f} MB @ T={4 * horizon} "
        f"(growth {memory_growth:.2f}x)"
    )
    print(
        f"streaming overhead vs batched: {overhead:.2f}x "
        f"(drops bit-identical={drops_match})"
    )

    stats = {
        "benchmark": "streaming",
        "mode": "quick" if quick else "full",
        "scale": {
            "num_queues": num_queues,
            "num_clients": 10 * num_queues,
            "num_replicas": num_replicas,
            "horizon": horizon,
            "window": window,
            "delta_t": 5.0,
        },
        "peak_bytes_base": peak_base,
        "peak_bytes_4x_horizon": peak_long,
        "memory_growth": round(memory_growth, 3),
        "batched_wall_clock_s": round(t_batched, 4),
        "stream_wall_clock_s": round(t_stream, 4),
        "stream_overhead": round(overhead, 3),
        "epochs_per_s_batched": round(eps_batched, 2),
        "epochs_per_s_stream": round(eps_stream, 2),
        "drops_bit_identical": drops_match,
        "mean_total_drops": round(float(summaries[:, 0].mean()), 4),
    }
    if json_path is not None:
        json_path.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"[json written to {json_path}]")

    assert drops_match, (
        "streaming fold diverged from the batched driver's drop totals"
    )
    assert peak_long <= MAX_MEMORY_GROWTH * peak_base + MEMORY_SLACK_BYTES, (
        f"memory grew {memory_growth:.2f}x when the horizon grew 4x "
        f"({peak_base} -> {peak_long} bytes): the streaming engine must "
        "be O(1) in the horizon"
    )
    if not quick:
        assert overhead <= MAX_THROUGHPUT_OVERHEAD, (
            f"streaming is {overhead:.2f}x slower than the batched driver "
            f"(expected <= {MAX_THROUGHPUT_OVERHEAD}x: metric folding is "
            "the only extra work)"
        )
    return stats


def test_streaming(benchmark, results_dir):
    """pytest-benchmark entry point (full run)."""
    from conftest import run_once

    stats = run_once(benchmark, run_bench, quick=False)
    assert stats["drops_bit_identical"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small grid for CI smoke (skips the throughput assertion)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    args = parser.parse_args(argv)
    run_bench(quick=args.quick, seed=args.seed, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
