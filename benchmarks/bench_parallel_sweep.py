#!/usr/bin/env python3
"""Sharded sweep orchestrator: wall-clock speedup and bit-identity.

Runs a Figure-5-style synchronization-delay sweep (bench scale:
``M = 100`` queues, ``N = 4M`` clients, ``Δt ∈ {1..10}``, 32 Monte-Carlo
replicas, JSQ(2), per-packet randomization) twice through
:class:`repro.experiments.parallel.SweepExecutor` — once with
``workers=1`` (in-process) and once with ``workers=4`` (process pool) —
and checks two properties:

* **determinism** — the merged per-replica drops are *bit-identical*
  between the two runs (always asserted, any machine);
* **speedup** — with ≥ 4 CPU cores available, the 4-worker sweep is at
  least ``MIN_SPEEDUP``× faster (skipped on smaller machines, where the
  pool can only interleave, and in ``--quick`` mode, where timings are
  noise-dominated).

A machine-readable summary (wall-clock, speedup, scale knobs, CPU count)
is written to ``BENCH_parallel_sweep.json`` so CI can track the
orchestrator's performance trajectory per commit.

Runs standalone or under pytest-benchmark:

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_sweep.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import paper_system_config
from repro.experiments.parallel import EvalRequest, SweepExecutor
from repro.policies.static import JoinShortestQueuePolicy
from repro.utils.tables import format_table

MIN_SPEEDUP = 2.5
PARALLEL_WORKERS = 4
FULL_DELTA_TS = tuple(float(x) for x in range(1, 11))
QUICK_DELTA_TS = (2.0, 5.0)
DEFAULT_JSON = Path("BENCH_parallel_sweep.json")


def build_requests(
    delta_ts=FULL_DELTA_TS,
    num_queues: int = 100,
    clients_per_queue: int = 4,
    num_runs: int = 32,
    max_batch_replicas: int = 8,
    seed: int = 0,
) -> list[EvalRequest]:
    """The Figure-5-style sweep as one request per delay grid point.

    ``max_batch_replicas=8`` splits every grid point into four replica
    chunks, so the pool has ``4 × len(delta_ts)`` shards to balance.
    """
    requests = []
    for dt in delta_ts:
        cfg = paper_system_config(
            delta_t=dt,
            num_queues=num_queues,
            num_clients=clients_per_queue * num_queues,
        )
        policy = JoinShortestQueuePolicy(cfg.num_queue_states, cfg.d)
        requests.append(
            EvalRequest(
                config=cfg,
                policy=policy,
                num_runs=num_runs,
                num_epochs=max(1, round(500.0 / dt)),
                seed=seed,
                max_batch_replicas=max_batch_replicas,
                env_kwargs={"per_packet_randomization": True},
            )
        )
    return requests


def run_bench(
    quick: bool = False, seed: int = 0, json_path: Path | None = DEFAULT_JSON
) -> dict:
    delta_ts = QUICK_DELTA_TS if quick else FULL_DELTA_TS
    num_runs = 8 if quick else 32
    requests = build_requests(delta_ts, num_runs=num_runs, seed=seed)

    start = time.perf_counter()
    serial = SweepExecutor(workers=1).run_drops(requests)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    sharded = SweepExecutor(workers=PARALLEL_WORKERS).run_drops(requests)
    t_sharded = time.perf_counter() - start

    identical = all(
        np.array_equal(a, b) for a, b in zip(serial, sharded)
    )
    speedup = t_serial / max(t_sharded, 1e-9)
    cpu_count = os.cpu_count() or 1

    rows = [
        [
            f"{dt:g}",
            f"{drops.mean():.2f}",
            f"{drops.size}",
            "yes" if np.array_equal(drops, shard) else "NO",
        ]
        for dt, drops, shard in zip(delta_ts, serial, sharded)
    ]
    print(
        format_table(
            ["Δt", "mean drops", "replicas", "bit-identical"],
            rows,
            title=(
                "Sharded sweep orchestrator — JSQ(2), "
                f"{num_runs} replicas/Δt, {PARALLEL_WORKERS} workers"
            ),
        )
    )
    print(
        f"\nwall-clock: workers=1 {t_serial:.2f}s, "
        f"workers={PARALLEL_WORKERS} {t_sharded:.2f}s "
        f"-> {speedup:.2f}x speedup ({cpu_count} CPUs visible)"
    )

    stats = {
        "benchmark": "parallel_sweep",
        "mode": "quick" if quick else "full",
        "workers": PARALLEL_WORKERS,
        "cpu_count": cpu_count,
        "wall_clock_s": {
            "workers_1": round(t_serial, 4),
            f"workers_{PARALLEL_WORKERS}": round(t_sharded, 4),
        },
        "speedup": round(speedup, 3),
        "bit_identical": bool(identical),
        "scale": {
            "num_queues": 100,
            "num_clients": 400,
            "num_runs": num_runs,
            "delta_ts": list(delta_ts),
            "max_batch_replicas": 8,
        },
        "min_speedup_asserted": (
            MIN_SPEEDUP if not quick and cpu_count >= PARALLEL_WORKERS else None
        ),
    }
    if json_path is not None:
        json_path.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"[json written to {json_path}]")

    assert identical, "sharded execution changed the merged statistics"
    if not quick and cpu_count >= PARALLEL_WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"sharded sweep only {speedup:.2f}x faster at "
            f"{PARALLEL_WORKERS} workers (expected >= {MIN_SPEEDUP}x)"
        )
    elif not quick:
        print(
            f"[speedup assertion skipped: {cpu_count} < "
            f"{PARALLEL_WORKERS} CPUs — pool can only interleave]"
        )
    return stats


def test_parallel_sweep(benchmark, results_dir):
    """pytest-benchmark entry point (full sweep)."""
    from conftest import run_once

    stats = run_once(benchmark, run_bench, quick=False)
    (results_dir / "parallel_sweep.txt").write_text(
        f"speedup={stats['speedup']:.2f}x "
        f"bit_identical={stats['bit_identical']}\n"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid, determinism check only (CI smoke)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_JSON,
        help=f"machine-readable output path (default {DEFAULT_JSON})",
    )
    args = parser.parse_args(argv)
    run_bench(quick=args.quick, seed=args.seed, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
