"""Ablation A5: Theorem-1 convergence rates, numerically.

Measures sup_t ‖H_t − ν_t‖₁ (trajectory gap to the mean field,
conditioned on a common arrival-mode script, as in the proof) for both
finite systems across system sizes, and checks the two limits that the
proof composes:

* queue limit: gap ↓ as M grows with N = M² (both systems),
* client limit: at fixed M, the N-client system approaches the
  infinite-client system as N grows.
"""

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.convergence import trajectory_gap
from repro.policies.static import JoinShortestQueuePolicy
from repro.utils.tables import format_table

from conftest import run_once

EPOCHS = 25
SEEDS = 3


def _gap(cfg, system, modes):
    vals = [
        trajectory_gap(
            cfg, JoinShortestQueuePolicy(6, 2), EPOCHS,
            system=system, mode_sequence=modes, seed=s,
        ).sup_l1_gap
        for s in range(SEEDS)
    ]
    return float(np.mean(vals))


def _run():
    modes = np.zeros(EPOCHS, dtype=int)
    m_grid = (10, 40, 160)
    rows = []
    for m in m_grid:
        cfg = SystemConfig(num_queues=m, num_clients=m * m, delta_t=3.0)
        rows.append(
            [
                m,
                m * m,
                _gap(cfg, "finite", modes),
                _gap(cfg, "infinite-clients", modes),
            ]
        )
    # client-limit leg at fixed M
    m_fix = 40
    client_rows = []
    for n in (20, 200, 20000):
        cfg = SystemConfig(num_queues=m_fix, num_clients=n, delta_t=3.0)
        client_rows.append([n, _gap(cfg, "finite", modes)])
    inf_gap = _gap(
        SystemConfig(num_queues=m_fix, num_clients=10, delta_t=3.0),
        "infinite-clients",
        modes,
    )
    return rows, client_rows, inf_gap


def test_theorem1_gap_decay(benchmark, results_dir):
    rows, client_rows, inf_gap = run_once(benchmark, _run)

    finite_gaps = [r[2] for r in rows]
    infinite_gaps = [r[3] for r in rows]
    # queue limit: gaps shrink by at least 2x over the 16x M range
    assert finite_gaps[-1] < finite_gaps[0] / 2
    assert infinite_gaps[-1] < infinite_gaps[0] / 2
    # client limit at fixed M: more clients -> closer to the N=inf system
    client_gaps = [r[1] for r in client_rows]
    assert client_gaps[-1] < client_gaps[0]
    assert abs(client_gaps[-1] - inf_gap) < 0.15

    table_a = format_table(
        ["M", "N=M²", "sup-gap (finite)", "sup-gap (∞ clients)"],
        [[r[0], r[1], f"{r[2]:.4f}", f"{r[3]:.4f}"] for r in rows],
        title="Ablation A5a: queue-limit leg of Theorem 1 (Δt=3, JSQ(2))",
    )
    table_b = format_table(
        ["N (M=40 fixed)", "sup-gap (finite)"],
        [[r[0], f"{r[1]:.4f}"] for r in client_rows]
        + [["∞ (limit system)", f"{inf_gap:.4f}"]],
        title="Ablation A5b: client-limit leg of Theorem 1",
    )
    (results_dir / "theorem1_gaps.txt").write_text(
        table_a + "\n\n" + table_b + "\n"
    )
    print("\n" + table_a + "\n\n" + table_b)
