"""Ablation A2: the power-of-d fan-out (d = 1, 2, 3).

The paper fixes d = 2 citing Mitzenmacher's power-of-two result: going
from d = 1 to d = 2 brings an exponential improvement, d = 3 adds
little. This bench reproduces that curve in the mean-field model at a
small delay (where JSQ(d) is near-optimal, so the fan-out effect is
isolated from the delay effect): drops(d=1) ≫ drops(d=2) ≳ drops(d=3).
"""

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.policies.static import JoinShortestQueuePolicy
from repro.utils.tables import format_table

from conftest import run_once


def _sweep_d():
    results = {}
    for d in (1, 2, 3):
        cfg = SystemConfig(delta_t=1.0, d=d)
        env = MeanFieldEnv(cfg, horizon=200, propagator="tabulated", seed=0)
        policy = JoinShortestQueuePolicy(cfg.num_queue_states, d)
        returns = [env.rollout_return(policy, seed=s) for s in range(6)]
        results[d] = -float(np.mean(returns))  # drops (positive)
    return results


def test_power_of_d(benchmark, results_dir):
    drops = run_once(benchmark, _sweep_d)
    # d=1 is uniform random placement; d=2 collapses drops dramatically.
    assert drops[1] > 3 * drops[2]
    # d=3 helps, but by far less than the d=1 -> d=2 jump.
    assert drops[3] <= drops[2]
    assert (drops[2] - drops[3]) < 0.25 * (drops[1] - drops[2])

    rows = [[d, f"{v:.3f}"] for d, v in drops.items()]
    table = format_table(
        ["d", "drops over 200 epochs (Δt=1, JSQ(d))"],
        rows,
        title="Ablation A2: power-of-d fan-out in the mean-field model",
    )
    (results_dir / "ablation_power_of_d.txt").write_text(table + "\n")
    print("\n" + table)
