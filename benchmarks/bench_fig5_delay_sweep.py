"""Figure 5: total packet drops vs synchronization delay Δt per policy.

Paper panels: M ∈ {400, 600, 800, 1000}, N = M², Δt ∈ {1..10}, n = 100.
Bench scale: M ∈ {50, 100}, full Δt grid, 4 runs. Asserted shape (the
paper's stated findings):

* drops grow with Δt for every policy (fewer updates ⇒ worse),
* JSQ(2) is best at Δt = 1,
* the MF policy matches/beats JSQ(2) from intermediate delays on and
  beats RND's small-delay numbers,
* JSQ(2) falls behind RND at large Δt (herding under stale state).
"""

import numpy as np
import pytest

from repro.experiments.fig5_delay_sweep import run_fig5

from conftest import run_once

DELTA_TS = tuple(float(x) for x in range(1, 11))
RUNS = 4


@pytest.mark.parametrize("num_queues", [50, 100])
def test_fig5_panel(benchmark, results_dir, num_queues):
    result = run_once(
        benchmark,
        run_fig5,
        num_queues=num_queues,
        delta_ts=DELTA_TS,
        num_runs=RUNS,
        seed=0,
    )
    # Record artifacts before asserting so failures still leave data.
    (results_dir / f"fig5_m{num_queues}.csv").write_text(result.to_csv() + "\n")
    (results_dir / f"fig5_m{num_queues}.txt").write_text(
        result.format_table() + "\n"
    )
    print("\n" + result.format_table())

    mf = result.mean_series("MF")
    jsq = result.mean_series("JSQ(2)")
    rnd = result.mean_series("RND")
    mf_hw = np.asarray(
        [r.interval.half_width for r in result.results["MF"]]
    )
    jsq_hw = np.asarray(
        [r.interval.half_width for r in result.results["JSQ(2)"]]
    )

    # Drops increase with the delay (compare ends of the sweep).
    for series in (mf, jsq, rnd):
        assert series[-1] > series[0]
    # JSQ(2) wins at Δt=1.
    assert jsq[0] <= mf[0] + 0.5
    assert jsq[0] < rnd[0]
    # Herding: JSQ(2) worse than RND at Δt=10.
    assert jsq[-1] > rnd[-1]
    # The learned policy wins at large delays: pointwise up to CI noise,
    # and strictly in the Δt ≥ 5 average.
    large = [i for i, dt in enumerate(DELTA_TS) if dt >= 5]
    for i in large:
        assert mf[i] <= jsq[i] + mf_hw[i] + jsq_hw[i]
    assert np.mean([mf[i] for i in large]) < np.mean([jsq[i] for i in large])
    assert np.mean([mf[i] for i in large]) < np.mean([rnd[i] for i in large])
