#!/usr/bin/env python3
"""Sparse-topology backend: full-mesh equivalence and per-topology cost.

Two properties of :class:`repro.queueing.graph_env.BatchedGraphFiniteEnv`
are checked and timed on a Figure-5-style workload (``M = 100`` queues,
``N = 4M`` clients, JSQ(2), per-packet randomization, 16 lock-step
replicas):

* **equivalence** — on a full-mesh topology the graph environment is
  *bit-identical* to the dense :class:`BatchedFiniteSystemEnv` under a
  shared seed (always asserted; the degenerate case costs only the
  identity neighbor gather, and the measured overhead is reported);
* **locality cost/effect** — ring, torus and random-regular
  neighborhoods are simulated at the same scale, reporting wall-clock
  per epoch and mean drops per topology. Under stale information mild
  locality can even *reduce* drops (neighborhood sampling dampens the
  herding of delayed JSQ), so the check is a sanity band — sparse drops
  stay within a factor of the full mesh — not a monotonicity claim.

A machine-readable summary lands in ``BENCH_graph_topology.json`` (CI
uploads it as an artifact per commit).

Runs standalone or under pytest-benchmark:

    PYTHONPATH=src python benchmarks/bench_graph_topology.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_graph_topology.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import paper_system_config
from repro.policies.static import JoinShortestQueuePolicy
from repro.queueing.batched_env import (
    BatchedFiniteSystemEnv,
    run_episodes_batched,
)
from repro.queueing.graph_env import BatchedGraphFiniteEnv
from repro.queueing.topology import TopologySpec
from repro.utils.tables import format_table

DEFAULT_JSON = Path("BENCH_graph_topology.json")
# The full mesh must not cost more than this factor over the dense
# backend: the only extra work is the identity neighbor gather.
MAX_MESH_OVERHEAD = 1.5


def _topologies(num_queues: int) -> dict[str, TopologySpec]:
    return {
        "full-mesh": TopologySpec.full_mesh(num_queues),
        "ring(r=2)": TopologySpec.ring(num_queues, radius=2),
        "torus(r=1)": TopologySpec.torus(num_queues, radius=1),
        "random-regular(4)": TopologySpec.random_regular(
            num_queues, degree=4, seed=0
        ),
    }


def _run(env, policy, num_epochs: int, seed: int):
    start = time.perf_counter()
    result = run_episodes_batched(env, policy, num_epochs=num_epochs, seed=seed)
    return result, time.perf_counter() - start


def run_bench(
    quick: bool = False, seed: int = 0, json_path: Path | None = DEFAULT_JSON
) -> dict:
    num_queues = 36 if quick else 100
    num_replicas = 4 if quick else 16
    num_epochs = 20 if quick else 100
    config = paper_system_config(
        delta_t=5.0,
        num_queues=num_queues,
        num_clients=4 * num_queues,
    )
    policy = JoinShortestQueuePolicy(config.num_queue_states, config.d)

    dense = BatchedFiniteSystemEnv(
        config, num_replicas=num_replicas,
        per_packet_randomization=True, seed=seed,
    )
    dense_result, t_dense = _run(dense, policy, num_epochs, seed)

    rows = [
        [
            "dense (baseline)",
            "-",
            f"{t_dense:.3f}",
            f"{dense_result.mean_total_drops:.2f}",
            "-",
        ]
    ]
    per_topology: dict[str, dict] = {}
    mesh_identical = False
    mesh_overhead = float("nan")
    for label, topology in _topologies(num_queues).items():
        env = BatchedGraphFiniteEnv(
            config, topology, num_replicas=num_replicas,
            per_packet_randomization=True, seed=seed,
        )
        result, elapsed = _run(env, policy, num_epochs, seed)
        if label == "full-mesh":
            mesh_identical = bool(
                np.array_equal(
                    result.per_epoch_drops, dense_result.per_epoch_drops
                )
            )
            mesh_overhead = elapsed / max(t_dense, 1e-9)
            note = "bit-identical" if mesh_identical else "DIVERGED"
        else:
            note = "-"
        per_topology[label] = {
            "degree": topology.degree,
            "num_dispatchers": topology.num_dispatchers,
            "wall_clock_s": round(elapsed, 4),
            "mean_total_drops": round(float(result.mean_total_drops), 4),
            "neighbor_array_bytes": topology.memory_bytes(),
        }
        rows.append(
            [
                label,
                f"{topology.degree}",
                f"{elapsed:.3f}",
                f"{result.mean_total_drops:.2f}",
                note,
            ]
        )

    print(
        format_table(
            ["topology", "degree", "wall-clock (s)", "mean drops", "check"],
            rows,
            title=(
                f"Sparse-topology backend — M={num_queues}, "
                f"N={4 * num_queues}, E={num_replicas}, T={num_epochs}, "
                "JSQ(2)"
            ),
        )
    )
    print(
        f"\nfull-mesh graph env overhead vs dense: {mesh_overhead:.2f}x "
        f"(gather-only; bit-identical={mesh_identical})"
    )

    stats = {
        "benchmark": "graph_topology",
        "mode": "quick" if quick else "full",
        "scale": {
            "num_queues": num_queues,
            "num_clients": 4 * num_queues,
            "num_replicas": num_replicas,
            "num_epochs": num_epochs,
            "delta_t": 5.0,
        },
        "dense_wall_clock_s": round(t_dense, 4),
        "dense_mean_total_drops": round(
            float(dense_result.mean_total_drops), 4
        ),
        "full_mesh_bit_identical": mesh_identical,
        "full_mesh_overhead": round(mesh_overhead, 3),
        "topologies": per_topology,
    }
    if json_path is not None:
        json_path.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"[json written to {json_path}]")

    assert mesh_identical, (
        "full-mesh graph simulation diverged from the dense backend"
    )
    if not quick:
        assert mesh_overhead <= MAX_MESH_OVERHEAD, (
            f"full-mesh graph env {mesh_overhead:.2f}x slower than dense "
            f"(expected <= {MAX_MESH_OVERHEAD}x: the gather is the only "
            "extra work)"
        )
        # Sanity band: locality shifts drops both ways (less herding,
        # fewer choices) but never by an implausible margin.
        mesh_drops = per_topology["full-mesh"]["mean_total_drops"]
        for label, entry in per_topology.items():
            if label == "full-mesh":
                continue
            assert entry["mean_total_drops"] >= 0.5 * mesh_drops, (
                f"{label} implausibly beats the full mesh "
                f"({entry['mean_total_drops']} vs {mesh_drops})"
            )
    return stats


def test_graph_topology(benchmark, results_dir):
    """pytest-benchmark entry point (full run)."""
    from conftest import run_once

    stats = run_once(benchmark, run_bench, quick=False)
    (results_dir / "graph_topology.txt").write_text(
        f"full_mesh_bit_identical={stats['full_mesh_bit_identical']} "
        f"overhead={stats['full_mesh_overhead']:.2f}x\n"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid, equivalence check only (CI smoke)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_JSON,
        help=f"machine-readable output path (default {DEFAULT_JSON})",
    )
    args = parser.parse_args(argv)
    run_bench(quick=args.quick, seed=args.seed, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
