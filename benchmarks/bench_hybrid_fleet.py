#!/usr/bin/env python3
"""Hybrid fleet: Theorem-1 gap curve at fleet sizes brute force cannot reach.

:class:`repro.queueing.hybrid_env.BatchedHybridFleetEnv` evolves a
tracked subsystem of ``M_track`` queues with the exact batched kernels
while the remaining ``M - M_track`` queues are closed by the mean-field
propagator. That makes the Theorem-1 observable — the trajectory gap
``sup_t ||H_t - nu_t||_1`` between the finite fleet's empirical
distribution and the mean-field limit, conditioned on a common
arrival-mode script — measurable at ``M`` up to 10^6, three orders of
magnitude past where the dense batched environment runs out of memory.

Checked and timed per fleet size:

* **gap decay** — the mixed empirical distribution's gap to the
  mean-field trajectory shrinks monotonically as ``M`` grows (the
  tracked fraction shrinks and the tracked subsystem itself
  concentrates), the numerical face of Theorem 1.
* **mass conservation** — every epoch satisfies
  ``tracked arrival mass + field arrival mass == M * lambda`` to
  floating-point accuracy: the closure absorbs exactly the arrival
  mass the tracked half did not, never inventing or losing offered
  load.

A machine-readable summary lands in ``BENCH_hybrid_fleet.json`` (CI
uploads it as an artifact per commit). ``--quick`` stops the grid at
``M = 10^4`` for the CI smoke test.

Runs standalone or under pytest-benchmark:

    PYTHONPATH=src python benchmarks/bench_hybrid_fleet.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_hybrid_fleet.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import SystemConfig
from repro.meanfield.convergence import mean_field_trajectory
from repro.policies.static import JoinShortestQueuePolicy
from repro.queueing.arrivals import ScriptedRate
from repro.queueing.hybrid_env import BatchedHybridFleetEnv
from repro.utils.tables import format_table

DEFAULT_JSON = Path("BENCH_hybrid_fleet.json")
FULL_M_GRID = (10**3, 10**4, 10**5, 10**6)
QUICK_M_GRID = (10**3, 10**4)
EPOCHS = 20
NUM_REPLICAS = 2
#: Conservation is algebraic (the closure's target *is* the residual),
#: so the per-epoch violation bound is pure float roundoff.
CONSERVATION_TOL = 1e-9


def _num_tracked(m: int) -> int:
    """Tracked-subsystem size: 1% of the fleet, floored at 100 queues."""
    return min(m, max(100, m // 100))


def _gap_at(m: int, seed: int) -> dict:
    """Run one fleet size; returns the gap and conservation diagnostics.

    Clients scale as ``N = M`` (not the Theorem-1 ``N = M^2``): the
    client-sampling arrays are ``(E, N, d)``, so quadratic client
    counts would blow past memory exactly where the hybrid closure is
    supposed to shine. The gap still decays in ``M`` because both the
    tracked fraction and the tracked subsystem's own fluctuations
    shrink.
    """
    config = SystemConfig(
        num_queues=m, num_clients=m, delta_t=3.0, episode_length=EPOCHS
    )
    policy = JoinShortestQueuePolicy(config.num_queue_states, config.d)
    # A scripted mode sequence shared by the fleet and the limit, so the
    # gap conditions on common arrivals (as in the proof of Theorem 1).
    levels = (config.arrival_rate_high, config.arrival_rate_low)
    modes = np.zeros(EPOCHS, dtype=np.int64)
    env = BatchedHybridFleetEnv(
        config,
        num_replicas=NUM_REPLICAS,
        num_tracked=_num_tracked(m),
        arrival_process=ScriptedRate(levels, modes),
        per_packet_randomization=True,
        seed=seed,
    )
    nu_traj, _ = mean_field_trajectory(config, policy, modes)

    start = time.perf_counter()
    hists = env.reset()
    sup_gap = float(np.abs(hists - nu_traj[0]).sum(axis=1).max())
    worst_violation = 0.0
    for t in range(EPOCHS):
        hists, _, info = env.step_with_policy(policy)
        offered = m * env.current_rates
        absorbed = info["arrival_rates"].sum(axis=1) + info.get(
            "field_arrival_mass", np.zeros(NUM_REPLICAS)
        )
        worst_violation = max(
            worst_violation,
            float(np.abs(absorbed - offered).max() / max(offered.max(), 1.0)),
        )
        sup_gap = max(
            sup_gap,
            float(np.abs(hists - nu_traj[t + 1]).sum(axis=1).max()),
        )
    wall = time.perf_counter() - start
    return {
        "num_queues": m,
        "num_clients": m,
        "num_tracked": _num_tracked(m),
        "tracked_fraction": _num_tracked(m) / m,
        "sup_l1_gap": sup_gap,
        "conservation_violation": worst_violation,
        "wall_clock_s": round(wall, 4),
    }


def run_bench(
    quick: bool = False, seed: int = 0, json_path: Path | None = DEFAULT_JSON
) -> dict:
    m_grid = QUICK_M_GRID if quick else FULL_M_GRID
    rows = [_gap_at(m, seed) for m in m_grid]

    print(
        format_table(
            ["M", "M_track", "sup-gap", "conservation", "wall clock (s)"],
            [
                [
                    f"{r['num_queues']:.0e}",
                    r["num_tracked"],
                    f"{r['sup_l1_gap']:.5f}",
                    f"{r['conservation_violation']:.1e}",
                    f"{r['wall_clock_s']:.2f}",
                ]
                for r in rows
            ],
            title=(
                f"Hybrid-fleet Theorem-1 gap (E={NUM_REPLICAS}, "
                f"T={EPOCHS}, Δt=3, JSQ(2), N=M)"
            ),
        )
    )

    stats = {
        "benchmark": "hybrid_fleet",
        "mode": "quick" if quick else "full",
        "seed": seed,
        "epochs": EPOCHS,
        "num_replicas": NUM_REPLICAS,
        "grid": rows,
        "conservation_tol": CONSERVATION_TOL,
    }
    if json_path is not None:
        json_path.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"[json written to {json_path}]")

    for r in rows:
        assert r["conservation_violation"] <= CONSERVATION_TOL, (
            f"M={r['num_queues']}: arrival mass leaked between the "
            "tracked and field halves (relative violation "
            f"{r['conservation_violation']:.2e})"
        )
    gaps = [r["sup_l1_gap"] for r in rows]
    for smaller, larger in zip(gaps[1:], gaps[:-1]):
        assert smaller < larger, (
            "Theorem-1 gap did not shrink monotonically along the M "
            f"grid: {[f'{g:.5f}' for g in gaps]}"
        )
    assert gaps[-1] < gaps[0] / 2, (
        "gap at the largest fleet should be well under half the "
        f"smallest fleet's: {[f'{g:.5f}' for g in gaps]}"
    )
    return stats


def test_hybrid_fleet(benchmark, results_dir):
    """pytest-benchmark entry point (full run)."""
    from conftest import run_once

    stats = run_once(benchmark, run_bench, quick=False)
    gaps = [r["sup_l1_gap"] for r in stats["grid"]]
    assert gaps == sorted(gaps, reverse=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="stop the fleet grid at M=10^4 for the CI smoke test",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    args = parser.parse_args(argv)
    run_bench(quick=args.quick, seed=args.seed, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
