"""Shared machinery for the benchmark suite.

Each benchmark regenerates one table/figure of the paper (at a scaled
grid — see DESIGN.md §3 for the scaling policy), times the regeneration
via pytest-benchmark, asserts the paper's qualitative shape, and writes
the regenerated numbers to ``results/`` so EXPERIMENTS.md can reference
them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, fn, *args, **kwargs):
    """Time exactly one execution of an expensive experiment."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
