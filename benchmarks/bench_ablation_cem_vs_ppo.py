"""Ablation A4: state-feedback (PPO) vs best constant rule (CEM).

Proposition 1 guarantees an optimal *stationary deterministic* upper
policy, but that policy may still condition on (ν_t, λ_t). This bench
quantifies what the feedback buys at Δt = 5: the shipped checkpoint
(CEM warm start + PPO fine-tune, state-dependent) against the best
constant rule CEM finds, and both against JSQ(2)/RND. Expected: both
learned variants beat the baselines; the state-dependent policy is at
least as good as the constant rule.
"""

from repro.config import paper_system_config
from repro.experiments.pretrained import get_mf_policy
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.policies.static import JoinShortestQueuePolicy, RandomPolicy
from repro.rl.cem import optimize_constant_rule
from repro.rl.evaluation import evaluate_policies_mfc
from repro.utils.tables import format_table

from conftest import run_once

DELTA_T = 5.0


def _run():
    cfg = paper_system_config(delta_t=DELTA_T, num_queues=100)
    env = MeanFieldEnv(cfg, horizon=100, propagator="tabulated", seed=0)
    ppo_policy, source = get_mf_policy(DELTA_T)
    cem = optimize_constant_rule(
        env, generations=10, population=24, episodes_per_candidate=2, seed=3
    )
    evals = evaluate_policies_mfc(
        env,
        {
            "MF (PPO, state feedback)": ppo_policy,
            "CEM constant rule": cem.policy,
            "JSQ(2)": JoinShortestQueuePolicy(6, 2),
            "RND": RandomPolicy(6, 2),
        },
        episodes=20,
        seed=11,
    )
    return evals, source


def test_cem_vs_ppo(benchmark, results_dir):
    evals, source = run_once(benchmark, _run)
    mf = evals["MF (PPO, state feedback)"].mean
    cem = evals["CEM constant rule"].mean
    jsq = evals["JSQ(2)"].mean
    rnd = evals["RND"].mean
    # Both learned policies beat both baselines at Δt = 5.
    assert mf > jsq and mf > rnd
    assert cem > jsq and cem > rnd
    # State feedback does not hurt (slack = CEM's CI half-width).
    assert mf >= cem - evals["CEM constant rule"].half_width

    rows = [
        [name, f"{ci.mean:.2f}", f"±{ci.half_width:.2f}"]
        for name, ci in evals.items()
    ]
    table = format_table(
        ["Policy", "MFC return (100 epochs, Δt=5)", "95% CI"],
        rows,
        title=f"Ablation A4: constant rule vs state feedback (MF source: {source})",
    )
    (results_dir / "ablation_cem_vs_ppo.txt").write_text(table + "\n")
    print("\n" + table)
