"""Table 1: system parameters used in the experiments.

Regenerates the parameter table from the library defaults and asserts
every published value is carried verbatim by :class:`SystemConfig`.
"""

from repro.config import paper_system_config
from repro.experiments.tables import render_table1, table1_matches_config

from conftest import run_once


def test_table1_regeneration(benchmark, results_dir):
    text = run_once(benchmark, render_table1)
    checks = table1_matches_config(paper_system_config(delta_t=5.0))
    assert all(checks.values()), {k: v for k, v in checks.items() if not v}
    (results_dir / "table1.txt").write_text(text + "\n")
    print("\n" + text)


def test_table1_eval_lengths_span_paper_range(benchmark):
    """T_e = round(500/Δt) spans 50..500 over Δt ∈ [1, 10] (Table 1 row)."""

    def eval_lengths():
        return [
            paper_system_config(delta_t=dt).resolved_eval_length()
            for dt in range(1, 11)
        ]

    lengths = run_once(benchmark, eval_lengths)
    assert max(lengths) == 500
    assert min(lengths) == 50
    assert lengths == sorted(lengths, reverse=True)
