"""Figure 4: finite-system drops of the MF policy converge to the
mean-field value as the system grows (one panel per Δt).

Paper: M ∈ {100..1000}, N = M², n = 100 runs. Bench scale: M ∈
{25, 50, 100}, N = M², 5 runs — the qualitative content (the gap to the
red dotted mean-field line shrinks with M) is asserted per panel.
"""

import pytest

from repro.experiments.fig4_convergence import run_fig4

from conftest import run_once

M_GRID = (25, 50, 100)
RUNS = 5


@pytest.mark.parametrize("delta_t", [1.0, 3.0, 5.0, 7.0, 10.0])
def test_fig4_panel(benchmark, results_dir, delta_t):
    result = run_once(
        benchmark,
        run_fig4,
        delta_t=delta_t,
        m_grid=M_GRID,
        num_runs=RUNS,
        mf_eval_episodes=30,
        seed=0,
    )
    assert result.policy_source == "checkpoint"
    gaps = result.gaps()
    # The largest system sits closer to the mean-field value than the
    # smallest one (allowing CI-scale slack at this Monte-Carlo budget).
    slack = result.results[-1].interval.half_width
    assert gaps[-1] <= gaps[0] + slack
    # All finite-system estimates are in a sane band around the MF value.
    for r in result.results:
        assert r.mean_drops >= 0
    (results_dir / f"fig4_dt{delta_t:g}.csv").write_text(result.to_csv() + "\n")
    (results_dir / f"fig4_dt{delta_t:g}.txt").write_text(
        result.format_table() + "\n"
    )
    print("\n" + result.format_table())
