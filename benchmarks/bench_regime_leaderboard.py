#!/usr/bin/env python3
"""Training-campaign leaderboard: regime checkpoints vs transplants.

Runs the ``leaderboard`` scenario (stochastic-delay finite system,
matched seeds across policies) and checks the orderings the campaign
exists to produce:

* **paper ranking under staleness** — from ``Δt = 5`` on, the learned
  mean-field policy beats both static baselines: ``MF-regime`` drops
  stay at or below ``JSQ(2)`` and ``RND`` (the finite-system face of
  the paper's Figure-5 crossover);
* **native beats transplant** — on the mean drop rate across the stale
  delays ``Δt ∈ {5, 7, 10}``, the natively trained, age-conditioned
  campaign checkpoints (``MF-regime``) incur fewer drops than the paper
  checkpoints transplanted across the delay regime (``MF``). The
  comparison is per-set, not per-delay, because of the campaign's
  keep-best guard: a regime where fine-tuning regressed on the paired
  finite evaluation ships the *exact* warm start, so its two columns
  are bit-identical ties and the strict improvement is carried by the
  regimes where training won (the per-regime ``kept`` verdicts are
  reported in the JSON). This assertion only engages when the packaged
  campaign checkpoints are present (``source == "checkpoint"``); on a
  cold checkout the columns coincide and the bench reports the
  degenerate sources instead of failing.

A machine-readable summary lands in ``BENCH_regime_leaderboard.json``
(CI uploads it as an artifact per commit).

Runs standalone or under pytest-benchmark:

    PYTHONPATH=src python benchmarks/bench_regime_leaderboard.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_regime_leaderboard.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.execution import ExecutionContext
from repro.experiments.campaign import get_regime_policy
from repro.scenarios import run_scenario

DEFAULT_JSON = Path("BENCH_regime_leaderboard.json")
#: The delays where the learned policy must dominate the baselines.
STALE_DELTA_TS = (5.0, 7.0, 10.0)


def _kept_verdict(delta_t: float) -> str | None:
    """Keep-best verdict recorded in the packaged campaign checkpoint.

    ``"trained"`` means fine-tuning beat the warm start on the paired
    finite evaluation; ``"warm-start"`` means the checkpoint is the
    exact transplant (fine-tuning regressed and was discarded).
    """
    from repro.experiments.campaign import regime_checkpoint_path
    from repro.utils.serialization import load_npz_checkpoint

    path = regime_checkpoint_path(f"dt{delta_t:g}")
    if not path.exists():
        return None
    _, meta = load_npz_checkpoint(path)
    return meta.get("kept")


def run_bench(
    quick: bool = False,
    seed: int = 0,
    workers: int = 1,
    json_path: Path | None = DEFAULT_JSON,
) -> dict:
    delta_ts = (1.0, 5.0) if quick else (1.0, 3.0, 5.0, 7.0, 10.0)
    num_queues = 25 if quick else 100
    num_runs = 2 if quick else 5

    result = run_scenario(
        "leaderboard",
        delta_ts=delta_ts,
        num_queues=num_queues,
        num_runs=num_runs,
        seed=seed,
        context=ExecutionContext(workers=workers),
    )
    print(result.format_table())

    sources = {dt: get_regime_policy(dt)[1] for dt in delta_ts}
    native = all(src == "checkpoint" for src in sources.values())
    print(
        "\nMF-regime checkpoint sources — "
        + ", ".join(f"Δt={dt:g}: {src}" for dt, src in sources.items())
    )
    kept = {dt: _kept_verdict(dt) for dt in delta_ts}
    if native:
        print(
            "keep-best verdicts — "
            + ", ".join(f"Δt={dt:g}: {v}" for dt, v in kept.items())
        )

    drops = {
        name: [float(x) for x in result.mean_series(name)]
        for name in result.results
    }
    stats = {
        "benchmark": "regime_leaderboard",
        "mode": "quick" if quick else "full",
        "scale": {
            "num_queues": num_queues,
            "num_clients": result.num_clients,
            "num_runs": num_runs,
            "seed": seed,
        },
        "delta_ts": list(delta_ts),
        "mean_drops": drops,
        "winners": {f"{dt:g}": result.winner_at(dt) for dt in delta_ts},
        "regime_checkpoint_sources": {
            f"{dt:g}": src for dt, src in sources.items()
        },
        "regime_kept_verdicts": {f"{dt:g}": v for dt, v in kept.items()},
        "native_checkpoints": native,
    }
    if json_path is not None:
        json_path.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"[json written to {json_path}]")

    for series in drops.values():
        assert all(np.isfinite(series)), "non-finite drop estimate"
    if not quick:
        stale = [dt for dt in delta_ts if dt in STALE_DELTA_TS]
        for dt in stale:
            i = delta_ts.index(dt)
            mf_regime = drops["MF-regime"][i]
            assert mf_regime <= drops["JSQ(2)"][i], (
                f"MF-regime loses to JSQ at Δt={dt:g}: "
                f"{mf_regime:.3f} vs {drops['JSQ(2)'][i]:.3f}"
            )
            assert mf_regime <= drops["RND"][i], (
                f"MF-regime loses to RND at Δt={dt:g}: "
                f"{mf_regime:.3f} vs {drops['RND'][i]:.3f}"
            )
        if native:
            # The acceptance bar of the campaign: on the mean drop rate
            # across the stale delays, native training strictly improves
            # on transplantation. Keep-best regimes that fell back to
            # their warm start contribute exact ties (never losses);
            # the strict margin comes from the kept-trained regimes.
            for dt in stale:
                i = delta_ts.index(dt)
                assert drops["MF-regime"][i] <= drops["MF"][i] or kept[
                    dt
                ] == "trained", (
                    f"warm-kept regime checkpoint differs from its "
                    f"transplant at Δt={dt:g}: {drops['MF-regime'][i]:.3f} "
                    f"vs {drops['MF'][i]:.3f}"
                )
            idx = [delta_ts.index(dt) for dt in stale]
            regime_mean = float(np.mean([drops["MF-regime"][i] for i in idx]))
            transplant_mean = float(np.mean([drops["MF"][i] for i in idx]))
            assert regime_mean < transplant_mean, (
                f"native regime checkpoints do not beat the transplants "
                f"on the stale-set mean drop rate: {regime_mean:.3f} vs "
                f"{transplant_mean:.3f}"
            )
        else:
            print(
                "[native-vs-transplant assertion skipped: campaign "
                "checkpoints not packaged — run "
                "scripts/train_regime_policies.py]"
            )
    return stats


def test_regime_leaderboard(benchmark, results_dir):
    """pytest-benchmark entry point (full run)."""
    from conftest import run_once

    stats = run_once(benchmark, run_bench, quick=False)
    (results_dir / "regime_leaderboard.txt").write_text(
        json.dumps(stats["winners"], indent=2) + "\n"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid, no ranking assertions (CI smoke)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process count for the sharded sweep",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_JSON,
        help=f"machine-readable output path (default {DEFAULT_JSON})",
    )
    args = parser.parse_args(argv)
    run_bench(
        quick=args.quick,
        seed=args.seed,
        workers=args.workers,
        json_path=args.json,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
