"""Table 2: PPO hyperparameter configuration.

Regenerates the hyperparameter table from :class:`PPOConfig` defaults
and checks each published value, plus that a trainer instantiated from
it actually carries the values through (no silent re-defaulting).
"""

from repro.config import paper_ppo_config
from repro.experiments.tables import render_table2, table2_matches_config
from repro.rl.ppo import PPOTrainer

from conftest import run_once


class _NullEnv:
    observation_size = 8
    action_size = 72


def test_table2_regeneration(benchmark, results_dir):
    text = run_once(benchmark, render_table2)
    checks = table2_matches_config(paper_ppo_config())
    assert all(checks.values()), {k: v for k, v in checks.items() if not v}
    (results_dir / "table2.txt").write_text(text + "\n")
    print("\n" + text)


def test_table2_values_reach_the_trainer(benchmark):
    def build():
        return PPOTrainer(_NullEnv(), paper_ppo_config(), seed=0)

    trainer = run_once(benchmark, build)
    assert trainer.config.gamma == 0.99
    assert trainer.kl_coeff == 0.2
    assert trainer._policy_opt.learning_rate == 5e-5
    assert trainer.policy.trunk.hidden_sizes == (256, 256)
    # Figure 2: two hidden layers + output head
    assert trainer.policy.trunk.num_layers == 3
