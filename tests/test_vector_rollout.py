"""Vectorized rollout-collector tests (lock-step envs, GAE, PPO wiring)."""

import numpy as np
import pytest

from repro.rl.nn import GaussianPolicyNetwork, ValueNetwork
from repro.rl.rollout import RolloutCollector
from repro.rl.vector_rollout import VectorRolloutCollector


class CountingEnv:
    """Deterministic env: reward = -1 each step, episodes of length 5."""

    observation_size = 2
    action_size = 1

    def __init__(self, episode_len=5, truncated_flag=True):
        self.episode_len = episode_len
        self.truncated_flag = truncated_flag
        self.resets = 0
        self.t = 0

    def reset(self, seed=None):
        self.resets += 1
        self.t = 0
        return np.array([0.0, 0.0])

    def step_raw(self, action):
        self.t += 1
        done = self.t >= self.episode_len
        obs = np.array([self.t / self.episode_len, 1.0])
        return obs, -1.0, done, {"truncated": self.truncated_flag and done}


@pytest.fixture
def nets(rng):
    policy = GaussianPolicyNetwork(2, 1, (8,), rng=rng)
    value = ValueNetwork(2, (8,), rng=rng)
    return policy, value


class TestCollect:
    def test_batch_shapes(self, nets):
        policy, value = nets
        collector = VectorRolloutCollector(
            [CountingEnv() for _ in range(3)], policy, value, 0.9, 1.0, seed=0
        )
        batch = collector.collect(12)  # 4 steps x 3 envs
        assert len(batch) == 12
        assert batch.obs.shape == (12, 2)
        assert batch.actions.shape == (12, 1)
        assert batch.log_probs.shape == (12,)
        assert batch.advantages.shape == (12,)
        assert batch.value_targets.shape == (12,)
        assert collector.total_env_steps == 12

    def test_batch_size_must_divide(self, nets):
        policy, value = nets
        collector = VectorRolloutCollector(
            [CountingEnv(), CountingEnv()], policy, value, 0.9, 1.0, seed=0
        )
        with pytest.raises(ValueError):
            collector.collect(7)
        with pytest.raises(ValueError):
            collector.collect(0)

    def test_needs_at_least_one_env(self, nets):
        policy, value = nets
        with pytest.raises(ValueError):
            VectorRolloutCollector([], policy, value, 0.9, 1.0)

    def test_episode_returns_recorded_per_env(self, nets):
        policy, value = nets
        envs = [CountingEnv() for _ in range(2)]
        collector = VectorRolloutCollector(envs, policy, value, 0.9, 1.0, seed=0)
        batch = collector.collect(24)  # 12 steps/env: two episodes each + 2
        assert batch.episode_returns == [-5.0] * 4
        assert all(env.resets == 3 for env in envs)  # initial + 2 rollovers

    def test_dones_time_major_layout(self, nets):
        policy, value = nets
        collector = VectorRolloutCollector(
            [CountingEnv(), CountingEnv()], policy, value, 0.9, 1.0, seed=0
        )
        batch = collector.collect(20)  # 10 steps per env
        dones = batch.dones.reshape(10, 2)
        # Both envs end their 5-step episodes at slices 4 and 9.
        assert np.array_equal(dones.all(axis=1), np.arange(10) % 5 == 4)

    def test_single_env_matches_scalar_collector(self, small_config):
        """E = 1 lock-step collection is bit-identical to RolloutCollector."""
        from repro.meanfield.mfc_env import MeanFieldEnv

        def collect(cls, wrap):
            env = MeanFieldEnv(small_config, horizon=7, seed=0)
            policy = GaussianPolicyNetwork(
                env.observation_size, env.action_size, (8,), rng=1
            )
            value = ValueNetwork(env.observation_size, (8,), rng=2)
            target = [env] if wrap else env
            collector = cls(target, policy, value, 0.99, 0.95, seed=5)
            return collector.collect(21)

        scalar = collect(RolloutCollector, wrap=False)
        vector = collect(VectorRolloutCollector, wrap=True)
        assert np.array_equal(scalar.obs, vector.obs)
        assert np.array_equal(scalar.actions, vector.actions)
        assert np.array_equal(scalar.rewards, vector.rewards)
        assert np.array_equal(scalar.dones, vector.dones)
        assert np.allclose(scalar.advantages, vector.advantages)
        assert np.allclose(scalar.value_targets, vector.value_targets)
        assert scalar.episode_returns == vector.episode_returns

    def test_fixed_seed_regression_batch_statistics(self, small_config):
        """Same seed -> identical batches; distinct seeds -> distinct."""
        from repro.meanfield.mfc_env import MeanFieldEnv

        def collect(seed):
            env = MeanFieldEnv(small_config, horizon=6, seed=0)
            envs = [env] + [env.clone() for _ in range(3)]
            policy = GaussianPolicyNetwork(
                env.observation_size, env.action_size, (8,), rng=1
            )
            value = ValueNetwork(env.observation_size, (8,), rng=2)
            collector = VectorRolloutCollector(
                envs, policy, value, 0.99, 0.95, seed=seed
            )
            return collector.collect(24)

        a, b, c = collect(9), collect(9), collect(10)
        assert np.array_equal(a.actions, b.actions)
        assert np.array_equal(a.rewards, b.rewards)
        assert np.allclose(a.advantages, b.advantages)
        assert not np.array_equal(a.actions, c.actions)
        # Truncation bootstrapping keeps the GAE targets finite and the
        # rewards non-positive (drops-only reward).
        assert np.all(np.isfinite(a.value_targets))
        assert np.all(a.rewards <= 0.0)


class TestPPOIntegration:
    def test_trainer_with_vector_collector(self, small_config, fast_ppo_config):
        from repro.meanfield.mfc_env import MeanFieldEnv
        from repro.rl.ppo import PPOTrainer

        env = MeanFieldEnv(small_config, horizon=8, seed=0)
        trainer = PPOTrainer(env, fast_ppo_config, seed=0, num_envs=4)
        assert isinstance(trainer.collector, VectorRolloutCollector)
        stats = trainer.train_iteration()
        assert np.isfinite(stats.mean_episode_return)
        assert stats.env_steps == fast_ppo_config.train_batch_size

    def test_trainer_validates_divisibility(self, small_config, fast_ppo_config):
        from repro.meanfield.mfc_env import MeanFieldEnv
        from repro.rl.ppo import PPOTrainer

        env = MeanFieldEnv(small_config, horizon=8, seed=0)
        with pytest.raises(ValueError):
            PPOTrainer(env, fast_ppo_config, seed=0, num_envs=7)

    def test_trainer_requires_cloneable_env(self, fast_ppo_config):
        from repro.rl.ppo import PPOTrainer

        with pytest.raises(ValueError):
            PPOTrainer(CountingEnv(), fast_ppo_config, seed=0, num_envs=2)
