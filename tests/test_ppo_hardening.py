"""Property tests for the hardened-PPO knobs.

The golden traces in ``tests/test_training_determinism.py`` prove that
every knob *off* reproduces the paper's update bit for bit; this module
pins what each knob does when *on*: the adaptive KL coefficient stays
within its configured bounds, the clip-epsilon decay is monotone, the
value clamp never widens the loss, and KL early stopping actually cuts
the SGD epochs short.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PPOConfig, SystemConfig
from repro.meanfield.mfc_env import MeanFieldEnv
from repro.rl.ppo import (
    PPOTrainer,
    adapted_kl_coeff,
    clamped_value_sq_error,
    clip_param_at,
)

_SYSTEM = SystemConfig(
    num_clients=64,
    num_queues=8,
    buffer_size=2,
    d=2,
    delta_t=1.0,
    episode_length=15,
    monte_carlo_runs=2,
)


def _tiny_ppo(**overrides) -> PPOConfig:
    base = dict(
        learning_rate=1e-3,
        train_batch_size=60,
        minibatch_size=30,
        num_epochs=2,
        hidden_sizes=(16,),
        initial_log_std=-0.5,
        seed=3,
    )
    base.update(overrides)
    return PPOConfig(**base)


class TestAdaptiveKLBounds:
    @given(
        kl_coeff=st.floats(1e-6, 1e3),
        kl=st.floats(0.0, 10.0),
        lo=st.floats(1e-4, 0.5),
        span=st.floats(1e-3, 10.0),
    )
    def test_updated_coefficient_stays_within_bounds(self, kl_coeff, kl, lo, span):
        config = PPOConfig(kl_coeff_bounds=(lo, lo + span))
        updated = adapted_kl_coeff(kl_coeff, kl, config)
        assert lo <= updated <= lo + span

    @given(kl_coeff=st.floats(1e-6, 1e3), kl=st.floats(0.0, 10.0))
    def test_unbounded_rule_matches_rllib_semantics(self, kl_coeff, kl):
        config = PPOConfig()
        updated = adapted_kl_coeff(kl_coeff, kl, config)
        if kl > 2.0 * config.kl_target:
            assert updated == kl_coeff * 1.5
        elif kl < 0.5 * config.kl_target:
            assert updated == kl_coeff * 0.5
        else:
            assert updated == kl_coeff

    def test_training_keeps_coefficient_inside_bounds(self):
        # A microscopic KL target forces β upward every iteration; the
        # bounds must cap it where the unbounded rule would blow past.
        config = _tiny_ppo(
            kl_target=1e-9, kl_coeff=0.9, kl_coeff_bounds=(0.05, 1.0)
        )
        env = MeanFieldEnv(_SYSTEM, horizon=15, seed=0)
        trainer = PPOTrainer(env, config, seed=3)
        for _ in range(4):
            stats = trainer.train_iteration()
            assert 0.05 <= stats.kl_coeff <= 1.0
        assert trainer.kl_coeff == 1.0  # saturated at the cap


class TestClipDecay:
    @given(
        clip=st.floats(0.05, 1.0),
        final_frac=st.floats(0.01, 1.0),
        iters=st.integers(1, 200),
        horizon=st.integers(0, 400),
    )
    def test_schedule_is_monotone_and_bounded(self, clip, final_frac, iters, horizon):
        final = clip * final_frac
        config = PPOConfig(
            clip_param=clip, clip_param_final=final, clip_decay_iters=iters
        )
        values = [clip_param_at(config, i) for i in range(max(horizon, iters) + 2)]
        assert all(a >= b for a, b in zip(values, values[1:]))  # monotone
        assert all(final <= v <= clip for v in values)
        assert values[0] == clip
        assert values[iters] == pytest.approx(final)
        assert values[-1] == values[iters]  # constant after the decay

    @given(iteration=st.integers(0, 1000))
    def test_no_schedule_is_the_constant_table2_epsilon(self, iteration):
        config = PPOConfig()
        assert clip_param_at(config, iteration) == config.clip_param


class TestValueClamp:
    @given(
        seed=st.integers(0, 2**31 - 1),
        clamp=st.floats(1e-3, 100.0),
    )
    def test_clamp_never_widens_the_loss(self, seed, clamp):
        rng = np.random.default_rng(seed)
        values = rng.normal(0.0, 50.0, size=32)
        values_old = rng.normal(0.0, 50.0, size=32)
        targets = rng.normal(0.0, 50.0, size=32)
        sq_err, active = clamped_value_sq_error(
            values, values_old, targets, clamp
        )
        unclamped = (values - targets) ** 2
        assert np.all(sq_err <= unclamped + 1e-12)
        # Inside the band the clamp is the identity (and gradient-active).
        in_band = np.abs(values - values_old) <= clamp
        assert np.array_equal(sq_err[in_band], unclamped[in_band])
        assert np.all(active[in_band])
        # The clamped branch only wins when the prediction left the band,
        # and there its gradient is zero.
        assert not np.any(active[sq_err < unclamped - 1e-12])

    def test_binding_clamp_freezes_the_critic_step(self):
        """When the clamped branch wins everywhere, the value gradient is
        zero, so the critic step is a no-op — and the reported loss can
        only shrink relative to the unclamped step (never widen)."""
        env = MeanFieldEnv(_SYSTEM, horizon=15, seed=0)
        config = _tiny_ppo(value_clip_param=1e9, value_clamp_param=1e-6)
        base = PPOTrainer(env.clone(seed=0), _tiny_ppo(value_clip_param=1e9), seed=3)
        clamped = PPOTrainer(env.clone(seed=0), config, seed=3)
        rng = np.random.default_rng(0)
        obs = rng.random((16, env.observation_size))
        current = clamped.value(obs)
        targets = current + 100.0  # far-off targets: huge unclamped error
        before = {k: v.copy() for k, v in clamped.value.state_dict().items()}
        # values_old == targets puts the band right at the target, so the
        # clamped branch wins with near-zero loss and zero gradient.
        loss_clamped = clamped._value_minibatch_step(
            obs, targets, values_old=targets
        )
        loss_base = base._value_minibatch_step(obs, targets, values_old=None)
        assert loss_clamped <= loss_base
        assert loss_clamped == pytest.approx(0.0, abs=1e-6)
        for key, arr in clamped.value.state_dict().items():
            assert np.array_equal(arr, before[key]), key
        # The unclamped twin did move its critic.
        assert any(
            not np.array_equal(arr, before[key])
            for key, arr in base.value.state_dict().items()
        )


class TestKLEarlyStop:
    def test_early_stop_cuts_epochs_short(self):
        env = MeanFieldEnv(_SYSTEM, horizon=15, seed=0)
        # A huge learning rate blows the KL past any tiny threshold after
        # the first epoch; the guard must then skip the remaining epochs.
        config = _tiny_ppo(learning_rate=5e-2, num_epochs=8)
        plain = PPOTrainer(env.clone(seed=0), config, seed=3)
        guarded = PPOTrainer(
            env.clone(seed=0),
            config.with_updates(kl_early_stop_factor=1e-6),
            seed=3,
        )
        stats_plain = plain.train_iteration()
        stats_guarded = guarded.train_iteration()
        assert stats_plain.epochs_run == config.num_epochs
        assert stats_guarded.epochs_run == 1
        # Same collection stream either way (the guard acts after it).
        assert stats_plain.episode_returns == stats_guarded.episode_returns

    def test_guard_off_runs_all_epochs(self):
        env = MeanFieldEnv(_SYSTEM, horizon=15, seed=0)
        trainer = PPOTrainer(env, _tiny_ppo(), seed=3)
        stats = trainer.train_iteration()
        assert stats.epochs_run == trainer.config.num_epochs


class TestConfigValidation:
    def test_bounds_must_be_ordered(self):
        with pytest.raises(ValueError):
            PPOConfig(kl_coeff_bounds=(0.5, 0.1))

    def test_clip_schedule_fields_are_paired(self):
        with pytest.raises(ValueError):
            PPOConfig(clip_param_final=0.1)
        with pytest.raises(ValueError):
            PPOConfig(clip_decay_iters=10)

    def test_clip_final_cannot_exceed_initial(self):
        with pytest.raises(ValueError):
            PPOConfig(clip_param=0.3, clip_param_final=0.4, clip_decay_iters=5)

    def test_roundtrip_preserves_knobs(self):
        config = PPOConfig(
            kl_coeff_bounds=(0.01, 2.0),
            kl_early_stop_factor=4.0,
            clip_param_final=0.1,
            clip_decay_iters=50,
            value_clamp_param=25.0,
        )
        assert PPOConfig.from_dict(config.to_dict()) == config
