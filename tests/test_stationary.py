"""Tests for the stationary (fixed-point) mean-field analysis."""

import numpy as np
import pytest

from repro.meanfield.analytic import (
    mm1b_drop_rate,
    mm1b_stationary_distribution,
)
from repro.meanfield.decision_rule import DecisionRule
from repro.meanfield.discretization import epoch_update
from repro.meanfield.stationary import (
    stationary_distribution,
    stationary_drops,
)


class TestFixedPoint:
    def test_rnd_fixed_point_is_mm1b(self):
        rule = DecisionRule.uniform(6, 2)
        result = stationary_distribution(rule, 0.8, 1.0, 2.0)
        assert result.converged
        pi = mm1b_stationary_distribution(0.8, 1.0, 5)
        assert np.abs(result.nu - pi).max() < 1e-9
        assert result.drops_per_epoch / 2.0 == pytest.approx(
            mm1b_drop_rate(0.8, 1.0, 5), rel=1e-6
        )

    def test_fixed_point_is_actually_fixed(self):
        rule = DecisionRule.join_shortest(6, 2)
        result = stationary_distribution(rule, 0.9, 1.0, 5.0)
        assert result.converged
        nu_next, _ = epoch_update(result.nu, rule, 0.9, 1.0, 5.0)
        assert np.abs(nu_next - result.nu).sum() < 1e-10

    def test_independent_of_initialization(self):
        rule = DecisionRule.join_shortest(6, 2)
        a = stationary_distribution(rule, 0.9, 1.0, 3.0)
        init = np.zeros(6)
        init[5] = 1.0
        b = stationary_distribution(rule, 0.9, 1.0, 3.0, initial=init)
        assert np.abs(a.nu - b.nu).max() < 1e-9

    def test_damped_iteration_reaches_same_point(self):
        rule = DecisionRule.join_shortest(6, 2)
        plain = stationary_distribution(rule, 0.9, 1.0, 5.0)
        damped = stationary_distribution(rule, 0.9, 1.0, 5.0, damping=0.5)
        assert np.abs(plain.nu - damped.nu).max() < 1e-9

    def test_jsq_beats_rnd_in_steady_state_at_small_delay(self):
        jsq = DecisionRule.join_shortest(6, 2)
        rnd = DecisionRule.uniform(6, 2)
        assert stationary_drops(jsq, 0.9, 1.0, 0.5) < stationary_drops(
            rnd, 0.9, 1.0, 0.5
        )

    def test_jsq_herding_at_large_delay(self):
        """In steady state, JSQ's per-time drops overtake RND's as Δt
        grows — the paper's central phenomenon, now in closed loop."""
        jsq = DecisionRule.join_shortest(6, 2)
        rnd = DecisionRule.uniform(6, 2)
        lam = 0.9
        rnd_rate = stationary_drops(rnd, lam, 1.0, 10.0)
        jsq_rate = stationary_drops(jsq, lam, 1.0, 10.0)
        assert jsq_rate > rnd_rate

    def test_drop_rate_monotone_in_load(self):
        rule = DecisionRule.join_shortest(6, 2)
        rates = [stationary_drops(rule, lam, 1.0, 2.0) for lam in (0.5, 0.7, 0.9)]
        assert rates == sorted(rates)

    def test_result_properties(self):
        rule = DecisionRule.uniform(6, 2)
        result = stationary_distribution(rule, 0.8, 1.0, 1.0)
        assert 0 <= result.fill_probability <= 1
        assert 0 <= result.mean_queue_length <= 5
        assert result.iterations >= 1

    def test_validation(self):
        rule = DecisionRule.uniform(4, 2)
        with pytest.raises(ValueError):
            stationary_distribution(rule, 0.8, 1.0, 1.0, damping=1.0)
        with pytest.raises(ValueError):
            stationary_distribution(rule, 0.8, 1.0, 1.0, tol=0.0)
        with pytest.raises(ValueError):
            stationary_distribution(rule, 0.8, 1.0, 1.0, initial=np.ones(4))
