"""Tests for the heterogeneous-server extension (SED baseline)."""

import numpy as np
import pytest

from repro.meanfield.decision_rule import DecisionRule
from repro.queueing.heterogeneous import (
    HeterogeneousFiniteEnv,
    ServerClassSpec,
    jsq_rule_heterogeneous,
    rnd_rule_heterogeneous,
    sed_rule,
)


@pytest.fixture
def spec():
    return ServerClassSpec(service_rates=(0.5, 2.0), fractions=(0.5, 0.5))


class TestServerClassSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerClassSpec((1.0,), (0.5, 0.5))
        with pytest.raises(ValueError):
            ServerClassSpec((0.0, 1.0), (0.5, 0.5))
        with pytest.raises(ValueError):
            ServerClassSpec((1.0, 2.0), (0.6, 0.6))
        with pytest.raises(ValueError):
            ServerClassSpec((), ())

    def test_encode_decode_roundtrip(self, spec, rng):
        z = rng.integers(0, 6, size=50)
        c = rng.integers(0, 2, size=50)
        observed = spec.encode(z, c)
        z2, c2 = spec.decode(observed)
        assert np.array_equal(z, z2)
        assert np.array_equal(c, c2)

    def test_num_observed_states(self, spec):
        assert spec.num_observed_states(5) == 12

    def test_assign_classes_respects_fractions(self, spec):
        classes = spec.assign_classes(10)
        assert classes.shape == (10,)
        assert (classes == 0).sum() == 5
        assert (classes == 1).sum() == 5

    def test_assign_classes_rounds_remainders(self):
        spec = ServerClassSpec((1.0, 2.0, 3.0), (1 / 3, 1 / 3, 1 / 3))
        classes = spec.assign_classes(10)
        counts = np.bincount(classes, minlength=3)
        assert counts.sum() == 10
        assert counts.max() - counts.min() <= 1

    def test_mean_service_rate(self, spec):
        assert spec.mean_service_rate() == pytest.approx(1.25)


class TestRules:
    def test_sed_prefers_fast_server_at_equal_fill(self, spec):
        rule = sed_rule(spec, buffer_size=5, d=2)
        # both queues at filling 2; slot 0 slow (c=0), slot 1 fast (c=1)
        o_slow = spec.encode(np.array(2), np.array(0))
        o_fast = spec.encode(np.array(2), np.array(1))
        probs = rule.action_probs(np.array([int(o_slow), int(o_fast)]))
        assert probs[1] == 1.0  # expected delay 3/2.0 < 3/0.5

    def test_sed_equals_jsq_when_homogeneous(self):
        homo = ServerClassSpec((1.0, 1.0), (0.5, 0.5))
        sed = sed_rule(homo, buffer_size=3, d=2)
        jsq = jsq_rule_heterogeneous(homo, buffer_size=3, d=2)
        assert sed.distance(jsq) < 1e-12

    def test_sed_can_pick_longer_queue_on_fast_server(self, spec):
        rule = sed_rule(spec, buffer_size=5, d=2)
        # slow server filling 1 -> delay 2/0.5 = 4; fast filling 4 -> 5/2 = 2.5
        o_a = int(spec.encode(np.array(1), np.array(0)))
        o_b = int(spec.encode(np.array(4), np.array(1)))
        probs = rule.action_probs(np.array([o_a, o_b]))
        assert probs[1] == 1.0

    def test_jsq_rule_is_class_blind(self, spec):
        rule = jsq_rule_heterogeneous(spec, buffer_size=5, d=2)
        o_a = int(spec.encode(np.array(1), np.array(0)))
        o_b = int(spec.encode(np.array(4), np.array(1)))
        probs = rule.action_probs(np.array([o_a, o_b]))
        assert probs[0] == 1.0  # shorter queue wins regardless of speed

    def test_rnd_rule_uniform(self, spec):
        rule = rnd_rule_heterogeneous(spec, buffer_size=5, d=2)
        assert np.allclose(rule.probs, 0.5)

    def test_rules_are_row_stochastic(self, spec):
        for rule in (
            sed_rule(spec, 5, 2),
            jsq_rule_heterogeneous(spec, 5, 2),
            sed_rule(spec, 3, 3),
        ):
            assert np.allclose(rule.probs.sum(axis=-1), 1.0)


class TestHeterogeneousEnv:
    def test_reset_and_step(self, small_config, spec):
        env = HeterogeneousFiniteEnv(small_config, spec, seed=0)
        hist = env.reset(seed=1)
        assert hist.shape == (12,)
        assert hist.sum() == pytest.approx(1.0)
        rule = sed_rule(spec, small_config.buffer_size, small_config.d)
        hist2, reward, info = env.step(rule)
        assert hist2.sum() == pytest.approx(1.0)
        assert reward <= 0
        assert info["drops_total"] >= 0

    def test_rule_geometry_enforced(self, small_config, spec):
        env = HeterogeneousFiniteEnv(small_config, spec, seed=0)
        env.reset(seed=1)
        with pytest.raises(ValueError):
            env.step(DecisionRule.uniform(6, 2))  # homogeneous rule

    def test_requires_reset(self, small_config, spec):
        env = HeterogeneousFiniteEnv(small_config, spec, seed=0)
        with pytest.raises(RuntimeError):
            env.observed_states()

    def test_service_rates_assigned_by_class(self, small_config, spec):
        env = HeterogeneousFiniteEnv(small_config, spec, seed=0)
        assert np.all(np.isin(env.service_rates, [0.5, 2.0]))
        assert (env.service_rates == 0.5).sum() == small_config.num_queues // 2

    def test_sed_beats_jsq_with_heterogeneous_servers(self, small_config):
        """The motivation for SED: class-blind JSQ wastes fast servers."""
        spec = ServerClassSpec((0.25, 4.0), (0.5, 0.5))
        cfg = small_config.with_updates(
            num_queues=40, num_clients=1600, delta_t=2.0
        )
        sed = sed_rule(spec, cfg.buffer_size, cfg.d)
        jsq = jsq_rule_heterogeneous(spec, cfg.buffer_size, cfg.d)
        sed_drops, jsq_drops = 0.0, 0.0
        for seed in range(4):
            env = HeterogeneousFiniteEnv(cfg, spec, seed=seed)
            sed_drops += env.run_episode(sed, num_epochs=40, seed=seed)
            env2 = HeterogeneousFiniteEnv(cfg, spec, seed=seed + 100)
            jsq_drops += env2.run_episode(jsq, num_epochs=40, seed=seed)
        assert sed_drops < jsq_drops

    def test_infinite_client_mode_conserves_arrival_mass(self, small_config, spec):
        from repro.queueing.arrivals import ScriptedRate

        scripted = ScriptedRate([0.9, 0.6], [0] * 10)
        env = HeterogeneousFiniteEnv(
            small_config, spec, arrival_process=scripted,
            infinite_clients=True, seed=0,
        )
        env.reset(seed=1)
        rule = sed_rule(spec, small_config.buffer_size, small_config.d)
        _, _, info = env.step(rule)
        # total arrival mass is conserved: Σ_j λ_j = M·λ_t with λ_t = 0.9
        assert info["arrival_rates"].sum() == pytest.approx(
            small_config.num_queues * 0.9
        )
        assert info["arrival_rates"].min() >= 0
