"""Shared fixtures for the test suite.

Most tests run on a deliberately small system (short buffers, few
queues/clients, short horizons) so the whole suite stays fast while
still exercising every code path of the full-scale system.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PPOConfig, SystemConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> SystemConfig:
    """Paper parameters at toy scale (fast simulation)."""
    return SystemConfig(
        num_clients=400,
        num_queues=20,
        buffer_size=5,
        d=2,
        service_rate=1.0,
        arrival_rate_high=0.9,
        arrival_rate_low=0.6,
        p_high_to_low=0.2,
        p_low_to_high=0.5,
        delta_t=1.0,
        episode_length=50,
        monte_carlo_runs=3,
    )


@pytest.fixture
def tiny_config() -> SystemConfig:
    """Minimal geometry: B=2, d=2, a handful of queues."""
    return SystemConfig(
        num_clients=64,
        num_queues=8,
        buffer_size=2,
        d=2,
        delta_t=0.5,
        episode_length=20,
        monte_carlo_runs=2,
    )


@pytest.fixture
def fast_ppo_config() -> PPOConfig:
    """PPO config small enough for CI-speed training tests."""
    return PPOConfig(
        learning_rate=1e-3,
        train_batch_size=256,
        minibatch_size=64,
        num_epochs=3,
        hidden_sizes=(32, 32),
        initial_log_std=-0.5,
    )
