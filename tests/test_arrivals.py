"""Tests for the Markov-modulated arrival process (Eq. 1, 32-33)."""

import numpy as np
import pytest

from repro.queueing.arrivals import MarkovModulatedRate, ScriptedRate


class TestConstruction:
    def test_from_config_matches_paper(self, small_config):
        chain = MarkovModulatedRate.from_config(small_config)
        assert chain.num_modes == 2
        assert chain.levels.tolist() == [0.9, 0.6]
        assert np.allclose(
            chain.transition_matrix, [[0.8, 0.2], [0.5, 0.5]]
        )
        assert np.allclose(chain.initial_distribution, [0.5, 0.5])

    def test_constant_chain(self):
        chain = MarkovModulatedRate.constant(0.7)
        assert chain.num_modes == 1
        assert chain.rate(0) == 0.7
        assert chain.step_mode(0) == 0

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError):
            MarkovModulatedRate([0.9, -0.1], np.eye(2))
        with pytest.raises(ValueError):
            MarkovModulatedRate([], np.zeros((0, 0)))

    def test_rejects_bad_matrix(self):
        with pytest.raises(ValueError):
            MarkovModulatedRate([0.9, 0.6], [[0.9, 0.2], [0.5, 0.5]])
        with pytest.raises(ValueError):
            MarkovModulatedRate([0.9, 0.6], np.eye(3))

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError):
            MarkovModulatedRate([0.9, 0.6], np.eye(2), [0.7, 0.7])


class TestDynamics:
    def test_stationary_distribution_paper_values(self, small_config):
        chain = MarkovModulatedRate.from_config(small_config)
        assert np.allclose(chain.stationary_distribution(), [5 / 7, 2 / 7])
        assert chain.stationary_mean_rate() == pytest.approx(
            (5 * 0.9 + 2 * 0.6) / 7
        )

    def test_empirical_occupancy_matches_stationary(self, small_config, rng):
        chain = MarkovModulatedRate.from_config(small_config)
        modes = chain.simulate_modes(40_000, rng)
        frac_high = float((modes == 0).mean())
        assert abs(frac_high - 5 / 7) < 0.02

    def test_empirical_switch_frequencies(self, small_config, rng):
        chain = MarkovModulatedRate.from_config(small_config)
        modes = chain.simulate_modes(40_000, rng)
        high = modes[:-1] == 0
        h2l = float((modes[1:][high] == 1).mean())
        l2h = float((modes[1:][~high] == 0).mean())
        assert abs(h2l - 0.2) < 0.02
        assert abs(l2h - 0.5) < 0.02

    def test_step_mode_rejects_bad_mode(self, rng):
        chain = MarkovModulatedRate.constant(1.0)
        with pytest.raises(ValueError):
            chain.step_mode(5, rng)

    def test_max_rate(self, small_config):
        chain = MarkovModulatedRate.from_config(small_config)
        assert chain.max_rate() == 0.9

    def test_reproducible_with_seed(self, small_config):
        chain = MarkovModulatedRate.from_config(small_config)
        a = chain.simulate_modes(100, np.random.default_rng(1))
        b = chain.simulate_modes(100, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_zero_steps(self, small_config, rng):
        chain = MarkovModulatedRate.from_config(small_config)
        assert chain.simulate_modes(0, rng).size == 0


class TestScriptedRate:
    def test_replays_sequence(self):
        script = ScriptedRate([0.9, 0.6], [0, 1, 1, 0])
        mode = script.sample_initial_mode()
        seen = [mode]
        for _ in range(3):
            mode = script.step_mode(mode)
            seen.append(mode)
        assert seen == [0, 1, 1, 0]

    def test_repeats_last_mode_beyond_end(self):
        script = ScriptedRate([0.9, 0.6], [0, 1])
        mode = script.sample_initial_mode()
        for _ in range(5):
            mode = script.step_mode(mode)
        assert mode == 1

    def test_initial_mode_resets_cursor(self):
        script = ScriptedRate([0.9, 0.6], [1, 0])
        assert script.sample_initial_mode() == 1
        assert script.step_mode(1) == 0
        # restarting replays from the beginning
        assert script.sample_initial_mode() == 1
        assert script.step_mode(1) == 0

    def test_from_process_freezes_trajectory(self, small_config, rng):
        base = MarkovModulatedRate.from_config(small_config)
        script = ScriptedRate.from_process(base, 50, rng)
        assert script.mode_sequence.shape == (50,)
        first = [script.sample_initial_mode()]
        m = first[0]
        for _ in range(49):
            m = script.step_mode(m)
            first.append(m)
        assert np.array_equal(first, script.mode_sequence)

    def test_rejects_out_of_range_sequence(self):
        with pytest.raises(ValueError):
            ScriptedRate([0.9, 0.6], [0, 2])
        with pytest.raises(ValueError):
            ScriptedRate([0.9, 0.6], [])
