"""Tests for the replica-batched simulation backend."""

import numpy as np
import pytest

from repro.meanfield.decision_rule import DecisionRule
from repro.policies.static import JoinShortestQueuePolicy, RandomPolicy
from repro.queueing.arrivals import ScriptedRate
from repro.queueing.batched_env import (
    BatchedFiniteSystemEnv,
    BatchedInfiniteClientEnv,
    run_episodes_batched,
)
from repro.queueing.clients import (
    client_choice_counts,
    client_choice_counts_batched,
    per_packet_rate_fractions,
    per_packet_rate_fractions_batched,
    stack_rules,
)
from repro.queueing.env import FiniteSystemEnv, InfiniteClientEnv, run_episode
from repro.queueing.queue_ctmc import (
    simulate_queues_epoch,
    simulate_queues_epoch_batched,
)


class TestGeometry:
    def test_invalid_num_replicas(self, small_config):
        with pytest.raises(ValueError):
            BatchedFiniteSystemEnv(small_config, num_replicas=0)

    def test_requires_reset(self, small_config):
        env = BatchedFiniteSystemEnv(small_config, num_replicas=3, seed=0)
        with pytest.raises(RuntimeError):
            env.empirical_distributions()
        with pytest.raises(RuntimeError):
            env.step(DecisionRule.uniform(6, 2))

    def test_state_shapes(self, small_config):
        env = BatchedFiniteSystemEnv(small_config, num_replicas=4, seed=0)
        hists = env.reset(seed=1)
        m = small_config.num_queues
        assert hists.shape == (4, 6)
        assert np.allclose(hists.sum(axis=1), 1.0)
        assert env.queue_states.shape == (4, m)
        assert env.lam_modes.shape == (4,)
        assert env.current_rates.shape == (4,)
        hists, rewards, info = env.step(DecisionRule.uniform(6, 2))
        assert hists.shape == (4, 6)
        assert rewards.shape == (4,)
        assert info["drops_total"].shape == (4,)
        assert info["arrival_rates"].shape == (4, m)

    def test_rule_geometry_validated(self, small_config):
        env = BatchedFiniteSystemEnv(small_config, num_replicas=2, seed=0)
        env.reset(seed=1)
        with pytest.raises(ValueError):
            env.step(DecisionRule.uniform(4, 2))
        with pytest.raises(ValueError):
            env.step(DecisionRule.uniform(6, 3))

    def test_per_replica_rule_count_validated(self, small_config):
        env = BatchedFiniteSystemEnv(small_config, num_replicas=3, seed=0)
        env.reset(seed=1)
        with pytest.raises(ValueError):
            env.step([DecisionRule.uniform(6, 2)] * 2)  # 2 rules, 3 replicas

    def test_stack_rules_geometry(self):
        jsq = DecisionRule.join_shortest(6, 2)
        stacked = stack_rules(jsq, 5)
        assert stacked.shape == (5, 6, 6, 2)
        with pytest.raises(ValueError):
            stack_rules([jsq, DecisionRule.uniform(4, 2)], 2)

    def test_batched_kernel_validation(self):
        with pytest.raises(ValueError):
            simulate_queues_epoch_batched(
                np.zeros(5, dtype=int), np.zeros((1, 5)), 1.0, 1.0, 5
            )
        with pytest.raises(ValueError):
            simulate_queues_epoch_batched(
                np.zeros((2, 5), dtype=int), np.zeros((2, 4)), 1.0, 1.0, 5
            )

    def test_service_rate_override_validated(self, small_config):
        with pytest.raises(ValueError):
            BatchedFiniteSystemEnv(
                small_config, num_replicas=2, service_rates=np.ones(3)
            )


class TestScalarEquivalence:
    """E = 1 batched simulation is bit-identical to the scalar wrapper."""

    def test_kernel_bit_identical(self, rng):
        states = rng.integers(0, 6, size=20)
        rates = rng.uniform(0.1, 2.0, size=20)
        s1, d1 = simulate_queues_epoch(
            states, rates, 1.0, 2.0, 5, np.random.default_rng(7)
        )
        s2, d2 = simulate_queues_epoch_batched(
            states[None, :], rates[None, :], 1.0, 2.0, 5, np.random.default_rng(7)
        )
        assert np.array_equal(s1, s2[0])
        assert np.array_equal(d1, d2[0])

    def test_client_kernels_bit_identical(self, rng):
        states = rng.integers(0, 6, size=20)
        rule = DecisionRule.join_shortest(6, 2)
        counts = client_choice_counts(states, 100, rule, np.random.default_rng(3))
        counts_b = client_choice_counts_batched(
            states[None, :], 100, rule, np.random.default_rng(3)
        )
        assert np.array_equal(counts, counts_b[0])
        frac = per_packet_rate_fractions(states, 100, rule, np.random.default_rng(3))
        frac_b = per_packet_rate_fractions_batched(
            states[None, :], 100, rule, np.random.default_rng(3)
        )
        assert np.array_equal(frac, frac_b[0])

    @pytest.mark.parametrize("per_packet", [False, True])
    def test_finite_episode_bit_identical(self, small_config, per_packet):
        policy = JoinShortestQueuePolicy(6, 2)
        scalar = run_episode(
            FiniteSystemEnv(
                small_config, per_packet_randomization=per_packet, seed=0
            ),
            policy,
            num_epochs=20,
            seed=42,
        )
        batched = run_episodes_batched(
            BatchedFiniteSystemEnv(
                small_config,
                num_replicas=1,
                per_packet_randomization=per_packet,
                seed=0,
            ),
            policy,
            num_epochs=20,
            seed=42,
        )
        assert np.array_equal(scalar.per_epoch_drops, batched.per_epoch_drops[0])

    def test_infinite_episode_bit_identical(self, small_config):
        policy = RandomPolicy(6, 2)
        scalar = run_episode(
            InfiniteClientEnv(small_config, seed=0), policy, num_epochs=20, seed=5
        )
        batched = run_episodes_batched(
            BatchedInfiniteClientEnv(small_config, num_replicas=1, seed=0),
            policy,
            num_epochs=20,
            seed=5,
        )
        assert np.array_equal(scalar.per_epoch_drops, batched.per_epoch_drops[0])


class TestBatchedDynamics:
    def test_states_remain_in_buffer_range(self, small_config, rng):
        env = BatchedFiniteSystemEnv(small_config, num_replicas=5, seed=rng)
        env.reset(rng)
        rule = DecisionRule.join_shortest(6, 2)
        for _ in range(10):
            env.step(rule)
            states = env.queue_states
            assert states.min() >= 0
            assert states.max() <= small_config.buffer_size

    def test_reproducibility(self, small_config):
        results = []
        for _ in range(2):
            env = BatchedFiniteSystemEnv(small_config, num_replicas=4)
            result = run_episodes_batched(
                env, RandomPolicy(6, 2), num_epochs=10, seed=42
            )
            results.append(result.total_drops_per_queue)
        assert np.array_equal(results[0], results[1])

    def test_replicas_are_independent(self, small_config):
        """Different replicas see different draws (not copies)."""
        env = BatchedFiniteSystemEnv(small_config, num_replicas=8, seed=0)
        result = run_episodes_batched(env, RandomPolicy(6, 2), num_epochs=20, seed=3)
        assert np.unique(result.total_drops_per_queue).size > 1

    def test_scripted_rate_shared_across_replicas(self, small_config):
        """ScriptedRate conditions all replicas on one mode trajectory."""
        scripted = ScriptedRate([0.9, 0.6], [0, 1, 0, 1, 0])
        env = BatchedFiniteSystemEnv(
            small_config, num_replicas=3, arrival_process=scripted, seed=0
        )
        env.reset(seed=1)
        assert np.array_equal(env.lam_modes, [0, 0, 0])
        env.step(DecisionRule.uniform(6, 2))
        assert np.array_equal(env.lam_modes, [1, 1, 1])

    def test_mixed_per_replica_rules(self, small_config):
        """JSQ replicas should out-perform join-longest replicas."""
        env = BatchedFiniteSystemEnv(small_config, num_replicas=4, seed=0)
        env.reset(seed=2)
        rules = [
            DecisionRule.join_shortest(6, 2),
            DecisionRule.join_shortest(6, 2),
            DecisionRule.join_longest(6, 2),
            DecisionRule.join_longest(6, 2),
        ]
        total = np.zeros(4)
        for _ in range(25):
            _, _, info = env.step(rules)
            total += info["drops_per_queue"]
        assert total[:2].sum() < total[2:].sum()

    def test_statistical_equivalence_with_scalar(self, small_config):
        """Batched E-replica drops match the scalar per-run loop in
        distribution (z-test on the mean, generous bound)."""
        policy = RandomPolicy(6, 2)
        runs = 24
        batched = run_episodes_batched(
            BatchedFiniteSystemEnv(small_config, num_replicas=runs, seed=0),
            policy,
            num_epochs=25,
            seed=0,
        ).total_drops_per_queue
        scalar = np.asarray(
            [
                run_episode(
                    FiniteSystemEnv(small_config, seed=100 + i),
                    policy,
                    num_epochs=25,
                    seed=200 + i,
                ).total_drops_per_queue
                for i in range(runs)
            ]
        )
        se = np.hypot(
            batched.std(ddof=1) / np.sqrt(runs), scalar.std(ddof=1) / np.sqrt(runs)
        )
        assert abs(batched.mean() - scalar.mean()) < 4.0 * se


class TestRunnerBackends:
    def test_backends_agree_in_distribution(self, small_config):
        from repro.experiments.runner import evaluate_policy_finite

        policy = RandomPolicy(6, 2)
        a = evaluate_policy_finite(
            small_config, policy, num_runs=16, num_epochs=15, seed=0,
            backend="batched",
        )
        b = evaluate_policy_finite(
            small_config, policy, num_runs=16, num_epochs=15, seed=0,
            backend="scalar",
        )
        se = np.hypot(
            a.drops.std(ddof=1) / 4.0, b.drops.std(ddof=1) / 4.0
        )
        assert abs(a.mean_drops - b.mean_drops) < 4.0 * se

    def test_batched_backend_chunking(self, small_config):
        from repro.experiments.runner import evaluate_policy_finite

        policy = RandomPolicy(6, 2)
        result = evaluate_policy_finite(
            small_config, policy, num_runs=7, num_epochs=5, seed=3,
            backend="batched", max_batch_replicas=3,
        )
        assert result.drops.shape == (7,)
        repeat = evaluate_policy_finite(
            small_config, policy, num_runs=7, num_epochs=5, seed=3,
            backend="batched", max_batch_replicas=3,
        )
        assert np.array_equal(result.drops, repeat.drops)

    def test_unknown_backend_rejected(self, small_config):
        from repro.experiments.runner import evaluate_policy_finite

        with pytest.raises(ValueError):
            evaluate_policy_finite(
                small_config, RandomPolicy(6, 2), num_runs=2, backend="turbo"
            )


class TestBatchedPolicyQueries:
    def test_neural_batch_matches_loop(self, small_config):
        from repro.policies.learned import NeuralPolicy
        from repro.rl.nn import GaussianPolicyNetwork

        net = GaussianPolicyNetwork(6 + 2, 6 * 6 * 2, (16,), rng=0)
        policy = NeuralPolicy(net, num_states=6, d=2, num_modes=2)
        rng = np.random.default_rng(0)
        nus = rng.dirichlet(np.ones(6), size=5)
        modes = np.array([0, 1, 0, 1, 1])
        batch = policy.decision_rules_batch(nus, modes)
        for i in range(5):
            single = policy.decision_rule(nus[i], int(modes[i]))
            assert np.allclose(batch[i].probs, single.probs)

    def test_lockstep_mfc_evaluation_matches_sequential(self, small_config):
        from repro.meanfield.mfc_env import MeanFieldEnv
        from repro.rl.evaluation import evaluate_policy_mfc

        env = MeanFieldEnv(small_config, horizon=15, seed=0)
        policy = JoinShortestQueuePolicy(6, 2)
        fast = evaluate_policy_mfc(env, policy, episodes=6, seed=11, lockstep=True)
        slow = evaluate_policy_mfc(env, policy, episodes=6, seed=11, lockstep=False)
        assert fast.mean == pytest.approx(slow.mean, rel=1e-9)

    def test_lockstep_clones_do_not_share_scripted_cursor(self, small_config):
        """Each lock-step clone replays the full scripted trajectory
        (a shared cursor would show every E-th mode per episode)."""
        from repro.meanfield.mfc_env import MeanFieldEnv
        from repro.rl.evaluation import evaluate_policy_mfc

        scripted = ScriptedRate([0.9, 0.6], [0, 1] * 10)
        env = MeanFieldEnv(
            small_config, horizon=12, arrival_process=scripted, seed=0
        )
        policy = JoinShortestQueuePolicy(6, 2)
        fast = evaluate_policy_mfc(env, policy, episodes=4, seed=3, lockstep=True)
        slow = evaluate_policy_mfc(env, policy, episodes=4, seed=3, lockstep=False)
        assert fast.mean == pytest.approx(slow.mean, rel=1e-9)

    def test_lockstep_keeps_stochastic_policies_stochastic(self, small_config):
        from repro.meanfield.mfc_env import MeanFieldEnv
        from repro.policies.learned import NeuralPolicy
        from repro.rl.evaluation import evaluate_policy_mfc
        from repro.rl.nn import GaussianPolicyNetwork

        net = GaussianPolicyNetwork(6 + 2, 6 * 6 * 2, (8,), rng=0)
        noisy = NeuralPolicy(net, num_states=6, d=2, deterministic=False)
        mean_only = NeuralPolicy(net, num_states=6, d=2, deterministic=True)
        env = MeanFieldEnv(small_config, horizon=10, seed=0)
        a = evaluate_policy_mfc(env, noisy, episodes=4, seed=7, lockstep=True)
        b = evaluate_policy_mfc(env, mean_only, episodes=4, seed=7, lockstep=True)
        assert a.mean != pytest.approx(b.mean)
