"""Regression tests for the packaged policy checkpoints.

Every checkpoint that ships in ``src/repro/assets/policies/`` — the
paper's per-``Δt`` ``mf_dt*.npz`` set and the campaign's per-regime
``mf_regime_*.npz`` set — must load through its registry, expose the
paper's rule geometry, and produce *bit-identical* decision rules
across loads and through a save/load round trip on a pinned observation
batch. A small finite-system sweep pins the leaderboard's headline
ranking (MF at or below JSQ from ``Δt = 5``) under the bench seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import paper_system_config
from repro.experiments.campaign import (
    available_regime_checkpoints,
    get_regime_policy,
    regime_checkpoint_path,
)
from repro.experiments.pretrained import available_checkpoints, get_mf_policy
from repro.policies.learned import NeuralPolicy

PAPER_CHECKPOINTS = available_checkpoints()
REGIME_CHECKPOINTS = available_regime_checkpoints()


def _pinned_observation_batch(num_states: int = 6, num_modes: int = 2):
    """A fixed batch of (law, mode) queries shared by every test."""
    rng = np.random.default_rng(20260808)
    nus = rng.dirichlet(np.ones(num_states), size=16)
    modes = rng.integers(0, num_modes, size=16)
    return nus, modes


def _rule_stack(policy) -> np.ndarray:
    nus, modes = _pinned_observation_batch(
        policy.num_states, policy.num_modes
    )
    rules = policy.decision_rules_batch(nus, modes)
    return np.stack([rule.probs for rule in rules])


class TestPaperCheckpoints:
    def test_packaged_set_is_nonempty(self):
        assert PAPER_CHECKPOINTS, "no packaged mf_dt*.npz checkpoints"

    @pytest.mark.parametrize("delta_t", sorted(PAPER_CHECKPOINTS))
    def test_loads_with_paper_geometry(self, delta_t):
        policy = NeuralPolicy.load(PAPER_CHECKPOINTS[delta_t])
        config = paper_system_config(delta_t=delta_t)
        assert policy.num_states == config.num_queue_states
        assert policy.d == config.d
        assert policy.num_modes == 2
        assert policy.features.extra_dims == 0

    @pytest.mark.parametrize("delta_t", sorted(PAPER_CHECKPOINTS))
    def test_decision_rules_stable_across_loads(self, delta_t):
        first = _rule_stack(NeuralPolicy.load(PAPER_CHECKPOINTS[delta_t]))
        second = _rule_stack(NeuralPolicy.load(PAPER_CHECKPOINTS[delta_t]))
        assert np.array_equal(first, second)
        assert np.all(np.isfinite(first))


class TestRegimeCheckpoints:
    def test_packaged_set_covers_the_delayed_grid(self):
        missing = [
            f"dt{dt:g}"
            for dt in (1.0, 3.0, 5.0, 7.0, 10.0)
            if f"dt{dt:g}" not in REGIME_CHECKPOINTS
        ]
        assert not missing, (
            f"campaign checkpoints missing for {missing}; run "
            "scripts/train_regime_policies.py"
        )

    @pytest.mark.parametrize("name", sorted(REGIME_CHECKPOINTS))
    def test_loads_with_campaign_label(self, name):
        policy = NeuralPolicy.load(REGIME_CHECKPOINTS[name])
        assert policy.name == "MF-regime"
        assert policy.num_states == 6
        assert policy.d == 2
        if policy.features.age:
            assert policy.age_context is not None

    @pytest.mark.parametrize("name", sorted(REGIME_CHECKPOINTS))
    def test_save_load_round_trip_is_bit_identical(self, name, tmp_path):
        policy = NeuralPolicy.load(REGIME_CHECKPOINTS[name])
        reloaded = NeuralPolicy.load(policy.save(tmp_path / "copy.npz"))
        assert np.array_equal(_rule_stack(policy), _rule_stack(reloaded))

    def test_resolution_prefers_exact_then_nearest(self):
        if "dt5" in REGIME_CHECKPOINTS:
            _policy, source = get_regime_policy(5.0)
            assert source == "checkpoint"
        if REGIME_CHECKPOINTS:
            _policy, source = get_regime_policy(4.0)
            assert source in ("checkpoint", "nearest-dt3", "nearest-dt5")

    def test_resolution_errors_without_fallback(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            get_regime_policy(5.0, directory=tmp_path, allow_fallback=False)
        assert not regime_checkpoint_path("dt5", tmp_path).exists()

    def test_fallback_reports_transplant_source(self, tmp_path):
        _policy, source = get_regime_policy(5.0, directory=tmp_path)
        assert source.startswith("transplant-")


class TestLeaderboardRanking:
    """The campaign's headline ordering on the finite delayed system."""

    @pytest.mark.parametrize("delta_t", [5.0, 10.0])
    def test_mf_at_or_below_jsq_under_staleness(self, delta_t):
        from repro.policies.static import JoinShortestQueuePolicy
        from repro.queueing.delayed_env import BatchedDelayedFiniteEnv
        from repro.queueing.batched_env import run_episodes_batched
        from repro.scenarios.builtin import stochastic_delay_model

        config = paper_system_config(delta_t=delta_t, num_queues=50)
        mf_policy, _source = get_regime_policy(delta_t)
        jsq = JoinShortestQueuePolicy(config.num_queue_states, config.d)

        def mean_drops(policy) -> float:
            env = BatchedDelayedFiniteEnv(
                config,
                num_replicas=4,
                delay_model=stochastic_delay_model(),
                seed=0,
            )
            result = run_episodes_batched(
                env, policy, num_epochs=60, seed=0
            )
            return float(result.mean_total_drops)

        assert mean_drops(mf_policy) <= mean_drops(jsq)
